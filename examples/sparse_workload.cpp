/**
 * @file
 * Sparsity scenario (the paper's conclusions): a block-sparse
 * operator — e.g. a banded-plus-corners coupling matrix — runs
 * through the sparsity-aware DBT, which drops zero block rows from
 * the transformed band and shortens the schedule accordingly.
 */

#include <cstdio>

#include "dbt/matvec_plan.hh"
#include "dbt/sparse_dbt.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

using namespace sap;

int
main()
{
    const Index n = 24, w = 4;

    // Block tridiagonal operator with corner coupling blocks — a
    // typical discretization stencil shape.
    Dense<Scalar> a(n, n);
    Rng rng(21);
    auto fill_block = [&](Index bi, Index bj) {
        for (Index i = 0; i < w; ++i)
            for (Index j = 0; j < w; ++j)
                a(bi * w + i, bj * w + j) =
                    static_cast<Scalar>(rng.uniformInt(1, 9));
    };
    const Index nb = n / w;
    for (Index d = 0; d < nb; ++d) {
        fill_block(d, d);
        if (d + 1 < nb) {
            fill_block(d, d + 1);
            fill_block(d + 1, d);
        }
    }
    fill_block(0, nb - 1);
    fill_block(nb - 1, 0);

    Vec<Scalar> x = randomIntVec(n, 22);
    Vec<Scalar> b = randomIntVec(n, 23);

    SparseDbt sparse(a, w);
    MatVecPlan dense_plan(a, w);

    BandMatVecSpec spec = sparse.spec(x, b);
    LinearRunResult run = runBandMatVec(spec);
    Vec<Scalar> y = sparse.extractY(run.ybar);
    MatVecPlanResult dense_run = dense_plan.run(x, b);

    std::printf("block-tridiagonal + corners, %lldx%lld, w=%lld\n",
                (long long)n, (long long)n, (long long)w);
    std::printf("band block rows: %lld kept of %lld dense\n",
                (long long)sparse.keptBlocks(),
                (long long)sparse.denseBlocks());
    std::printf("steps: %lld sparse vs %lld dense (%.2fx)\n",
                (long long)run.stats.cycles,
                (long long)dense_run.stats.cycles,
                static_cast<double>(dense_run.stats.cycles) /
                    static_cast<double>(run.stats.cycles));
    bool exact = maxAbsDiff(y, matVec(a, x, b)) == 0.0;
    std::printf("result exact: %s\n", exact ? "yes" : "NO");
    return exact ? 0 : 1;
}
