/**
 * @file
 * Serving demo: a bursty multi-client workload across every
 * registered topology (all three problem kinds) through the serve/
 * layer.
 *
 * Several client threads fire bursts of requests at one Server.
 * Within a burst a client reuses its own matrix (the realistic
 * serving pattern: a client's model/filter matrix is fixed while
 * its inputs stream), so after the first request of a burst every
 * request rides the cached DBT-transformed plan. Between bursts
 * clients switch matrices, churning the LRU plan cache.
 *
 * Every request is cross-checked against the host oracle; the demo
 * exits nonzero on any mismatch or serving failure. The final
 * report prints the per-(engine, shape) request counts, cache hit
 * rates, and latency percentiles from ServerStats.
 *
 * Set SAP_EXAMPLE_TINY=1 to shrink the workload (used by the ctest
 * smoke target).
 */

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "engine/registry.hh"
#include "mat/generate.hh"
#include "serve/server.hh"

using namespace sap;

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;

    const int kClients = tiny ? 2 : 4;
    const int kBursts = tiny ? 2 : 4;
    // Long enough that each registered topology recurs within a
    // burst — the repeats are what the plan cache amortizes.
    const int kRequestsPerBurst = tiny ? 10 : 15;
    const Index s = tiny ? 8 : 16; // problem size (s×s matrices)
    const Index w = 4;             // array size

    Server::Options opts;
    opts.threads = 4;
    opts.planCacheCapacity = 16;
    opts.crossCheckAll = true; // golden-model check on every request
    Server server(opts);

    // Engine name -> problem kind, resolved once; requests only
    // need the kind to pick their operand shape.
    std::vector<std::pair<std::string, ProblemKind>> engines;
    for (const std::string &name : engineNames())
        engines.emplace_back(name, makeEngine(name)->kind());
    std::printf("serving %d clients × %d bursts × %d requests over "
                "%zu topologies (%lldx%lld, w=%lld)\n",
                kClients, kBursts, kRequestsPerBurst,
                engines.size(), (long long)s, (long long)s,
                (long long)w);

    std::vector<std::thread> clients;
    std::vector<int> client_failures(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int burst = 0; burst < kBursts; ++burst) {
                // One matrix (pair) per burst: request 1 builds the
                // plan, the rest hit the cache.
                std::uint64_t mat_seed =
                    1 + 100 * static_cast<std::uint64_t>(c) + burst;
                Dense<Scalar> a = randomIntDense(s, s, mat_seed);
                Dense<Scalar> bm = randomIntDense(s, s, mat_seed + 50);
                // Unit diagonal keeps the trisolve cross-check
                // exact in double (the divisions stay integral).
                Dense<Scalar> lt =
                    randomUnitLowerTriangular(s, mat_seed + 70);

                std::vector<std::future<ServeResponse>> burst_futures;
                for (int i = 0; i < kRequestsPerBurst; ++i) {
                    // Round-robin over the topologies: a mixed
                    // stream, not one queue per engine.
                    const auto &[name, kind] =
                        engines[(burst + i) % engines.size()];
                    std::uint64_t seed = 1000 + 10 * i + c;
                    ServeRequest req;
                    req.engine = name;
                    req.plan =
                        kind == ProblemKind::MatVec
                            ? EnginePlan::matVec(
                                  a, randomIntVec(s, seed),
                                  randomIntVec(s, seed + 1), w)
                            : kind == ProblemKind::MatMul
                                ? EnginePlan::matMul(
                                      a, bm,
                                      randomIntDense(s, s, seed + 2),
                                      w)
                                : EnginePlan::triSolve(
                                      lt, randomIntVec(s, seed + 3),
                                      w);
                    burst_futures.push_back(
                        server.submit(std::move(req)));
                }
                for (auto &f : burst_futures) {
                    ServeResponse resp = f.get();
                    if (!resp.ok || !resp.crossCheckOk)
                        ++client_failures[c];
                }
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    int failures = 0;
    for (int c = 0; c < kClients; ++c)
        failures += client_failures[c];

    ServerStats stats = server.stats();
    std::printf("\nper-(engine, shape) serving stats:\n");
    std::printf("%-24s %8s %8s %10s %10s %10s\n", "group", "reqs",
                "hits", "p50(us)", "p99(us)", "cycles");
    for (const GroupStats &g : stats.groups)
        std::printf("%-24s %8llu %8llu %10.1f %10.1f %10lld\n",
                    g.key.label().c_str(),
                    (unsigned long long)g.requests,
                    (unsigned long long)g.cacheHits, g.latency.p50,
                    g.latency.p99, (long long)g.simCycles);

    std::printf("\ntotal: %llu requests, %llu failures, %llu "
                "cross-check failures\n",
                (unsigned long long)stats.requests,
                (unsigned long long)stats.failures,
                (unsigned long long)stats.crossCheckFailures);
    std::printf("plan cache: %llu hits / %llu misses (%.0f%% hit "
                "rate), %llu evictions\n",
                (unsigned long long)stats.planCache.hits,
                (unsigned long long)stats.planCache.misses,
                stats.planCache.hitRate() * 100.0,
                (unsigned long long)stats.planCache.evictions);
    std::printf("latency: p50 %.1fus p99 %.1fus max %.1fus\n",
                stats.latency.p50, stats.latency.p99,
                stats.latency.max);

    bool ok = failures == 0 && stats.failures == 0 &&
              stats.crossCheckFailures == 0 &&
              stats.planCache.hits > 0;
    std::printf("%s\n", ok ? "all requests served and verified"
                           : "FAILURES detected");
    return ok ? 0 : 1;
}
