/**
 * @file
 * Triangular-solve quickstart: solve L·y = b for an arbitrarily
 * large lower-triangular system on the fixed-size array pair,
 * through the unified engine layer — the §4 application of the
 * paper.
 *
 * The "tri" engine decomposes the system into w-wide block rows:
 * the O(n²) panel updates stream through the linear contraflow
 * array as DBT mat-vecs, and each w×w diagonal block is solved on
 * the cycle-level back-substitution array, whose cells capture
 * their solution on first touch (divide) and then retire incoming
 * rows by one subtraction each.
 *
 * The demo cross-checks against the host oracle (forwardSolve), the
 * host-diagonal golden model (triSolve), and the composed step-count
 * formula, then streams several right-hand sides through one
 * prepared plan — the serving-layer amortization pattern. It exits
 * nonzero on any mismatch.
 *
 * Set SAP_EXAMPLE_TINY=1 to shrink the workload (used by the ctest
 * smoke target).
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/formulas.hh"
#include "base/math_util.hh"
#include "engine/engine.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "solve/trisolve.hh"

using namespace sap;

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;

    // A system far larger than the array; unit diagonal keeps the
    // check bit-exact (the divisions stay integral).
    const Index n = tiny ? 9 : 22, w = 4;
    Dense<Scalar> l = randomUnitLowerTriangular(n, /*seed=*/7);
    Vec<Scalar> b = randomIntVec(n, 8);

    std::printf("trisolve engines:");
    for (const std::string &name : engineNames(ProblemKind::TriSolve))
        std::printf(" %s", name.c_str());
    std::printf("\n");

    const Index nbar = ceilDiv(n, w);
    std::printf("L is %lldx%lld, array has %lld cells -> n̄=%lld "
                "block rows\n",
                (long long)n, (long long)n, (long long)w,
                (long long)nbar);

    // 1. One-shot run through the registry.
    EnginePlan plan = EnginePlan::triSolve(l, b, w);
    auto engine = makeEngine("tri");
    EngineRunResult r = engine->run(plan);

    // 2. Cross-check against the oracle and the golden model.
    Vec<Scalar> gold = forwardSolve(l, b);
    bool exact = maxAbsDiff(r.y, gold) == 0.0;
    bool matches_golden = maxAbsDiff(r.y, triSolve(l, b, w).y) == 0.0;
    std::printf("result exact vs forwardSolve: %s, vs triSolve "
                "golden: %s\n",
                exact ? "yes" : "NO", matches_golden ? "yes" : "NO");

    // 3. The composed §2+§4 step count.
    Cycle formula = formulas::tTriSolve(w, nbar);
    std::printf("steps: %lld (formula n̄(2w−1) + Σ tMatVec(w,1,r) "
                "= %lld)\n",
                (long long)r.stats.cycles, (long long)formula);
    std::printf("cell utilization: %.4f\n", r.stats.utilization());

    // 4. Serving pattern: one prepared plan, many right-hand sides.
    auto prepared = engine->prepare(plan);
    int streamed_ok = 0;
    const int kRhs = tiny ? 3 : 8;
    for (int i = 0; i < kRhs; ++i) {
        Vec<Scalar> bi = randomIntVec(n, 100 + i);
        EngineRunResult ri =
            engine->runPrepared(*prepared, EngineInputs::triSolve(bi));
        if (maxAbsDiff(ri.y, forwardSolve(l, bi)) == 0.0)
            ++streamed_ok;
    }
    std::printf("prepared plan streamed %d/%d right-hand sides "
                "exactly\n",
                streamed_ok, kRhs);

    bool ok = exact && matches_golden &&
              r.stats.cycles == formula && streamed_ok == kRhs;
    std::printf("%s\n", ok ? "all checks passed" : "FAILURES detected");
    return ok ? 0 : 1;
}
