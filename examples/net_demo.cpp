/**
 * @file
 * Network-layer demo: a TCP front end serving all three problem
 * kinds to concurrent external clients over loopback.
 *
 * A NetServer (4 shards behind it) binds an ephemeral loopback
 * port; N client threads each open their own connection and hammer
 * it with pipelined batches that mix mat-vec, mat-mul, and
 * triangular solves. Every response is cross-checked client-side
 * against the host oracle — the wire carries IEEE-754 bit patterns,
 * so integer workloads must come back bit-identical. The report
 * prints per-kind wire throughput, a PING round-trip, and the
 * aggregated server statistics fetched with a STATS frame
 * (Cluster::statsSnapshot() over the wire).
 *
 * The demo exits nonzero on any transport failure, serving failure,
 * or oracle mismatch. Set SAP_EXAMPLE_TINY=1 to shrink the workload
 * (used by the ctest smoke target).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/server.hh"

using namespace sap;

namespace {

/** Requests of all three kinds, seeds derived from (client, round). */
std::vector<ServeRequest>
makeBatch(int client, int round, Index s, Index w)
{
    std::uint64_t seed = 1000 + 100 * static_cast<std::uint64_t>(client)
                         + static_cast<std::uint64_t>(round);
    std::vector<ServeRequest> batch;

    ServeRequest mv;
    mv.engine = "linear";
    mv.plan = EnginePlan::matVec(
        randomIntDense(s, s, seed), randomIntVec(s, seed + 1),
        randomIntVec(s, seed + 2), w);
    batch.push_back(std::move(mv));

    ServeRequest mm;
    mm.engine = "hex";
    mm.plan = EnginePlan::matMul(
        randomIntDense(s, s, seed + 3), randomIntDense(s, s, seed + 4),
        randomIntDense(s, s, seed + 5), w);
    batch.push_back(std::move(mm));

    ServeRequest tri;
    tri.engine = "tri";
    // Unit-diagonal: every forward-substitution intermediate is an
    // exact integer, so the oracle comparison is bit-exact.
    tri.plan = EnginePlan::triSolve(
        randomUnitLowerTriangular(s, seed + 6),
        randomIntVec(s, seed + 7), w);
    batch.push_back(std::move(tri));

    return batch;
}

} // namespace

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;

    const int kClients = tiny ? 2 : 4;
    const int kRounds = tiny ? 3 : 10; // batches per client
    const Index s = tiny ? 6 : 12;     // problem size
    const Index w = 3;                 // array size

    NetServer::Options opts;
    opts.cluster.shards = 4;
    opts.cluster.threadsPerShard = 2;
    NetServer server(opts);
    if (!server.start()) {
        std::printf("server failed to start: %s\n",
                    server.error().c_str());
        return 1;
    }
    std::printf("net server: 127.0.0.1:%u fronting %zu shards x %zu "
                "workers; %d clients x %d rounds x 3 kinds "
                "(%lldx%lld, w=%lld)\n",
                unsigned(server.port()), server.cluster().shardCount(),
                server.cluster().shard(0).threadCount(), kClients,
                kRounds, (long long)s, (long long)s, (long long)w);

    std::atomic<std::uint64_t> served[3] = {{0}, {0}, {0}};
    std::atomic<std::uint64_t> bad{0};
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            NetClient client;
            if (!client.connect("127.0.0.1", server.port())) {
                std::printf("client %d: %s\n", c,
                            client.lastError().c_str());
                bad.fetch_add(1);
                return;
            }
            for (int round = 0; round < kRounds; ++round) {
                std::vector<ServeRequest> batch =
                    makeBatch(c, round, s, w);
                std::vector<NetClient::Result> results =
                    client.submitBatch(batch);
                for (std::size_t i = 0; i < results.size(); ++i) {
                    const NetClient::Result &r = results[i];
                    bool ok = r.transportOk && r.response.ok &&
                              NetClient::matchesOracle(batch[i],
                                                       r.response);
                    if (!ok) {
                        std::printf(
                            "client %d round %d req %zu FAILED: %s%s\n",
                            c, round, i, r.transportError.c_str(),
                            r.response.error.c_str());
                        bad.fetch_add(1);
                        continue;
                    }
                    served[static_cast<int>(batch[i].plan.kind)]
                        .fetch_add(1);
                }
            }
            if (!client.ping()) {
                std::printf("client %d ping failed: %s\n", c,
                            client.lastError().c_str());
                bad.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::printf("\nper-kind wire throughput:\n");
    const char *names[3] = {"matvec", "matmul", "trisolve"};
    std::uint64_t total = 0;
    for (int k = 0; k < 3; ++k) {
        std::uint64_t n = served[k].load();
        total += n;
        std::printf("  %-8s %6llu requests  %8.0f req/s\n", names[k],
                    (unsigned long long)n,
                    secs > 0 ? static_cast<double>(n) / secs : 0.0);
    }

    // STATS round-trip: the aggregated per-(engine, shape) snapshot.
    NetClient monitor;
    ServerStats stats;
    bool stats_ok = monitor.connect("127.0.0.1", server.port()) &&
                    monitor.stats(&stats);
    if (!stats_ok) {
        std::printf("stats fetch failed: %s\n",
                    monitor.lastError().c_str());
        bad.fetch_add(1);
    } else {
        std::printf("\naggregated server stats (%llu requests, "
                    "cache %llu hits / %llu misses):\n",
                    (unsigned long long)stats.requests,
                    (unsigned long long)stats.planCache.hits,
                    (unsigned long long)stats.planCache.misses);
        std::printf("  %-24s %8s %8s %10s %10s\n", "group", "reqs",
                    "hits", "p50(us)", "p99(us)");
        for (const GroupStats &g : stats.groups)
            std::printf("  %-24s %8llu %8llu %10.1f %10.1f\n",
                        g.key.label().c_str(),
                        (unsigned long long)g.requests,
                        (unsigned long long)g.cacheHits,
                        g.latency.p50, g.latency.p99);
    }

    const std::uint64_t expected = static_cast<std::uint64_t>(
        kClients * kRounds * 3);
    bool ok = bad.load() == 0 && total == expected && stats_ok &&
              stats.requests == expected && stats.failures == 0;
    std::printf("\n%s: %llu/%llu responses verified bit-identical to "
                "the host oracle over TCP\n",
                ok ? "all good" : "FAILURES detected",
                (unsigned long long)total,
                (unsigned long long)expected);
    return ok ? 0 : 1;
}
