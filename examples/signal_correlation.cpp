/**
 * @file
 * Signal-processing scenario (the application domain of the
 * paper's reference /6/, Priester et al.): sliding-window
 * correlation of a long input stream against a bank of reference
 * templates, phrased as repeated matrix-vector products on one
 * fixed-size array — driven through the unified engine layer.
 *
 * Each window of the stream forms the x vector; the template bank
 * forms the rows of A. The same engine instance is reused across
 * all windows, and because every topology shares the engine
 * interface the scan can run on any registered matvec engine (set
 * SAP_ENGINE=grouped, overlapped, ... to switch).
 *
 * Set SAP_EXAMPLE_TINY=1 to shrink the stream (used by the ctest
 * smoke target).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "engine/engine.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

using namespace sap;

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;
    const char *engine_env = std::getenv("SAP_ENGINE");
    const std::string engine_name = engine_env ? engine_env : "linear";

    const Index templates = 6;   // template bank size (rows of A)
    const Index window = 16;     // window length (cols of A)
    const Index stream_len = tiny ? 32 : 64; // input stream length
    const Index w = 4;           // fixed array size

    auto engine = makeEngine(engine_name);
    if (!engine) {
        std::printf("unknown engine '%s'; registered:",
                    engine_name.c_str());
        for (const std::string &name : engineNames())
            std::printf(" %s", name.c_str());
        std::printf("\n");
        return 1;
    }
    if (engine->kind() != ProblemKind::MatVec) {
        std::printf("engine '%s' runs %s problems, not matvec\n",
                    engine_name.c_str(),
                    problemKindName(engine->kind()).c_str());
        return 1;
    }
    std::printf("scanning on engine '%s' (%s)\n",
                engine->name().c_str(), engine->description().c_str());

    // Template bank: integer-coded chirps.
    Dense<Scalar> bank(templates, window);
    for (Index t = 0; t < templates; ++t)
        for (Index i = 0; i < window; ++i)
            bank(t, i) = static_cast<Scalar>(((t + 1) * i) % 7 - 3);

    // Input stream with one of the templates embedded.
    Vec<Scalar> stream = randomIntVec(stream_len, 99, -2, 2);
    const Index planted = 3, at = stream_len / 2 - window / 4;
    for (Index i = 0; i < window; ++i)
        stream[at + i] = bank(planted, i);

    Vec<Scalar> zero(templates);

    Index best_offset = -1, best_template = -1;
    Scalar best_score = -1;
    Cycle total_steps = 0;
    for (Index off = 0; off + window <= stream_len; ++off) {
        EngineRunResult r = engine->run(EnginePlan::matVec(
            bank, stream.slice(off, window), zero, w));
        total_steps += r.stats.cycles;
        // Verify each window against the oracle while scanning.
        if (maxAbsDiff(r.y, matVec(bank, stream.slice(off, window),
                                   zero)) != 0.0) {
            std::printf("mismatch at offset %lld\n", (long long)off);
            return 1;
        }
        for (Index t = 0; t < templates; ++t) {
            if (r.y[t] > best_score) {
                best_score = r.y[t];
                best_offset = off;
                best_template = t;
            }
        }
    }

    std::printf("scanned %lld windows on a %lld-PE array "
                "(%lld simulated cycles total)\n",
                (long long)(stream_len - window + 1), (long long)w,
                (long long)total_steps);
    std::printf("best match: template %lld at offset %lld "
                "(planted: %lld at %lld)\n",
                (long long)best_template, (long long)best_offset,
                (long long)planted, (long long)at);
    return (best_template == planted && best_offset == at) ? 0 : 1;
}
