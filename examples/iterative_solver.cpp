/**
 * @file
 * Iterative-solver scenario (§4 of the paper lists Gauss-Seidel and
 * triangular systems among the applications of the methodology):
 * solve A·x = b for a diagonally dominant system, with every sweep's
 * O(n²) work executed on the fixed-size simulated array, then invert
 * a triangular factor and a dense matrix on the same machinery.
 */

#include <cstdio>

#include "mat/generate.hh"
#include "mat/ops.hh"
#include "solve/gauss_seidel.hh"
#include "solve/inverse.hh"
#include "solve/trisolve.hh"

using namespace sap;

int
main()
{
    const Index n = 12, w = 3;

    // Gauss-Seidel.
    Dense<Scalar> a = randomDiagDominant(n, 11);
    Vec<Scalar> x_ref = randomIntVec(n, 12);
    Vec<Scalar> b = matVec(a, x_ref, Vec<Scalar>(n));
    GaussSeidelResult gs = gaussSeidel(a, b, w, 1e-10, 200);
    std::printf("Gauss-Seidel on %lldx%lld (w=%lld): %s after %lld "
                "sweeps, residual %.2e, error %.2e\n",
                (long long)n, (long long)n, (long long)w,
                gs.converged ? "converged" : "NOT converged",
                (long long)gs.sweeps, gs.residual,
                maxAbsDiff(gs.x, x_ref));
    std::printf("  array work: %lld MACs over %lld cycles\n",
                (long long)gs.arrayStats.usefulMacs,
                (long long)gs.arrayStats.cycles);

    // Triangular solve + inverse.
    Dense<Scalar> l = randomLowerTriangular(n, 13);
    TriSolveResult ts = triSolve(l, b, w);
    std::printf("triangular solve: error %.2e (host ops %lld, array "
                "MACs %lld)\n",
                maxAbsDiff(ts.y, forwardSolve(l, b)),
                (long long)ts.hostOps,
                (long long)ts.arrayStats.usefulMacs);
    TriInverseResult ti = triInverse(l, w);
    std::printf("triangular inverse: ‖L·L⁻¹−I‖ = %.2e\n",
                maxAbsDiff(matMul(l, ti.inv), identity<Scalar>(n)));

    // Newton-Schulz dense inverse on the hexagonal array.
    Dense<Scalar> dd = randomDiagDominant(6, 14);
    NewtonInverseResult ni = newtonInverse(dd, w, 1e-10, 80);
    std::printf("Newton-Schulz inverse (hex array): %s in %lld "
                "iterations, ‖A·X−I‖ = %.2e\n",
                ni.converged ? "converged" : "NOT converged",
                (long long)ni.iterations,
                maxAbsDiff(matMul(dd, ni.inv), identity<Scalar>(6)));

    bool ok = gs.converged && ni.converged &&
              maxAbsDiff(gs.x, x_ref) < 1e-7;
    return ok ? 0 : 1;
}
