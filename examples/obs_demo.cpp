/**
 * @file
 * Observability demo: end-to-end request tracing and the merged
 * metrics snapshot on a loopback serving installation.
 *
 * A NetServer runs with request tracing enabled (sampled, plus an
 * always-sample-slow threshold); concurrent clients push mixed
 * workloads through it. Afterwards the demo:
 *
 *  - fetches the installation-wide metrics with a METRICS frame
 *    (the same snapshot tools/sap_stats prints) and shows the key
 *    counters, queue-wait and latency quantiles from the exactly
 *    merged histograms, and the measured-vs-formula drift gauge;
 *
 *  - exports the committed traces as Chrome trace_event JSON
 *    (load obs_demo_trace.json in ui.perfetto.dev or
 *    chrome://tracing) and as CSV, and prints one sampled request's
 *    stage-by-stage span breakdown;
 *
 *  - scrapes the admin HTTP plane over loopback: a /metrics excerpt
 *    (with the equivalent curl command line), the flight recorder's
 *    /timeseriesz after a few sampler ticks, and a /healthz
 *    saturation drill on a deliberately starved one-worker server —
 *    watch it flip 200 -> 503 under a pipelined burst and recover
 *    to 200 once drained.
 *
 * Exits nonzero on any failure: transport errors, zero committed
 * traces, missing pipeline stages in the sampled traces, or a
 * metrics snapshot that disagrees with the request count. Set
 * SAP_EXAMPLE_TINY=1 to shrink the workload (ctest smoke target).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/trace_export.hh"

using namespace sap;

namespace {

/** Mixed-kind batch, seeds derived from (client, round). */
std::vector<ServeRequest>
makeBatch(int client, int round, Index s, Index w)
{
    std::uint64_t seed = 500 + 100 * static_cast<std::uint64_t>(client)
                         + static_cast<std::uint64_t>(round);
    std::vector<ServeRequest> batch;

    ServeRequest mv;
    mv.engine = "linear";
    mv.plan = EnginePlan::matVec(
        randomIntDense(s, s, seed), randomIntVec(s, seed + 1),
        randomIntVec(s, seed + 2), w);
    batch.push_back(std::move(mv));

    ServeRequest tri;
    tri.engine = "tri";
    tri.plan = EnginePlan::triSolve(
        randomUnitLowerTriangular(s, seed + 3),
        randomIntVec(s, seed + 4), w);
    batch.push_back(std::move(tri));

    return batch;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << content;
    return os.good();
}

std::uint64_t
counterOf(const MetricsSnapshot &snap, const std::string &name)
{
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

/** Minimal loopback HTTP GET: returns the status code (0 on
 *  transport failure) and fills @p body. What curl does, inline. */
int
httpGet(std::uint16_t port, const std::string &target,
        std::string *body)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return 0;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return 0;
    }
    const std::string req =
        "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
        ssize_t n = ::send(fd, req.data() + off, req.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (resp.rfind("HTTP/1.1 ", 0) != 0 || resp.size() < 12)
        return 0;
    const int status = std::atoi(resp.c_str() + 9);
    const std::size_t headEnd = resp.find("\r\n\r\n");
    if (body)
        *body = headEnd == std::string::npos
                    ? std::string()
                    : resp.substr(headEnd + 4);
    return status;
}

/** The /healthz saturation drill: a one-worker server, a pipelined
 *  burst, and the 200 -> 503 -> 200 transition observed live. */
bool
healthzDrill(bool tiny)
{
    NetServer::Options opts;
    opts.cluster.shards = 1;
    opts.cluster.threadsPerShard = 1;
    opts.adminEnabled = true;
    opts.health.degradedQueueDepth = 2;
    opts.health.unhealthyQueueDepth = 8;
    NetServer server(opts);
    if (!server.start()) {
        std::printf("healthz drill server failed: %s\n",
                    server.error().c_str());
        return false;
    }
    std::printf("\nhealthz drill (1 shard x 1 worker, unhealthy at "
                "queue depth %.0f):\n",
                opts.health.unhealthyQueueDepth);
    std::printf("  before burst:  GET /healthz -> %d\n",
                httpGet(server.adminPort(), "/healthz", nullptr));

    const int burstLen = tiny ? 96 : 192;
    const Index bs = 64;
    std::vector<ServeRequest> burst;
    for (int i = 0; i < burstLen; ++i) {
        std::uint64_t seed = 9000 + 3 * static_cast<std::uint64_t>(i);
        ServeRequest req;
        req.engine = "linear";
        req.plan = EnginePlan::matVec(randomIntDense(bs, bs, seed),
                                      randomIntVec(bs, seed + 1),
                                      randomIntVec(bs, seed + 2), 1);
        burst.push_back(std::move(req));
    }
    std::atomic<bool> done{false};
    std::thread submitter([&] {
        NetClient client;
        if (client.connect("127.0.0.1", server.port()))
            client.submitBatch(burst);
        done.store(true);
    });
    bool saw503 = false;
    std::string reason;
    for (int spin = 0; spin < 4000 && !saw503; ++spin) {
        std::string body;
        if (httpGet(server.adminPort(), "/healthz", &body) == 503) {
            saw503 = true;
            reason = body;
        }
        if (done.load())
            break;
    }
    submitter.join();
    if (saw503) {
        while (!reason.empty() && reason.back() == '\n')
            reason.pop_back();
        std::printf("  under burst:   GET /healthz -> 503 (%s)\n",
                    reason.c_str());
    } else {
        std::printf("  under burst:   never saw 503\n");
    }
    bool recovered = false;
    for (int spin = 0; spin < 4000 && !recovered; ++spin) {
        recovered =
            httpGet(server.adminPort(), "/healthz", nullptr) == 200;
        if (!recovered)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::printf("  after drain:   GET /healthz -> %d\n",
                recovered ? 200 : -1);
    server.stop();
    return saw503 && recovered;
}

} // namespace

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;
    const int kClients = tiny ? 2 : 4;
    const int kRounds = tiny ? 4 : 16;
    const Index s = tiny ? 8 : 16;
    const Index w = 4;

    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.cluster.threadsPerShard = 2;
    opts.trace.enabled = true;
    opts.trace.sampleEvery = 4;    // 1-in-4: demo wants visible traces
    opts.trace.slowMicros = 50000; // always commit + warn-log >=50ms
    opts.adminEnabled = true;
    opts.samplerIntervalSeconds = 0.1; // fast ticks for the demo
    NetServer server(opts);
    if (!server.start()) {
        std::printf("server failed to start: %s\n",
                    server.error().c_str());
        return 1;
    }
    std::printf("obs demo: 127.0.0.1:%u, %zu shards, tracing 1-in-%u "
                "(slow >= %.0fms always)\n",
                unsigned(server.port()), server.cluster().shardCount(),
                opts.trace.sampleEvery, opts.trace.slowMicros / 1e3);
    std::printf("admin plane: http://127.0.0.1:%u/ (metrics, healthz, "
                "tracez, timeseriesz)\n",
                unsigned(server.adminPort()));

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            NetClient client;
            if (!client.connect("127.0.0.1", server.port())) {
                std::printf("client %d: %s\n", c,
                            client.lastError().c_str());
                ++failures;
                return;
            }
            for (int round = 0; round < kRounds; ++round)
                for (const NetClient::Result &r : client.submitBatch(
                         makeBatch(c, round, s, w)))
                    if (!r.transportOk || !r.response.ok) {
                        std::printf("client %d FAILED: %s%s\n", c,
                                    r.transportError.c_str(),
                                    r.response.error.c_str());
                        ++failures;
                    }
        });
    }
    for (std::thread &t : clients)
        t.join();
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kClients) * kRounds * 2;

    // The merged metrics snapshot, over the wire.
    NetClient monitor;
    MetricsSnapshot snap;
    if (!monitor.connect("127.0.0.1", server.port()) ||
        !monitor.metrics(&snap)) {
        std::printf("METRICS fetch failed: %s\n",
                    monitor.lastError().c_str());
        return 1;
    }
    std::printf("\nmerged metrics (METRICS frame):\n");
    for (const char *name :
         {"serve_requests_total", "plan_cache_hits_total",
          "plan_cache_misses_total", "net_frames_received_total",
          "net_responses_sent_total"})
        std::printf("  %-28s %8llu\n", name,
                    static_cast<unsigned long long>(
                        counterOf(snap, name)));
    for (const char *name :
         {"serve_queue_wait_micros", "serve_latency_micros"}) {
        auto it = snap.histograms.find(name);
        if (it == snap.histograms.end())
            continue;
        std::printf("  %-28s n=%-6llu p50=%8.1fus p99=%8.1fus\n",
                    name,
                    static_cast<unsigned long long>(it->second.count),
                    it->second.quantile(0.5),
                    it->second.quantile(0.99));
    }
    auto drift = snap.gauges.find("serve_cycles_formula_drift");
    if (drift != snap.gauges.end())
        std::printf("  %-28s %8.4f (worst relative "
                    "measured-vs-formula cycle drift)\n",
                    "serve_cycles_formula_drift", drift->second.value);

    // Committed traces: export + one request's span breakdown.
    std::vector<RequestTrace> traces = server.traceSnapshot();
    std::printf("\ncommitted traces: %zu of %llu requests "
                "(1-in-%u sampling)\n",
                traces.size(),
                static_cast<unsigned long long>(expected),
                opts.trace.sampleEvery);
    if (!traces.empty()) {
        const RequestTrace &t = traces.front();
        std::printf("request %llu [%s] %s, %.1fus total:\n",
                    static_cast<unsigned long long>(t.requestId),
                    t.label.c_str(),
                    t.cacheHit ? "cache hit" : "cache miss",
                    t.totalMicros());
        for (const TraceSpan &span : traceSpans(t))
            std::printf("  %-9s -> %-9s %10.1fus\n",
                        traceStageName(span.from),
                        traceStageName(span.to), span.micros);
    }

    // The admin plane: what an operator (or Prometheus) sees. The
    // same bytes, from a shell:  curl http://127.0.0.1:PORT/metrics
    std::string promText;
    const int promStatus =
        httpGet(server.adminPort(), "/metrics", &promText);
    std::printf("\nGET /metrics -> %d (curl http://127.0.0.1:%u"
                "/metrics); excerpt:\n",
                promStatus, unsigned(server.adminPort()));
    std::size_t shown = 0, pos = 0;
    while (shown < 6 && pos < promText.size()) {
        std::size_t eol = promText.find('\n', pos);
        const std::string line = promText.substr(pos, eol - pos);
        pos = eol == std::string::npos ? promText.size() : eol + 1;
        if (line.rfind("serve_", 0) == 0 && ++shown)
            std::printf("  %s\n", line.c_str());
    }

    // The flight recorder after a few 100 ms sampler ticks.
    const FlightRecorder *recorder = server.flightRecorder();
    for (int spin = 0; spin < 200; ++spin) {
        if (recorder && recorder->samplesTaken() >= 3)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::string tsBody;
    const int tsStatus =
        httpGet(server.adminPort(), "/timeseriesz", &tsBody);
    std::printf("GET /timeseriesz -> %d (%zu samples recorded, "
                "%zu bytes of JSON)\n",
                tsStatus, recorder ? recorder->samplesTaken() : 0,
                tsBody.size());

    const bool healthz_ok = healthzDrill(tiny);

    const char *dir = std::getenv("SAP_OBS_DEMO_DIR");
    const std::string base = dir ? std::string(dir) + "/" : "";
    bool wrote_json =
        writeFile(base + "obs_demo_trace.json",
                  toChromeTraceJson(traces));
    bool wrote_csv =
        writeFile(base + "obs_demo_trace.csv", toTraceCsv(traces));
    if (wrote_json)
        std::printf("\nwrote %sobs_demo_trace.json (load in "
                    "ui.perfetto.dev) and %sobs_demo_trace.csv\n",
                    base.c_str(), base.c_str());

    // Demo health: every request served and counted, traces
    // committed, and each committed trace crossed the full pipeline.
    bool traces_complete = !traces.empty();
    for (const RequestTrace &t : traces)
        for (TraceStage stage :
             {TraceStage::Decode, TraceStage::Route,
              TraceStage::Dequeue, TraceStage::Execute,
              TraceStage::Flush})
            traces_complete = traces_complete && t.nanosAt(stage) > 0;
    bool ok = failures.load() == 0 &&
              counterOf(snap, "serve_requests_total") == expected &&
              traces_complete && wrote_json && wrote_csv &&
              promStatus == 200 && tsStatus == 200 && healthz_ok;
    std::printf("%s\n", ok ? "all good" : "FAILURES detected");
    return ok ? 0 : 1;
}
