/**
 * @file
 * Observability demo: end-to-end request tracing and the merged
 * metrics snapshot on a loopback serving installation.
 *
 * A NetServer runs with request tracing enabled (sampled, plus an
 * always-sample-slow threshold); concurrent clients push mixed
 * workloads through it. Afterwards the demo:
 *
 *  - fetches the installation-wide metrics with a METRICS frame
 *    (the same snapshot tools/sap_stats prints) and shows the key
 *    counters, queue-wait and latency quantiles from the exactly
 *    merged histograms, and the measured-vs-formula drift gauge;
 *
 *  - exports the committed traces as Chrome trace_event JSON
 *    (load obs_demo_trace.json in ui.perfetto.dev or
 *    chrome://tracing) and as CSV, and prints one sampled request's
 *    stage-by-stage span breakdown.
 *
 * Exits nonzero on any failure: transport errors, zero committed
 * traces, missing pipeline stages in the sampled traces, or a
 * metrics snapshot that disagrees with the request count. Set
 * SAP_EXAMPLE_TINY=1 to shrink the workload (ctest smoke target).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/trace_export.hh"

using namespace sap;

namespace {

/** Mixed-kind batch, seeds derived from (client, round). */
std::vector<ServeRequest>
makeBatch(int client, int round, Index s, Index w)
{
    std::uint64_t seed = 500 + 100 * static_cast<std::uint64_t>(client)
                         + static_cast<std::uint64_t>(round);
    std::vector<ServeRequest> batch;

    ServeRequest mv;
    mv.engine = "linear";
    mv.plan = EnginePlan::matVec(
        randomIntDense(s, s, seed), randomIntVec(s, seed + 1),
        randomIntVec(s, seed + 2), w);
    batch.push_back(std::move(mv));

    ServeRequest tri;
    tri.engine = "tri";
    tri.plan = EnginePlan::triSolve(
        randomUnitLowerTriangular(s, seed + 3),
        randomIntVec(s, seed + 4), w);
    batch.push_back(std::move(tri));

    return batch;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << content;
    return os.good();
}

std::uint64_t
counterOf(const MetricsSnapshot &snap, const std::string &name)
{
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

} // namespace

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;
    const int kClients = tiny ? 2 : 4;
    const int kRounds = tiny ? 4 : 16;
    const Index s = tiny ? 8 : 16;
    const Index w = 4;

    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.cluster.threadsPerShard = 2;
    opts.trace.enabled = true;
    opts.trace.sampleEvery = 4;    // 1-in-4: demo wants visible traces
    opts.trace.slowMicros = 50000; // always commit + warn-log >=50ms
    NetServer server(opts);
    if (!server.start()) {
        std::printf("server failed to start: %s\n",
                    server.error().c_str());
        return 1;
    }
    std::printf("obs demo: 127.0.0.1:%u, %zu shards, tracing 1-in-%u "
                "(slow >= %.0fms always)\n",
                unsigned(server.port()), server.cluster().shardCount(),
                opts.trace.sampleEvery, opts.trace.slowMicros / 1e3);

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            NetClient client;
            if (!client.connect("127.0.0.1", server.port())) {
                std::printf("client %d: %s\n", c,
                            client.lastError().c_str());
                ++failures;
                return;
            }
            for (int round = 0; round < kRounds; ++round)
                for (const NetClient::Result &r : client.submitBatch(
                         makeBatch(c, round, s, w)))
                    if (!r.transportOk || !r.response.ok) {
                        std::printf("client %d FAILED: %s%s\n", c,
                                    r.transportError.c_str(),
                                    r.response.error.c_str());
                        ++failures;
                    }
        });
    }
    for (std::thread &t : clients)
        t.join();
    const std::uint64_t expected =
        static_cast<std::uint64_t>(kClients) * kRounds * 2;

    // The merged metrics snapshot, over the wire.
    NetClient monitor;
    MetricsSnapshot snap;
    if (!monitor.connect("127.0.0.1", server.port()) ||
        !monitor.metrics(&snap)) {
        std::printf("METRICS fetch failed: %s\n",
                    monitor.lastError().c_str());
        return 1;
    }
    std::printf("\nmerged metrics (METRICS frame):\n");
    for (const char *name :
         {"serve_requests_total", "plan_cache_hits_total",
          "plan_cache_misses_total", "net_frames_received_total",
          "net_responses_sent_total"})
        std::printf("  %-28s %8llu\n", name,
                    static_cast<unsigned long long>(
                        counterOf(snap, name)));
    for (const char *name :
         {"serve_queue_wait_micros", "serve_latency_micros"}) {
        auto it = snap.histograms.find(name);
        if (it == snap.histograms.end())
            continue;
        std::printf("  %-28s n=%-6llu p50=%8.1fus p99=%8.1fus\n",
                    name,
                    static_cast<unsigned long long>(it->second.count),
                    it->second.quantile(0.5),
                    it->second.quantile(0.99));
    }
    auto drift = snap.gauges.find("serve_cycles_formula_drift");
    if (drift != snap.gauges.end())
        std::printf("  %-28s %8.4f (worst relative "
                    "measured-vs-formula cycle drift)\n",
                    "serve_cycles_formula_drift", drift->second.value);

    // Committed traces: export + one request's span breakdown.
    std::vector<RequestTrace> traces = server.traceSnapshot();
    std::printf("\ncommitted traces: %zu of %llu requests "
                "(1-in-%u sampling)\n",
                traces.size(),
                static_cast<unsigned long long>(expected),
                opts.trace.sampleEvery);
    if (!traces.empty()) {
        const RequestTrace &t = traces.front();
        std::printf("request %llu [%s] %s, %.1fus total:\n",
                    static_cast<unsigned long long>(t.requestId),
                    t.label.c_str(),
                    t.cacheHit ? "cache hit" : "cache miss",
                    t.totalMicros());
        for (const TraceSpan &span : traceSpans(t))
            std::printf("  %-9s -> %-9s %10.1fus\n",
                        traceStageName(span.from),
                        traceStageName(span.to), span.micros);
    }

    const char *dir = std::getenv("SAP_OBS_DEMO_DIR");
    const std::string base = dir ? std::string(dir) + "/" : "";
    bool wrote_json =
        writeFile(base + "obs_demo_trace.json",
                  toChromeTraceJson(traces));
    bool wrote_csv =
        writeFile(base + "obs_demo_trace.csv", toTraceCsv(traces));
    if (wrote_json)
        std::printf("\nwrote %sobs_demo_trace.json (load in "
                    "ui.perfetto.dev) and %sobs_demo_trace.csv\n",
                    base.c_str(), base.c_str());

    // Demo health: every request served and counted, traces
    // committed, and each committed trace crossed the full pipeline.
    bool traces_complete = !traces.empty();
    for (const RequestTrace &t : traces)
        for (TraceStage stage :
             {TraceStage::Decode, TraceStage::Route,
              TraceStage::Dequeue, TraceStage::Execute,
              TraceStage::Flush})
            traces_complete = traces_complete && t.nanosAt(stage) > 0;
    bool ok = failures.load() == 0 &&
              counterOf(snap, "serve_requests_total") == expected &&
              traces_complete && wrote_json && wrote_csv;
    std::printf("%s\n", ok ? "all good" : "FAILURES detected");
    return ok ? 0 : 1;
}
