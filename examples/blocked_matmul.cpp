/**
 * @file
 * Matrix-matrix scenario: C = A·B + E on the w×w hexagonal array
 * with spiral feedback — every accumulation happens inside the
 * array; the host only routes fed-back values at their scheduled
 * cycles.
 *
 * Also demonstrates the measurement hooks: step counts vs the
 * paper's formula, feedback delay classes, and storage peaks.
 */

#include <cstdio>

#include "analysis/formulas.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

using namespace sap;

int
main()
{
    const Index n = 8, p = 10, m = 6, w = 3;
    Dense<Scalar> a = randomIntDense(n, p, 7);
    Dense<Scalar> b = randomIntDense(p, m, 8);
    Dense<Scalar> e = randomIntDense(n, m, 9);

    MatMulPlan plan(a, b, w);
    const MatMulDims &d = plan.dims();
    std::printf("C(%lldx%lld) = A(%lldx%lld)·B(%lldx%lld) + E on a "
                "%lldx%lld hex array\n",
                (long long)n, (long long)m, (long long)n,
                (long long)p, (long long)p, (long long)m,
                (long long)w, (long long)w);
    std::printf("transformed bands: order N = %lld, %lld block rows "
                "(+tail)\n",
                (long long)d.order(), (long long)d.blockCount());

    MatMulPlanResult r = plan.run(e);
    Dense<Scalar> expect = matMulAdd(a, b, e);
    std::printf("result exact: %s\n",
                maxAbsDiff(r.c, expect) == 0.0 ? "yes" : "NO");
    std::printf("steps: %lld (formula 3w·p̄n̄m̄+4w-5 = %lld)\n",
                (long long)r.stats.cycles,
                (long long)formulas::tMatMul(w, d.pbar, d.nbar,
                                             d.mbar));
    std::printf("utilization: %.4f (-> 1/3)\n",
                r.stats.utilization());

    const SpiralFeedback &fb = *r.feedback;
    std::printf("feedback: %lld transfers, topology respected: %s\n",
                (long long)fb.transferCount(),
                fb.topologyRespected() ? "yes" : "NO");
    if (!fb.pairDelays().empty())
        std::printf("  regular pair delay: %lld (= w)\n",
                    (long long)fb.pairDelays().front());
    if (!fb.mainDiagDelays().empty())
        std::printf("  main diagonal delay: %lld (= 2w)\n",
                    (long long)fb.mainDiagDelays().front());
    std::printf("  irregular transfers: %zu, pool peak: %lld "
                "(paper bound w(w-1)·3/2 = %lld)\n",
                fb.irregularDelays().size(),
                (long long)fb.peakIrregularOccupancy(),
                (long long)formulas::hexMemIrregular(w));
    return maxAbsDiff(r.c, expect) == 0.0 ? 0 : 1;
}
