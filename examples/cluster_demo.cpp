/**
 * @file
 * Cluster demo: a multi-array installation serving a bursty
 * multi-client workload through the async completion-queue API.
 *
 * Four shards sit behind consistent-hash routing; each client
 * thread fires tagged requests with submitToQueue() and a pool of
 * poller threads drains the completion queue — no client ever
 * blocks on a future. Clients reuse matrices across requests (the
 * realistic serving pattern), so each matrix's plan is built once,
 * on the one shard that owns it, and every repeat streams through
 * that shard's cache. A final batch submit shows the server-side
 * same-matrix grouping.
 *
 * Every request is cross-checked against the host oracle; the demo
 * exits nonzero on any mismatch, serving failure, or lost
 * completion. The report prints the per-shard request counts and
 * cache behavior — the pinning is visible as disjoint per-shard
 * plan caches.
 *
 * Set SAP_EXAMPLE_TINY=1 to shrink the workload (used by the ctest
 * smoke target).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cluster/cluster.hh"
#include "mat/generate.hh"

using namespace sap;

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;

    const int kClients = tiny ? 2 : 4;
    const int kPollers = 2;
    const int kRequestsPerClient = tiny ? 12 : 40;
    const int kMatrices = tiny ? 4 : 10; // shared matrix pool
    const Index s = tiny ? 8 : 16;       // problem size
    const Index w = 4;                   // array size

    // Queue declared before the cluster, so the cluster (whose
    // workers push completions) is destroyed first.
    CompletionQueue queue;

    Cluster::Options opts;
    opts.shards = 4;
    opts.threadsPerShard = 2;
    opts.planCacheCapacityPerShard = 8;
    opts.crossCheckAll = true; // golden-model check on every request
    Cluster cluster(opts);

    const std::uint64_t total = static_cast<std::uint64_t>(
        kClients * kRequestsPerClient);
    std::printf("cluster: %zu shards x %zu workers, serving %d "
                "clients x %d requests over %d shared matrices "
                "(%lldx%lld, w=%lld)\n",
                cluster.shardCount(), cluster.shard(0).threadCount(),
                kClients, kRequestsPerClient, kMatrices, (long long)s,
                (long long)s, (long long)w);

    std::vector<Dense<Scalar>> mats;
    for (int m = 0; m < kMatrices; ++m)
        mats.push_back(randomIntDense(s, s, 1 + m));

    // Pollers drain completions while producers are still
    // submitting: the event-loop client shape.
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> bad{0};
    std::vector<std::thread> pollers;
    for (int p = 0; p < kPollers; ++p) {
        pollers.emplace_back([&] {
            Completion c;
            while (queue.next(&c)) {
                if (!c.response.ok || !c.response.crossCheckOk)
                    bad.fetch_add(1, std::memory_order_relaxed);
                if (received.fetch_add(
                        1, std::memory_order_acq_rel) + 1 == total)
                    queue.shutdown();
            }
        });
    }

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kRequestsPerClient; ++i) {
                const Dense<Scalar> &a = mats[(c + i) % kMatrices];
                std::uint64_t seed =
                    1000 + 100 * static_cast<std::uint64_t>(c) + i;
                ServeRequest req;
                req.engine = "linear";
                req.plan = EnginePlan::matVec(
                    a, randomIntVec(s, seed),
                    randomIntVec(s, seed + 1), w);
                cluster.submitToQueue(
                    std::move(req), &queue,
                    static_cast<std::uint64_t>(
                        c * kRequestsPerClient + i));
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (std::thread &t : pollers)
        t.join();

    // Batch coda: the same matrices again, grouped server-side so
    // each distinct matrix is one prepared streaming pass.
    std::vector<ServeRequest> batch;
    for (int i = 0; i < kMatrices * 3; ++i) {
        ServeRequest req;
        req.engine = "linear";
        req.plan = EnginePlan::matVec(
            mats[i % kMatrices], randomIntVec(s, 5000 + i),
            randomIntVec(s, 5001 + i), w);
        batch.push_back(std::move(req));
    }
    std::size_t batch_ok = 0;
    for (auto &f : cluster.submitBatch(std::move(batch)))
        batch_ok += f.get().ok ? 1 : 0;

    ClusterStats stats = cluster.stats();
    std::printf("\nper-shard serving stats:\n");
    std::printf("%-6s %8s %8s %8s %10s %10s\n", "shard", "reqs",
                "hits", "misses", "plans", "p99(us)");
    for (std::size_t sh = 0; sh < stats.shards.size(); ++sh) {
        const ServerStats &g = stats.shards[sh];
        std::printf("%-6zu %8llu %8llu %8llu %10zu %10.1f\n", sh,
                    (unsigned long long)g.requests,
                    (unsigned long long)g.planCache.hits,
                    (unsigned long long)g.planCache.misses,
                    cluster.shard(sh).planCache().size(),
                    g.latency.p99);
    }
    std::printf("\ntotal: %llu async + %zu batched requests, %llu "
                "failures, %llu cross-check failures\n",
                (unsigned long long)received.load(), batch_ok,
                (unsigned long long)stats.failures,
                (unsigned long long)stats.crossCheckFailures);
    std::printf("aggregate plan cache: %llu hits / %llu misses "
                "(%.0f%% hit rate)\n",
                (unsigned long long)stats.planCache.hits,
                (unsigned long long)stats.planCache.misses,
                stats.planCache.hitRate() * 100.0);

    bool ok = received.load() == total && bad.load() == 0 &&
              batch_ok == static_cast<std::size_t>(kMatrices * 3) &&
              stats.failures == 0 && stats.crossCheckFailures == 0 &&
              stats.planCache.hits > 0;
    std::printf("%s\n", ok ? "all requests served and verified"
                           : "FAILURES detected");
    return ok ? 0 : 1;
}
