/**
 * @file
 * Quickstart: solve y = A·x + b for an arbitrarily-sized dense
 * matrix on a fixed-size simulated systolic array.
 *
 * The problem (17×23) does not remotely fit the 4-PE array — that
 * is the point of the paper: DBT reshapes any dense matrix into a
 * bandwidth-w band whose band is completely filled, so the fixed
 * array runs at its best possible utilization and all partial
 * results stay inside the array via the w-register feedback loop.
 */

#include <cstdio>

#include "analysis/formulas.hh"
#include "dbt/matvec_plan.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

using namespace sap;

int
main()
{
    // An arbitrary problem size and a small fixed array.
    const Index n = 17, m = 23, w = 4;
    Dense<Scalar> a = randomIntDense(n, m, /*seed=*/42);
    Vec<Scalar> x = randomIntVec(m, 43);
    Vec<Scalar> b = randomIntVec(n, 44);

    // 1. Build the plan: applies DBT-by-rows once for this matrix.
    MatVecPlan plan(a, w);
    const MatVecDims &d = plan.dims();
    std::printf("A is %lldx%lld, array has %lld PEs -> n̄=%lld m̄=%lld "
                "band of %lld block rows\n",
                (long long)n, (long long)m, (long long)w,
                (long long)d.nbar, (long long)d.mbar,
                (long long)d.blockCount());

    // 2. Run it on the cycle-accurate simulated array.
    MatVecPlanResult r = plan.run(x, b);

    // 3. Check against the host oracle.
    Vec<Scalar> expect = matVec(a, x, b);
    std::printf("result exact: %s\n",
                maxAbsDiff(r.y, expect) == 0.0 ? "yes" : "NO");
    std::printf("steps: %lld (formula 2w·n̄m̄+2w-3 = %lld)\n",
                (long long)r.stats.cycles,
                (long long)formulas::tMatVec(w, d.nbar, d.mbar));
    std::printf("PE utilization: %.4f (-> 1/2 for large problems)\n",
                r.stats.utilization());
    std::printf("feedback: delay %lld cycles through %lld registers "
                "(= w)\n",
                (long long)r.observedFeedbackDelay,
                (long long)r.feedbackRegisters);

    // 4. The overlapped schedule doubles utilization.
    MatVecPlanResult ovl = plan.runOverlapped(x, b);
    std::printf("overlapped: steps %lld, utilization %.4f (-> 1)\n",
                (long long)ovl.stats.cycles,
                ovl.stats.utilization());
    return maxAbsDiff(r.y, expect) == 0.0 ? 0 : 1;
}
