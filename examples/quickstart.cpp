/**
 * @file
 * Quickstart: solve y = A·x + b for an arbitrarily-sized dense
 * matrix on a fixed-size simulated systolic array, through the
 * unified engine layer.
 *
 * The problem (17×23) does not remotely fit the 4-PE array — that
 * is the point of the paper: DBT reshapes any dense matrix into a
 * bandwidth-w band whose band is completely filled, so the fixed
 * array runs at its best possible utilization and all partial
 * results stay inside the array via the w-register feedback loop.
 *
 * Every topology is driven through the same two calls:
 *
 *   EnginePlan plan = EnginePlan::matVec(a, x, b, w);
 *   EngineRunResult r = makeEngine("linear")->run(plan);
 *
 * Set SAP_EXAMPLE_TINY=1 to shrink the workload (used by the ctest
 * smoke target).
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/formulas.hh"
#include "base/math_util.hh"
#include "engine/engine.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

using namespace sap;

int
main()
{
    const bool tiny = std::getenv("SAP_EXAMPLE_TINY") != nullptr;

    // An arbitrary problem size and a small fixed array.
    const Index n = tiny ? 7 : 17, m = tiny ? 9 : 23, w = 4;
    Dense<Scalar> a = randomIntDense(n, m, /*seed=*/42);
    Vec<Scalar> x = randomIntVec(m, 43);
    Vec<Scalar> b = randomIntVec(n, 44);

    // 1. Build the plan (the DBT transformation is applied when an
    //    engine consumes it) and list the available topologies.
    EnginePlan plan = EnginePlan::matVec(a, x, b, w);
    std::printf("registered engines:");
    for (const std::string &name : engineNames())
        std::printf(" %s", name.c_str());
    std::printf("\n");

    const Index nbar = ceilDiv(n, w), mbar = ceilDiv(m, w);
    std::printf("A is %lldx%lld, array has %lld PEs -> n̄=%lld "
                "m̄=%lld band of %lld block rows\n",
                (long long)n, (long long)m, (long long)w,
                (long long)nbar, (long long)mbar,
                (long long)(nbar * mbar));

    // 2. Run it on the cycle-accurate simulated array.
    EngineRunResult r = makeEngine("linear")->run(plan);

    // 3. Check against the host oracle.
    Vec<Scalar> expect = matVec(a, x, b);
    std::printf("result exact: %s\n",
                maxAbsDiff(r.y, expect) == 0.0 ? "yes" : "NO");
    std::printf("steps: %lld (formula 2w·n̄m̄+2w-3 = %lld)\n",
                (long long)r.stats.cycles,
                (long long)formulas::tMatVec(w, nbar, mbar));
    std::printf("PE utilization: %.4f (-> 1/2 for large problems)\n",
                r.stats.utilization());
    std::printf("feedback: delay %lld cycles through %lld registers "
                "(= w)\n",
                (long long)r.feedbackDelay,
                (long long)r.feedbackRegisters);

    // 4. The other topologies are one name away: the overlapped
    //    schedule doubles utilization, grouping halves the PEs.
    //    Every topology must reproduce the same exact result.
    bool ok = maxAbsDiff(r.y, expect) == 0.0;
    if (nbar >= 2) {
        EngineRunResult ovl = makeEngine("overlapped")->run(plan);
        ok = ok && maxAbsDiff(ovl.y, expect) == 0.0;
        std::printf("overlapped: steps %lld, utilization %.4f "
                    "(-> 1)\n",
                    (long long)ovl.stats.cycles,
                    ovl.stats.utilization());
    }
    EngineRunResult grp = makeEngine("grouped")->run(plan);
    ok = ok && maxAbsDiff(grp.y, expect) == 0.0 && grp.conflictFree;
    std::printf("grouped: %lld physical PEs, utilization %.4f, "
                "conflict-free: %s\n",
                (long long)grp.stats.peCount, grp.stats.utilization(),
                grp.conflictFree ? "yes" : "NO");

    return ok ? 0 : 1;
}
