/**
 * @file
 * Request-tracing tests: ring semantics, sampling and slow-commit
 * policy, span computation, the Chrome trace_event / CSV exporters
 * (JSON checked with a strict recursive-descent validator, not a
 * substring sniff), and end-to-end loopback coverage — every stage
 * of the net → cluster → shard → writer pipeline must be stamped.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "checkers.hh"
#include "mat/generate.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/trace_export.hh"
#include "obs/trace_ring.hh"

namespace sap {
namespace {

// The strict JSON validator itself lives in checkers.hh (shared with
// the admin-plane suite); its self-test stays with the trace
// exporters that motivated it.
TEST(JsonCheckerSelfTest, AcceptsValidRejectsInvalid)
{
    EXPECT_TRUE(JsonChecker("{}").valid());
    EXPECT_TRUE(JsonChecker("[1, 2.5, -3e4, \"a\\nb\", true, null]")
                    .valid());
    EXPECT_TRUE(JsonChecker("{\"a\": {\"b\": []}}").valid());
    EXPECT_FALSE(JsonChecker("{").valid());
    EXPECT_FALSE(JsonChecker("{\"a\": 1,}").valid());
    EXPECT_FALSE(JsonChecker("[01]").valid());
    EXPECT_FALSE(JsonChecker("\"\n\"").valid()); // raw control char
    EXPECT_FALSE(JsonChecker("{} extra").valid());
    EXPECT_FALSE(JsonChecker("{\"a\" 1}").valid());
}

//---------------------------------------------------------------------
// Ring and collector semantics
//---------------------------------------------------------------------

RequestTrace
traceWithId(std::uint64_t id)
{
    RequestTrace t;
    t.requestId = id;
    t.stamp(TraceStage::Decode);
    t.stamp(TraceStage::Flush);
    return t;
}

TEST(TraceRing, OverwritesOldestKeepsOrder)
{
    TraceRing ring(4);
    for (std::uint64_t id = 1; id <= 10; ++id)
        ring.push(traceWithId(id));
    EXPECT_EQ(ring.totalCommitted(), 10u);
    std::vector<RequestTrace> got = ring.snapshot();
    ASSERT_EQ(got.size(), 4u);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].requestId, 7 + i);
}

TEST(TraceCollector, DisabledReturnsNullAndIgnoresFinish)
{
    TraceCollector collector(TraceConfig{});
    EXPECT_EQ(collector.begin(), nullptr);
    EXPECT_FALSE(collector.finish(nullptr));
    EXPECT_EQ(collector.totalCommitted(), 0u);
}

TEST(TraceCollector, SamplesExactlyOneInN)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.sampleEvery = 4;
    TraceCollector collector(cfg);
    int committed = 0;
    for (int i = 0; i < 100; ++i) {
        std::shared_ptr<RequestTrace> t = collector.begin();
        ASSERT_NE(t, nullptr);
        t->stamp(TraceStage::Decode);
        t->stamp(TraceStage::Flush);
        committed += collector.finish(t) ? 1 : 0;
    }
    EXPECT_EQ(committed, 25);
    EXPECT_EQ(collector.totalCommitted(), 25u);
}

TEST(TraceCollector, SampleEveryZeroNeverCommits)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.sampleEvery = 0;
    TraceCollector collector(cfg);
    for (int i = 0; i < 20; ++i)
        collector.finish(collector.begin());
    EXPECT_EQ(collector.totalCommitted(), 0u);
}

TEST(TraceCollector, SlowRequestsAlwaysCommit)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.sampleEvery = 0; // sampling would never commit
    cfg.slowMicros = 1000;
    TraceCollector collector(cfg);

    // Quiet the slow-request warn lines for the duration.
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);

    std::shared_ptr<RequestTrace> fast = collector.begin();
    fast->stamp(TraceStage::Decode);
    fast->stageNanos[static_cast<std::size_t>(TraceStage::Flush)] =
        fast->nanosAt(TraceStage::Decode) + 5000; // 5us: not slow
    EXPECT_FALSE(collector.finish(fast));

    std::shared_ptr<RequestTrace> slow = collector.begin();
    slow->stamp(TraceStage::Decode);
    slow->stageNanos[static_cast<std::size_t>(TraceStage::Flush)] =
        slow->nanosAt(TraceStage::Decode) + 2'000'000; // 2ms: slow
    EXPECT_TRUE(collector.finish(slow));

    setLogLevel(saved);
    EXPECT_EQ(collector.totalCommitted(), 1u);
}

TEST(TraceCollector, CommitsRecordStageHistograms)
{
    MetricsRegistry reg;
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.sampleEvery = 1;
    TraceCollector collector(cfg, &reg);
    for (int i = 0; i < 5; ++i) {
        std::shared_ptr<RequestTrace> t = collector.begin();
        t->stamp(TraceStage::Decode);
        t->stamp(TraceStage::Execute);
        t->stamp(TraceStage::Flush);
        EXPECT_TRUE(collector.finish(t));
    }
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.histograms["trace_total_micros"].count, 5u);
    EXPECT_EQ(snap.histograms["trace_stage_execute_micros"].count,
              5u);
    EXPECT_EQ(snap.histograms["trace_stage_flush_micros"].count, 5u);
    // decode is the first stamped stage: no span *ends* there.
    EXPECT_EQ(snap.histograms.count("trace_stage_decode_micros"), 0u);
}

TEST(TraceSpans, SkipUnstampedStages)
{
    RequestTrace t;
    t.stamp(TraceStage::Decode);
    t.stamp(TraceStage::Execute);
    t.stamp(TraceStage::Flush);

    std::vector<TraceSpan> spans = traceSpans(t);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].from, TraceStage::Decode);
    EXPECT_EQ(spans[0].to, TraceStage::Execute);
    EXPECT_EQ(spans[1].from, TraceStage::Execute);
    EXPECT_EQ(spans[1].to, TraceStage::Flush);
    EXPECT_GE(spans[0].micros, 0.0);
    EXPECT_GE(spans[1].micros, 0.0);
}

//---------------------------------------------------------------------
// Exporters
//---------------------------------------------------------------------

std::vector<RequestTrace>
syntheticTraces()
{
    std::vector<RequestTrace> traces;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        RequestTrace t;
        t.requestId = id;
        // Adversarial label: exercises JSON and CSV escaping.
        t.label = "linear \"q\" \\ tab\t 8x8";
        t.cacheHit = id > 1;
        t.ok = id != 3;
        for (std::size_t s = 0; s < kTraceStages; ++s)
            t.stageNanos[s] = 1'000'000 * id + 500 * s;
        traces.push_back(std::move(t));
    }
    return traces;
}

TEST(TraceExport, ChromeJsonIsStrictlyValid)
{
    const std::string json = toChromeTraceJson(syntheticTraces());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"request\""), std::string::npos);
    // One process_name metadata event for the backend lane, then
    // one request event + 7 spans per trace, 3 traces.
    std::size_t events = 0;
    for (std::size_t at = json.find("\"ph\"");
         at != std::string::npos; at = json.find("\"ph\"", at + 1))
        ++events;
    EXPECT_EQ(events, 1 + 3u * (1 + (kTraceStages - 1)));
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceListIsValidJson)
{
    EXPECT_TRUE(JsonChecker(toChromeTraceJson({})).valid());
}

TEST(TraceExport, TracezJsonIsStrictlyValid)
{
    const std::vector<RequestTrace> traces = syntheticTraces();
    const std::string json = toTracezJson(traces, 42);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"total_committed\":42"), std::string::npos);
    EXPECT_NE(json.find("\"count\":3"), std::string::npos);
    // The adversarial label survives escaping.
    EXPECT_NE(json.find("\\\"q\\\""), std::string::npos);
    // Every stamped stage appears with its name.
    EXPECT_NE(json.find("\"decode\":"), std::string::npos);
    EXPECT_NE(json.find("\"flush\":"), std::string::npos);

    EXPECT_TRUE(JsonChecker(toTracezJson({}, 0)).valid());
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerTrace)
{
    const std::string csv = toTraceCsv(syntheticTraces());
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < csv.size()) {
        std::size_t end = csv.find('\n', start);
        lines.push_back(csv.substr(start, end - start));
        start = end == std::string::npos ? csv.size() : end + 1;
    }
    ASSERT_EQ(lines.size(), 1u + 3u);
    EXPECT_EQ(lines[0],
              "request_id,label,ok,cache_hit,total_micros,"
              "decode_micros,route_micros,dequeue_micros,"
              "prepare_micros,execute_micros,cq_push_micros,"
              "writer_pop_micros,flush_micros");
    // The label's embedded quote must be doubled per CSV quoting.
    EXPECT_NE(lines[1].find("\"linear \"\"q\"\" \\ tab\t 8x8\""),
              std::string::npos);
}

//---------------------------------------------------------------------
// Stitching, filters, and the strict query parser
//---------------------------------------------------------------------

TraceContext
contextWithLo(std::uint64_t lo, std::uint8_t attempt = 0)
{
    TraceContext ctx;
    ctx.traceIdHi = 0xaa00000000000000ull;
    ctx.traceIdLo = lo;
    ctx.sampled = true;
    ctx.originNanos = 1;
    ctx.attempt = attempt;
    return ctx;
}

/** A gateway part and a backend part sharing trace id @p lo, plus a
 *  context-less straggler — the canonical stitch input. */
std::vector<RequestTrace>
crossTierTraces(std::uint64_t lo)
{
    std::vector<RequestTrace> traces;
    RequestTrace backend;
    backend.requestId = 11;
    backend.label = "linear";
    backend.kind = "matvec";
    backend.ok = true;
    for (std::size_t s = 0; s < kTraceStages; ++s)
        backend.stageNanos[s] = 2'000'000 + 500 * s;
    backend.ctx = contextWithLo(lo);
    traces.push_back(std::move(backend));

    RequestTrace gateway;
    gateway.requestId = 3;
    gateway.label = "linear";
    gateway.kind = "matvec";
    gateway.ok = true;
    gateway.tier = TraceTier::Gateway;
    gateway.ctx = contextWithLo(lo, 1);
    gateway.stamp(TraceStage::Decode);
    gateway.stageNanos[0] = 1'000'000;
    gateway.stageNanos[1] = 1'000'500;
    gateway.stageNanos[2] = 1'001'000;
    gateway.stageNanos[6] = 3'000'000;
    gateway.stageNanos[7] = 3'000'500;
    gateway.events.push_back({"resubmit attempt 1", 1'500'000});
    traces.push_back(std::move(gateway));

    RequestTrace lone;
    lone.requestId = 12;
    lone.label = "hex";
    lone.kind = "matmul";
    for (std::size_t s = 0; s < kTraceStages; ++s)
        lone.stageNanos[s] = 5'000'000 + 500 * s;
    traces.push_back(std::move(lone));
    return traces;
}

TEST(TraceStitch, GroupsByIdAndOrdersPartsByStart)
{
    std::vector<StitchedTrace> stitched =
        stitchTraces(crossTierTraces(0x42));
    ASSERT_EQ(stitched.size(), 2u);
    // Group order follows first appearance; the gateway part starts
    // earlier so it sorts first within the group.
    EXPECT_EQ(stitched[0].traceId,
              traceIdHex(contextWithLo(0x42)));
    ASSERT_EQ(stitched[0].parts.size(), 2u);
    EXPECT_EQ(stitched[0].parts[0].tier, TraceTier::Gateway);
    EXPECT_EQ(stitched[0].parts[1].tier, TraceTier::Backend);
    // The context-less trace stays a singleton with no id.
    EXPECT_TRUE(stitched[1].traceId.empty());
    ASSERT_EQ(stitched[1].parts.size(), 1u);
    EXPECT_EQ(stitched[1].parts[0].requestId, 12u);
}

TEST(TraceStitch, StitchedJsonIsStrictlyValid)
{
    const std::string json = toStitchedTracezJson(
        stitchTraces(crossTierTraces(0x43)), 17);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"total_committed\":17"),
              std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"stitched\""), std::string::npos);
    // Gateway parts use the tier-aware stage names.
    EXPECT_NE(json.find("\"gw_decode\":"), std::string::npos);
    EXPECT_NE(json.find("\"decode\":"), std::string::npos);
    // The context-less singleton reports a null trace id.
    EXPECT_NE(json.find("\"trace_id\":null"), std::string::npos);
    EXPECT_TRUE(JsonChecker(toStitchedTracezJson({}, 0)).valid());
}

TEST(TraceStitch, ChromeJsonRendersBothProcessLanes)
{
    const std::string json =
        toChromeTraceJson(crossTierTraces(0x44));
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // One process_name metadata event per tier present.
    std::size_t names = 0;
    for (std::size_t at = json.find("\"process_name\"");
         at != std::string::npos;
         at = json.find("\"process_name\"", at + 1))
        ++names;
    EXPECT_EQ(names, 2u);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
    // The gateway's point event exports as an instant event.
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("resubmit attempt 1"), std::string::npos);
    // Context-carrying events are tagged with the hex id.
    EXPECT_NE(json.find(traceIdHex(contextWithLo(0x44))),
              std::string::npos);
}

TEST(TraceFilter, QueryParserIsStrict)
{
    std::uint64_t min_us = 7;
    std::string kind = "x";
    std::string err;
    // Absent filters reset the out-params.
    EXPECT_TRUE(parseTraceQuery({{"format", "chrome"}}, &min_us,
                                &kind, &err));
    EXPECT_EQ(min_us, 0u);
    EXPECT_TRUE(kind.empty());

    EXPECT_TRUE(parseTraceQuery({{"min_us", "2500"},
                                 {"kind", "trisolve"}},
                                &min_us, &kind, &err));
    EXPECT_EQ(min_us, 2500u);
    EXPECT_EQ(kind, "trisolve");

    for (const char *bad : {"", "12x", "-1", "1.5", " 12",
                            "99999999999999999999"}) {
        SCOPED_TRACE(std::string("min_us='") + bad + "'");
        EXPECT_FALSE(parseTraceQuery({{"min_us", bad}}, &min_us,
                                     &kind, &err));
        EXPECT_NE(err.find("bad min_us value"), std::string::npos)
            << err;
    }
    for (const char *bad : {"", "matrix", "MATVEC", "matvec "}) {
        SCOPED_TRACE(std::string("kind='") + bad + "'");
        EXPECT_FALSE(parseTraceQuery({{"kind", bad}}, &min_us, &kind,
                                     &err));
        EXPECT_NE(err.find("bad kind value"), std::string::npos)
            << err;
    }
}

TEST(TraceFilter, FiltersByDurationAndKind)
{
    std::vector<RequestTrace> traces = crossTierTraces(0x45);
    // All pass with no filter.
    EXPECT_EQ(filterTraces(traces, 0, "").size(), 3u);
    // Kind filter keeps both matvec parts, drops the matmul one.
    EXPECT_EQ(filterTraces(traces, 0, "matvec").size(), 2u);
    EXPECT_EQ(filterTraces(traces, 0, "matmul").size(), 1u);
    EXPECT_EQ(filterTraces(traces, 0, "trisolve").size(), 0u);
    // The gateway part spans 1.0ms→3.0005ms (~2000µs); a 1ms floor
    // keeps only it (the others span 3.5µs).
    std::vector<RequestTrace> slow =
        filterTraces(traces, 1'000, "");
    ASSERT_EQ(slow.size(), 1u);
    EXPECT_EQ(slow[0].tier, TraceTier::Gateway);
}

//---------------------------------------------------------------------
// End-to-end loopback coverage
//---------------------------------------------------------------------

TEST(TraceEndToEnd, LoopbackRequestsStampEveryStage)
{
    const Index s = 8, w = 4;
    const int kRequests = 6;

    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.trace.enabled = true;
    opts.trace.sampleEvery = 1; // commit every request
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    Dense<Scalar> a = randomIntDense(s, s, 1201);
    for (int i = 0; i < kRequests; ++i) {
        ServeRequest req;
        req.engine = "linear";
        req.plan = EnginePlan::matVec(
            a, randomIntVec(s, 1210 + 2 * i),
            randomIntVec(s, 1211 + 2 * i), w);
        NetClient::Result r = client.submit(req);
        ASSERT_TRUE(r.transportOk) << r.transportError;
        ASSERT_TRUE(r.response.ok) << r.response.error;
    }

    // The writer commits just after flushing the response bytes the
    // client already saw — wait out that last sliver.
    std::vector<RequestTrace> traces;
    for (int spin = 0; spin < 200; ++spin) {
        traces = server.traceSnapshot();
        if (traces.size() >= static_cast<std::size_t>(kRequests))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(traces.size(), static_cast<std::size_t>(kRequests));

    for (const RequestTrace &t : traces) {
        SCOPED_TRACE("request " + std::to_string(t.requestId));
        EXPECT_TRUE(t.ok);
        EXPECT_FALSE(t.label.empty());
        std::uint64_t prev = 0;
        for (std::size_t stage = 0; stage < kTraceStages; ++stage) {
            const std::uint64_t at = t.stageNanos[stage];
            EXPECT_GT(at, 0u)
                << "stage " << traceStageName(
                       static_cast<TraceStage>(stage))
                << " never stamped";
            EXPECT_GE(at, prev) << "stages out of order";
            prev = at;
        }
        EXPECT_GT(t.totalMicros(), 0.0);
        EXPECT_EQ(traceSpans(t).size(), kTraceStages - 1);
    }

    // The committed traces round-trip through the exporter validly.
    EXPECT_TRUE(JsonChecker(toChromeTraceJson(traces)).valid());

    // Stage histograms landed in the server's metrics snapshot.
    MetricsSnapshot snap = server.metricsSnapshot();
    EXPECT_EQ(snap.histograms["trace_total_micros"].count,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.histograms["trace_stage_execute_micros"].count,
              static_cast<std::uint64_t>(kRequests));

    server.stop();
}

} // namespace
} // namespace sap
