/**
 * @file
 * Concurrency tests of the serving layer, written to run under
 * ThreadSanitizer (the CI tsan job builds exactly this suite plus
 * test_serve/test_engine with -fsanitize=thread):
 *
 *  - many client threads hammering ONE engine through the server,
 *    all against the same matrix, so the plan-cache fast path and
 *    the shared PreparedPlan are exercised from every thread at
 *    once;
 *  - a mixed-topology request stream across every registered
 *    engine (all three problem kinds);
 *  - direct concurrent runPrepared() calls on one shared prepared
 *    plan, bypassing the server, to pin the engine-level
 *    thread-safety contract.
 *
 * Every result is asserted against the host golden model.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "serve/plan_cache.hh"
#include "serve/server.hh"

namespace sap {
namespace {

TEST(ServeConcurrency, ManyClientThreadsOneEngineOneMatrix)
{
    const Index n = 10, m = 8, w = 3;
    const int kClients = 4;
    const int kRequestsPerClient = 6;

    Dense<Scalar> a = randomIntDense(n, m, 7);

    Server::Options opts;
    opts.threads = 4;
    Server server(opts);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kRequestsPerClient; ++i) {
                std::uint64_t seed =
                    1000 + 100 * static_cast<std::uint64_t>(c) + 2 * i;
                ServeRequest req;
                req.engine = "linear";
                req.plan = EnginePlan::matVec(
                    a, randomIntVec(m, seed),
                    randomIntVec(n, seed + 1), w);
                Vec<Scalar> gold = matVec(a, req.plan.x, req.plan.b);
                ServeResponse resp =
                    server.submit(std::move(req)).get();
                if (!resp.ok ||
                    maxAbsDiff(resp.result.y, gold) != 0.0)
                    ++mismatches;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(mismatches.load(), 0);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kClients *
                                         kRequestsPerClient));
    EXPECT_EQ(stats.failures, 0u);
    // One matrix: one cached plan. Concurrent first requests may
    // each miss before the first insert lands, so the miss count is
    // only bounded by the worker count.
    EXPECT_EQ(server.planCache().size(), 1u);
    EXPECT_GE(stats.planCache.misses, 1u);
    EXPECT_LE(stats.planCache.misses, opts.threads);
    EXPECT_EQ(stats.planCache.hits + stats.planCache.misses,
              stats.requests);
}

TEST(ServeConcurrency, MixedTopologyRequestStream)
{
    const Index n = 6, m = 6, p = 4, w = 2;
    Dense<Scalar> a = randomIntDense(n, m, 17);
    Dense<Scalar> bm = randomIntDense(m, p, 18);
    Dense<Scalar> lt = randomUnitLowerTriangular(n, 19);

    Server::Options opts;
    opts.threads = 4;
    opts.crossCheckAll = true;
    Server server(opts);

    std::vector<std::string> names = engineNames();
    std::vector<std::future<ServeResponse>> futures;
    for (int round = 0; round < 4; ++round) {
        for (const std::string &name : names) {
            auto engine = makeEngine(name);
            ServeRequest req;
            req.engine = name;
            std::uint64_t seed = 300 + 10 * round;
            req.plan = engine->kind() == ProblemKind::MatVec
                ? EnginePlan::matVec(a, randomIntVec(m, seed),
                                     randomIntVec(n, seed + 1), w)
                : engine->kind() == ProblemKind::MatMul
                    ? EnginePlan::matMul(
                          a, bm, randomIntDense(n, p, seed + 2), w)
                    : EnginePlan::triSolve(
                          lt, randomIntVec(n, seed + 3), w);
            futures.push_back(server.submit(std::move(req)));
        }
    }
    for (auto &f : futures) {
        ServeResponse resp = f.get();
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(resp.crossCheckOk);
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.crossCheckFailures, 0u);
    EXPECT_EQ(stats.requests, futures.size());
    // One (matrix, w) binding per engine: one cached plan each
    // (concurrent first requests may duplicate a miss, never an
    // entry).
    EXPECT_EQ(server.planCache().size(), names.size());
    EXPECT_GE(stats.planCache.misses, names.size());
}

TEST(ServeConcurrency, SharedPreparedPlanAcrossRawThreads)
{
    const Index n = 9, m = 7, w = 3;
    const int kThreads = 4;
    Dense<Scalar> a = randomIntDense(n, m, 27);
    auto engine = makeEngine("linear");
    ASSERT_NE(engine, nullptr);

    EnginePlan plan = EnginePlan::matVec(a, Vec<Scalar>(m),
                                         Vec<Scalar>(n), w);
    std::shared_ptr<const PreparedPlan> prepared =
        engine->prepare(plan);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 5; ++i) {
                std::uint64_t seed =
                    500 + 50 * static_cast<std::uint64_t>(t) + 2 * i;
                Vec<Scalar> x = randomIntVec(m, seed);
                Vec<Scalar> b = randomIntVec(n, seed + 1);
                EngineRunResult r = engine->runPrepared(
                    *prepared, EngineInputs::matVec(x, b));
                if (maxAbsDiff(r.y, matVec(a, x, b)) != 0.0)
                    ++mismatches;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeConcurrency, PlanCacheSurvivesConcurrentMixedKeys)
{
    // Concurrent misses on the same key plus churn past capacity:
    // exercises insert-vs-insert races and LRU eviction under load.
    const Index s = 6, w = 3;
    const int kThreads = 4;
    auto engine = makeEngine("linear");
    PlanCache cache(3);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t seed = 1; seed <= 6; ++seed) {
                Dense<Scalar> a = randomIntDense(s, s, seed);
                Vec<Scalar> x = randomIntVec(s, seed + 10);
                Vec<Scalar> b = randomIntVec(s, seed + 20);
                EnginePlan plan = EnginePlan::matVec(a, x, b, w);
                PlanCache::Prepared cached =
                    cache.prepare(*engine, plan);
                EngineRunResult r = engine->runPrepared(
                    *cached.plan, EngineInputs::matVec(x, b));
                if (maxAbsDiff(r.y, matVec(a, x, b)) != 0.0)
                    ++mismatches;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_LE(cache.size(), 3u);
}

} // namespace
} // namespace sap
