/**
 * @file
 * Tests of the cycle-accurate linear contraflow array and its
 * driver: plain band problems, the full DBT plan, the paper's time
 * formula T = 2w·n̄m̄ + 2w − 3, the w-cycle feedback claim, the
 * overlapped (interleaved) mode and PE grouping.
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "dbt/matvec_plan.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "sim/delay_line.hh"
#include "sim/linear_array.hh"

namespace sap {
namespace {

TEST(DelayLine, FixedLatency)
{
    DelayLine line(3);
    EXPECT_EQ(line.depth(), 3);
    // Pushed at t, emerges at t+3.
    std::vector<Sample> out;
    for (int t = 0; t < 8; ++t)
        out.push_back(line.shift(Sample::of(static_cast<Scalar>(t))));
    for (int t = 0; t < 3; ++t)
        EXPECT_FALSE(out[t].valid);
    for (int t = 3; t < 8; ++t) {
        EXPECT_TRUE(out[t].valid);
        EXPECT_EQ(out[t].value, t - 3);
    }
}

TEST(DelayLine, OccupancyCountsValidOnly)
{
    DelayLine line(4);
    line.shift(Sample::of(1));
    line.shift(Sample::bubble());
    line.shift(Sample::of(2));
    EXPECT_EQ(line.occupancy(), 2);
}

TEST(LinearArray, SinglePeMac)
{
    LinearArray arr(1);
    arr.setXIn(Sample::of(3));
    arr.setYIn(Sample::of(10));
    arr.setAIn(0, Sample::of(2));
    arr.step();
    EXPECT_TRUE(arr.yOut().valid);
    EXPECT_EQ(arr.yOut().value, 16); // 10 + 2*3
    EXPECT_EQ(arr.usefulMacs(), 1);
}

TEST(LinearArray, PassThroughWithoutCoefficient)
{
    LinearArray arr(1);
    arr.setXIn(Sample::of(3));
    arr.setYIn(Sample::of(10));
    // No a input: y passes through unchanged.
    arr.step();
    EXPECT_TRUE(arr.yOut().valid);
    EXPECT_EQ(arr.yOut().value, 10);
    EXPECT_EQ(arr.usefulMacs(), 0);
}

TEST(LinearArray, ContraflowTransit)
{
    // A y sample entering PE w-1 reaches the output after w cycles
    // of travel (one compute per PE, no coefficients -> unchanged).
    const Index w = 4;
    LinearArray arr(w);
    arr.setYIn(Sample::of(42));
    arr.step();
    for (Index t = 1; t < w; ++t) {
        EXPECT_FALSE(arr.yOut().valid) << "t=" << t;
        arr.step();
    }
    EXPECT_TRUE(arr.yOut().valid);
    EXPECT_EQ(arr.yOut().value, 42);
}

/** Build a plain upper-band problem spec (no DBT, no feedback). */
struct PlainBand
{
    Band<Scalar> band;
    BandMatVecSpec spec;

    PlainBand(Index rows, Index w, std::uint64_t seed)
        : band(rows, rows + w - 1, 0, w - 1)
    {
        Rng rng(seed);
        for (Index r = 0; r < rows; ++r)
            for (Index d = 0; d < w; ++d)
                band.ref(r, r + d) =
                    static_cast<Scalar>(rng.uniformInt(1, 9));
        spec.abar = &band;
        spec.xbar = randomIntVec(rows + w - 1, seed + 1);
        spec.externalB = randomIntVec(rows, seed + 2);
        spec.bIsExternal.assign(static_cast<std::size_t>(rows), 1);
        spec.yIsFinal.assign(static_cast<std::size_t>(rows), 1);
    }
};

TEST(LinearDriver, PlainBandMatVecMatchesOracle)
{
    for (Index w : {1, 2, 3, 5}) {
        for (Index rows : {w, 2 * w, Index{7}}) {
            PlainBand p(rows, w, 40 + w + rows);
            LinearRunResult r = runBandMatVec(p.spec);
            Dense<Scalar> dense = p.band.toDense();
            Vec<Scalar> expect = matVec(dense, p.spec.xbar,
                                        p.spec.externalB);
            EXPECT_EQ(maxAbsDiff(r.ybar, expect), 0.0)
                << "w=" << w << " rows=" << rows;
        }
    }
}

TEST(LinearDriver, PlanMatchesOracleAcrossShapes)
{
    for (Index n : {3, 5, 6, 9}) {
        for (Index m : {3, 6, 10}) {
            for (Index w : {2, 3, 4}) {
                Dense<Scalar> a =
                    randomIntDense(n, m, 500 + n * 17 + m * 3 + w);
                Vec<Scalar> x = randomIntVec(m, 600 + n + m + w);
                Vec<Scalar> b = randomIntVec(n, 700 + n + m * 5 + w);
                MatVecPlan plan(a, w);
                MatVecPlanResult r = plan.run(x, b);
                EXPECT_EQ(maxAbsDiff(r.y, matVec(a, x, b)), 0.0)
                    << "n=" << n << " m=" << m << " w=" << w;
            }
        }
    }
}

TEST(LinearDriver, TimeFormulaHolds)
{
    // T = 2w·n̄m̄ + 2w − 3, measured by the simulator.
    for (Index w : {1, 2, 3, 4, 5}) {
        for (Index nbar : {1, 2, 3}) {
            for (Index mbar : {1, 2, 4}) {
                Dense<Scalar> a = randomIntDense(nbar * w, mbar * w,
                                                 900 + w);
                Vec<Scalar> x = randomIntVec(mbar * w, 901);
                Vec<Scalar> b = randomIntVec(nbar * w, 902);
                MatVecPlan plan(a, w);
                MatVecPlanResult r = plan.run(x, b);
                EXPECT_EQ(r.stats.cycles,
                          formulas::tMatVec(w, nbar, mbar))
                    << "w=" << w << " n̄=" << nbar << " m̄=" << mbar;
            }
        }
    }
}

TEST(LinearDriver, PaperExampleNeeds39Cycles)
{
    // Fig. 3: n=6, m=9, w=3 -> 39 computational cycles.
    Dense<Scalar> a = randomIntDense(6, 9, 1000);
    MatVecPlan plan(a, 3);
    MatVecPlanResult r = plan.run(randomIntVec(9, 1001),
                                  randomIntVec(6, 1002));
    EXPECT_EQ(r.stats.cycles, 39);
}

TEST(LinearDriver, FeedbackDelayEqualsArraySize)
{
    for (Index w : {2, 3, 5, 8}) {
        Dense<Scalar> a = randomIntDense(2 * w, 2 * w, 1100 + w);
        MatVecPlan plan(a, w);
        MatVecPlanResult r = plan.run(randomIntVec(2 * w, 1),
                                      randomIntVec(2 * w, 2));
        EXPECT_EQ(r.observedFeedbackDelay,
                  formulas::linearFeedbackDelay(w));
        EXPECT_EQ(r.feedbackRegisters,
                  formulas::linearFeedbackRegisters(w));
    }
}

TEST(LinearDriver, UtilizationMatchesFormula)
{
    // Measured utilization (valid MACs / A·T) equals the paper's
    // expression exactly, because both numerator and denominator are
    // integer counts.
    for (Index w : {2, 3, 4}) {
        for (Index nbar : {1, 2, 4}) {
            for (Index mbar : {1, 3}) {
                Dense<Scalar> a = randomIntDense(nbar * w, mbar * w,
                                                 1200 + w);
                MatVecPlan plan(a, w);
                MatVecPlanResult r = plan.run(
                    randomIntVec(mbar * w, 3), randomIntVec(nbar * w, 4));
                EXPECT_NEAR(r.stats.utilization(),
                            formulas::eMatVec(w, nbar, mbar), 1e-12);
            }
        }
    }
}

TEST(LinearDriver, UtilizationApproachesHalf)
{
    // As n̄m̄ grows the plain utilization approaches 1/2 from below.
    Dense<Scalar> a = randomIntDense(24, 24, 1300);
    MatVecPlan plan(a, 3); // n̄m̄ = 64
    MatVecPlanResult r = plan.run(randomIntVec(24, 5),
                                  randomIntVec(24, 6));
    EXPECT_GT(r.stats.utilization(), 0.46);
    EXPECT_LT(r.stats.utilization(), 0.5);
}

TEST(LinearDriver, OverlappedResultCorrectAndFaster)
{
    Dense<Scalar> a = randomIntDense(12, 9, 1400);
    Vec<Scalar> x = randomIntVec(9, 7);
    Vec<Scalar> b = randomIntVec(12, 8);
    MatVecPlan plan(a, 3); // n̄=4, m̄=3
    MatVecPlanResult r = plan.runOverlapped(x, b);
    EXPECT_EQ(maxAbsDiff(r.y, matVec(a, x, b)), 0.0);
    EXPECT_EQ(r.stats.cycles,
              formulas::tMatVecOverlap(3, 4, 3)); // w·n̄m̄ + 2w − 2
}

TEST(LinearDriver, OverlappedUtilizationMatchesFormula)
{
    Dense<Scalar> a = randomIntDense(12, 12, 1500);
    MatVecPlan plan(a, 3); // n̄=4, m̄=4 (even split)
    MatVecPlanResult r = plan.runOverlapped(randomIntVec(12, 9),
                                            randomIntVec(12, 10));
    EXPECT_NEAR(r.stats.utilization(),
                formulas::eMatVecOverlap(3, 4, 4), 1e-12);
    EXPECT_GT(r.stats.utilization(), 0.8);
}

TEST(LinearDriver, TwoIndependentProblemsShareTheArray)
{
    Dense<Scalar> a1 = randomIntDense(6, 6, 1600);
    Dense<Scalar> a2 = randomIntDense(9, 6, 1601);
    Vec<Scalar> x1 = randomIntVec(6, 11), b1 = randomIntVec(6, 12);
    Vec<Scalar> x2 = randomIntVec(6, 13), b2 = randomIntVec(9, 14);
    MatVecPlan p1(a1, 3), p2(a2, 3);
    TwoProblemResult r = runTwoProblems(p1, x1, b1, p2, x2, b2);
    EXPECT_EQ(maxAbsDiff(r.first.y, matVec(a1, x1, b1)), 0.0);
    EXPECT_EQ(maxAbsDiff(r.second.y, matVec(a2, x2, b2)), 0.0);
    // Sharing beats running the two problems back to back.
    Cycle sequential = formulas::tMatVec(3, 2, 2) +
                       formulas::tMatVec(3, 3, 2);
    EXPECT_LT(r.combined.cycles, sequential);
}

TEST(LinearDriver, GroupingIsConflictFreeAndDoublesUtilization)
{
    Dense<Scalar> a = randomIntDense(12, 12, 1700);
    MatVecPlan plan(a, 4);
    GroupedRunResult g = plan.runGroupedPlan(randomIntVec(12, 15),
                                             randomIntVec(12, 16));
    EXPECT_TRUE(g.conflictFree);
    EXPECT_EQ(g.grouped.peCount, 2);
    EXPECT_NEAR(g.grouped.utilization(),
                2.0 * g.logical.stats.utilization(), 1e-12);
}

TEST(LinearDriver, TraceHasTwoCycleSpacing)
{
    Dense<Scalar> a = randomIntDense(6, 9, 1800);
    MatVecPlan plan(a, 3);
    MatVecPlanResult r = plan.run(randomIntVec(9, 17),
                                  randomIntVec(6, 18), true);
    auto xs = r.trace.onPort(Port::XIn);
    ASSERT_EQ(static_cast<Index>(xs.size()), 20); // barCols
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(xs[i].cycle, static_cast<Cycle>(2 * i));
        EXPECT_EQ(xs[i].index, static_cast<Index>(i));
    }
    auto ys = r.trace.onPort(Port::YOut);
    ASSERT_EQ(static_cast<Index>(ys.size()), 18); // barRows
    for (std::size_t i = 1; i < ys.size(); ++i)
        EXPECT_EQ(ys[i].cycle - ys[i - 1].cycle, 2);
    // First b enters at cycle w-1, then externals/feedback alternate
    // per the schedule.
    auto bs = r.trace.onPort(Port::BIn);
    auto fbs = r.trace.onPort(Port::FbIn);
    EXPECT_EQ(bs.size() + fbs.size(), 18u);
    EXPECT_EQ(bs.front().cycle, 2); // w-1
}

TEST(LinearSchedule, DocumentedScheduleProducesOutputsEveryTwoCycles)
{
    // Schedule invariant from linear_driver.hh, exercised directly
    // on the array (no driver): with x_j entering PE 0 at cycle 2j,
    // b̄_i entering PE w−1 at 2i+w−1 and a(i,i+d) firing in PE
    // (w−1−d) at 2i+w−1+d, the output port must deliver ȳ_i exactly
    // after cycle 2i+2w−2 — and stay a bubble on every other cycle,
    // which is the 2-cycle spacing that caps utilization at 1/2.
    const Index w = 3, n = 5;
    const Index cols = n + w - 1;
    Rng rng(515);

    Band<Scalar> band(n, cols, 0, w - 1);
    for (Index i = 0; i < n; ++i)
        for (Index d = 0; d < w; ++d)
            band.ref(i, i + d) = static_cast<Scalar>(rng.uniformInt(1, 9));
    Vec<Scalar> x = randomIntVec(cols, 516);
    Vec<Scalar> b = randomIntVec(n, 517);

    Vec<Scalar> expect(n);
    for (Index i = 0; i < n; ++i) {
        expect[i] = b[i];
        for (Index d = 0; d < w; ++d)
            expect[i] += band.at(i, i + d) * x[i + d];
    }

    LinearArray arr(w);
    const Cycle last = 2 * (n - 1) + 2 * w - 2;
    Index outputs_seen = 0;
    for (Cycle tau = 0; tau <= last; ++tau) {
        if (tau % 2 == 0 && tau / 2 < cols)
            arr.setXIn(Sample::of(x[tau / 2]));
        if ((tau - (w - 1)) % 2 == 0 && tau >= w - 1 &&
            (tau - (w - 1)) / 2 < n)
            arr.setYIn(Sample::of(b[(tau - (w - 1)) / 2]));
        for (Index d = 0; d < w; ++d) {
            Cycle fire = tau - (w - 1) - d;
            if (fire >= 0 && fire % 2 == 0 && fire / 2 < n)
                arr.setAIn(w - 1 - d,
                           Sample::of(band.at(fire / 2, fire / 2 + d)));
        }
        arr.step();

        if (tau >= 2 * w - 2 && (tau - (2 * w - 2)) % 2 == 0) {
            Index i = (tau - (2 * w - 2)) / 2;
            ASSERT_TRUE(arr.yOut().valid) << "tau=" << tau;
            EXPECT_EQ(arr.yOut().value, expect[i]) << "i=" << i;
            ++outputs_seen;
        } else {
            EXPECT_FALSE(arr.yOut().valid)
                << "unexpected output at tau=" << tau;
        }
    }
    EXPECT_EQ(outputs_seen, n);
}

} // namespace
} // namespace sap
