/**
 * @file
 * Tests of the trace tooling: CSV round-trip and the trace-diff
 * helper that makes schedule regressions visible in CI.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "engine/registry.hh"
#include "mat/generate.hh"
#include "sim/trace.hh"

namespace sap {
namespace {

Trace
sampleTrace()
{
    Trace t;
    t.add(0, Port::XIn, 0, 1.5);
    t.add(2, Port::BIn, 1, -3.0);
    t.add(3, Port::FbIn, 2, 0.125);
    t.add(5, Port::YOut, 0, 42.0);
    return t;
}

TEST(TracePorts, NamesRoundTrip)
{
    for (Port p : {Port::XIn, Port::BIn, Port::FbIn, Port::YOut,
                   Port::AIn, Port::CIn, Port::COut}) {
        Port parsed;
        ASSERT_TRUE(portFromName(portName(p), &parsed))
            << portName(p);
        EXPECT_EQ(parsed, p);
    }
    Port dummy;
    EXPECT_FALSE(portFromName("bogus", &dummy));
}

TEST(TraceCsv, SerializesHeaderAndRows)
{
    std::string csv = toCsv(sampleTrace());
    std::istringstream is(csv);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "cycle,port,index,value");
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "0,x_in,0,1.5");
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "2,b_in,1,-3");
}

TEST(TraceCsv, RoundTripsExactly)
{
    Trace original = sampleTrace();
    // Include a value that needs full double precision.
    original.add(7, Port::AIn, 3, 1.0 / 3.0);

    Trace parsed = traceFromCsv(toCsv(original));
    TraceDiff diff = diffTraces(original, parsed);
    EXPECT_TRUE(diff.identical) << (diff.lines.empty()
                                        ? "?"
                                        : diff.lines.front());
    EXPECT_EQ(diff.mismatches, 0u);
}

TEST(TraceCsv, EngineTraceRoundTripsThroughCsv)
{
    // A real schedule off the linear engine, not a synthetic one.
    const Index n = 6, m = 6, w = 3;
    EnginePlan plan = EnginePlan::matVec(randomIntDense(n, m, 31),
                                         randomIntVec(m, 32),
                                         randomIntVec(n, 33), w);
    plan.recordTrace = true;
    EngineRunResult r = makeEngine("linear")->run(plan);
    ASSERT_FALSE(r.trace.empty());

    Trace parsed = traceFromCsv(toCsv(r.trace));
    EXPECT_TRUE(diffTraces(r.trace, parsed).identical);
    EXPECT_EQ(parsed.events().size(), r.trace.events().size());
}

TEST(TraceDiff, ReportsValueAndLengthMismatches)
{
    Trace expected = sampleTrace();

    // A changed value at one position.
    Trace tweaked;
    for (const TraceEvent &e : expected.events())
        tweaked.add(e.cycle, e.port, e.index,
                    e.index == 2 ? e.value + 1 : e.value);
    TraceDiff value_diff = diffTraces(expected, tweaked);
    EXPECT_FALSE(value_diff.identical);
    EXPECT_EQ(value_diff.mismatches, 1u);
    ASSERT_EQ(value_diff.lines.size(), 1u);
    EXPECT_NE(value_diff.lines[0].find("event 2"), std::string::npos);

    // A missing trailing event.
    Trace shorter;
    for (std::size_t i = 0; i + 1 < expected.events().size(); ++i) {
        const TraceEvent &e = expected.events()[i];
        shorter.add(e.cycle, e.port, e.index, e.value);
    }
    TraceDiff length_diff = diffTraces(expected, shorter);
    EXPECT_FALSE(length_diff.identical);
    EXPECT_EQ(length_diff.mismatches, 1u);
    EXPECT_NE(length_diff.lines.back().find("length"),
              std::string::npos);

    // Reordered events are a schedule change, not a match.
    Trace reordered;
    for (auto it = expected.events().rbegin();
         it != expected.events().rend(); ++it)
        reordered.add(it->cycle, it->port, it->index, it->value);
    EXPECT_FALSE(diffTraces(expected, reordered).identical);
}

TEST(TraceDiff, CapsReportedLinesOnTotalDivergence)
{
    Trace a, b;
    for (Index i = 0; i < 100; ++i) {
        a.add(i, Port::XIn, i, 1.0);
        b.add(i, Port::XIn, i, 2.0);
    }
    TraceDiff diff = diffTraces(a, b);
    EXPECT_EQ(diff.mismatches, 100u);
    EXPECT_LE(diff.lines.size(), 16u);
}

} // namespace
} // namespace sap
