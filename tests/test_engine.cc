/**
 * @file
 * Tests of the unified engine layer: registry behavior, the shared
 * harness that drives every topology through one code path, and the
 * property-style cross-check of the simulators against the naive
 * golden models.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/random.hh"
#include "baseline/naive_band.hh"
#include "engine/engine.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

namespace sap {
namespace {

TEST(EngineRegistry, BuiltinsRegistered)
{
    std::vector<std::string> names = engineNames();
    for (const char *expected :
         {"linear", "grouped", "overlapped", "no-feedback", "hex",
          "spiral", "mesh", "tri"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing builtin engine " << expected;
    }
}

TEST(EngineRegistry, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeEngine("no-such-topology"), nullptr);
}

TEST(EngineRegistry, EnginesReportTheirRegisteredName)
{
    for (const std::string &name : engineNames()) {
        auto engine = makeEngine(name);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->name(), name);
        EXPECT_FALSE(engine->description().empty());
    }
}

TEST(EngineRegistry, KindFilterPartitionsTheNames)
{
    std::vector<std::string> mv = engineNames(ProblemKind::MatVec);
    std::vector<std::string> mm = engineNames(ProblemKind::MatMul);
    std::vector<std::string> ts = engineNames(ProblemKind::TriSolve);
    EXPECT_EQ(mv.size() + mm.size() + ts.size(),
              engineNames().size());
    for (const std::string &name : mv)
        EXPECT_EQ(makeEngine(name)->kind(), ProblemKind::MatVec);
    for (const std::string &name : mm)
        EXPECT_EQ(makeEngine(name)->kind(), ProblemKind::MatMul);
    for (const std::string &name : ts)
        EXPECT_EQ(makeEngine(name)->kind(), ProblemKind::TriSolve);
}

TEST(EngineRegistry, EveryProblemKindHasAnEngine)
{
    // The acceptance criterion of the multi-problem registry: each
    // kind enumerates at least one engine, and the §4 triangular
    // solver is reachable by name.
    EXPECT_GE(engineNames(ProblemKind::MatVec).size(), 4u);
    EXPECT_GE(engineNames(ProblemKind::MatMul).size(), 3u);
    std::vector<std::string> ts = engineNames(ProblemKind::TriSolve);
    EXPECT_NE(std::find(ts.begin(), ts.end(), "tri"), ts.end());
}

TEST(EngineRegistry, CustomEngineCanBeRegisteredAndReplaced)
{
    class Fake : public SystolicEngine
    {
      public:
        std::string name() const override { return "fake"; }
        ProblemKind kind() const override { return ProblemKind::MatVec; }
        std::string description() const override { return "fake"; }
        EngineRunResult
        run(const EnginePlan &) const override
        {
            return {};
        }
    };
    registerEngine("fake", [] { return std::make_unique<Fake>(); });
    auto engine = makeEngine("fake");
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), "fake");
}

/**
 * The acceptance-criterion test: every registered topology runs the
 * same problem through the identical SystolicEngine::run() harness
 * and must reproduce the host oracle bit-exactly (integer workloads
 * are exact in double precision).
 */
TEST(EngineHarness, AllTopologiesMatchOracleThroughOneHarness)
{
    const Index n = 9, m = 7, p = 6, w = 3;
    Dense<Scalar> a = randomIntDense(n, m, /*seed=*/101);
    Vec<Scalar> x = randomIntVec(m, 102);
    Vec<Scalar> b = randomIntVec(n, 103);
    Dense<Scalar> bm = randomIntDense(m, p, 104);
    Dense<Scalar> e = randomIntDense(n, p, 105);
    // Unit diagonal keeps the forward substitution exact in double.
    Dense<Scalar> lt = randomUnitLowerTriangular(n, 106);
    Vec<Scalar> rhs = randomIntVec(n, 107);

    Vec<Scalar> y_gold = matVec(a, x, b);
    Dense<Scalar> c_gold = matMulAdd(a, bm, e);
    Vec<Scalar> t_gold = forwardSolve(lt, rhs);

    EnginePlan mv_plan = EnginePlan::matVec(a, x, b, w);
    EnginePlan mm_plan = EnginePlan::matMul(a, bm, e, w);
    EnginePlan ts_plan = EnginePlan::triSolve(lt, rhs, w);

    std::size_t ran = 0;
    for (const std::string &name : engineNames()) {
        if (name == "fake")
            continue; // installed by the registration test
        SCOPED_TRACE("engine " + name);
        auto engine = makeEngine(name);
        ASSERT_NE(engine, nullptr);

        const EnginePlan &plan =
            engine->kind() == ProblemKind::MatVec   ? mv_plan
            : engine->kind() == ProblemKind::MatMul ? mm_plan
                                                    : ts_plan;
        EngineRunResult r = engine->run(plan);
        ++ran;

        if (engine->kind() == ProblemKind::MatMul) {
            ASSERT_EQ(r.c.rows(), c_gold.rows());
            ASSERT_EQ(r.c.cols(), c_gold.cols());
            EXPECT_TRUE(r.c == c_gold);
        } else {
            const Vec<Scalar> &gold =
                engine->kind() == ProblemKind::MatVec ? y_gold
                                                      : t_gold;
            ASSERT_EQ(r.y.size(), gold.size());
            EXPECT_EQ(maxAbsDiff(r.y, gold), 0.0);
        }

        // Uniform audit contract: vacuously true where not
        // applicable, measured where it is.
        EXPECT_TRUE(r.conflictFree);
        EXPECT_TRUE(r.topologyRespected);
        EXPECT_GT(r.stats.usefulMacs, 0);
        EXPECT_GT(r.stats.peCount, 0);
        EXPECT_GT(r.stats.utilization(), 0.0);
    }
    EXPECT_GE(ran, 8u);
}

TEST(EngineHarness, LinearFamilyReportsPaperFeedbackDepth)
{
    const Index n = 8, m = 8, w = 4;
    Dense<Scalar> a = randomIntDense(n, m, 7);
    EnginePlan plan = EnginePlan::matVec(a, randomIntVec(m, 8),
                                         randomIntVec(n, 9), w);
    for (const char *name : {"linear", "grouped", "overlapped"}) {
        SCOPED_TRACE(name);
        EngineRunResult r = makeEngine(name)->run(plan);
        EXPECT_EQ(r.feedbackRegisters, w);
        EXPECT_EQ(r.feedbackDelay, w);
    }
}

TEST(EngineHarness, TraceIsRecordedOnRequest)
{
    const Index n = 6, m = 6, w = 3;
    Dense<Scalar> a = randomIntDense(n, m, 21);
    EnginePlan plan = EnginePlan::matVec(a, randomIntVec(m, 22),
                                         randomIntVec(n, 23), w);
    plan.recordTrace = true;
    EngineRunResult r = makeEngine("linear")->run(plan);
    EXPECT_FALSE(r.trace.empty());
    EXPECT_FALSE(r.trace.onPort(Port::XIn).empty());

    plan.recordTrace = false;
    EngineRunResult quiet = makeEngine("linear")->run(plan);
    EXPECT_TRUE(quiet.trace.empty());

    // The mesh and tri engines record traces too; the hex family is
    // the documented remaining gap (empty trace even when asked).
    EnginePlan mm = EnginePlan::matMul(randomIntDense(4, 4, 24),
                                       randomIntDense(4, 4, 25), 2);
    mm.recordTrace = true;
    EXPECT_TRUE(makeEngine("hex")->run(mm).trace.empty());
    EngineRunResult mesh = makeEngine("mesh")->run(mm);
    EXPECT_FALSE(mesh.trace.empty());
    EXPECT_FALSE(mesh.trace.onPort(Port::COut).empty());

    EnginePlan ts = EnginePlan::triSolve(
        randomUnitLowerTriangular(5, 26), randomIntVec(5, 27), 2);
    ts.recordTrace = true;
    EngineRunResult tri = makeEngine("tri")->run(ts);
    EXPECT_FALSE(tri.trace.empty());
    EXPECT_EQ(tri.trace.onPort(Port::YOut).size(), 6u); // padded n̄·w
}

/** Dense matrix that is banded: zero outside [−sub, +super]. */
Dense<Scalar>
randomBandedDense(Index n, Index m, Index sub, Index super, Rng &rng)
{
    Dense<Scalar> a(n, m);
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < m; ++j) {
            Index off = j - i;
            if (off >= -sub && off <= super)
                a(i, j) = static_cast<Scalar>(rng.uniformInt(1, 9));
        }
    }
    return a;
}

/**
 * Property-style cross-check (satellite): for random band matrices
 * the engine-driven linear array must bit-match both the host
 * oracle and the naive dense-as-band golden model from
 * src/baseline/, and the hex array must bit-match the mat-mul
 * oracle. Seeded via base/random.hh for reproducibility.
 */
TEST(EngineCrossCheck, RandomBandMatricesMatchNaiveGoldenModel)
{
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 12; ++trial) {
        const Index n = rng.uniformInt(3, 12);
        const Index m = rng.uniformInt(3, 12);
        const Index sub = rng.uniformInt(0, n - 1);
        const Index super = rng.uniformInt(0, m - 1);
        const Index w = rng.uniformInt(2, 5);
        SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                     std::to_string(n) + "x" + std::to_string(m) +
                     " band(-" + std::to_string(sub) + ",+" +
                     std::to_string(super) + ") w=" +
                     std::to_string(w));

        Dense<Scalar> a = randomBandedDense(n, m, sub, super, rng);
        Vec<Scalar> x = randomIntVec(m, 1000 + trial);
        Vec<Scalar> b = randomIntVec(n, 2000 + trial);
        Vec<Scalar> y_gold = matVec(a, x, b);

        // Golden model: the size-dependent naive band embedding.
        Vec<Scalar> y_naive;
        runNaiveBand(a, x, b, w, &y_naive);
        ASSERT_EQ(y_naive.size(), y_gold.size());
        EXPECT_EQ(maxAbsDiff(y_naive, y_gold), 0.0);

        // Linear engine on the fixed-w array: must bit-match.
        EngineRunResult lin =
            makeEngine("linear")->run(EnginePlan::matVec(a, x, b, w));
        EXPECT_EQ(maxAbsDiff(lin.y, y_gold), 0.0);

        // Hex engine squaring the band against a random band B.
        Dense<Scalar> bmat =
            randomBandedDense(m, n, super, sub, rng);
        Dense<Scalar> c_gold = matMul(a, bmat);
        EngineRunResult hex =
            makeEngine("hex")->run(EnginePlan::matMul(a, bmat, w));
        EXPECT_TRUE(hex.c == c_gold);
    }
}

} // namespace
} // namespace sap
