/**
 * @file
 * obs/ metrics tests: histogram bucket geometry, exact cross-shard
 * merge (equals-union and associativity, bucket by bucket), quantile
 * accuracy against exact sample quantiles, gauge aggregation rules,
 * Prometheus rendering, and the live serving instrumentation — every
 * layer's counters plus the measured-vs-formula drift gauge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "base/random.hh"
#include "cluster/cluster.hh"
#include "mat/generate.hh"
#include "obs/metrics.hh"

namespace sap {
namespace {

//---------------------------------------------------------------------
// Bucket geometry
//---------------------------------------------------------------------

TEST(HistBuckets, DegenerateValuesLandInUnderflow)
{
    EXPECT_EQ(histBucketOf(0.0), 0u);
    EXPECT_EQ(histBucketOf(-1.0), 0u);
    EXPECT_EQ(histBucketOf(kHistMinValue / 2), 0u);
    EXPECT_EQ(histBucketOf(std::nan("")), 0u);
}

TEST(HistBuckets, BoundariesAreInclusiveUpper)
{
    // kHistMinValue is the underflow bucket's upper bound; anything
    // at or above it is geometric.
    EXPECT_EQ(histBucketOf(kHistMinValue), 1u);
    for (std::size_t i : {std::size_t(1), std::size_t(7),
                          std::size_t(40), std::size_t(200),
                          kHistGeomBuckets}) {
        const double upper = histBucketUpper(i);
        EXPECT_EQ(histBucketOf(upper), i) << "at bucket " << i;
        EXPECT_EQ(histBucketOf(upper * (1 + 1e-9)),
                  std::min(i + 1, kHistGeomBuckets + 1))
            << "just above bucket " << i;
    }
}

TEST(HistBuckets, HugeValuesLandInOverflow)
{
    EXPECT_EQ(histBucketOf(1e18), kHistBuckets - 1);
    EXPECT_EQ(histBucketOf(std::numeric_limits<double>::infinity()),
              kHistBuckets - 1);
}

TEST(HistBuckets, LowerBoundIsPreviousUpper)
{
    EXPECT_EQ(histBucketLower(0), 0.0);
    for (std::size_t i = 1; i < kHistBuckets; ++i)
        EXPECT_EQ(histBucketLower(i), histBucketUpper(i - 1));
}

TEST(HistBuckets, EveryValueLandsInsideItsBucket)
{
    Rng rng(901);
    for (int k = 0; k < 2000; ++k) {
        // Log-uniform over the full geometric range.
        const double v =
            kHistMinValue * std::exp(rng.uniformReal(0.0, 20.0));
        const std::size_t b = histBucketOf(v);
        EXPECT_GT(v, histBucketLower(b) * (1 - 1e-12));
        EXPECT_LE(v, histBucketUpper(b) * (1 + 1e-12));
    }
}

//---------------------------------------------------------------------
// Merge: exact, associative, equals-union
//---------------------------------------------------------------------

std::vector<double>
drawSamples(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<double> v;
    for (int i = 0; i < n; ++i)
        v.push_back(std::exp(rng.uniformReal(-6.0, 14.0)));
    return v;
}

HistogramSnapshot
snapshotOf(const std::vector<double> &samples)
{
    Histogram h;
    for (double v : samples)
        h.record(v);
    return h.snapshot();
}

void
expectSameHistogram(const HistogramSnapshot &a,
                    const HistogramSnapshot &b)
{
    EXPECT_EQ(a.count, b.count);
    // Sums accumulate in different orders on the two paths, so they
    // agree only up to floating-point associativity.
    EXPECT_NEAR(a.sum, b.sum, 1e-9 * std::max(std::abs(a.sum), 1.0));
    EXPECT_DOUBLE_EQ(a.min, b.min);
    EXPECT_DOUBLE_EQ(a.max, b.max);
    ASSERT_EQ(a.bucketIndex.size(), b.bucketIndex.size());
    for (std::size_t i = 0; i < a.bucketIndex.size(); ++i) {
        EXPECT_EQ(a.bucketIndex[i], b.bucketIndex[i]);
        EXPECT_EQ(a.bucketCount[i], b.bucketCount[i]);
    }
}

TEST(HistMerge, MergeEqualsUnionOfSamples)
{
    std::vector<double> s1 = drawSamples(910, 500);
    std::vector<double> s2 = drawSamples(911, 300);

    HistogramSnapshot merged = snapshotOf(s1);
    merged.merge(snapshotOf(s2));

    std::vector<double> all = s1;
    all.insert(all.end(), s2.begin(), s2.end());
    expectSameHistogram(merged, snapshotOf(all));
}

TEST(HistMerge, MergeIsAssociative)
{
    HistogramSnapshot a = snapshotOf(drawSamples(920, 200));
    HistogramSnapshot b = snapshotOf(drawSamples(921, 150));
    HistogramSnapshot c = snapshotOf(drawSamples(922, 250));

    HistogramSnapshot left = a;
    left.merge(b);
    left.merge(c);

    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot right = a;
    right.merge(bc);

    expectSameHistogram(left, right);
}

TEST(HistMerge, MergeWithEmptyIsIdentity)
{
    HistogramSnapshot a = snapshotOf(drawSamples(930, 100));
    HistogramSnapshot before = a;
    a.merge(HistogramSnapshot{});
    expectSameHistogram(a, before);

    HistogramSnapshot empty;
    empty.merge(before);
    expectSameHistogram(empty, before);
}

//---------------------------------------------------------------------
// Quantiles
//---------------------------------------------------------------------

double
exactQuantile(std::vector<double> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

TEST(HistQuantile, TracksExactQuantilesWithinBucketResolution)
{
    // One bucket is ~9% wide, so the histogram quantile must land
    // within ~one bucket of the exact sample quantile.
    for (std::uint64_t seed : {940u, 941u, 942u}) {
        std::vector<double> samples = drawSamples(seed, 10000);
        HistogramSnapshot snap = snapshotOf(samples);
        for (double q : {0.5, 0.9, 0.99}) {
            const double exact = exactQuantile(samples, q);
            const double est = snap.quantile(q);
            EXPECT_NEAR(est / exact, 1.0, 0.12)
                << "q=" << q << " seed=" << seed;
        }
    }
}

TEST(HistQuantile, MergedQuantileEqualsUnionQuantile)
{
    std::vector<double> s1 = drawSamples(950, 4000);
    std::vector<double> s2 = drawSamples(951, 6000);
    HistogramSnapshot merged = snapshotOf(s1);
    merged.merge(snapshotOf(s2));

    std::vector<double> all = s1;
    all.insert(all.end(), s2.begin(), s2.end());
    HistogramSnapshot whole = snapshotOf(all);

    for (double q : {0.25, 0.5, 0.75, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q));
}

TEST(HistQuantile, ClampsToObservedRange)
{
    HistogramSnapshot snap = snapshotOf({5.0, 5.1, 5.2});
    EXPECT_GE(snap.quantile(0.0), snap.min);
    EXPECT_LE(snap.quantile(1.0), snap.max);
    EXPECT_EQ(snapshotOf({42.0}).quantile(0.5), 42.0);
    EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
}

//---------------------------------------------------------------------
// Counters, gauges, registries
//---------------------------------------------------------------------

TEST(Metrics, GaugesFollowTheirAggregationRule)
{
    MetricsSnapshot a;
    a.gauges["depth"] = {3.0, GaugeAgg::Sum};
    a.gauges["drift"] = {0.10, GaugeAgg::Max};
    MetricsSnapshot b;
    b.gauges["depth"] = {4.0, GaugeAgg::Sum};
    b.gauges["drift"] = {0.03, GaugeAgg::Max};

    MetricsSnapshot merged = mergeMetrics({a, b});
    EXPECT_DOUBLE_EQ(merged.gauges["depth"].value, 7.0);
    EXPECT_DOUBLE_EQ(merged.gauges["drift"].value, 0.10);
}

TEST(Metrics, CountersAddAcrossParts)
{
    MetricsSnapshot a, b;
    a.counters["reqs"] = 5;
    b.counters["reqs"] = 7;
    b.counters["only_b"] = 2;
    MetricsSnapshot merged = mergeMetrics({a, b});
    EXPECT_EQ(merged.counters["reqs"], 12u);
    EXPECT_EQ(merged.counters["only_b"], 2u);
}

TEST(Metrics, RegistryReturnsStableInstruments)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("x_total");
    Counter &c2 = reg.counter("x_total");
    EXPECT_EQ(&c1, &c2);
    c1.add(3);
    c2.add();

    reg.gauge("g", GaugeAgg::Max).setMax(2.5);
    reg.gauge("g").setMax(1.0); // below current: no change
    reg.histogram("h_micros").record(10.0);

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters["x_total"], 4u);
    EXPECT_DOUBLE_EQ(snap.gauges["g"].value, 2.5);
    EXPECT_EQ(snap.gauges["g"].agg, GaugeAgg::Max);
    EXPECT_EQ(snap.histograms["h_micros"].count, 1u);
}

TEST(Metrics, RenderPrometheusIsWellFormed)
{
    MetricsRegistry reg;
    reg.counter("reqs_total").add(9);
    reg.gauge("depth").set(2);
    Histogram &h = reg.histogram("lat_micros");
    for (double v : {1.0, 2.0, 4.0, 400.0})
        h.record(v);

    const std::string text = renderPrometheus(reg.snapshot());
    EXPECT_NE(text.find("# TYPE reqs_total counter\nreqs_total 9\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE depth gauge\ndepth 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE lat_micros histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_micros_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_micros_count 4\n"), std::string::npos);
    EXPECT_NE(text.find("lat_micros_sum 407\n"), std::string::npos);
}

//---------------------------------------------------------------------
// Live serving instrumentation
//---------------------------------------------------------------------

ServeRequest
linearRequest(Index s, Index w, std::uint64_t seed,
              const Dense<Scalar> &a)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(a, randomIntVec(s, seed),
                                  randomIntVec(s, seed + 1), w);
    return req;
}

TEST(ServingMetrics, EveryLayerCountsAndDriftIsBounded)
{
    const Index s = 16, w = 4;
    const int kRequests = 12;

    Cluster::Options opts;
    opts.shards = 2;
    opts.threadsPerShard = 2;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(s, s, 961);
    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(cluster.submit(linearRequest(
            s, w, 970 + 2 * static_cast<std::uint64_t>(i), a)));
    for (auto &f : futures)
        ASSERT_TRUE(f.get().ok);

    MetricsSnapshot snap = cluster.metricsSnapshot();
    EXPECT_EQ(snap.counters["serve_requests_total"],
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.counters["serve_mode_simulate_total"],
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.counters["serve_failures_total"], 0u);
    // Same matrix every time: 1 miss (first request on the owning
    // shard), the rest hits.
    EXPECT_EQ(snap.counters["plan_cache_hits_total"] +
                  snap.counters["plan_cache_misses_total"],
              static_cast<std::uint64_t>(kRequests));
    EXPECT_GE(snap.counters["plan_cache_hits_total"],
              static_cast<std::uint64_t>(kRequests - 2));

    // All served: the queue is empty again (Sum gauge across shards).
    EXPECT_DOUBLE_EQ(snap.gauges["serve_queue_depth"].value, 0.0);

    // Latency and queue-wait histograms saw every request.
    EXPECT_EQ(snap.histograms["serve_latency_micros"].count,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.histograms["serve_queue_wait_micros"].count,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_GT(snap.histograms["serve_latency_micros"].sum, 0.0);

    // The linear engine's measured cycles match the paper's closed
    // form exactly, so the worst-case drift gauge must stay at zero.
    ASSERT_NE(snap.gauges.find("serve_cycles_formula_drift"),
              snap.gauges.end());
    EXPECT_EQ(snap.gauges["serve_cycles_formula_drift"].agg,
              GaugeAgg::Max);
    EXPECT_NEAR(snap.gauges["serve_cycles_formula_drift"].value, 0.0,
                1e-12);
}

TEST(ServingMetrics, FailedRequestsCount)
{
    Cluster cluster(Cluster::Options{});
    ServeRequest req;
    req.engine = "no-such-engine";
    req.plan = EnginePlan::matVec(randomIntDense(4, 4, 980),
                                  randomIntVec(4, 981),
                                  randomIntVec(4, 982), 2);
    EXPECT_FALSE(cluster.submit(std::move(req)).get().ok);

    MetricsSnapshot snap = cluster.metricsSnapshot();
    EXPECT_EQ(snap.counters["serve_failures_total"], 1u);
}

TEST(ServingMetrics, DisabledMetricsYieldEmptySnapshot)
{
    Cluster::Options opts;
    opts.metrics = false;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(8, 8, 990);
    ASSERT_TRUE(
        cluster.submit(linearRequest(8, 4, 991, a)).get().ok);

    MetricsSnapshot snap = cluster.metricsSnapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
}

//---------------------------------------------------------------------
// Interval deltas (the flight recorder / --watch math) and the edge
// cases per-interval subtraction surfaces.
//---------------------------------------------------------------------

TEST(HistDelta, QuantileOfEmptyHistogramIsZero)
{
    HistogramSnapshot empty;
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.quantile(0.0), 0.0);
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.quantile(1.0), 0.0);

    // Delta of identical snapshots is empty — and still quantiles to
    // 0 rather than dividing by a zero count.
    Histogram h;
    for (int i = 0; i < 50; ++i)
        h.record(100.0 + i);
    HistogramSnapshot snap = h.snapshot();
    HistogramSnapshot delta = histogramDelta(snap, snap);
    EXPECT_EQ(delta.count, 0u);
    EXPECT_EQ(delta.quantile(0.99), 0.0);
}

TEST(HistDelta, DeltaEqualsTheIntervalSamples)
{
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(10.0);
    HistogramSnapshot before = h.snapshot();
    for (int i = 0; i < 100; ++i)
        h.record(1000.0);
    HistogramSnapshot after = h.snapshot();

    HistogramSnapshot delta = histogramDelta(after, before);
    EXPECT_EQ(delta.count, 100u);
    EXPECT_NEAR(delta.sum, 100.0 * 1000.0, 1e-9);
    // The interval held only ~1000us samples; its quantiles must not
    // see the earlier 10us population.
    EXPECT_GT(delta.quantile(0.01), 500.0);
    EXPECT_LT(delta.quantile(0.99), 1200.0);
}

TEST(HistDelta, ShrunkenCountsClampInsteadOfUnderflowing)
{
    Histogram big;
    for (int i = 0; i < 10; ++i)
        big.record(50.0);
    Histogram small;
    for (int i = 0; i < 3; ++i)
        small.record(50.0);

    // "now" has fewer samples than "prev": a restarted source. The
    // delta clamps at now's counts bucket-wise.
    HistogramSnapshot delta =
        histogramDelta(small.snapshot(), big.snapshot());
    EXPECT_EQ(delta.count, 0u);
    EXPECT_GE(delta.sum, 0.0);
}

TEST(MetricsDelta, AppearingAndDisappearingMetrics)
{
    MetricsSnapshot prev;
    prev.counters["stays"] = 10;
    prev.counters["vanishes"] = 7;
    Histogram ph;
    ph.record(5.0);
    prev.histograms["old_hist"] = ph.snapshot();

    MetricsSnapshot now;
    now.counters["stays"] = 25;
    now.counters["appears"] = 4;
    Histogram nh;
    nh.record(6.0);
    now.histograms["new_hist"] = nh.snapshot();
    now.gauges["depth"] = GaugeValue{3.5, GaugeAgg::Sum};

    MetricsSnapshot delta = metricsDelta(now, prev);
    EXPECT_EQ(delta.counters["stays"], 15u);
    // Appeared mid-interval: its whole value is this interval's.
    EXPECT_EQ(delta.counters["appears"], 4u);
    // Disappeared: omitted, not emitted as zero or underflowed.
    EXPECT_EQ(delta.counters.count("vanishes"), 0u);
    EXPECT_EQ(delta.histograms.count("old_hist"), 0u);
    EXPECT_EQ(delta.histograms["new_hist"].count, 1u);
    // Gauges pass through their current value.
    EXPECT_EQ(delta.gauges["depth"].value, 3.5);
}

TEST(MetricsDelta, CounterResetClampsToNowValue)
{
    MetricsSnapshot prev, now;
    prev.counters["c"] = 1000;
    now.counters["c"] = 42; // restarted process
    EXPECT_EQ(metricsDelta(now, prev).counters["c"], 42u);
}

//---------------------------------------------------------------------
// Prometheus label rendering (exposition-format escaping rules).
//---------------------------------------------------------------------

TEST(Metrics, RenderPrometheusEscapesLabelValues)
{
    MetricsSnapshot snap;
    snap.counters["requests_total"] = 3;
    Histogram h;
    h.record(2.0);
    snap.histograms["latency_micros"] = h.snapshot();

    std::map<std::string, std::string> labels;
    labels["instance"] = "array \"7\"";
    labels["path"] = "C:\\data\nnext";

    const std::string text = renderPrometheus(snap, labels);
    // `"` → `\"`, `\` → `\\`, newline → `\n`, per the exposition
    // format's label-value escaping rules.
    EXPECT_NE(text.find("instance=\"array \\\"7\\\"\""),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("path=\"C:\\\\data\\nnext\""),
              std::string::npos)
        << text;
    // No raw newline may survive inside any sample line.
    for (std::size_t at = text.find("path=");
         at != std::string::npos; at = text.find("path=", at + 1)) {
        const std::size_t eol = text.find('\n', at);
        ASSERT_NE(eol, std::string::npos);
        EXPECT_NE(text.substr(at, eol - at).find("\\n"),
                  std::string::npos);
    }
    // Histogram bucket lines merge the shared labels with `le`.
    EXPECT_NE(text.find("latency_micros_bucket{instance="),
              std::string::npos)
        << text;
    EXPECT_NE(text.find(",le=\""), std::string::npos) << text;
    // And the labelless overload still renders the plain form.
    const std::string plain = renderPrometheus(snap);
    EXPECT_NE(plain.find("requests_total 3"), std::string::npos);
}

} // namespace
} // namespace sap
