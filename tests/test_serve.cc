/**
 * @file
 * Tests of the serving layer: matrix fingerprints, the
 * content-addressed plan cache (hit/miss/eviction/collision), the
 * batched runMany() APIs with the golden-model cross-check, and the
 * Server front end's request/response and statistics contract.
 */

#include <gtest/gtest.h>

#include <future>

#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "serve/batch.hh"
#include "serve/fingerprint.hh"
#include "serve/plan_cache.hh"
#include "serve/server.hh"

namespace sap {
namespace {

//---------------------------------------------------------------------
// Fingerprints.
//---------------------------------------------------------------------

TEST(Fingerprint, DeterministicAndContentSensitive)
{
    Dense<Scalar> a = randomIntDense(6, 5, 1);
    Dense<Scalar> same = a;
    EXPECT_EQ(fingerprintDense(a), fingerprintDense(same));

    Dense<Scalar> flipped = a;
    flipped(2, 3) += 1;
    EXPECT_NE(fingerprintDense(a), fingerprintDense(flipped));
}

TEST(Fingerprint, ShapeIsPartOfTheIdentity)
{
    // Same bytes, different shape: a 2x3 and a 3x2 of equal data.
    Dense<Scalar> wide(2, 3), tall(3, 2);
    for (Index i = 0; i < 6; ++i) {
        wide(i / 3, i % 3) = static_cast<Scalar>(i + 1);
        tall(i / 2, i % 2) = static_cast<Scalar>(i + 1);
    }
    EXPECT_NE(fingerprintDense(wide), fingerprintDense(tall));
}

TEST(Fingerprint, VectorAndStringDigests)
{
    Vec<Scalar> v{1, 2, 3};
    Vec<Scalar> w{1, 2, 4};
    EXPECT_NE(fingerprintVec(v), fingerprintVec(w));
    EXPECT_NE(fingerprintString("linear"), fingerprintString("hex"));
    EXPECT_NE(combineDigests(1, 2), combineDigests(2, 1));
}

//---------------------------------------------------------------------
// PlanCache.
//---------------------------------------------------------------------

TEST(PlanCache, HitOnRepeatedMatrixMissOnNewOne)
{
    auto engine = makeEngine("linear");
    ASSERT_NE(engine, nullptr);
    PlanCache cache(8);

    Dense<Scalar> a = randomIntDense(8, 8, 11);
    EnginePlan plan = EnginePlan::matVec(a, randomIntVec(8, 12),
                                         randomIntVec(8, 13), 4);

    PlanCache::Prepared first = cache.prepare(*engine, plan);
    EXPECT_FALSE(first.hit);
    PlanCache::Prepared second = cache.prepare(*engine, plan);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(first.plan.get(), second.plan.get());

    // A different matrix must miss even with identical shape/w.
    EnginePlan other = EnginePlan::matVec(randomIntDense(8, 8, 99),
                                          plan.x, plan.b, 4);
    EXPECT_FALSE(cache.prepare(*engine, other).hit);

    PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, DifferentEnginesAndWidthsDoNotShare)
{
    PlanCache cache(8);
    Dense<Scalar> a = randomIntDense(6, 6, 21);
    EnginePlan w2 = EnginePlan::matVec(a, randomIntVec(6, 22),
                                       randomIntVec(6, 23), 2);
    EnginePlan w3 = EnginePlan::matVec(a, w2.x, w2.b, 3);

    auto linear = makeEngine("linear");
    auto grouped = makeEngine("grouped");
    EXPECT_FALSE(cache.prepare(*linear, w2).hit);
    EXPECT_FALSE(cache.prepare(*linear, w3).hit);
    EXPECT_FALSE(cache.prepare(*grouped, w2).hit);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_TRUE(cache.prepare(*grouped, w2).hit);
}

TEST(PlanCache, LruEviction)
{
    auto engine = makeEngine("linear");
    PlanCache cache(2);
    auto planFor = [](std::uint64_t seed) {
        Dense<Scalar> a = randomIntDense(6, 6, seed);
        return EnginePlan::matVec(a, randomIntVec(6, 1),
                                  randomIntVec(6, 2), 3);
    };

    EnginePlan p1 = planFor(1), p2 = planFor(2), p3 = planFor(3);
    cache.prepare(*engine, p1);
    cache.prepare(*engine, p2);
    cache.prepare(*engine, p1); // p1 now most recent
    cache.prepare(*engine, p3); // evicts p2 (least recent)
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    EXPECT_TRUE(cache.prepare(*engine, p1).hit);
    EXPECT_FALSE(cache.prepare(*engine, p2).hit); // was evicted
}

TEST(PlanCache, FingerprintCollisionsResolveToDistinctPlans)
{
    // Degenerate hash: every matrix collides. The cache must still
    // serve each distinct matrix its own plan via exact comparison.
    auto engine = makeEngine("linear");
    PlanCache cache(8, [](const Dense<Scalar> &) { return Digest{7}; });

    Dense<Scalar> a1 = randomIntDense(6, 6, 31);
    Dense<Scalar> a2 = randomIntDense(6, 6, 32);
    Vec<Scalar> x = randomIntVec(6, 33), b = randomIntVec(6, 34);
    EnginePlan p1 = EnginePlan::matVec(a1, x, b, 3);
    EnginePlan p2 = EnginePlan::matVec(a2, x, b, 3);

    PlanCache::Prepared c1 = cache.prepare(*engine, p1);
    PlanCache::Prepared c2 = cache.prepare(*engine, p2);
    EXPECT_FALSE(c2.hit);
    EXPECT_NE(c1.plan.get(), c2.plan.get());
    EXPECT_GE(cache.stats().collisions, 1u);

    // And the colliding entries still hit individually — with
    // correct results through the engine.
    EXPECT_TRUE(cache.prepare(*engine, p1).hit);
    EXPECT_TRUE(cache.prepare(*engine, p2).hit);
    EngineRunResult r1 = engine->runPrepared(
        *cache.prepare(*engine, p1).plan, EngineInputs::matVec(x, b));
    EngineRunResult r2 = engine->runPrepared(
        *cache.prepare(*engine, p2).plan, EngineInputs::matVec(x, b));
    EXPECT_EQ(maxAbsDiff(r1.y, matVec(a1, x, b)), 0.0);
    EXPECT_EQ(maxAbsDiff(r2.y, matVec(a2, x, b)), 0.0);
}

TEST(PlanCache, ZeroCapacityDisablesCachingButStillServes)
{
    auto engine = makeEngine("linear");
    PlanCache cache(0);

    Dense<Scalar> a = randomIntDense(6, 6, 151);
    Vec<Scalar> x = randomIntVec(6, 152), b = randomIntVec(6, 153);
    EnginePlan plan = EnginePlan::matVec(a, x, b, 3);

    PlanCache::Prepared first = cache.prepare(*engine, plan);
    PlanCache::Prepared second = cache.prepare(*engine, plan);
    EXPECT_FALSE(first.hit);
    EXPECT_FALSE(second.hit);
    EXPECT_NE(first.plan.get(), second.plan.get()); // both built
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // The pass-through plans still serve correct results.
    EngineRunResult r = engine->runPrepared(
        *second.plan, EngineInputs::matVec(x, b));
    EXPECT_EQ(maxAbsDiff(r.y, matVec(a, x, b)), 0.0);
}

TEST(PlanCache, SingleEntryEvictionChurn)
{
    auto engine = makeEngine("linear");
    PlanCache cache(1);
    auto planFor = [](std::uint64_t seed) {
        Dense<Scalar> a = randomIntDense(6, 6, seed);
        return EnginePlan::matVec(a, randomIntVec(6, 1),
                                  randomIntVec(6, 2), 3);
    };
    EnginePlan p1 = planFor(161), p2 = planFor(162);

    // Alternating matrices with capacity 1: every access evicts the
    // other entry and misses.
    for (int round = 0; round < 3; ++round) {
        EXPECT_FALSE(cache.prepare(*engine, p1).hit) << round;
        EXPECT_FALSE(cache.prepare(*engine, p2).hit) << round;
        EXPECT_EQ(cache.size(), 1u);
    }
    PlanCacheStats churn = cache.stats();
    EXPECT_EQ(churn.hits, 0u);
    EXPECT_EQ(churn.misses, 6u);
    EXPECT_EQ(churn.evictions, 5u); // every insert after the first

    // Back-to-back repeats of the resident matrix still hit.
    EXPECT_TRUE(cache.prepare(*engine, p2).hit);
    EXPECT_TRUE(cache.prepare(*engine, p2).hit);
}

TEST(PlanCache, MatMulKeysIncludeBothOperands)
{
    auto engine = makeEngine("hex");
    PlanCache cache(8);
    Dense<Scalar> a = randomIntDense(6, 6, 41);
    Dense<Scalar> b1 = randomIntDense(6, 4, 42);
    Dense<Scalar> b2 = randomIntDense(6, 4, 43);
    Dense<Scalar> e(6, 4);

    EXPECT_FALSE(
        cache.prepare(*engine, EnginePlan::matMul(a, b1, e, 2)).hit);
    EXPECT_FALSE(
        cache.prepare(*engine, EnginePlan::matMul(a, b2, e, 2)).hit);
    EXPECT_TRUE(
        cache.prepare(*engine, EnginePlan::matMul(a, b1, e, 2)).hit);
}

//---------------------------------------------------------------------
// Prepared-plan protocol on the engines themselves.
//---------------------------------------------------------------------

TEST(PreparedPlan, EveryEngineMatchesItsOwnRunPath)
{
    const Index n = 9, m = 7, p = 5, w = 3;
    Dense<Scalar> a = randomIntDense(n, m, 51);
    Vec<Scalar> x = randomIntVec(m, 52);
    Vec<Scalar> b = randomIntVec(n, 53);
    Dense<Scalar> bm = randomIntDense(m, p, 54);
    Dense<Scalar> e = randomIntDense(n, p, 55);

    EnginePlan mv = EnginePlan::matVec(a, x, b, w);
    EnginePlan mm = EnginePlan::matMul(a, bm, e, w);
    EnginePlan ts = EnginePlan::triSolve(
        randomUnitLowerTriangular(n, 56), randomIntVec(n, 57), w);

    for (const std::string &name : engineNames()) {
        SCOPED_TRACE("engine " + name);
        auto engine = makeEngine(name);
        ASSERT_NE(engine, nullptr);
        const EnginePlan &plan =
            engine->kind() == ProblemKind::MatVec   ? mv
            : engine->kind() == ProblemKind::MatMul ? mm
                                                    : ts;
        auto prepared = engine->prepare(plan);
        ASSERT_NE(prepared, nullptr);
        EXPECT_EQ(prepared->kind(), engine->kind());
        EXPECT_EQ(prepared->w(), w);
        EXPECT_EQ(prepared->rows(), n);

        EngineRunResult via_run = engine->run(plan);
        EngineRunResult via_prepared =
            engine->runPrepared(*prepared, EngineInputs::of(plan));
        if (engine->kind() == ProblemKind::MatMul) {
            EXPECT_TRUE(via_prepared.c == via_run.c);
        } else {
            EXPECT_EQ(maxAbsDiff(via_prepared.y, via_run.y), 0.0);
        }
        EXPECT_EQ(via_prepared.stats.cycles, via_run.stats.cycles);
    }
}

//---------------------------------------------------------------------
// Batched runMany.
//---------------------------------------------------------------------

TEST(RunMany, StreamsManyInputsThroughOnePlan)
{
    const Index n = 8, m = 6, w = 3;
    Dense<Scalar> a = randomIntDense(n, m, 61);
    std::vector<EngineInputs> inputs;
    for (int i = 0; i < 7; ++i)
        inputs.push_back(EngineInputs::matVec(
            randomIntVec(m, 100 + i), randomIntVec(n, 200 + i)));

    auto engine = makeEngine("linear");
    BatchOptions opts;
    opts.crossCheck = true;
    BatchResult batch = runManyMatVec(*engine, a, w, inputs, opts);

    ASSERT_EQ(batch.results.size(), inputs.size());
    EXPECT_EQ(batch.crossCheckFailures, 0u);
    EXPECT_EQ(batch.planBuilds, 1u);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        Vec<Scalar> gold = matVec(a, inputs[i].x, inputs[i].b);
        EXPECT_EQ(maxAbsDiff(batch.results[i].y, gold), 0.0)
            << "input " << i;
    }
}

TEST(RunMany, SharedCacheAmortizesAcrossCalls)
{
    const Index n = 6, m = 6, w = 3;
    Dense<Scalar> a = randomIntDense(n, m, 71);
    std::vector<EngineInputs> inputs = {EngineInputs::matVec(
        randomIntVec(m, 72), randomIntVec(n, 73))};

    auto engine = makeEngine("linear");
    PlanCache cache(4);
    BatchOptions opts;
    opts.cache = &cache;

    BatchResult first = runManyMatVec(*engine, a, w, inputs, opts);
    BatchResult second = runManyMatVec(*engine, a, w, inputs, opts);
    EXPECT_EQ(first.planBuilds, 1u);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(second.planBuilds, 0u);
    EXPECT_EQ(second.cacheHits, 1u);
}

TEST(RunMany, MatMulPairsReuseRepeatedB)
{
    const Index n = 6, p = 6, m = 4, w = 2;
    Dense<Scalar> a = randomIntDense(n, p, 81);
    Dense<Scalar> b1 = randomIntDense(p, m, 82);
    Dense<Scalar> b2 = randomIntDense(p, m, 83);

    std::vector<MatMulItem> items;
    items.push_back({b1, randomIntDense(n, m, 84)});
    items.push_back({b2, randomIntDense(n, m, 85)});
    items.push_back({b1, randomIntDense(n, m, 86)}); // repeat of b1
    items.push_back({b1, randomIntDense(n, m, 87)}); // repeat of b1

    auto engine = makeEngine("hex");
    BatchOptions opts;
    opts.crossCheck = true;
    BatchResult batch = runManyMatMul(*engine, a, w, items, opts);

    ASSERT_EQ(batch.results.size(), items.size());
    EXPECT_EQ(batch.crossCheckFailures, 0u);
    EXPECT_EQ(batch.planBuilds, 2u); // b1 and b2
    EXPECT_EQ(batch.cacheHits, 2u);  // the two b1 repeats
    for (std::size_t i = 0; i < items.size(); ++i) {
        Dense<Scalar> gold = matMulAdd(a, items[i].bmat, items[i].e);
        EXPECT_TRUE(batch.results[i].c == gold) << "item " << i;
    }
}

TEST(RunMany, RunManyPreparedStreamsThroughACacheFetchedPlan)
{
    // The documented runManyPrepared() shape: fetch the prepared
    // plan from a cache once, stream a whole input group through it.
    const Index n = 7, m = 6, w = 3;
    Dense<Scalar> a = randomIntDense(n, m, 171);
    auto engine = makeEngine("linear");
    PlanCache cache(4);
    EnginePlan plan = EnginePlan::matVec(a, Vec<Scalar>(m),
                                         Vec<Scalar>(n), w);
    PlanCache::Prepared cached = cache.prepare(*engine, plan);

    std::vector<EngineInputs> inputs;
    for (int i = 0; i < 5; ++i)
        inputs.push_back(EngineInputs::matVec(
            randomIntVec(m, 180 + i), randomIntVec(n, 190 + i)));
    std::vector<EngineRunResult> results =
        engine->runManyPrepared(*cached.plan, inputs);

    ASSERT_EQ(results.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        Vec<Scalar> gold = matVec(a, inputs[i].x, inputs[i].b);
        EXPECT_EQ(maxAbsDiff(results[i].y, gold), 0.0) << i;
    }
    // One build, no further cache traffic.
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(RunMany, EmptyBatchIsANoop)
{
    auto engine = makeEngine("linear");
    Dense<Scalar> a = randomIntDense(4, 4, 91);
    BatchResult batch = runManyMatVec(*engine, a, 2, {});
    EXPECT_TRUE(batch.results.empty());
    EXPECT_EQ(batch.planBuilds, 0u);
}

//---------------------------------------------------------------------
// Server.
//---------------------------------------------------------------------

ServeRequest
matVecRequest(const std::string &engine, const Dense<Scalar> &a,
              std::uint64_t seed, Index w)
{
    ServeRequest req;
    req.engine = engine;
    req.plan = EnginePlan::matVec(a, randomIntVec(a.cols(), seed),
                                  randomIntVec(a.rows(), seed + 1), w);
    return req;
}

TEST(Server, ServesRequestsAndReportsCacheHits)
{
    Server::Options opts;
    opts.threads = 2;
    Server server(opts);

    Dense<Scalar> a = randomIntDense(8, 8, 101);
    ServeRequest r1 = matVecRequest("linear", a, 102, 4);
    ServeRequest r2 = matVecRequest("linear", a, 104, 4);

    ServeResponse resp1 = server.submit(r1).get();
    ServeResponse resp2 = server.submit(r2).get();
    ASSERT_TRUE(resp1.ok) << resp1.error;
    ASSERT_TRUE(resp2.ok) << resp2.error;
    EXPECT_EQ(maxAbsDiff(resp1.result.y,
                         matVec(r1.plan.a, r1.plan.x, r1.plan.b)),
              0.0);
    EXPECT_EQ(maxAbsDiff(resp2.result.y,
                         matVec(r2.plan.a, r2.plan.x, r2.plan.b)),
              0.0);
    // Same matrix: the second request must reuse the cached plan.
    EXPECT_TRUE(resp1.cacheHit || resp2.cacheHit);

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(stats.planCache.hits, 1u);
    ASSERT_EQ(stats.groups.size(), 1u);
    EXPECT_EQ(stats.groups[0].requests, 2u);
    EXPECT_EQ(stats.groups[0].cacheHits, 1u);
    EXPECT_GT(stats.groups[0].simCycles, 0);
    EXPECT_GE(stats.latency.p99, stats.latency.p50);
}

TEST(Server, MalformedRequestsResolveToErrors)
{
    Server::Options opts;
    opts.threads = 1;
    Server server(opts);

    ServeRequest unknown;
    unknown.engine = "no-such-engine";
    unknown.plan = EnginePlan::matVec(randomIntDense(4, 4, 111),
                                      randomIntVec(4, 112),
                                      randomIntVec(4, 113), 2);
    ServeResponse r = server.submit(unknown).get();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown engine"), std::string::npos);

    // Kind mismatch: a matvec plan sent to the hex engine.
    ServeRequest wrong_kind = unknown;
    wrong_kind.engine = "hex";
    ServeResponse r2 = server.submit(wrong_kind).get();
    EXPECT_FALSE(r2.ok);
    EXPECT_FALSE(r2.error.empty());

    // Shape mismatch, hand-built to bypass the asserting factory.
    ServeRequest bad_shape;
    bad_shape.engine = "linear";
    bad_shape.plan.kind = ProblemKind::MatVec;
    bad_shape.plan.a = randomIntDense(4, 4, 114);
    bad_shape.plan.x = randomIntVec(3, 115); // wrong length
    bad_shape.plan.b = randomIntVec(4, 116);
    bad_shape.plan.w = 2;
    ServeResponse r3 = server.submit(bad_shape).get();
    EXPECT_FALSE(r3.ok);
    EXPECT_FALSE(r3.error.empty());

    // Singular triangular system, hand-built likewise: the shard
    // reports instead of tripping the engine's divide assert.
    ServeRequest singular;
    singular.engine = "tri";
    singular.plan.kind = ProblemKind::TriSolve;
    singular.plan.a = randomUnitLowerTriangular(4, 117);
    singular.plan.a(2, 2) = 0;
    singular.plan.b = randomIntVec(4, 118);
    singular.plan.w = 2;
    ServeResponse r4 = server.submit(singular).get();
    EXPECT_FALSE(r4.ok);
    EXPECT_NE(r4.error.find("zero diagonal"), std::string::npos);

    // Non-square L.
    ServeRequest rect = singular;
    rect.plan.a = randomIntDense(4, 3, 119);
    ServeResponse r5 = server.submit(rect).get();
    EXPECT_FALSE(r5.ok);
    EXPECT_NE(r5.error.find("square"), std::string::npos);

    EXPECT_EQ(server.stats().failures, 5u);
    EXPECT_EQ(server.stats().requests, 0u);
}

TEST(RunMany, TriSolveStreamsRightHandSidesThroughOnePlan)
{
    const Index n = 10, w = 3;
    Dense<Scalar> l = randomUnitLowerTriangular(n, 131);
    std::vector<EngineInputs> inputs;
    for (int i = 0; i < 6; ++i)
        inputs.push_back(
            EngineInputs::triSolve(randomIntVec(n, 140 + i)));

    BatchOptions opts;
    opts.crossCheck = true;
    BatchResult batch = runManyTriSolve(*makeEngine("tri"), l, w,
                                        inputs, opts);
    ASSERT_EQ(batch.results.size(), inputs.size());
    EXPECT_EQ(batch.crossCheckFailures, 0u);
    EXPECT_EQ(batch.planBuilds, 1u);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        Vec<Scalar> gold = forwardSolve(l, inputs[i].b);
        EXPECT_EQ(maxAbsDiff(batch.results[i].y, gold), 0.0) << i;
    }
}

TEST(Server, CrossCheckModeValidatesEveryTopology)
{
    Server::Options opts;
    opts.threads = 2;
    opts.crossCheckAll = true;
    Server server(opts);

    const Index n = 6, m = 6, p = 4, w = 2;
    Dense<Scalar> a = randomIntDense(n, m, 121);
    Dense<Scalar> bm = randomIntDense(m, p, 122);
    Dense<Scalar> e = randomIntDense(n, p, 123);
    Dense<Scalar> lt = randomUnitLowerTriangular(n, 126);

    std::vector<std::future<ServeResponse>> futures;
    for (const std::string &name : engineNames()) {
        auto engine = makeEngine(name);
        ServeRequest req;
        req.engine = name;
        req.plan = engine->kind() == ProblemKind::MatVec
            ? EnginePlan::matVec(a, randomIntVec(m, 124),
                                 randomIntVec(n, 125), w)
            : engine->kind() == ProblemKind::MatMul
                ? EnginePlan::matMul(a, bm, e, w)
                : EnginePlan::triSolve(lt, randomIntVec(n, 127), w);
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto &f : futures) {
        ServeResponse resp = f.get();
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(resp.crossCheckOk);
    }
    EXPECT_EQ(server.stats().crossCheckFailures, 0u);
    EXPECT_GE(server.stats().requests, 8u);
}

TEST(Server, DestructionDrainsQueuedRequests)
{
    std::vector<std::future<ServeResponse>> futures;
    Dense<Scalar> a = randomIntDense(6, 6, 131);
    {
        Server::Options opts;
        opts.threads = 1;
        Server server(opts);
        for (int i = 0; i < 8; ++i)
            futures.push_back(server.submit(
                matVecRequest("linear", a, 200 + 2 * i, 3)));
        // Server goes out of scope with requests likely queued.
    }
    for (auto &f : futures) {
        ServeResponse resp = f.get();
        EXPECT_TRUE(resp.ok) << resp.error;
    }
}

} // namespace
} // namespace sap
