/**
 * @file
 * Tests for the baselines (PRT, block-no-feedback, naive band
 * embedding), the sparsity-aware DBT, and the §4 application
 * solvers (triangular solve, Gauss-Seidel, inverses).
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "baseline/block_no_feedback.hh"
#include "baseline/naive_band.hh"
#include "baseline/prt.hh"
#include "dbt/matvec_plan.hh"
#include "dbt/sparse_dbt.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "mat/triangular.hh"
#include "solve/gauss_seidel.hh"
#include "solve/inverse.hh"
#include "solve/trisolve.hh"

namespace sap {
namespace {

//---------------------------------------------------------------------
// Baselines
//---------------------------------------------------------------------

TEST(Prt, MatchesOracle)
{
    for (Index w : {2, 3, 5}) {
        Dense<Scalar> a = randomIntDense(w, w, 200 + w);
        Vec<Scalar> x = randomIntVec(w, 201 + w);
        Vec<Scalar> b = randomIntVec(w, 202 + w);
        PrtResult r = runPrt(a, x, b);
        EXPECT_EQ(maxAbsDiff(r.y, matVec(a, x, b)), 0.0);
        // PRT runs a w×w dense matrix on only w PEs, half the naive
        // 2w−1 requirement (the paper's "50% size reduction").
        EXPECT_EQ(naiveDenseArraySize(w), 2 * w - 1);
        EXPECT_EQ(r.stats.peCount, w);
    }
}

TEST(Prt, IsTheSingleBlockDbtSpecialCase)
{
    Dense<Scalar> a = randomIntDense(4, 4, 210);
    Vec<Scalar> x = randomIntVec(4, 211);
    Vec<Scalar> b = randomIntVec(4, 212);
    MatVecPlan dbt(a, 4);
    EXPECT_EQ(maxAbsDiff(runPrt(a, x, b).y, dbt.run(x, b).y), 0.0);
    EXPECT_EQ(runPrt(a, x, b).stats.cycles, dbt.run(x, b).stats.cycles);
}

TEST(BlockNoFeedback, CorrectButSlowerAndHostBound)
{
    Dense<Scalar> a = randomIntDense(9, 9, 220);
    Vec<Scalar> x = randomIntVec(9, 221);
    Vec<Scalar> b = randomIntVec(9, 222);
    const Index w = 3;

    BlockNoFeedbackResult nf = runBlockNoFeedback(a, x, b, w);
    EXPECT_EQ(maxAbsDiff(nf.y, matVec(a, x, b)), 0.0);
    EXPECT_GT(nf.hostAdds, 0);

    MatVecPlan plan(a, w);
    MatVecPlanResult dbt = plan.run(x, b);
    // DBT needs no host adds and strictly fewer array steps.
    EXPECT_LT(dbt.stats.cycles, nf.stats.cycles);
    EXPECT_GT(nf.stats.cycles,
              formulas::tMatVec(w, 3, 3)); // 9 isolated fills/drains
}

TEST(NaiveBand, RequiresGrowingArray)
{
    Dense<Scalar> a = randomIntDense(6, 9, 230);
    Vec<Scalar> x = randomIntVec(9, 231);
    Vec<Scalar> b = randomIntVec(6, 232);
    Vec<Scalar> y;
    NaiveBandCost cost = runNaiveBand(a, x, b, 3, &y);
    EXPECT_EQ(cost.arraySize, 14); // n+m−1, grows with the problem
    EXPECT_FALSE(cost.fitsFixedArray);
    EXPECT_EQ(maxAbsDiff(y, matVec(a, x, b)), 0.0);
    // Utilization of the oversized array is far below DBT's.
    MatVecPlan plan(a, 3);
    MatVecPlanResult dbt = plan.run(x, b);
    EXPECT_LT(cost.utilization, 0.5 * dbt.stats.utilization());
}

//---------------------------------------------------------------------
// Sparsity-aware DBT
//---------------------------------------------------------------------

TEST(SparseDbtTest, MatchesOracleOnBlockSparse)
{
    for (std::uint64_t seed : {240, 241, 242, 243, 244, 245}) {
        Dense<Scalar> a = randomBlockSparse(12, 12, 3, 0.5, seed);
        Vec<Scalar> x = randomIntVec(12, seed + 10);
        Vec<Scalar> b = randomIntVec(12, seed + 20);
        SparseDbt sparse(a, 3);
        BandMatVecSpec spec = sparse.spec(x, b);
        LinearRunResult r = runBandMatVec(spec);
        EXPECT_EQ(maxAbsDiff(sparse.extractY(r.ybar), matVec(a, x, b)),
                  0.0)
            << "seed=" << seed;
    }
}

TEST(SparseDbtTest, DropsZeroBlocksAndSavesTime)
{
    Dense<Scalar> a = randomBlockSparse(18, 18, 3, 0.6, 250);
    Vec<Scalar> x = randomIntVec(18, 251);
    Vec<Scalar> b = randomIntVec(18, 252);
    SparseDbt sparse(a, 3);
    EXPECT_LT(sparse.keptBlocks(), sparse.denseBlocks());

    BandMatVecSpec spec = sparse.spec(x, b);
    LinearRunResult r = runBandMatVec(spec);
    MatVecPlan densePlan(a, 3);
    MatVecPlanResult full = densePlan.run(x, b);
    EXPECT_EQ(maxAbsDiff(sparse.extractY(r.ybar), full.y), 0.0);
    EXPECT_LT(r.stats.cycles, full.stats.cycles);
}

TEST(SparseDbtTest, DenseInputKeepsEverything)
{
    Dense<Scalar> a = randomIntDense(9, 9, 260);
    SparseDbt sparse(a, 3);
    EXPECT_EQ(sparse.keptBlocks(), sparse.denseBlocks());
}

TEST(SparseDbtTest, AllZeroMatrixYieldsB)
{
    Dense<Scalar> a(6, 6);
    Vec<Scalar> x = randomIntVec(6, 270);
    Vec<Scalar> b = randomIntVec(6, 271);
    SparseDbt sparse(a, 3);
    EXPECT_EQ(sparse.keptBlocks(), 0);
    BandMatVecSpec spec = sparse.spec(x, b);
    (void)spec; // nothing to run
    EXPECT_EQ(maxAbsDiff(sparse.extractY(Vec<Scalar>(0)), b), 0.0);
}

//---------------------------------------------------------------------
// §4 applications
//---------------------------------------------------------------------

TEST(TriSolve, MatchesForwardSubstitution)
{
    for (Index n : {3, 6, 9, 10}) {
        for (Index w : {2, 3}) {
            Dense<Scalar> l = randomLowerTriangular(n, 300 + n + w);
            Vec<Scalar> b = randomIntVec(n, 301 + n + w);
            TriSolveResult r = triSolve(l, b, w);
            EXPECT_LT(maxAbsDiff(r.y, forwardSolve(l, b)), 1e-9)
                << "n=" << n << " w=" << w;
        }
    }
}

TEST(TriSolve, ArrayCarriesTheUpdateWork)
{
    Dense<Scalar> l = randomLowerTriangular(12, 310);
    Vec<Scalar> b = randomIntVec(12, 311);
    TriSolveResult r = triSolve(l, b, 3);
    // The array performs the O(n²) panel products...
    EXPECT_GT(r.arrayStats.usefulMacs, 0);
    // ...while the host does only O(n·w) work.
    EXPECT_LT(r.hostOps, 12 * 3 * 4);
}

TEST(GaussSeidelTest, ConvergesOnDiagDominant)
{
    Dense<Scalar> a = randomDiagDominant(9, 320);
    Vec<Scalar> x_ref = randomIntVec(9, 321);
    Vec<Scalar> b = matVec(a, x_ref, Vec<Scalar>(9));
    GaussSeidelResult r = gaussSeidel(a, b, 3, 1e-9, 100);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(maxAbsDiff(r.x, x_ref), 1e-7);
    EXPECT_GT(r.arrayStats.usefulMacs, 0);
}

TEST(TriInverse, InvertsLowerTriangular)
{
    Dense<Scalar> l = randomLowerTriangular(6, 330);
    TriInverseResult r = triInverse(l, 3);
    EXPECT_LT(maxAbsDiff(matMul(l, r.inv), identity<Scalar>(6)), 1e-9);
}

TEST(NewtonInverse, InvertsWellConditioned)
{
    // Diagonally dominant matrices are well conditioned enough for
    // Newton-Schulz to converge quickly.
    Dense<Scalar> a = randomDiagDominant(6, 340);
    NewtonInverseResult r = newtonInverse(a, 3, 1e-10, 80);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(maxAbsDiff(matMul(a, r.inv), identity<Scalar>(6)), 1e-8);
    EXPECT_GT(r.arrayStats.usefulMacs, 0);
}

} // namespace
} // namespace sap
