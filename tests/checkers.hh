/**
 * @file
 * Strict output-format validators shared across test suites: a JSON
 * checker (RFC 8259 grammar, no extensions) and a Prometheus text
 * exposition-format checker. Both validate by parsing, not by
 * substring sniffing, so a malformed export fails loudly.
 */

#ifndef SAP_TESTS_CHECKERS_HH
#define SAP_TESTS_CHECKERS_HH

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <utility>

namespace sap {

//---------------------------------------------------------------------
// Strict JSON validator (RFC 8259 grammar, no extensions).
//---------------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(std::string text) : s_(std::move(text)) {}

    /** True iff the whole input is exactly one valid JSON value. */
    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_])))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digit())
            return false;
        if (s_[pos_] == '0') {
            ++pos_;
        } else {
            while (digit())
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                return false;
            while (digit())
                ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        return true;
    }

    bool digit() const
    {
        return pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9';
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    std::string s_; // owned: callers pass temporaries
    std::size_t pos_ = 0;
};

//---------------------------------------------------------------------
// Prometheus text exposition-format validator.
//---------------------------------------------------------------------

/**
 * Validates the subset of the exposition format renderPrometheus
 * emits — and everything a scraper requires of it:
 *
 *  - every line is `# TYPE name type`, `# HELP ...`, or a sample
 *    `name{labels} value`;
 *  - metric and label names match [a-zA-Z_:][a-zA-Z0-9_:]*;
 *  - label values use only the legal escapes (\\, \", \n) and no raw
 *    quote/newline;
 *  - sample values are numbers or +Inf/-Inf/NaN;
 *  - every sample's base name was TYPE-declared first (histogram
 *    samples may carry the _bucket/_sum/_count suffixes);
 *  - the exposition ends with a newline.
 *
 * error() names the first offending line for the test failure text.
 */
class PromChecker
{
  public:
    explicit PromChecker(std::string text) : s_(std::move(text)) {}

    bool valid()
    {
        if (s_.empty() || s_.back() != '\n') {
            error_ = "exposition must end with a newline";
            return false;
        }
        std::size_t start = 0;
        while (start < s_.size()) {
            std::size_t end = s_.find('\n', start);
            const std::string line = s_.substr(start, end - start);
            start = end + 1;
            if (line.empty())
                continue; // blank lines are legal separators
            if (!checkLine(line)) {
                if (error_.empty())
                    error_ = "bad line: " + line;
                return false;
            }
        }
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    static bool nameStart(char c)
    {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    }
    static bool nameChar(char c)
    {
        return nameStart(c) ||
               std::isdigit(static_cast<unsigned char>(c));
    }

    /** Parse a metric/label name at @p pos; empty on failure. */
    static std::string parseName(const std::string &line,
                                 std::size_t *pos)
    {
        std::size_t p = *pos;
        if (p >= line.size() || !nameStart(line[p]))
            return "";
        std::size_t startPos = p;
        while (p < line.size() && nameChar(line[p]))
            ++p;
        *pos = p;
        return line.substr(startPos, p - startPos);
    }

    bool checkLine(const std::string &line)
    {
        if (line[0] == '#')
            return checkComment(line);
        return checkSample(line);
    }

    bool checkComment(const std::string &line)
    {
        if (line.rfind("# HELP ", 0) == 0)
            return true; // free text follows; nothing to validate
        if (line.rfind("# TYPE ", 0) != 0) {
            error_ = "unknown comment form: " + line;
            return false;
        }
        std::size_t pos = 7;
        const std::string name = parseName(line, &pos);
        if (name.empty() || pos >= line.size() || line[pos] != ' ') {
            error_ = "bad TYPE line: " + line;
            return false;
        }
        const std::string type = line.substr(pos + 1);
        if (type != "counter" && type != "gauge" &&
            type != "histogram" && type != "summary" &&
            type != "untyped") {
            error_ = "bad metric type: " + line;
            return false;
        }
        if (types_.count(name)) {
            error_ = "duplicate TYPE for " + name;
            return false;
        }
        types_[name] = type;
        return true;
    }

    /** The declared base name a sample name must resolve to. */
    bool declared(const std::string &sample)
    {
        auto it = types_.find(sample);
        if (it != types_.end())
            return it->second != "histogram";
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::string sfx = suffix;
            if (sample.size() > sfx.size() &&
                sample.compare(sample.size() - sfx.size(), sfx.size(),
                               sfx) == 0) {
                auto base = types_.find(
                    sample.substr(0, sample.size() - sfx.size()));
                if (base != types_.end() &&
                    base->second == "histogram")
                    return true;
            }
        }
        return false;
    }

    bool checkSample(const std::string &line)
    {
        std::size_t pos = 0;
        const std::string name = parseName(line, &pos);
        if (name.empty()) {
            error_ = "bad metric name: " + line;
            return false;
        }
        if (!declared(name)) {
            error_ = "sample without TYPE: " + name;
            return false;
        }
        if (pos < line.size() && line[pos] == '{' &&
            !checkLabels(line, &pos))
            return false;
        if (pos >= line.size() || line[pos] != ' ') {
            error_ = "missing value separator: " + line;
            return false;
        }
        ++pos;
        // Optional trailing timestamp is not emitted here; require
        // value-only lines.
        return checkValue(line.substr(pos), line);
    }

    bool checkLabels(const std::string &line, std::size_t *pos)
    {
        std::size_t p = *pos + 1; // '{'
        for (;;) {
            std::size_t q = p;
            const std::string label = parseName(line, &q);
            if (label.empty() || q >= line.size() || line[q] != '=' ||
                q + 1 >= line.size() || line[q + 1] != '"') {
                error_ = "bad label syntax: " + line;
                return false;
            }
            p = q + 2;
            for (;;) {
                if (p >= line.size()) {
                    error_ = "unterminated label value: " + line;
                    return false;
                }
                const char c = line[p];
                if (c == '"')
                    break;
                if (c == '\\') {
                    if (p + 1 >= line.size() ||
                        (line[p + 1] != '\\' && line[p + 1] != '"' &&
                         line[p + 1] != 'n')) {
                        error_ = "bad escape in label: " + line;
                        return false;
                    }
                    ++p; // skip the escaped char too
                }
                ++p;
            }
            ++p; // closing '"'
            if (p < line.size() && line[p] == ',') {
                ++p;
                continue;
            }
            if (p < line.size() && line[p] == '}') {
                ++p;
                *pos = p;
                return true;
            }
            error_ = "bad label list: " + line;
            return false;
        }
    }

    bool checkValue(const std::string &value, const std::string &line)
    {
        if (value == "+Inf" || value == "-Inf" || value == "NaN")
            return true;
        if (value.empty()) {
            error_ = "empty value: " + line;
            return false;
        }
        std::size_t p = 0;
        if (value[p] == '-' || value[p] == '+')
            ++p;
        bool digits = false;
        while (p < value.size() &&
               std::isdigit(static_cast<unsigned char>(value[p]))) {
            ++p;
            digits = true;
        }
        if (p < value.size() && value[p] == '.') {
            ++p;
            while (p < value.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(value[p]))) {
                ++p;
                digits = true;
            }
        }
        if (digits && p < value.size() &&
            (value[p] == 'e' || value[p] == 'E')) {
            ++p;
            if (p < value.size() &&
                (value[p] == '+' || value[p] == '-'))
                ++p;
            bool expDigits = false;
            while (p < value.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(value[p]))) {
                ++p;
                expDigits = true;
            }
            if (!expDigits)
                digits = false;
        }
        if (!digits || p != value.size()) {
            error_ = "bad sample value: " + line;
            return false;
        }
        return true;
    }

    std::string s_; // owned: callers pass temporaries
    std::string error_;
    std::map<std::string, std::string> types_;
};

} // namespace sap

#endif // SAP_TESTS_CHECKERS_HH
