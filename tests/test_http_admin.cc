/**
 * @file
 * Admin-plane tests: the HTTP request parser driven directly
 * (bounds and strictness), the health state machine's transitions
 * and hysteresis, the flight recorder's interval math and bounded
 * rings, and loopback coverage of every endpoint — responses parsed
 * strictly (status line, Content-Type, Content-Length vs body),
 * /metrics validated by the exposition-format checker, JSON
 * endpoints by the strict JSON checker, /healthz flipping 200→503
 * under induced queue saturation and recovering, and the
 * malformed/oversized/non-GET suite that must never crash the admin
 * thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "checkers.hh"
#include "mat/generate.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/health.hh"
#include "obs/http_admin.hh"
#include "obs/timeseries.hh"
#include "tools/tool_common.hh"

namespace sap {
namespace {

//---------------------------------------------------------------------
// Request parsing (no sockets)
//---------------------------------------------------------------------

TEST(HttpParse, AcceptsPlainGet)
{
    HttpRequest req;
    EXPECT_EQ(parseHttpRequest("GET /metrics HTTP/1.1\r\n"
                               "Host: localhost\r\n\r\n",
                               &req),
              HttpParseResult::Ok);
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/metrics");
    EXPECT_TRUE(req.query.empty());
}

TEST(HttpParse, SplitsQueryPairs)
{
    HttpRequest req;
    ASSERT_EQ(parseHttpRequest(
                  "GET /tracez?format=chrome&raw HTTP/1.0\r\n\r\n",
                  &req),
              HttpParseResult::Ok);
    EXPECT_EQ(req.path, "/tracez");
    EXPECT_EQ(req.query.at("format"), "chrome");
    EXPECT_EQ(req.query.at("raw"), "");
}

TEST(HttpParse, NeedsMoreUntilBlankLine)
{
    HttpRequest req;
    EXPECT_EQ(parseHttpRequest("GET / HTTP/1.1\r\n", &req),
              HttpParseResult::NeedMore);
    EXPECT_EQ(parseHttpRequest("GET / HTTP/1.1\r\nHost: x\r\n", &req),
              HttpParseResult::NeedMore);
}

TEST(HttpParse, HeadIsAllowedOtherMethodsAreNot)
{
    HttpRequest req;
    EXPECT_EQ(parseHttpRequest("HEAD /metrics HTTP/1.1\r\n\r\n", &req),
              HttpParseResult::Ok);
    EXPECT_EQ(req.method, "HEAD");
    EXPECT_EQ(parseHttpRequest("POST /metrics HTTP/1.1\r\n\r\n", &req),
              HttpParseResult::MethodNotAllowed);
    EXPECT_EQ(parseHttpRequest("DELETE /metrics HTTP/1.1\r\n\r\n",
                               &req),
              HttpParseResult::MethodNotAllowed);
}

TEST(HttpParse, RejectsMalformedRequestLines)
{
    HttpRequest req;
    // Not three tokens.
    EXPECT_EQ(parseHttpRequest("GET /metrics\r\n\r\n", &req),
              HttpParseResult::Malformed);
    EXPECT_EQ(parseHttpRequest("GET / a HTTP/1.1\r\n\r\n", &req),
              HttpParseResult::Malformed);
    // Bad version.
    EXPECT_EQ(parseHttpRequest("GET / HTTP/2\r\n\r\n", &req),
              HttpParseResult::Malformed);
    // Target must start with '/'.
    EXPECT_EQ(parseHttpRequest("GET metrics HTTP/1.1\r\n\r\n", &req),
              HttpParseResult::Malformed);
    // Lowercase method token.
    EXPECT_EQ(parseHttpRequest("get / HTTP/1.1\r\n\r\n", &req),
              HttpParseResult::Malformed);
    // Control character in the target.
    EXPECT_EQ(parseHttpRequest("GET /me\ttrics HTTP/1.1\r\n\r\n",
                               &req),
              HttpParseResult::Malformed);
    // Header line without a colon.
    EXPECT_EQ(parseHttpRequest(
                  "GET / HTTP/1.1\r\nnot a header\r\n\r\n", &req),
              HttpParseResult::Malformed);
    // Embedded NUL can never become a valid head.
    EXPECT_EQ(parseHttpRequest(std::string("GE\0T", 4), &req),
              HttpParseResult::Malformed);
}

TEST(HttpParse, ResponseRendering)
{
    HttpResponse resp;
    resp.status = 200;
    resp.contentType = "application/json";
    resp.body = "{\"a\":1}";
    resp.extraHeaders.emplace_back("X-Extra", "yes");

    const std::string wire = renderHttpResponse(resp);
    EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("X-Extra: yes\r\n"), std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 7), "{\"a\":1}");

    // HEAD: identical headers (including Content-Length), no body.
    const std::string head = renderHttpResponse(resp, true);
    EXPECT_NE(head.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

//---------------------------------------------------------------------
// Health state machine
//---------------------------------------------------------------------

HealthInputs
healthyInputs(double now)
{
    HealthInputs in;
    in.serving = true;
    in.queueDepth = 0;
    in.protocolErrors = 0;
    in.p99Micros = 0;
    in.nowSeconds = now;
    return in;
}

TEST(Health, OkWhileServingQuietly)
{
    HealthModel model(HealthThresholds{});
    HealthReport report = model.evaluate(healthyInputs(1.0));
    EXPECT_EQ(report.state, HealthState::Ok);
    EXPECT_TRUE(report.live);
    EXPECT_TRUE(report.ready);
    EXPECT_TRUE(report.reason.empty());
}

TEST(Health, NotServingIsUnhealthyAndNotReady)
{
    HealthModel model(HealthThresholds{});
    HealthInputs in = healthyInputs(1.0);
    in.serving = false;
    HealthReport report = model.evaluate(in);
    EXPECT_EQ(report.state, HealthState::Unhealthy);
    EXPECT_FALSE(report.live);
    EXPECT_FALSE(report.ready);
    EXPECT_NE(report.reason.find("not serving"), std::string::npos);
}

TEST(Health, QueueDepthDrivesDegradedThenUnhealthy)
{
    HealthThresholds t;
    t.degradedQueueDepth = 10;
    t.unhealthyQueueDepth = 100;
    HealthModel model(t);

    HealthInputs in = healthyInputs(1.0);
    in.queueDepth = 50;
    EXPECT_EQ(model.evaluate(in).state, HealthState::Degraded);

    in.nowSeconds = 2.0;
    in.queueDepth = 150;
    HealthReport report = model.evaluate(in);
    EXPECT_EQ(report.state, HealthState::Unhealthy);
    EXPECT_FALSE(report.live);
    EXPECT_NE(report.reason.find("queue depth"), std::string::npos);
}

TEST(Health, HysteresisHoldsUnhealthyUntilFullyRecovered)
{
    HealthThresholds t;
    t.degradedQueueDepth = 10;
    t.unhealthyQueueDepth = 100;
    HealthModel model(t);

    HealthInputs in = healthyInputs(1.0);
    in.queueDepth = 200;
    EXPECT_EQ(model.evaluate(in).state, HealthState::Unhealthy);

    // Below the hard bound but above the soft one: still Unhealthy
    // (no flapping at the boundary).
    in.nowSeconds = 2.0;
    in.queueDepth = 50;
    EXPECT_EQ(model.evaluate(in).state, HealthState::Unhealthy);

    // Fully below the soft bound: recovered.
    in.nowSeconds = 3.0;
    in.queueDepth = 2;
    HealthReport report = model.evaluate(in);
    EXPECT_EQ(report.state, HealthState::Ok);
    EXPECT_TRUE(report.live);
}

TEST(Health, ProtocolErrorRateFromCumulativeCounter)
{
    HealthThresholds t;
    t.degradedProtocolErrorsPerSec = 5;
    t.unhealthyProtocolErrorsPerSec = 50;
    HealthModel model(t);

    HealthInputs in = healthyInputs(1.0);
    in.protocolErrors = 0;
    EXPECT_EQ(model.evaluate(in).state, HealthState::Ok);

    // 100 errors over 1 s = 100/s >= 50: Unhealthy.
    in.nowSeconds = 2.0;
    in.protocolErrors = 100;
    HealthReport report = model.evaluate(in);
    EXPECT_EQ(report.state, HealthState::Unhealthy);
    EXPECT_NEAR(report.protocolErrorsPerSec, 100.0, 1e-9);

    // Counter reset (restart): rate starts over, not a huge wrap.
    in.nowSeconds = 3.0;
    in.protocolErrors = 2;
    report = model.evaluate(in);
    EXPECT_NEAR(report.protocolErrorsPerSec, 0.0, 1e-9);
    EXPECT_EQ(report.state, HealthState::Ok);
}

TEST(Health, P99BudgetIsDegradedOnly)
{
    HealthThresholds t;
    t.p99BudgetMicros = 1000;
    HealthModel model(t);

    HealthInputs in = healthyInputs(1.0);
    in.p99Micros = 5000;
    HealthReport report = model.evaluate(in);
    EXPECT_EQ(report.state, HealthState::Degraded);
    EXPECT_TRUE(report.live); // SLO miss routes away, never kills
    EXPECT_NE(report.reason.find("p99"), std::string::npos);

    // Budget disabled (0): the same p99 is fine.
    HealthModel off(HealthThresholds{});
    EXPECT_EQ(off.evaluate(in).state, HealthState::Ok);
}

//---------------------------------------------------------------------
// Flight recorder
//---------------------------------------------------------------------

MetricsSnapshot
snapshotAt(std::uint64_t requests, double depth, double latencyEach,
           int latencyCount)
{
    MetricsSnapshot snap;
    snap.counters["serve_requests_total"] = requests;
    snap.gauges["serve_queue_depth"] = GaugeValue{depth, GaugeAgg::Sum};
    Histogram h;
    for (int i = 0; i < latencyCount; ++i)
        h.record(latencyEach);
    snap.histograms["serve_latency_micros"] = h.snapshot();
    return snap;
}

TEST(FlightRecorder, DerivesRatesGaugesAndQuantilesPerInterval)
{
    FlightRecorderConfig cfg;
    cfg.intervalSeconds = 1.0;
    cfg.retainSamples = 10;
    FlightRecorder rec([] { return MetricsSnapshot(); }, cfg);

    rec.sample(snapshotAt(0, 0, 0, 0), 10.0);           // baseline
    rec.sample(snapshotAt(100, 4, 200.0, 100), 11.0);   // +100 in 1 s
    rec.sample(snapshotAt(150, 2, 1000.0, 50), 12.0);   // +50 in 1 s

    EXPECT_EQ(rec.samplesTaken(), 3u);
    EXPECT_NEAR(rec.latestValue("serve_requests_total:rate"), 50.0,
                1e-9);
    EXPECT_NEAR(rec.latestValue("serve_queue_depth"), 2.0, 1e-9);
    // Second interval added only ~1000us samples; the interval p99
    // must reflect them, not the cumulative mix.
    EXPECT_GT(rec.latestValue("serve_latency_micros:p99"), 500.0);
    EXPECT_NEAR(rec.latestValue("serve_latency_micros:rate"), 50.0,
                1e-9);
    EXPECT_EQ(rec.latestValue("no_such_series", -1.0), -1.0);

    FlightRecorderSnapshot snap = rec.snapshot();
    EXPECT_EQ(snap.timesSeconds.size(), 2u); // baseline emits nothing
    EXPECT_EQ(snap.timesSeconds.front(), 11.0);
}

TEST(FlightRecorder, RingsStayBounded)
{
    FlightRecorderConfig cfg;
    cfg.intervalSeconds = 1.0;
    cfg.retainSamples = 5;
    FlightRecorder rec([] { return MetricsSnapshot(); }, cfg);

    for (int i = 0; i <= 100; ++i)
        rec.sample(snapshotAt(std::uint64_t(i) * 10, i, 0, 0),
                   100.0 + i);

    FlightRecorderSnapshot snap = rec.snapshot();
    EXPECT_EQ(snap.timesSeconds.size(), 5u);
    // Oldest-first ordering with only the newest retained.
    EXPECT_EQ(snap.timesSeconds.front(), 196.0);
    EXPECT_EQ(snap.timesSeconds.back(), 200.0);
    for (const TimeSeries &ts : snap.series) {
        EXPECT_LE(ts.values.size(), 5u) << ts.name;
        if (ts.name == "serve_requests_total:rate") {
            for (double v : ts.values)
                EXPECT_NEAR(v, 10.0, 1e-9);
        }
    }
}

TEST(FlightRecorder, JsonExportIsStrictlyValid)
{
    FlightRecorderConfig cfg;
    cfg.retainSamples = 4;
    FlightRecorder rec([] { return MetricsSnapshot(); }, cfg);
    rec.sample(snapshotAt(0, 0, 0, 0), 1.0);
    rec.sample(snapshotAt(10, 1, 50.0, 10), 2.0);

    const std::string json = toTimeseriesJson(rec.snapshot());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"interval_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"serve_requests_total:rate\""),
              std::string::npos);

    // Empty recorder: still valid JSON.
    FlightRecorder fresh([] { return MetricsSnapshot(); }, cfg);
    EXPECT_TRUE(JsonChecker(toTimeseriesJson(fresh.snapshot())).valid());
}

//---------------------------------------------------------------------
// Dashboard row math (tools/tool_common.hh, shared by sap_top and
// sap_stats)
//---------------------------------------------------------------------

TEST(DashboardRow, ComputesPerIntervalColumns)
{
    MetricsSnapshot delta;
    delta.counters["serve_requests_total"] = 200;
    delta.counters["serve_failures_total"] = 4;
    delta.counters["plan_cache_hits_total"] = 30;
    delta.counters["plan_cache_misses_total"] = 10;
    delta.counters["net_bytes_received_total"] = 1000;
    delta.counters["net_bytes_sent_total"] = 3000;
    delta.gauges["serve_queue_depth"] = GaugeValue{7, GaugeAgg::Sum};
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(100.0);
    delta.histograms["serve_latency_micros"] = h.snapshot();

    tools::DashboardRow row = tools::dashboardRow(delta, 2.0);
    EXPECT_NEAR(row.reqPerSec, 100.0, 1e-9);
    EXPECT_NEAR(row.failPerSec, 2.0, 1e-9);
    EXPECT_NEAR(row.cacheHitRatio, 0.75, 1e-9);
    EXPECT_NEAR(row.bytesInPerSec, 500.0, 1e-9);
    EXPECT_NEAR(row.bytesOutPerSec, 1500.0, 1e-9);
    EXPECT_EQ(row.queueDepth, 7.0);
    EXPECT_GT(row.p50Micros, 50.0);
    EXPECT_LT(row.p99Micros, 200.0);

    // An empty interval computes all-zero, no division hazards.
    tools::DashboardRow idle =
        tools::dashboardRow(MetricsSnapshot(), 1.0);
    EXPECT_EQ(idle.reqPerSec, 0.0);
    EXPECT_EQ(idle.cacheHitRatio, 0.0);
    EXPECT_EQ(idle.p99Micros, 0.0);
}

//---------------------------------------------------------------------
// Exposition-format checker self-test
//---------------------------------------------------------------------

TEST(PromChecker, AcceptsValidRejectsInvalid)
{
    EXPECT_TRUE(PromChecker("# TYPE a counter\na 1\n").valid());
    EXPECT_TRUE(PromChecker("# TYPE a_micros histogram\n"
                            "a_micros_bucket{le=\"0.5\"} 1\n"
                            "a_micros_bucket{le=\"+Inf\"} 2\n"
                            "a_micros_sum 3.5\n"
                            "a_micros_count 2\n")
                    .valid());
    EXPECT_TRUE(
        PromChecker("# TYPE g gauge\ng{x=\"a\\\\b\\\"c\\nd\"} -2e-3\n")
            .valid());

    // Sample without a TYPE declaration.
    PromChecker undeclared("b 1\n");
    EXPECT_FALSE(undeclared.valid());
    // Raw quote inside a label value.
    EXPECT_FALSE(
        PromChecker("# TYPE g gauge\ng{x=\"a\"b\"} 1\n").valid());
    // Bad escape in a label value.
    EXPECT_FALSE(
        PromChecker("# TYPE g gauge\ng{x=\"a\\tb\"} 1\n").valid());
    // Garbage value.
    EXPECT_FALSE(PromChecker("# TYPE a counter\na one\n").valid());
    // Missing trailing newline.
    EXPECT_FALSE(PromChecker("# TYPE a counter\na 1").valid());
    // Histograms expose only suffixed samples.
    EXPECT_FALSE(
        PromChecker("# TYPE h histogram\nh 1\n").valid());
}

TEST(PromChecker, AcceptsRenderPrometheusOutput)
{
    MetricsSnapshot snap;
    snap.counters["serve_requests_total"] = 12;
    snap.gauges["serve_queue_depth"] = GaugeValue{3, GaugeAgg::Sum};
    Histogram h;
    h.record(100.0);
    h.record(1e12); // overflow bucket → le="+Inf" only
    snap.histograms["serve_latency_micros"] = h.snapshot();

    PromChecker plain(renderPrometheus(snap));
    EXPECT_TRUE(plain.valid()) << plain.error();

    std::map<std::string, std::string> labels;
    labels["instance"] = "a\\b \"c\"\nd";
    const std::string text = renderPrometheus(snap, labels);
    PromChecker labeled(text);
    EXPECT_TRUE(labeled.valid()) << labeled.error() << "\n" << text;
}

//---------------------------------------------------------------------
// Loopback: the served admin plane
//---------------------------------------------------------------------

/** A strictly parsed HTTP response. */
struct ParsedResponse
{
    bool ok = false;     ///< parse succeeded
    int status = 0;
    std::map<std::string, std::string> headers; ///< lowercased keys
    std::string body;
    std::string error;
};

/** One blocking HTTP exchange over loopback: send @p raw, read to
 *  EOF (the server always closes), parse strictly. */
ParsedResponse
httpExchange(std::uint16_t port, const std::string &raw)
{
    ParsedResponse out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        out.error = "connect failed";
        return out;
    }
    std::size_t off = 0;
    while (off < raw.size()) {
        ssize_t n = ::send(fd, raw.data() + off, raw.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    if (resp.empty()) {
        out.error = "connection closed with no response";
        return out;
    }
    const std::size_t headEnd = resp.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        out.error = "no header terminator";
        return out;
    }
    const std::string head = resp.substr(0, headEnd);
    out.body = resp.substr(headEnd + 4);

    // Status line: HTTP/1.1 NNN Reason.
    const std::size_t eol = head.find("\r\n");
    const std::string statusLine = head.substr(0, eol);
    if (statusLine.rfind("HTTP/1.1 ", 0) != 0 ||
        statusLine.size() < 13 || statusLine[12] != ' ') {
        out.error = "bad status line: " + statusLine;
        return out;
    }
    out.status = std::stoi(statusLine.substr(9, 3));

    std::size_t pos = eol == std::string::npos ? head.size() : eol + 2;
    while (pos < head.size()) {
        std::size_t lineEnd = head.find("\r\n", pos);
        const std::string line = head.substr(pos, lineEnd - pos);
        pos = lineEnd == std::string::npos ? head.size() : lineEnd + 2;
        const std::size_t colon = line.find(": ");
        if (colon == std::string::npos) {
            out.error = "bad header line: " + line;
            return out;
        }
        std::string key = line.substr(0, colon);
        for (char &c : key)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        out.headers[key] = line.substr(colon + 2);
    }

    // The strict contract every response must honor.
    auto cl = out.headers.find("content-length");
    if (cl == out.headers.end()) {
        out.error = "missing Content-Length";
        return out;
    }
    if (std::stoul(cl->second) != out.body.size()) {
        out.error = "Content-Length " + cl->second + " != body " +
                    std::to_string(out.body.size());
        return out;
    }
    if (!out.headers.count("content-type")) {
        out.error = "missing Content-Type";
        return out;
    }
    out.ok = true;
    return out;
}

ParsedResponse
httpGet(std::uint16_t port, const std::string &target)
{
    return httpExchange(port,
                        "GET " + target + " HTTP/1.1\r\n"
                        "Host: 127.0.0.1\r\n\r\n");
}

NetServer::Options
adminServerOptions()
{
    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.cluster.threadsPerShard = 2;
    opts.adminEnabled = true;
    // Fast sampler so /timeseriesz fills within the test.
    opts.samplerIntervalSeconds = 0.05;
    opts.trace.enabled = true;
    opts.trace.sampleEvery = 1;
    return opts;
}

ServeRequest
matVecRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(n, n, seed),
                                  randomIntVec(n, seed + 1),
                                  randomIntVec(n, seed + 2), w);
    return req;
}

TEST(HttpAdmin, ServesEveryEndpointStrictly)
{
    NetServer server(adminServerOptions());
    ASSERT_TRUE(server.start()) << server.error();
    ASSERT_NE(server.adminPort(), 0);

    // Put some traffic through so every surface has data.
    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    for (int i = 0; i < 8; ++i) {
        NetClient::Result r = client.submit(matVecRequest(500 + i));
        ASSERT_TRUE(r.transportOk && r.response.ok);
    }

    // Index page.
    ParsedResponse index = httpGet(server.adminPort(), "/");
    ASSERT_TRUE(index.ok) << index.error;
    EXPECT_EQ(index.status, 200);
    EXPECT_NE(index.body.find("/metrics"), std::string::npos);

    // /metrics: valid exposition with the serving metrics present.
    ParsedResponse metrics = httpGet(server.adminPort(), "/metrics");
    ASSERT_TRUE(metrics.ok) << metrics.error;
    EXPECT_EQ(metrics.status, 200);
    EXPECT_EQ(metrics.headers["content-type"].rfind("text/plain", 0),
              0u);
    PromChecker prom(metrics.body);
    EXPECT_TRUE(prom.valid()) << prom.error();
    EXPECT_NE(metrics.body.find("serve_requests_total 8"),
              std::string::npos)
        << metrics.body;

    // /varz: strict JSON of the same snapshot.
    ParsedResponse varz = httpGet(server.adminPort(), "/varz");
    ASSERT_TRUE(varz.ok) << varz.error;
    EXPECT_EQ(varz.status, 200);
    EXPECT_EQ(varz.headers["content-type"], "application/json");
    EXPECT_TRUE(JsonChecker(varz.body).valid()) << varz.body;
    EXPECT_NE(varz.body.find("\"serve_requests_total\":8"),
              std::string::npos);

    // /healthz and /readyz: healthy under no load.
    ParsedResponse healthz = httpGet(server.adminPort(), "/healthz");
    ASSERT_TRUE(healthz.ok) << healthz.error;
    EXPECT_EQ(healthz.status, 200);
    EXPECT_EQ(healthz.body, "ok\n");
    ParsedResponse readyz = httpGet(server.adminPort(), "/readyz");
    ASSERT_TRUE(readyz.ok) << readyz.error;
    EXPECT_EQ(readyz.status, 200);

    // /tracez: strict JSON; committed traces from the traffic above.
    ParsedResponse tracez = httpGet(server.adminPort(), "/tracez");
    ASSERT_TRUE(tracez.ok) << tracez.error;
    EXPECT_EQ(tracez.status, 200);
    EXPECT_TRUE(JsonChecker(tracez.body).valid()) << tracez.body;
    EXPECT_NE(tracez.body.find("\"total_committed\""),
              std::string::npos);

    // /tracez?format=chrome: a Perfetto-loadable download.
    ParsedResponse chrome =
        httpGet(server.adminPort(), "/tracez?format=chrome");
    ASSERT_TRUE(chrome.ok) << chrome.error;
    EXPECT_TRUE(JsonChecker(chrome.body).valid());
    EXPECT_NE(chrome.body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.headers["content-disposition"].find("attachment"),
              std::string::npos);

    // /timeseriesz: wait for the sampler to tick, then strict JSON.
    const FlightRecorder *rec = server.flightRecorder();
    ASSERT_NE(rec, nullptr);
    for (int spin = 0; spin < 400 && rec->samplesTaken() < 3; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GE(rec->samplesTaken(), 3u);
    ParsedResponse ts = httpGet(server.adminPort(), "/timeseriesz");
    ASSERT_TRUE(ts.ok) << ts.error;
    EXPECT_EQ(ts.status, 200);
    EXPECT_TRUE(JsonChecker(ts.body).valid()) << ts.body;

    // HEAD: headers with the body's Content-Length, empty body. The
    // parser treats the body as absent, so Content-Length won't
    // match — exchange manually.
    ParsedResponse head = httpExchange(server.adminPort(),
                                       "HEAD /healthz HTTP/1.1\r\n"
                                       "Host: x\r\n\r\n");
    EXPECT_FALSE(head.ok); // Content-Length > 0 with empty body
    EXPECT_EQ(head.status, 200);
    EXPECT_TRUE(head.body.empty());

    // Unknown path.
    ParsedResponse missing = httpGet(server.adminPort(), "/nope");
    ASSERT_TRUE(missing.ok) << missing.error;
    EXPECT_EQ(missing.status, 404);

    server.stop();
}

TEST(HttpAdmin, MalformedOversizedAndNonGetNeverCrash)
{
    NetServer server(adminServerOptions());
    ASSERT_TRUE(server.start()) << server.error();
    const std::uint16_t port = server.adminPort();

    // POST → 405 with an Allow header.
    ParsedResponse post = httpExchange(
        port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_TRUE(post.ok) << post.error;
    EXPECT_EQ(post.status, 405);
    EXPECT_EQ(post.headers["allow"], "GET, HEAD");

    // Malformed request lines → 400.
    for (const char *bad :
         {"GARBAGE\r\n\r\n", "GET /\r\n\r\n",
          "GET / HTTP/9.9\r\n\r\n",
          "GET / HTTP/1.1\r\nbad header\r\n\r\n"}) {
        ParsedResponse resp = httpExchange(port, bad);
        ASSERT_TRUE(resp.ok) << resp.error << " for " << bad;
        EXPECT_EQ(resp.status, 400) << bad;
    }

    // Binary garbage (embedded NULs) → 400, not a hang or crash.
    ParsedResponse binary = httpExchange(
        port, std::string("\x00\x01\x02\xff\xfe garbage \x00", 15));
    ASSERT_TRUE(binary.ok) << binary.error;
    EXPECT_EQ(binary.status, 400);

    // Oversized head → 431.
    std::string big = "GET /metrics HTTP/1.1\r\n";
    while (big.size() < 64 * 1024)
        big += "X-Padding: " + std::string(512, 'a') + "\r\n";
    big += "\r\n";
    ParsedResponse oversized = httpExchange(port, big);
    ASSERT_TRUE(oversized.ok) << oversized.error;
    EXPECT_EQ(oversized.status, 431);

    // After all of that, the admin thread still serves.
    ParsedResponse healthz = httpGet(port, "/healthz");
    ASSERT_TRUE(healthz.ok) << healthz.error;
    EXPECT_EQ(healthz.status, 200);
    EXPECT_GE(server.cluster().shardCount(), 1u);

    server.stop();
}

TEST(HttpAdmin, HealthzFlipsUnderSaturationAndRecovers)
{
    NetServer::Options opts;
    // One slow lane: a single worker on a single shard, so a burst
    // of requests genuinely queues.
    opts.cluster.shards = 1;
    opts.cluster.threadsPerShard = 1;
    opts.adminEnabled = true;
    opts.health.degradedQueueDepth = 2;
    opts.health.unhealthyQueueDepth = 8;
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();
    const std::uint16_t port = server.adminPort();

    ParsedResponse before = httpGet(port, "/healthz");
    ASSERT_TRUE(before.ok) << before.error;
    EXPECT_EQ(before.status, 200);

    // Saturate: pipeline a batch big enough to hold the queue above
    // the unhealthy threshold while the single worker grinds. Narrow
    // bandwidth (w=1) makes each simulated matvec slow enough that
    // the drain takes visibly long even on a fast machine.
    std::vector<ServeRequest> burst;
    for (int i = 0; i < 192; ++i)
        burst.push_back(matVecRequest(900 + 3 * i, 64, 1));
    std::atomic<bool> batchDone{false};
    std::thread submitter([&] {
        NetClient client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
        client.submitBatch(burst);
        batchDone.store(true);
    });

    // Poll /healthz until it reports saturation (503).
    bool saw503 = false;
    for (int spin = 0; spin < 2000 && !saw503; ++spin) {
        ParsedResponse during = httpGet(port, "/healthz");
        ASSERT_TRUE(during.ok) << during.error;
        if (during.status == 503) {
            saw503 = true;
            EXPECT_NE(during.body.find("queue depth"),
                      std::string::npos)
                << during.body;
        }
        if (batchDone.load())
            break;
    }
    submitter.join();
    EXPECT_TRUE(saw503) << "healthz never reported saturation";

    // Drained: /healthz recovers to 200 (hysteresis releases once
    // the queue is fully below the degraded threshold).
    bool recovered = false;
    for (int spin = 0; spin < 2000 && !recovered; ++spin) {
        ParsedResponse after = httpGet(port, "/healthz");
        ASSERT_TRUE(after.ok) << after.error;
        recovered = after.status == 200;
        if (!recovered)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(recovered) << "healthz never recovered after drain";

    // readyz flips to 503 on stop (not serving).
    server.stop();
    EXPECT_FALSE(server.running());

    server.stop(); // idempotent
}

TEST(HttpAdmin, DisabledAdminPlaneCostsNothing)
{
    NetServer::Options opts;
    opts.cluster.shards = 1;
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();
    EXPECT_EQ(server.adminPort(), 0);
    EXPECT_EQ(server.flightRecorder(), nullptr);
    // healthReport degrades to lifecycle-only.
    HealthReport report = server.healthReport();
    EXPECT_TRUE(report.live);
    EXPECT_TRUE(report.ready);
    server.stop();
    EXPECT_FALSE(server.healthReport().ready);
}

} // namespace
} // namespace sap
