/**
 * @file
 * Wire-protocol unit and property tests: encode/decode round-trips
 * over randomized requests for all three problem kinds, incremental
 * frame decoding under adversarial chunking, and the malformed-
 * payload catalogue — every bad input must fail cleanly with a
 * reason, never crash or over-read.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "mat/generate.hh"
#include "net/protocol.hh"

namespace sap {
namespace {

//---------------------------------------------------------------------
// Round-trip properties
//---------------------------------------------------------------------

/** Randomized request shapes per seed, mirroring the property suite. */
class NetRoundTrip : public ::testing::TestWithParam<int>
{
  protected:
    ServeRequest
    drawRequest()
    {
        Rng rng(7000 + GetParam());
        Index n = rng.uniformInt(1, 10);
        Index m = rng.uniformInt(1, 10);
        Index w = rng.uniformInt(1, 4);
        std::uint64_t seed = 7100 + GetParam();
        ServeRequest req;
        req.crossCheck = GetParam() % 2 == 0;
        req.plan.mode = static_cast<ExecMode>(GetParam() % 3);
        switch (GetParam() % 3) {
        case 0:
            req.engine = "linear";
            req.plan = EnginePlan::matVec(
                randomIntDense(n, m, seed), randomIntVec(m, seed + 1),
                randomIntVec(n, seed + 2), w);
            break;
        case 1: {
            Index p = rng.uniformInt(1, 10);
            req.engine = "hex";
            req.plan = EnginePlan::matMul(
                randomIntDense(n, p, seed),
                randomIntDense(p, m, seed + 1),
                randomIntDense(n, m, seed + 2), w);
            break;
        }
        default:
            req.engine = "tri";
            req.plan = EnginePlan::triSolve(
                randomLowerTriangular(n, seed),
                randomIntVec(n, seed + 1), w);
            break;
        }
        return req;
    }
};

TEST_P(NetRoundTrip, SubmitEncodeDecodeIsIdentity)
{
    ServeRequest req = drawRequest();
    ServeRequest back;
    std::string err;
    ASSERT_TRUE(decodeSubmit(encodeSubmit(req), &back, &err)) << err;
    EXPECT_EQ(back.engine, req.engine);
    EXPECT_EQ(back.plan.kind, req.plan.kind);
    EXPECT_EQ(back.plan.w, req.plan.w);
    EXPECT_EQ(back.crossCheck, req.crossCheck);
    EXPECT_EQ(back.plan.mode, req.plan.mode);
    EXPECT_TRUE(back.plan.a == req.plan.a);
    EXPECT_TRUE(back.plan.x == req.plan.x);
    EXPECT_TRUE(back.plan.b == req.plan.b);
    EXPECT_TRUE(back.plan.bmat == req.plan.bmat);
    EXPECT_TRUE(back.plan.e == req.plan.e);
}

TEST_P(NetRoundTrip, ResponseEncodeDecodeIsIdentity)
{
    Rng rng(7300 + GetParam());
    WireResponse resp;
    resp.ok = GetParam() % 4 != 0;
    resp.error = resp.ok ? "" : "engine 'nope' not found";
    resp.cacheHit = GetParam() % 2 == 0;
    resp.crossCheckOk = GetParam() % 3 != 0;
    resp.latencyMicros = rng.uniformReal(0, 1e6);
    resp.simCycles = rng.uniformInt(0, 1 << 20);
    resp.y = randomIntVec(rng.uniformInt(0, 12), 7400 + GetParam());
    resp.c = randomIntDense(rng.uniformInt(1, 6),
                            rng.uniformInt(1, 6), 7500 + GetParam());

    WireResponse back;
    std::string err;
    ASSERT_TRUE(decodeResponse(encodeResponse(resp), &back, &err))
        << err;
    EXPECT_EQ(back.ok, resp.ok);
    EXPECT_EQ(back.error, resp.error);
    EXPECT_EQ(back.cacheHit, resp.cacheHit);
    EXPECT_EQ(back.crossCheckOk, resp.crossCheckOk);
    EXPECT_EQ(back.latencyMicros, resp.latencyMicros);
    EXPECT_EQ(back.simCycles, resp.simCycles);
    EXPECT_TRUE(back.y == resp.y);
    EXPECT_TRUE(back.c == resp.c);
}

TEST_P(NetRoundTrip, FrameSurvivesAdversarialChunking)
{
    // Deliver the frame byte stream in random-sized fragments; the
    // decoder must reassemble the identical frame.
    ServeRequest req = drawRequest();
    std::vector<std::uint8_t> bytes = buildSubmitFrame(
        99 + static_cast<std::uint64_t>(GetParam()), req);

    Rng rng(7600 + GetParam());
    FrameDecoder decoder;
    Frame frame;
    std::string err;
    std::size_t off = 0;
    bool got = false;
    while (off < bytes.size()) {
        std::size_t chunk = static_cast<std::size_t>(rng.uniformInt(
            1, 7));
        chunk = std::min(chunk, bytes.size() - off);
        decoder.feed(bytes.data() + off, chunk);
        off += chunk;
        FrameDecoder::Result res = decoder.next(&frame, &err);
        ASSERT_NE(res, FrameDecoder::Result::Malformed) << err;
        if (res == FrameDecoder::Result::Ok) {
            got = true;
            EXPECT_EQ(off, bytes.size()); // complete exactly at the end
        }
    }
    ASSERT_TRUE(got);
    EXPECT_EQ(frame.header.tag,
              99 + static_cast<std::uint64_t>(GetParam()));
    ServeRequest back;
    ASSERT_TRUE(decodeSubmit(frame.payload, &back, &err)) << err;
    EXPECT_TRUE(back.plan.a == req.plan.a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetRoundTrip, ::testing::Range(0, 18));

TEST(NetProtocol, StatsEncodeDecodeIsIdentity)
{
    ServerStats stats;
    stats.requests = 1234;
    stats.failures = 5;
    stats.crossCheckFailures = 1;
    stats.planCache = {100, 34, 7, 2};
    stats.latency = {1234, 55.5, 40.0, 200.0, 400.25};
    stats.approximatePercentiles = true;
    for (int g = 0; g < 3; ++g) {
        GroupStats group;
        group.key.engine = g == 0 ? "linear" : (g == 1 ? "hex" : "tri");
        group.key.kind = static_cast<ProblemKind>(g);
        group.key.rows = 8 + g;
        group.key.cols = 8;
        group.key.outCols = g == 1 ? 8 : 0;
        group.key.w = 4;
        group.key.mode = static_cast<ExecMode>(g);
        group.requests = 400 + static_cast<std::uint64_t>(g);
        group.cacheHits = 300;
        group.simCycles = 99999;
        group.latency = {400, 50.0, 45.0, 180.0, 300.0};
        stats.groups.push_back(group);
    }

    ServerStats back;
    std::string err;
    ASSERT_TRUE(decodeStats(encodeStats(stats), &back, &err)) << err;
    EXPECT_EQ(back.requests, stats.requests);
    EXPECT_EQ(back.failures, stats.failures);
    EXPECT_EQ(back.crossCheckFailures, stats.crossCheckFailures);
    EXPECT_EQ(back.planCache.hits, stats.planCache.hits);
    EXPECT_EQ(back.planCache.collisions, stats.planCache.collisions);
    EXPECT_EQ(back.latency.p99, stats.latency.p99);
    EXPECT_TRUE(back.approximatePercentiles);
    ASSERT_EQ(back.groups.size(), stats.groups.size());
    for (std::size_t i = 0; i < back.groups.size(); ++i) {
        EXPECT_EQ(back.groups[i].key.engine,
                  stats.groups[i].key.engine);
        EXPECT_EQ(back.groups[i].key.kind, stats.groups[i].key.kind);
        EXPECT_EQ(back.groups[i].key.mode, stats.groups[i].key.mode);
        EXPECT_EQ(back.groups[i].key.outCols,
                  stats.groups[i].key.outCols);
        EXPECT_EQ(back.groups[i].requests, stats.groups[i].requests);
        EXPECT_EQ(back.groups[i].latency.p50,
                  stats.groups[i].latency.p50);
    }
}

TEST(NetProtocol, ErrorEncodeDecodeIsIdentity)
{
    std::string back, err;
    ASSERT_TRUE(decodeError(encodeError("zero diagonal at 3"), &back,
                            &err))
        << err;
    EXPECT_EQ(back, "zero diagonal at 3");
}

TEST(NetProtocol, MetricsEncodeDecodeIsIdentity)
{
    MetricsSnapshot snap;
    snap.counters["serve_requests_total"] = 1234;
    snap.counters["net_bytes_received_total"] = 9999999;
    snap.gauges["serve_queue_depth"] = {3.5, GaugeAgg::Sum};
    snap.gauges["serve_cycles_formula_drift"] = {0.07, GaugeAgg::Max};
    Histogram h;
    for (double v : {0.5, 12.0, 12.5, 900.0, 1e7})
        h.record(v);
    snap.histograms["serve_latency_micros"] = h.snapshot();
    snap.histograms["empty_micros"] = HistogramSnapshot{};

    MetricsSnapshot back;
    std::string err;
    ASSERT_TRUE(decodeMetrics(encodeMetrics(snap), &back, &err))
        << err;
    EXPECT_EQ(back.counters, snap.counters);
    ASSERT_EQ(back.gauges.size(), snap.gauges.size());
    for (const auto &[name, gv] : snap.gauges) {
        EXPECT_EQ(back.gauges[name].value, gv.value) << name;
        EXPECT_EQ(back.gauges[name].agg, gv.agg) << name;
    }
    ASSERT_EQ(back.histograms.size(), snap.histograms.size());
    for (const auto &[name, hist] : snap.histograms) {
        const HistogramSnapshot &b = back.histograms[name];
        EXPECT_EQ(b.count, hist.count) << name;
        EXPECT_EQ(b.sum, hist.sum) << name;
        EXPECT_EQ(b.min, hist.min) << name;
        EXPECT_EQ(b.max, hist.max) << name;
        EXPECT_EQ(b.bucketIndex, hist.bucketIndex) << name;
        EXPECT_EQ(b.bucketCount, hist.bucketCount) << name;
    }
}

TEST(NetProtocol, EmptyMetricsSnapshotRoundTrips)
{
    MetricsSnapshot back;
    std::string err;
    ASSERT_TRUE(
        decodeMetrics(encodeMetrics(MetricsSnapshot{}), &back, &err))
        << err;
    EXPECT_TRUE(back.counters.empty());
    EXPECT_TRUE(back.gauges.empty());
    EXPECT_TRUE(back.histograms.empty());
}

TEST(NetProtocol, TruncatedMetricsPayloadFailsCleanly)
{
    MetricsSnapshot snap;
    snap.counters["a_total"] = 7;
    snap.gauges["g"] = {1.0, GaugeAgg::Max};
    Histogram h;
    h.record(3.0);
    h.record(77.0);
    snap.histograms["h_micros"] = h.snapshot();

    std::vector<std::uint8_t> payload = encodeMetrics(snap);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() + len);
        MetricsSnapshot out;
        std::string err;
        EXPECT_FALSE(decodeMetrics(cut, &out, &err))
            << "len=" << len;
        EXPECT_FALSE(err.empty()) << "len=" << len;
    }
}

TEST(NetProtocol, MetricsWithCorruptHistogramRejected)
{
    Histogram h;
    h.record(5.0);
    h.record(6.0);
    MetricsSnapshot snap;
    snap.histograms["h_micros"] = h.snapshot();
    std::vector<std::uint8_t> payload = encodeMetrics(snap);

    // Flip the histogram's total count so it disagrees with the
    // bucket sum: the decoder must reject, not trust either number.
    // Layout: u32 counter count (0), u32 gauge count (0), u32 hist
    // count, str name, u64 count <- corrupt the low byte.
    std::size_t at = 4 + 4 + 4 + 4 + std::string("h_micros").size();
    payload[at] ^= 0xFF;
    MetricsSnapshot out;
    std::string err;
    EXPECT_FALSE(decodeMetrics(payload, &out, &err));
    EXPECT_FALSE(err.empty());
}

//---------------------------------------------------------------------
// Frame-level malformations (decoder poisons itself)
//---------------------------------------------------------------------

TEST(NetProtocol, BadMagicPoisonsDecoder)
{
    std::vector<std::uint8_t> bytes = buildPingFrame(1);
    bytes[0] ^= 0xFF;
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    std::string err;
    EXPECT_EQ(decoder.next(&frame, &err),
              FrameDecoder::Result::Malformed);
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
    EXPECT_TRUE(decoder.poisoned());

    // The decoder stays poisoned even across good frames.
    std::vector<std::uint8_t> good = buildPingFrame(2);
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(&frame, &err),
              FrameDecoder::Result::Malformed);
}

TEST(NetProtocol, BadVersionPoisonsDecoder)
{
    std::vector<std::uint8_t> bytes = buildPingFrame(1);
    bytes[4] = 0x7F; // version low byte
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    std::string err;
    EXPECT_EQ(decoder.next(&frame, &err),
              FrameDecoder::Result::Malformed);
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(NetProtocol, OversizedLengthPrefixPoisonsDecoder)
{
    // A header promising 4 GiB must be rejected from the header
    // alone — long before any allocation.
    WireWriter w;
    w.u32(kWireMagic);
    w.u16(kWireVersion);
    w.u16(static_cast<std::uint16_t>(FrameType::Submit));
    w.u64(1);
    w.u32(0xFFFFFFFFu);
    std::vector<std::uint8_t> bytes = w.take();

    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    std::string err;
    EXPECT_EQ(decoder.next(&frame, &err),
              FrameDecoder::Result::Malformed);
    EXPECT_NE(err.find("cap"), std::string::npos) << err;
}

TEST(NetProtocol, UnknownFrameTypeIsDeliveredNotFatal)
{
    // Unknown types keep framing intact; the application layer
    // answers ERROR but the stream survives.
    std::vector<std::uint8_t> bytes =
        buildFrame(static_cast<FrameType>(77), 5, {1, 2, 3});
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    std::string err;
    ASSERT_EQ(decoder.next(&frame, &err), FrameDecoder::Result::Ok);
    EXPECT_EQ(frame.header.type, 77);
    EXPECT_EQ(frame.payload.size(), 3u);

    std::vector<std::uint8_t> good = buildPingFrame(6);
    decoder.feed(good.data(), good.size());
    ASSERT_EQ(decoder.next(&frame, &err), FrameDecoder::Result::Ok);
    EXPECT_EQ(frame.header.tag, 6u);
}

//---------------------------------------------------------------------
// Payload-level malformations (per-request errors)
//---------------------------------------------------------------------

/** A valid matvec SUBMIT payload to mutate. */
std::vector<std::uint8_t>
goodSubmitPayload()
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(3, 3, 1),
                                  randomIntVec(3, 2),
                                  randomIntVec(3, 3), 2);
    return encodeSubmit(req);
}

TEST(NetProtocol, TruncatedSubmitFailsCleanly)
{
    std::vector<std::uint8_t> payload = goodSubmitPayload();
    // Every prefix must fail with a reason, never crash or succeed.
    for (std::size_t len = 0; len < payload.size(); ++len) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              len));
        ServeRequest out;
        std::string err;
        EXPECT_FALSE(decodeSubmit(cut, &out, &err)) << "len=" << len;
        EXPECT_FALSE(err.empty()) << "len=" << len;
    }
}

TEST(NetProtocol, TrailingBytesRejected)
{
    std::vector<std::uint8_t> payload = goodSubmitPayload();
    payload.push_back(0);
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(payload, &out, &err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(NetProtocol, UnknownProblemKindRejected)
{
    // Payload layout: str engine (u32 len + bytes), then the kind
    // byte.
    std::vector<std::uint8_t> payload = goodSubmitPayload();
    payload[4 + 6] = 9; // "linear" is 6 bytes
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(payload, &out, &err));
    EXPECT_NE(err.find("unknown problem kind"), std::string::npos)
        << err;
}

TEST(NetProtocol, ZeroDimensionMatrixRejected)
{
    ServeRequest req;
    req.engine = "linear";
    // Bypass EnginePlan::matVec (it asserts): craft the plan by hand.
    req.plan.kind = ProblemKind::MatVec;
    req.plan.w = 2;
    req.plan.a = Dense<Scalar>(0, 3);
    req.plan.x = randomIntVec(3, 1);
    req.plan.b = Vec<Scalar>(0);
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(encodeSubmit(req), &out, &err));
    EXPECT_NE(err.find("zero-dimension"), std::string::npos) << err;
}

TEST(NetProtocol, NonPositiveArraySizeRejected)
{
    WireWriter w;
    w.str("linear");
    w.u8(0);  // MatVec
    w.i64(0); // w = 0
    w.u8(0);
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(w.take(), &out, &err));
    EXPECT_NE(err.find("array size"), std::string::npos) << err;
}

TEST(NetProtocol, HugeDimensionClaimRejected)
{
    // A dense header claiming 2^40 rows backed by no bytes must be
    // rejected by the reader's remaining-bytes bound.
    WireWriter w;
    w.str("linear");
    w.u8(0);
    w.i64(2);
    w.u8(0);
    w.i64(Index(1) << 40); // rows
    w.i64(4);              // cols
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(w.take(), &out, &err));
}

TEST(NetProtocol, NegativeVectorLengthRejected)
{
    WireWriter w;
    w.str("tri");
    w.u8(2); // TriSolve
    w.i64(2);
    w.u8(0);
    w.dense(randomIntDense(2, 2, 1));
    w.i64(-5); // b length
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(w.take(), &out, &err));
}

/** A SUBMIT payload with the flags byte replaced by @p flags. */
std::vector<std::uint8_t>
submitPayloadWithFlags(std::uint8_t flags)
{
    std::vector<std::uint8_t> payload = goodSubmitPayload();
    // Layout: str "linear" (4 + 6 bytes), kind u8, w i64, flags.
    payload[4 + 6 + 1 + 8] = flags;
    return payload;
}

TEST(NetProtocol, LegacyCrossCheckByteStillDecodes)
{
    // Old encoders wrote the crossCheck byte as 0x00/0x01; in the
    // flags reading that is bit 0 with mode bits 00 = Simulate.
    ServeRequest out;
    std::string err;
    ASSERT_TRUE(
        decodeSubmit(submitPayloadWithFlags(0x00), &out, &err))
        << err;
    EXPECT_FALSE(out.crossCheck);
    EXPECT_EQ(out.plan.mode, ExecMode::Simulate);
    ASSERT_TRUE(
        decodeSubmit(submitPayloadWithFlags(0x01), &out, &err))
        << err;
    EXPECT_TRUE(out.crossCheck);
    EXPECT_EQ(out.plan.mode, ExecMode::Simulate);
}

TEST(NetProtocol, SubmitModeBitsDecode)
{
    ServeRequest out;
    std::string err;
    ASSERT_TRUE(decodeSubmit(
        submitPayloadWithFlags(
            static_cast<std::uint8_t>(1u << kSubmitModeShift)),
        &out, &err))
        << err;
    EXPECT_EQ(out.plan.mode, ExecMode::Fast);
    ASSERT_TRUE(decodeSubmit(
        submitPayloadWithFlags(
            static_cast<std::uint8_t>(2u << kSubmitModeShift)),
        &out, &err))
        << err;
    EXPECT_EQ(out.plan.mode, ExecMode::Validate);
}

TEST(NetProtocol, UnknownExecutionModeRejected)
{
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(
        submitPayloadWithFlags(
            static_cast<std::uint8_t>(3u << kSubmitModeShift)),
        &out, &err));
    EXPECT_NE(err.find("unknown execution mode"), std::string::npos)
        << err;
}

TEST(NetProtocol, RecordTraceOverTheWireRejectedNotDropped)
{
    // A client encoding recordTrace would otherwise silently lose
    // the trace — RESPONSE frames cannot carry it — so the server
    // must refuse the request outright.
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(3, 3, 1),
                                  randomIntVec(3, 2),
                                  randomIntVec(3, 3), 2);
    req.plan.recordTrace = true;
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(encodeSubmit(req), &out, &err));
    EXPECT_NE(err.find("no trace"), std::string::npos) << err;
}

TEST(NetProtocol, ReservedSubmitFlagBitsRejected)
{
    // Bit 4 is the trace-context flag now; 5-7 stay reserved.
    for (std::uint8_t bit = 5; bit < 8; ++bit) {
        ServeRequest out;
        std::string err;
        EXPECT_FALSE(decodeSubmit(
            submitPayloadWithFlags(
                static_cast<std::uint8_t>(1u << bit)),
            &out, &err));
        EXPECT_NE(err.find("reserved"), std::string::npos) << err;
    }
}

TEST(NetProtocol, TruncatedStatsAndErrorPayloadsFailCleanly)
{
    ServerStats stats;
    stats.requests = 10;
    GroupStats g;
    g.key.engine = "linear";
    g.requests = 10;
    stats.groups.push_back(g);
    std::vector<std::uint8_t> payload = encodeStats(stats);
    for (std::size_t len = 0; len < payload.size(); len += 3) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              len));
        ServerStats out;
        std::string err;
        EXPECT_FALSE(decodeStats(cut, &out, &err)) << "len=" << len;
    }
    std::string message, err;
    EXPECT_FALSE(decodeError({1, 2}, &message, &err));
}

//---------------------------------------------------------------------
// Cross-tier trace context and the TRACES payload
//---------------------------------------------------------------------

TraceContext
sampleContext()
{
    TraceContext ctx;
    ctx.traceIdHi = 0x0123456789abcdefull;
    ctx.traceIdLo = 0xfedcba9876543210ull;
    ctx.sampled = true;
    ctx.originNanos = 123456789;
    ctx.attempt = 2;
    return ctx;
}

TEST(NetProtocol, SubmitCarriesTraceContextBehindFlagBit)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(3, 3, 1),
                                  randomIntVec(3, 2),
                                  randomIntVec(3, 3), 2);
    req.traceContext = sampleContext();
    std::vector<std::uint8_t> payload = encodeSubmit(req);
    ServeRequest back;
    std::string err;
    ASSERT_TRUE(decodeSubmit(payload, &back, &err)) << err;
    EXPECT_EQ(back.traceContext.traceIdHi, req.traceContext.traceIdHi);
    EXPECT_EQ(back.traceContext.traceIdLo, req.traceContext.traceIdLo);
    EXPECT_EQ(back.traceContext.sampled, req.traceContext.sampled);
    EXPECT_EQ(back.traceContext.originNanos,
              req.traceContext.originNanos);
    EXPECT_EQ(back.traceContext.attempt, req.traceContext.attempt);
    // A context-free request encodes without the flag bit and decodes
    // to an invalid (absent) context.
    req.traceContext = TraceContext{};
    ASSERT_TRUE(decodeSubmit(encodeSubmit(req), &back, &err)) << err;
    EXPECT_FALSE(back.traceContext.valid());
}

TEST(NetProtocol, TracedSubmitEveryPrefixFailsCleanly)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(2, 2, 1),
                                  randomIntVec(2, 2),
                                  randomIntVec(2, 3), 1);
    req.traceContext = sampleContext();
    std::vector<std::uint8_t> payload = encodeSubmit(req);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              len));
        ServeRequest out;
        std::string err;
        EXPECT_FALSE(decodeSubmit(cut, &out, &err)) << "len=" << len;
        EXPECT_FALSE(err.empty()) << "len=" << len;
    }
}

/** The ctx block starts right after the flags byte; find it by
 *  layout: str engine + kind u8 + w i64 + flags u8. */
std::size_t
submitCtxOffset()
{
    return 4 + 6 + 1 + 8 + 1;
}

TEST(NetProtocol, ReservedTraceContextFlagBitsRejected)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(3, 3, 1),
                                  randomIntVec(3, 2),
                                  randomIntVec(3, 3), 2);
    req.traceContext = sampleContext();
    std::vector<std::uint8_t> payload = encodeSubmit(req);
    // ctx layout: u64 hi, u64 lo, u8 flags, ...
    payload[submitCtxOffset() + 16] |= 0x80;
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(payload, &out, &err));
    EXPECT_NE(err.find("reserved trace-context"), std::string::npos)
        << err;
}

TEST(NetProtocol, AllZeroTraceIdRejected)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(3, 3, 1),
                                  randomIntVec(3, 2),
                                  randomIntVec(3, 3), 2);
    req.traceContext = sampleContext();
    std::vector<std::uint8_t> payload = encodeSubmit(req);
    for (std::size_t i = 0; i < 16; ++i)
        payload[submitCtxOffset() + i] = 0;
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeSubmit(payload, &out, &err));
    EXPECT_NE(err.find("all-zero trace id"), std::string::npos)
        << err;
}

/** The payload of a FORWARD frame built over goodSubmitPayload(). */
std::vector<std::uint8_t>
forwardPayload(const TraceContext *ctx)
{
    std::vector<std::uint8_t> frame =
        buildForwardFrame(1, 0x1122334455667788ull,
                          goodSubmitPayload(), ctx);
    return std::vector<std::uint8_t>(frame.begin() + 20, frame.end());
}

TEST(NetProtocol, ForwardRoundTripsWithAndWithoutContext)
{
    Digest digest = 0;
    ServeRequest out;
    std::string err;
    ASSERT_TRUE(
        decodeForward(forwardPayload(nullptr), &digest, &out, &err))
        << err;
    EXPECT_EQ(digest, 0x1122334455667788ull);
    EXPECT_FALSE(out.traceContext.valid());

    TraceContext ctx = sampleContext();
    ASSERT_TRUE(
        decodeForward(forwardPayload(&ctx), &digest, &out, &err))
        << err;
    EXPECT_TRUE(out.traceContext.valid());
    EXPECT_EQ(out.traceContext.traceIdHi, ctx.traceIdHi);
    EXPECT_EQ(out.traceContext.attempt, ctx.attempt);
}

TEST(NetProtocol, ForwardContextOverridesEmbeddedSubmitContext)
{
    // The gateway owns the attempt counter: when both the FORWARD
    // envelope and the embedded SUBMIT carry a context, the
    // envelope's wins.
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(3, 3, 1),
                                  randomIntVec(3, 2),
                                  randomIntVec(3, 3), 2);
    req.traceContext = sampleContext();
    req.traceContext.attempt = 0;
    TraceContext fwd_ctx = sampleContext();
    fwd_ctx.attempt = 2;
    std::vector<std::uint8_t> frame = buildForwardFrame(
        1, 42, encodeSubmit(req), &fwd_ctx);
    std::vector<std::uint8_t> payload(frame.begin() + 20,
                                      frame.end());
    Digest digest = 0;
    ServeRequest out;
    std::string err;
    ASSERT_TRUE(decodeForward(payload, &digest, &out, &err)) << err;
    EXPECT_EQ(out.traceContext.attempt, 2);
}

TEST(NetProtocol, ForwardBadContextMarkerRejected)
{
    std::vector<std::uint8_t> payload = forwardPayload(nullptr);
    payload[8] = 2; // marker must be 0 or 1
    Digest digest = 0;
    ServeRequest out;
    std::string err;
    EXPECT_FALSE(decodeForward(payload, &digest, &out, &err));
    EXPECT_NE(err.find("trace-context marker"), std::string::npos)
        << err;
}

TEST(NetProtocol, TracedForwardEveryPrefixFailsCleanly)
{
    TraceContext ctx = sampleContext();
    std::vector<std::uint8_t> payload = forwardPayload(&ctx);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              len));
        Digest digest = 0;
        ServeRequest out;
        std::string err;
        EXPECT_FALSE(decodeForward(cut, &digest, &out, &err))
            << "len=" << len;
        EXPECT_FALSE(err.empty()) << "len=" << len;
    }
}

std::vector<RequestTrace>
sampleTraces()
{
    std::vector<RequestTrace> traces;
    RequestTrace t1;
    t1.requestId = 7;
    t1.label = "linear mv 4x4";
    t1.kind = "matvec";
    t1.ok = true;
    t1.cacheHit = true;
    t1.tier = TraceTier::Gateway;
    t1.ctx = sampleContext();
    for (std::size_t s = 0; s < kTraceStages; ++s)
        t1.stageNanos[s] = 1000 * (s + 1);
    t1.events.push_back({"resubmit attempt 1", 4500});
    t1.events.push_back({"resubmit budget spent", 5500});
    traces.push_back(std::move(t1));
    RequestTrace t2;
    t2.requestId = 9;
    t2.label = "hex mm 2x2";
    t2.kind = "matmul";
    t2.ok = false;
    t2.tier = TraceTier::Backend;
    t2.stageNanos[0] = 100;
    t2.stageNanos[7] = 900;
    traces.push_back(std::move(t2));
    return traces;
}

TEST(NetProtocol, TracesEncodeDecodeIsIdentity)
{
    std::vector<std::uint8_t> payload = encodeTraces(sampleTraces(),
                                                     31);
    std::vector<RequestTrace> back;
    std::uint64_t total = 0;
    std::string err;
    ASSERT_TRUE(decodeTraces(payload, &back, &total, &err)) << err;
    EXPECT_EQ(total, 31u);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].requestId, 7u);
    EXPECT_EQ(back[0].label, "linear mv 4x4");
    EXPECT_EQ(back[0].kind, "matvec");
    EXPECT_TRUE(back[0].ok);
    EXPECT_TRUE(back[0].cacheHit);
    EXPECT_EQ(back[0].tier, TraceTier::Gateway);
    EXPECT_TRUE(back[0].ctx.valid());
    EXPECT_EQ(back[0].ctx.traceIdLo, sampleContext().traceIdLo);
    EXPECT_EQ(back[0].ctx.attempt, 2);
    for (std::size_t s = 0; s < kTraceStages; ++s)
        EXPECT_EQ(back[0].stageNanos[s], 1000 * (s + 1));
    ASSERT_EQ(back[0].events.size(), 2u);
    EXPECT_EQ(back[0].events[0].name, "resubmit attempt 1");
    EXPECT_EQ(back[0].events[0].nanos, 4500u);
    EXPECT_EQ(back[1].tier, TraceTier::Backend);
    EXPECT_FALSE(back[1].ctx.valid());
    EXPECT_TRUE(back[1].events.empty());
}

TEST(NetProtocol, EmptyTracesSnapshotRoundTrips)
{
    std::vector<RequestTrace> back;
    std::uint64_t total = 99;
    std::string err;
    ASSERT_TRUE(decodeTraces(encodeTraces({}, 0), &back, &total,
                             &err))
        << err;
    EXPECT_TRUE(back.empty());
    EXPECT_EQ(total, 0u);
}

TEST(NetProtocol, TracesEveryPrefixFailsCleanly)
{
    std::vector<std::uint8_t> payload = encodeTraces(sampleTraces(),
                                                     31);
    for (std::size_t len = 0; len < payload.size(); ++len) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              len));
        std::vector<RequestTrace> back;
        std::uint64_t total = 0;
        std::string err;
        EXPECT_FALSE(decodeTraces(cut, &back, &total, &err))
            << "len=" << len;
        EXPECT_FALSE(err.empty()) << "len=" << len;
    }
}

TEST(NetProtocol, TracesTrailingBytesRejected)
{
    std::vector<std::uint8_t> payload = encodeTraces(sampleTraces(),
                                                     31);
    payload.push_back(0);
    std::vector<RequestTrace> back;
    std::uint64_t total = 0;
    std::string err;
    EXPECT_FALSE(decodeTraces(payload, &back, &total, &err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(NetProtocol, TracesBadTierAndCountRejected)
{
    std::vector<std::uint8_t> payload = encodeTraces(sampleTraces(),
                                                     31);
    // Record layout after the 12-byte header: u64 id, str label
    // (4 + 13), str kind (4 + 6), ok u8, cacheHit u8, then tier.
    const std::size_t tier_at = 12 + 8 + 4 + 13 + 4 + 6 + 1 + 1;
    {
        std::vector<std::uint8_t> bad = payload;
        bad[tier_at] = 7;
        std::vector<RequestTrace> back;
        std::uint64_t total = 0;
        std::string err;
        EXPECT_FALSE(decodeTraces(bad, &back, &total, &err));
        EXPECT_NE(err.find("tier"), std::string::npos) << err;
    }
    {
        // A count claiming far more records than the payload holds
        // must be rejected up front, not by allocation.
        std::vector<std::uint8_t> bad = payload;
        bad[8] = 0xff;
        bad[9] = 0xff;
        bad[10] = 0xff;
        bad[11] = 0x7f;
        std::vector<RequestTrace> back;
        std::uint64_t total = 0;
        std::string err;
        EXPECT_FALSE(decodeTraces(bad, &back, &total, &err));
        EXPECT_NE(err.find("exceeds payload"), std::string::npos)
            << err;
    }
}

} // namespace
} // namespace sap
