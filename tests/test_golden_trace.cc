/**
 * @file
 * Golden-trace regression tests: the port-level schedules of checked-
 * in CSV traces (tests/data/) are re-simulated and diffed, so any
 * change to the linear array's I/O schedule shows up as a reviewable
 * CSV diff instead of a silent behavior shift.
 *
 * The workloads avoid RNG entirely (coordinate-coded matrices,
 * index-derived vectors): the goldens are identical on every
 * platform and standard library.
 *
 * Regenerating after an *intentional* schedule change:
 *   SAP_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
 * then review and commit the rewritten CSVs under tests/data/.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/registry.hh"
#include "mat/generate.hh"
#include "sim/trace.hh"

#ifndef SAP_TEST_DATA_DIR
#error "SAP_TEST_DATA_DIR must point at tests/data"
#endif

namespace sap {
namespace {

/** Deterministic mat-vec plan for one golden shape. */
EnginePlan
goldenPlan(Index n, Index m, Index w)
{
    Dense<Scalar> a = coordinateCoded(n, m);
    Vec<Scalar> x(m), b(n);
    for (Index i = 0; i < m; ++i)
        x[i] = static_cast<Scalar>(i + 1);
    for (Index i = 0; i < n; ++i)
        b[i] = static_cast<Scalar>(100 + i);
    EnginePlan plan = EnginePlan::matVec(a, x, b, w);
    plan.recordTrace = true;
    return plan;
}

void
checkGolden(const std::string &file, Index n, Index m, Index w)
{
    const std::string path =
        std::string(SAP_TEST_DATA_DIR) + "/" + file;
    EngineRunResult r = makeEngine("linear")->run(goldenPlan(n, m, w));
    ASSERT_FALSE(r.trace.empty());

    if (std::getenv("SAP_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        writeCsv(os, r.trace);
    }

    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing golden " << path
        << " (generate with SAP_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << is.rdbuf();
    Trace golden = traceFromCsv(buf.str());

    TraceDiff diff = diffTraces(golden, r.trace);
    EXPECT_TRUE(diff.identical)
        << diff.mismatches << " schedule mismatches vs " << file
        << "; first: "
        << (diff.lines.empty() ? std::string("?") : diff.lines[0]);
}

TEST(GoldenTrace, LinearW3Square)
{
    // The paper's worked example shape: 6×6 on a w=3 array.
    checkGolden("trace_linear_w3_n6_m6.csv", 6, 6, 3);
}

TEST(GoldenTrace, LinearW4PaddedRectangular)
{
    // Non-multiple dimensions exercise the zero-padding schedule.
    checkGolden("trace_linear_w4_n5_m13.csv", 5, 13, 4);
}

} // namespace
} // namespace sap
