/**
 * @file
 * Golden-trace regression tests: the port-level schedules of checked-
 * in CSV traces (tests/data/) are re-simulated and diffed, so any
 * change to the linear array's I/O schedule shows up as a reviewable
 * CSV diff instead of a silent behavior shift.
 *
 * The workloads avoid RNG entirely (coordinate-coded matrices,
 * index-derived vectors): the goldens are identical on every
 * platform and standard library.
 *
 * Regenerating after an *intentional* schedule change:
 *   SAP_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
 * then review and commit the rewritten CSVs under tests/data/.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/registry.hh"
#include "mat/generate.hh"
#include "sim/trace.hh"

#ifndef SAP_TEST_DATA_DIR
#error "SAP_TEST_DATA_DIR must point at tests/data"
#endif

namespace sap {
namespace {

/** Deterministic mat-vec plan for one golden shape. */
EnginePlan
goldenPlan(Index n, Index m, Index w)
{
    Dense<Scalar> a = coordinateCoded(n, m);
    Vec<Scalar> x(m), b(n);
    for (Index i = 0; i < m; ++i)
        x[i] = static_cast<Scalar>(i + 1);
    for (Index i = 0; i < n; ++i)
        b[i] = static_cast<Scalar>(100 + i);
    EnginePlan plan = EnginePlan::matVec(a, x, b, w);
    plan.recordTrace = true;
    return plan;
}

/**
 * Deterministic trisolve plan: unit diagonal and small RNG-free
 * coefficients keep every intermediate an exact (and small)
 * integer on every platform.
 */
EnginePlan
goldenTriPlan(Index n, Index w)
{
    Dense<Scalar> l(n, n);
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < i; ++j)
            l(i, j) = static_cast<Scalar>((i + j) % 3 + 1);
        l(i, i) = 1;
    }
    Vec<Scalar> b(n);
    for (Index i = 0; i < n; ++i)
        b[i] = static_cast<Scalar>(i + 1);
    EnginePlan plan = EnginePlan::triSolve(l, b, w);
    plan.recordTrace = true;
    return plan;
}

/** Deterministic mesh mat-mul plan (coordinate-coded operands). */
EnginePlan
goldenMeshPlan(Index n, Index p, Index m, Index w)
{
    Dense<Scalar> e(n, m);
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < m; ++j)
            e(i, j) = static_cast<Scalar>(10 * (i + 1) + j);
    EnginePlan plan = EnginePlan::matMul(
        coordinateCoded(n, p), coordinateCoded(p, m), e, w);
    plan.recordTrace = true;
    return plan;
}

void
checkGoldenTrace(const std::string &file, const std::string &engine,
                 const EnginePlan &plan)
{
    const std::string path =
        std::string(SAP_TEST_DATA_DIR) + "/" + file;
    EngineRunResult r = makeEngine(engine)->run(plan);
    ASSERT_FALSE(r.trace.empty());

    if (std::getenv("SAP_REGEN_GOLDEN") != nullptr) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        writeCsv(os, r.trace);
    }

    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing golden " << path
        << " (generate with SAP_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << is.rdbuf();
    Trace golden = traceFromCsv(buf.str());

    TraceDiff diff = diffTraces(golden, r.trace);
    EXPECT_TRUE(diff.identical)
        << diff.mismatches << " schedule mismatches vs " << file
        << "; first: "
        << (diff.lines.empty() ? std::string("?") : diff.lines[0]);
}

void
checkGolden(const std::string &file, Index n, Index m, Index w)
{
    checkGoldenTrace(file, "linear", goldenPlan(n, m, w));
}

TEST(GoldenTrace, LinearW3Square)
{
    // The paper's worked example shape: 6×6 on a w=3 array.
    checkGolden("trace_linear_w3_n6_m6.csv", 6, 6, 3);
}

TEST(GoldenTrace, LinearW4PaddedRectangular)
{
    // Non-multiple dimensions exercise the zero-padding schedule.
    checkGolden("trace_linear_w4_n5_m13.csv", 5, 13, 4);
}

TEST(GoldenTrace, TriW3Padded)
{
    // n = 7 on a w = 3 array: three diagonal blocks, padded last
    // block, two panel updates between them.
    checkGoldenTrace("trace_tri_w3_n7.csv", "tri",
                     goldenTriPlan(7, 3));
}

TEST(GoldenTrace, MeshW2PaddedRectangular)
{
    // 4×5·5×3 on a 2×2 mesh: all three block counts differ and the
    // padding path is exercised.
    checkGoldenTrace("trace_mesh_w2_n4_p5_m3.csv", "mesh",
                     goldenMeshPlan(4, 5, 3, 2));
}

} // namespace
} // namespace sap
