/**
 * @file
 * Tests of the cluster layer: consistent-hash routing (determinism,
 * coverage, rebalance behavior), shard pinning of plan caches, the
 * async completion-queue and callback surfaces, server-side batch
 * grouping, and malformed-request error paths exercised through the
 * cluster router.
 */

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>

#include "cluster/cluster.hh"
#include "cluster/router.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

namespace sap {
namespace {

ServeRequest
matVecRequest(const std::string &engine, const Dense<Scalar> &a,
              std::uint64_t seed, Index w)
{
    ServeRequest req;
    req.engine = engine;
    req.plan = EnginePlan::matVec(a, randomIntVec(a.cols(), seed),
                                  randomIntVec(a.rows(), seed + 1), w);
    return req;
}

//---------------------------------------------------------------------
// ConsistentHashRouter.
//---------------------------------------------------------------------

TEST(Router, DeterministicAcrossInstances)
{
    ConsistentHashRouter r1(4), r2(4);
    for (int i = 0; i < 200; ++i) {
        Digest key = fingerprintString("key-" + std::to_string(i));
        EXPECT_EQ(r1.shardFor(key), r2.shardFor(key)) << i;
    }
}

TEST(Router, EveryShardOwnsPartOfTheKeySpace)
{
    ConsistentHashRouter router(4);
    std::set<std::size_t> owners;
    for (int i = 0; i < 500; ++i)
        owners.insert(router.shardFor(
            fingerprintString("key-" + std::to_string(i))));
    EXPECT_EQ(owners.size(), 4u);
    for (std::size_t s : owners)
        EXPECT_LT(s, 4u);
}

TEST(Router, ResizeMovesOnlyAFractionOfKeys)
{
    // Growing 4 -> 5 shards should re-home roughly 1/5 of the keys;
    // modulo routing would move ~4/5. Assert the consistent-hash
    // bound with slack, and that some keys did move.
    const int kKeys = 2000;
    ConsistentHashRouter before(4), after(5);
    int moved = 0;
    for (int i = 0; i < kKeys; ++i) {
        Digest key = fingerprintString("key-" + std::to_string(i));
        if (before.shardFor(key) != after.shardFor(key))
            ++moved;
    }
    EXPECT_GT(moved, 0);
    EXPECT_LT(static_cast<double>(moved) / kKeys, 0.40)
        << "consistent hashing moved " << moved << "/" << kKeys;
    // Keys that moved must have moved *to the new shard* or onto an
    // arc the new shard displaced; either way no key may land on an
    // out-of-range shard.
    for (int i = 0; i < kKeys; ++i) {
        Digest key = fingerprintString("key-" + std::to_string(i));
        EXPECT_LT(after.shardFor(key), 5u);
    }
}

//---------------------------------------------------------------------
// Routing and shard pinning through the Cluster.
//---------------------------------------------------------------------

TEST(Cluster, RoutingIsDeterministicAcrossInstances)
{
    Cluster::Options opts;
    opts.shards = 4;
    Cluster c1(opts), c2(opts);
    for (int i = 0; i < 8; ++i) {
        Dense<Scalar> a = randomIntDense(6, 6, 300 + i);
        ServeRequest req = matVecRequest("linear", a, 400 + i, 3);
        EXPECT_EQ(c1.shardFor(req), c2.shardFor(req)) << i;
        EXPECT_EQ(c1.shardFor(req), c1.shardFor(req));
    }
}

TEST(Cluster, MatrixPlanLivesOnExactlyOneShard)
{
    Cluster::Options opts;
    opts.shards = 4;
    opts.threadsPerShard = 1;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(8, 8, 501);
    std::size_t home = 0;
    for (int i = 0; i < 6; ++i) {
        ServeRequest req = matVecRequest("linear", a, 510 + 2 * i, 4);
        home = cluster.shardFor(req);
        ServeResponse resp = cluster.submit(std::move(req)).get();
        ASSERT_TRUE(resp.ok) << resp.error;
    }

    // The plan was built once, on the home shard; every other shard
    // never saw the matrix.
    for (std::size_t s = 0; s < cluster.shardCount(); ++s) {
        SCOPED_TRACE("shard " + std::to_string(s));
        if (s == home) {
            EXPECT_EQ(cluster.shard(s).planCache().size(), 1u);
            ServerStats stats = cluster.shard(s).stats();
            EXPECT_EQ(stats.requests, 6u);
            EXPECT_EQ(stats.planCache.misses, 1u);
            EXPECT_EQ(stats.planCache.hits, 5u);
        } else {
            EXPECT_EQ(cluster.shard(s).planCache().size(), 0u);
            EXPECT_EQ(cluster.shard(s).stats().requests, 0u);
        }
    }

    ClusterStats total = cluster.stats();
    EXPECT_EQ(total.requests, 6u);
    EXPECT_EQ(total.planCache.hits, 5u);
    EXPECT_EQ(total.planCache.misses, 1u);
    ASSERT_EQ(total.shards.size(), 4u);
}

TEST(Cluster, DistinctMatricesSpreadAcrossShards)
{
    Cluster::Options opts;
    opts.shards = 4;
    opts.threadsPerShard = 1;
    Cluster cluster(opts);

    std::set<std::size_t> homes;
    for (int i = 0; i < 24; ++i) {
        Dense<Scalar> a = randomIntDense(6, 6, 600 + i);
        homes.insert(
            cluster.shardFor(matVecRequest("linear", a, 700 + i, 3)));
    }
    // 24 distinct matrices over 4 shards: more than one shard must
    // own some (with the default ring, in fact all of them do).
    EXPECT_GT(homes.size(), 1u);
}

TEST(Cluster, ServesCorrectResultsAcrossShards)
{
    Cluster::Options opts;
    opts.shards = 3;
    opts.crossCheckAll = true;
    Cluster cluster(opts);

    std::vector<ServeRequest> reqs;
    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 9; ++i) {
        Dense<Scalar> a = randomIntDense(7, 5, 800 + i);
        reqs.push_back(matVecRequest("linear", a, 900 + 2 * i, 3));
    }
    for (const ServeRequest &req : reqs)
        futures.push_back(cluster.submit(req));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        ServeResponse resp = futures[i].get();
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(resp.crossCheckOk);
        Vec<Scalar> gold =
            matVec(reqs[i].plan.a, reqs[i].plan.x, reqs[i].plan.b);
        EXPECT_EQ(maxAbsDiff(resp.result.y, gold), 0.0) << i;
    }
    EXPECT_EQ(cluster.stats().crossCheckFailures, 0u);
}

TEST(Cluster, TriSolveRequestsRouteBatchAndCrossCheck)
{
    // The triangular workload through the whole cluster surface:
    // digest routing pins each L to one shard, and batch submission
    // groups same-L requests into one prepared-plan streaming pass.
    Cluster::Options opts;
    opts.shards = 3;
    opts.crossCheckAll = true;
    Cluster cluster(opts);

    const Index n = 8, w = 3;
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 12; ++i) {
        ServeRequest req;
        req.engine = "tri";
        // Four distinct systems, three right-hand sides each.
        Dense<Scalar> l =
            randomUnitLowerTriangular(n, 1900 + i % 4);
        req.plan = EnginePlan::triSolve(
            l, randomIntVec(n, 1950 + i), w);
        reqs.push_back(std::move(req));
    }
    // Same binding ⇒ same digest ⇒ same shard.
    EXPECT_EQ(cluster.shardFor(reqs[0]), cluster.shardFor(reqs[4]));

    std::vector<ServeRequest> copies = reqs;
    std::vector<std::future<ServeResponse>> futures =
        cluster.submitBatch(std::move(copies));
    std::size_t rode_shared_plan = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        ServeResponse resp = futures[i].get();
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(resp.crossCheckOk);
        if (resp.cacheHit)
            ++rode_shared_plan;
        Vec<Scalar> gold = forwardSolve(reqs[i].plan.a,
                                        reqs[i].plan.b);
        EXPECT_EQ(maxAbsDiff(resp.result.y, gold), 0.0) << i;
    }
    ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.crossCheckFailures, 0u);
    // Four distinct systems: four group leaders build, and each
    // group's followers ride the leader's prepared plan.
    EXPECT_EQ(stats.planCache.misses, 4u);
    EXPECT_EQ(rode_shared_plan, 8u);
}

//---------------------------------------------------------------------
// Async IO: completion callbacks and the completion queue.
//---------------------------------------------------------------------

TEST(Cluster, SubmitAsyncFiresCompletionCallback)
{
    Cluster::Options opts;
    opts.shards = 2;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(6, 6, 1001);
    ServeRequest req = matVecRequest("linear", a, 1002, 3);
    Vec<Scalar> gold = matVec(req.plan.a, req.plan.x, req.plan.b);

    std::promise<ServeResponse> done;
    std::future<ServeResponse> fut = done.get_future();
    cluster.submitAsync(std::move(req), [&done](ServeResponse resp) {
        done.set_value(std::move(resp));
    });
    ServeResponse resp = fut.get();
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(maxAbsDiff(resp.result.y, gold), 0.0);
}

TEST(Cluster, CompletionQueueDeliversEveryTag)
{
    const int kRequests = 20;
    CompletionQueue queue;
    std::vector<Vec<Scalar>> gold(kRequests);
    {
        Cluster::Options opts;
        opts.shards = 3;
        Cluster cluster(opts);
        for (int i = 0; i < kRequests; ++i) {
            Dense<Scalar> a = randomIntDense(6, 6, 1100 + i % 4);
            ServeRequest req =
                matVecRequest("linear", a, 1200 + 2 * i, 3);
            gold[i] = matVec(req.plan.a, req.plan.x, req.plan.b);
            cluster.submitToQueue(std::move(req), &queue,
                                  static_cast<std::uint64_t>(i));
        }
        // Cluster destruction drains the shards: every completion
        // is pushed before the queue is polled.
    }
    queue.shutdown();

    std::set<std::uint64_t> tags;
    Completion c;
    while (queue.next(&c)) {
        ASSERT_TRUE(c.response.ok) << c.response.error;
        ASSERT_LT(c.tag, static_cast<std::uint64_t>(kRequests));
        EXPECT_EQ(maxAbsDiff(c.response.result.y, gold[c.tag]), 0.0)
            << "tag " << c.tag;
        EXPECT_TRUE(tags.insert(c.tag).second)
            << "duplicate tag " << c.tag;
    }
    EXPECT_EQ(tags.size(), static_cast<std::size_t>(kRequests));
    EXPECT_FALSE(queue.next(&c)); // drained + shut down
}

TEST(CompletionQueue, TryNextDoesNotBlock)
{
    CompletionQueue queue;
    Completion c;
    EXPECT_FALSE(queue.tryNext(&c));
    queue.push({7, ServeResponse{}});
    EXPECT_EQ(queue.size(), 1u);
    ASSERT_TRUE(queue.tryNext(&c));
    EXPECT_EQ(c.tag, 7u);
    EXPECT_FALSE(queue.tryNext(&c));
}

TEST(CompletionQueue, PushAfterShutdownStillDelivered)
{
    CompletionQueue queue;
    queue.shutdown();
    queue.push({3, ServeResponse{}});
    Completion c;
    ASSERT_TRUE(queue.next(&c));
    EXPECT_EQ(c.tag, 3u);
    EXPECT_FALSE(queue.next(&c));
}

//---------------------------------------------------------------------
// Server-side batch grouping.
//---------------------------------------------------------------------

TEST(Cluster, BatchGroupsSameMatrixIntoOneBuild)
{
    Cluster::Options opts;
    opts.shards = 2;
    opts.threadsPerShard = 1;
    Cluster cluster(opts);

    Dense<Scalar> a1 = randomIntDense(8, 8, 1301);
    Dense<Scalar> a2 = randomIntDense(8, 8, 1302);
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 6; ++i)
        reqs.push_back(matVecRequest("linear", a1, 1400 + 2 * i, 4));
    for (int i = 0; i < 3; ++i)
        reqs.push_back(matVecRequest("linear", a2, 1500 + 2 * i, 4));

    std::vector<Vec<Scalar>> gold;
    for (const ServeRequest &req : reqs)
        gold.push_back(matVec(req.plan.a, req.plan.x, req.plan.b));

    std::vector<std::future<ServeResponse>> futures =
        cluster.submitBatch(std::move(reqs));
    ASSERT_EQ(futures.size(), gold.size());
    std::size_t reported_hits = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        ServeResponse resp = futures[i].get();
        ASSERT_TRUE(resp.ok) << resp.error;
        // Order preserved: each response matches its own operands.
        EXPECT_EQ(maxAbsDiff(resp.result.y, gold[i]), 0.0) << i;
        reported_hits += resp.cacheHit ? 1 : 0;
    }

    ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.requests, 9u);
    // One dense→band build per distinct matrix; every follower rode
    // the group's shared plan (reported as a cache hit).
    EXPECT_EQ(stats.planCache.misses, 2u);
    EXPECT_EQ(reported_hits, 7u);
}

TEST(Cluster, BatchMalformedRequestDoesNotBlockItsGroup)
{
    Cluster::Options opts;
    opts.shards = 2;
    opts.threadsPerShard = 1;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(6, 6, 1601);
    std::vector<ServeRequest> reqs;
    // A shape-mismatched request, hand-built to bypass the
    // asserting factory — same matrix, so it routes with the group.
    ServeRequest bad;
    bad.engine = "linear";
    bad.plan.kind = ProblemKind::MatVec;
    bad.plan.a = a;
    bad.plan.x = randomIntVec(5, 1602); // wrong length
    bad.plan.b = randomIntVec(6, 1603);
    bad.plan.w = 3;
    reqs.push_back(std::move(bad));
    for (int i = 0; i < 4; ++i)
        reqs.push_back(matVecRequest("linear", a, 1610 + 2 * i, 3));

    std::vector<std::future<ServeResponse>> futures =
        cluster.submitBatch(std::move(reqs));
    ServeResponse first = futures[0].get();
    EXPECT_FALSE(first.ok);
    EXPECT_FALSE(first.error.empty());
    for (std::size_t i = 1; i < futures.size(); ++i) {
        ServeResponse resp = futures[i].get();
        EXPECT_TRUE(resp.ok) << resp.error;
    }
    EXPECT_EQ(cluster.stats().failures, 1u);
    EXPECT_EQ(cluster.stats().requests, 4u);
}

TEST(Cluster, BatchMalformedFollowerGetsErrorResponseNotAbort)
{
    Cluster::Options opts;
    opts.shards = 2;
    opts.threadsPerShard = 1;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(6, 6, 1651);
    std::vector<ServeRequest> reqs;
    // Valid leader first, then a same-matrix follower with malformed
    // streamed operands: it groups with the leader (the digest only
    // covers the bound matrices) and must still be validated.
    reqs.push_back(matVecRequest("linear", a, 1652, 3));
    ServeRequest bad;
    bad.engine = "linear";
    bad.plan.kind = ProblemKind::MatVec;
    bad.plan.a = a;
    bad.plan.x = randomIntVec(5, 1654); // wrong length
    bad.plan.b = randomIntVec(6, 1655);
    bad.plan.w = 3;
    reqs.push_back(std::move(bad));
    reqs.push_back(matVecRequest("linear", a, 1656, 3));

    std::vector<std::future<ServeResponse>> futures =
        cluster.submitBatch(std::move(reqs));
    EXPECT_TRUE(futures[0].get().ok);
    ServeResponse follower = futures[1].get();
    EXPECT_FALSE(follower.ok);
    EXPECT_FALSE(follower.error.empty());
    EXPECT_TRUE(futures[2].get().ok);
    EXPECT_EQ(cluster.stats().failures, 1u);
    EXPECT_EQ(cluster.stats().requests, 2u);
}

TEST(Cluster, EmptyBatchIsANoop)
{
    Cluster cluster;
    EXPECT_TRUE(cluster.submitBatch({}).empty());
    EXPECT_EQ(cluster.stats().requests, 0u);
}

//---------------------------------------------------------------------
// Malformed-request error paths through the router (serve edge
// coverage).
//---------------------------------------------------------------------

TEST(Cluster, MalformedRequestsResolveToErrorsThroughTheRouter)
{
    Cluster::Options opts;
    opts.shards = 3;
    Cluster cluster(opts);

    ServeRequest unknown;
    unknown.engine = "no-such-engine";
    unknown.plan = EnginePlan::matVec(randomIntDense(4, 4, 1701),
                                      randomIntVec(4, 1702),
                                      randomIntVec(4, 1703), 2);
    ServeResponse r1 = cluster.submit(unknown).get();
    EXPECT_FALSE(r1.ok);
    EXPECT_NE(r1.error.find("unknown engine"), std::string::npos);

    // Kind mismatch: a matvec plan routed to the hex engine.
    ServeRequest wrong_kind = unknown;
    wrong_kind.engine = "hex";
    ServeResponse r2 = cluster.submit(wrong_kind).get();
    EXPECT_FALSE(r2.ok);
    EXPECT_FALSE(r2.error.empty());

    // Shape mismatch, hand-built to bypass the asserting factory.
    ServeRequest bad_shape;
    bad_shape.engine = "linear";
    bad_shape.plan.kind = ProblemKind::MatVec;
    bad_shape.plan.a = randomIntDense(4, 4, 1704);
    bad_shape.plan.x = randomIntVec(3, 1705); // wrong length
    bad_shape.plan.b = randomIntVec(4, 1706);
    bad_shape.plan.w = 2;
    ServeResponse r3 = cluster.submit(bad_shape).get();
    EXPECT_FALSE(r3.ok);
    EXPECT_FALSE(r3.error.empty());

    ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.failures, 3u);
    EXPECT_EQ(stats.requests, 0u);
    // No plan was ever cached for a malformed request.
    for (std::size_t s = 0; s < cluster.shardCount(); ++s)
        EXPECT_EQ(cluster.shard(s).planCache().size(), 0u);
}

TEST(Cluster, StatsSnapshotMergesShardsExactly)
{
    Cluster::Options opts;
    opts.shards = 3;
    Cluster cluster(opts);

    // Several distinct matrices of one shape (spread over shards by
    // digest routing) plus one of another shape.
    const int kSameShape = 8;
    for (int i = 0; i < kSameShape; ++i) {
        ServeRequest req = matVecRequest(
            "linear", randomIntDense(6, 6, 2000 + i), 2100 + i, 3);
        ASSERT_TRUE(cluster.submit(std::move(req)).get().ok);
    }
    ServeRequest other = matVecRequest(
        "linear", randomIntDense(9, 4, 2300), 2301, 3);
    ASSERT_TRUE(cluster.submit(std::move(other)).get().ok);

    ServerStats merged = cluster.statsSnapshot();
    ClusterStats per_shard = cluster.stats();

    // Counters agree with the per-shard view.
    EXPECT_EQ(merged.requests, per_shard.requests);
    EXPECT_EQ(merged.requests,
              static_cast<std::uint64_t>(kSameShape + 1));
    EXPECT_EQ(merged.failures, 0u);
    EXPECT_EQ(merged.planCache.misses, per_shard.planCache.misses);

    // One merged group per (engine, shape), combining every shard's
    // requests for that shape.
    ASSERT_EQ(merged.groups.size(), 2u);
    EXPECT_EQ(merged.groups[0].key.rows, 6);
    EXPECT_EQ(merged.groups[0].requests,
              static_cast<std::uint64_t>(kSameShape));
    EXPECT_EQ(merged.groups[1].key.rows, 9);
    EXPECT_EQ(merged.groups[1].requests, 1u);

    // The 6x6 shape really did land on more than one shard, so the
    // merge combined distinct recorders (not a trivial copy)...
    std::size_t shards_with_6x6 = 0;
    std::uint64_t group_requests_summed = 0;
    for (const ServerStats &s : per_shard.shards) {
        for (const GroupStats &g : s.groups) {
            if (g.key.rows == 6) {
                ++shards_with_6x6;
                group_requests_summed += g.requests;
            }
        }
    }
    EXPECT_GT(shards_with_6x6, 1u);
    EXPECT_EQ(group_requests_summed, merged.groups[0].requests);

    // ...and the merged percentiles come from merged samples: every
    // shard recorded latencies, so the merged p50/p99 are positive
    // and ordered, and samples cover every request.
    EXPECT_EQ(merged.groups[0].latency.samples,
              static_cast<std::uint64_t>(kSameShape));
    EXPECT_GT(merged.groups[0].latency.p50, 0.0);
    EXPECT_LE(merged.groups[0].latency.p50,
              merged.groups[0].latency.p99);
    EXPECT_LE(merged.groups[0].latency.p99,
              merged.groups[0].latency.max);
    // The merged view is a reporting artifact: samples are dropped.
    EXPECT_TRUE(merged.groups[0].latencySamples.empty());
}

namespace {

/** One-group ServerStats part for the merge-flagging tests. */
ServerStats
statsPart(std::uint64_t requests, std::vector<double> samples)
{
    ServerStats part;
    part.requests = requests;
    GroupStats g;
    g.key.engine = "linear";
    g.key.rows = 6;
    g.key.cols = 6;
    g.key.w = 3;
    g.latency.samples = requests;
    g.latency.mean = 10.0;
    g.latencySamples = std::move(samples);
    part.groups.push_back(std::move(g));
    return part;
}

} // namespace

TEST(MergeServerStats, FlagsApproximateWhenAnyInputLacksSamples)
{
    // One part exported its reservoir, the other only summary
    // numbers: the merged percentiles cannot cover every sample, so
    // the merge must say so instead of passing as exact.
    ServerStats with_samples = statsPart(3, {5.0, 10.0, 15.0});
    ServerStats summary_only = statsPart(2, {});

    ServerStats merged =
        mergeServerStats({with_samples, summary_only});
    EXPECT_TRUE(merged.approximatePercentiles);
    EXPECT_EQ(merged.requests, 5u);
    ASSERT_EQ(merged.groups.size(), 1u);
    EXPECT_EQ(merged.groups[0].latency.samples, 5u);
}

TEST(MergeServerStats, ExactWhenEveryInputCarriesSamples)
{
    ServerStats a = statsPart(2, {5.0, 10.0});
    ServerStats b = statsPart(3, {1.0, 2.0, 3.0});
    ServerStats merged = mergeServerStats({a, b});
    EXPECT_FALSE(merged.approximatePercentiles);

    // Zero-sample groups carry no latency evidence and must not
    // trip the flag either.
    ServerStats idle = statsPart(0, {});
    idle.groups[0].latency.samples = 0;
    EXPECT_FALSE(
        mergeServerStats({a, idle}).approximatePercentiles);
}

TEST(MergeServerStats, ClusterSnapshotIsExact)
{
    // The cluster's own snapshot path always exports reservoirs, so
    // its merge must never be flagged.
    Cluster::Options opts;
    opts.shards = 2;
    Cluster cluster(opts);
    for (int i = 0; i < 4; ++i) {
        ServeRequest req = matVecRequest(
            "linear", randomIntDense(6, 6, 2600 + i), 2700 + i, 3);
        ASSERT_TRUE(cluster.submit(std::move(req)).get().ok);
    }
    EXPECT_FALSE(cluster.statsSnapshot().approximatePercentiles);
}

TEST(Cluster, ZeroCapacityCachesServeEveryRequestUncached)
{
    Cluster::Options opts;
    opts.shards = 2;
    opts.planCacheCapacityPerShard = 0;
    Cluster cluster(opts);

    Dense<Scalar> a = randomIntDense(6, 6, 1801);
    for (int i = 0; i < 4; ++i) {
        ServeRequest req = matVecRequest("linear", a, 1810 + 2 * i, 3);
        Vec<Scalar> gold = matVec(req.plan.a, req.plan.x, req.plan.b);
        ServeResponse resp = cluster.submit(std::move(req)).get();
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_FALSE(resp.cacheHit);
        EXPECT_EQ(maxAbsDiff(resp.result.y, gold), 0.0);
    }
    ClusterStats stats = cluster.stats();
    EXPECT_EQ(stats.planCache.hits, 0u);
    EXPECT_EQ(stats.planCache.misses, 4u);
    for (std::size_t s = 0; s < cluster.shardCount(); ++s)
        EXPECT_EQ(cluster.shard(s).planCache().size(), 0u);
}

} // namespace
} // namespace sap
