/**
 * @file
 * Concurrency hammering of the cluster layer, built to run clean
 * under ThreadSanitizer (the CI tsan job runs this suite): many
 * producers and pollers on one completion queue, async-callback
 * storms, mixed batch/single submission, and destruction draining
 * with completions in flight.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

namespace sap {
namespace {

ServeRequest
matVecRequest(const Dense<Scalar> &a, std::uint64_t seed, Index w)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(a, randomIntVec(a.cols(), seed),
                                  randomIntVec(a.rows(), seed + 1), w);
    return req;
}

TEST(ClusterConcurrency, CompletionQueueManyProducersManyPollers)
{
    const int kProducers = 4;
    const int kPollers = 3;
    const int kPerProducer = 25;
    const std::uint64_t kTotal =
        static_cast<std::uint64_t>(kProducers) * kPerProducer;

    // Queue before cluster: the cluster (whose workers push) is
    // destroyed first, per the queue's lifetime contract.
    CompletionQueue queue;
    Cluster::Options opts;
    opts.shards = 4;
    opts.threadsPerShard = 2;
    Cluster cluster(opts);

    // A small pool of matrices shared by all producers, so shards
    // see concurrent same-matrix and cross-matrix traffic.
    std::vector<Dense<Scalar>> mats;
    for (int m = 0; m < 6; ++m)
        mats.push_back(randomIntDense(8, 8, 2000 + m));

    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> ok{0};
    std::vector<std::thread> pollers;
    for (int p = 0; p < kPollers; ++p) {
        pollers.emplace_back([&] {
            Completion c;
            while (queue.next(&c)) {
                if (c.response.ok)
                    ok.fetch_add(1, std::memory_order_relaxed);
                if (received.fetch_add(1,
                                       std::memory_order_acq_rel) +
                        1 ==
                    kTotal)
                    queue.shutdown(); // everyone drains out
            }
        });
    }

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                std::uint64_t tag = static_cast<std::uint64_t>(
                    p * kPerProducer + i);
                cluster.submitToQueue(
                    matVecRequest(mats[(p + i) % mats.size()],
                                  2100 + 10 * tag, 4),
                    &queue, tag);
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    for (std::thread &t : pollers)
        t.join();

    EXPECT_EQ(received.load(), kTotal);
    EXPECT_EQ(ok.load(), kTotal);
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(cluster.stats().requests, kTotal);
}

TEST(ClusterConcurrency, AsyncCallbackStormWithConcurrentStats)
{
    const int kClients = 4;
    const int kPerClient = 20;

    Cluster::Options opts;
    opts.shards = 3;
    opts.threadsPerShard = 2;
    opts.crossCheckAll = true;
    Cluster cluster(opts);

    std::vector<Dense<Scalar>> mats;
    for (int m = 0; m < 4; ++m)
        mats.push_back(randomIntDense(6, 6, 2300 + m));

    std::atomic<int> done{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kPerClient; ++i) {
                cluster.submitAsync(
                    matVecRequest(mats[(c + i) % mats.size()],
                                  2400 + 100 * c + 2 * i, 3),
                    [&](ServeResponse resp) {
                        if (!resp.ok || !resp.crossCheckOk)
                            failures.fetch_add(
                                1, std::memory_order_relaxed);
                        done.fetch_add(1,
                                       std::memory_order_release);
                    });
            }
        });
    }
    // Stats snapshots race against the storm — must stay consistent
    // and data-race-free.
    std::thread reader([&] {
        for (int i = 0; i < 50; ++i) {
            ClusterStats s = cluster.stats();
            EXPECT_LE(s.requests,
                      static_cast<std::uint64_t>(kClients) *
                          kPerClient);
        }
    });
    for (std::thread &t : clients)
        t.join();
    reader.join();
    while (done.load(std::memory_order_acquire) <
           kClients * kPerClient)
        std::this_thread::yield();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(cluster.stats().requests,
              static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST(ClusterConcurrency, MixedBatchAndSingleSubmission)
{
    Cluster::Options opts;
    opts.shards = 2;
    opts.threadsPerShard = 2;
    Cluster cluster(opts);

    Dense<Scalar> shared = randomIntDense(8, 8, 2601);
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            for (int round = 0; round < 4; ++round) {
                std::vector<ServeRequest> batch;
                for (int i = 0; i < 5; ++i)
                    batch.push_back(matVecRequest(
                        shared, 2700 + 100 * c + 10 * round + i, 4));
                std::vector<std::future<ServeResponse>> futures =
                    cluster.submitBatch(std::move(batch));
                futures.push_back(cluster.submit(matVecRequest(
                    shared, 2800 + 100 * c + round, 4)));
                for (auto &f : futures)
                    if (!f.get().ok)
                        failures.fetch_add(1,
                                           std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(cluster.stats().requests, 3u * 4u * 6u);
    // One shared matrix: only its home shard ever built the plan.
    // Two cold workers can race the first build (each counts a
    // miss; the first insert wins), so the miss count is bounded by
    // the shard's worker count, not exactly 1.
    EXPECT_GE(cluster.stats().planCache.misses, 1u);
    EXPECT_LE(cluster.stats().planCache.misses, 2u);
    std::size_t resident = 0;
    for (std::size_t s = 0; s < cluster.shardCount(); ++s)
        resident += cluster.shard(s).planCache().size();
    EXPECT_EQ(resident, 1u);
}

TEST(ClusterConcurrency, DestructionDrainsInFlightCompletions)
{
    CompletionQueue queue;
    const int kRequests = 30;
    {
        Cluster::Options opts;
        opts.shards = 2;
        opts.threadsPerShard = 1;
        Cluster cluster(opts);
        Dense<Scalar> a = randomIntDense(8, 8, 2901);
        for (int i = 0; i < kRequests; ++i)
            cluster.submitToQueue(
                matVecRequest(a, 2910 + 2 * i, 4), &queue,
                static_cast<std::uint64_t>(i));
        // Destroyed with most requests still queued.
    }
    std::set<std::uint64_t> tags;
    Completion c;
    while (queue.tryNext(&c)) {
        EXPECT_TRUE(c.response.ok) << c.response.error;
        tags.insert(c.tag);
    }
    EXPECT_EQ(tags.size(), static_cast<std::size_t>(kRequests));
}

} // namespace
} // namespace sap
