/**
 * @file
 * Tests of the cycle-accurate hexagonal array, the band mat-mul
 * driver, the spiral feedback topology (Fig. 5), the paper's time
 * formula T = 3w·p̄n̄m̄ + 4w − 5, the feedback delay classes and the
 * memory-element claims.
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "sim/hex_array.hh"
#include "sim/hex_driver.hh"
#include "sim/spiral_feedback.hh"

namespace sap {
namespace {

TEST(HexArray, SinglePeMac)
{
    HexArray arr(1);
    arr.setAIn(0, Sample::of(3));
    arr.setBIn(0, Sample::of(4));
    arr.setCIn(0, Sample::of(10));
    arr.step();
    EXPECT_TRUE(arr.cOut(0).valid);
    EXPECT_EQ(arr.cOut(0).value, 22);
    EXPECT_EQ(arr.usefulMacs(), 1);
    EXPECT_EQ(arr.firstMacCycle(), 0);
}

TEST(HexArray, CPassesThroughWithoutOperands)
{
    HexArray arr(3);
    arr.setCIn(0, Sample::of(7)); // enters PE (0,0)
    arr.step();
    arr.step();
    arr.step();
    // After 3 steps it sits at the exit PE (2,2) unchanged.
    EXPECT_TRUE(arr.cOut(0).valid);
    EXPECT_EQ(arr.cOut(0).value, 7);
    EXPECT_EQ(arr.usefulMacs(), 0);
}

TEST(HexArray, DiagonalTransitTime)
{
    // A c item on diagonal δ traverses w − |δ| PEs.
    const Index w = 4;
    for (Index delta : {-3, -1, 0, 2, 3}) {
        HexArray arr(w);
        arr.setCIn(delta, Sample::of(5));
        Index hops = w - (delta >= 0 ? delta : -delta);
        for (Index t = 0; t < hops; ++t) {
            arr.step();
            if (t < hops - 1) {
                EXPECT_FALSE(arr.cOut(delta).valid)
                    << "delta=" << delta << " t=" << t;
            }
        }
        EXPECT_TRUE(arr.cOut(delta).valid) << "delta=" << delta;
    }
}

/** Run a plain band product O = band(Ā·B̄) + I through the driver. */
struct PlainHex
{
    Band<Scalar> abar;
    Band<Scalar> bbar;
    Dense<Scalar> iband;   // full-matrix holder of the I band
    Dense<Scalar> oband;   // collected outputs
    HexRunResult result;

    PlainHex(Index n_order, Index w, std::uint64_t seed)
        : abar(n_order, n_order, 0, w - 1),
          bbar(n_order, n_order, w - 1, 0),
          iband(n_order, n_order), oband(n_order, n_order)
    {
        Rng rng(seed);
        for (Index i = 0; i < n_order; ++i) {
            for (Index k = i; k <= std::min(i + w - 1, n_order - 1);
                 ++k)
                abar.ref(i, k) =
                    static_cast<Scalar>(rng.uniformInt(1, 9));
            for (Index j = std::max(Index{0}, i - w + 1); j <= i; ++j)
                bbar.ref(i, j) =
                    static_cast<Scalar>(rng.uniformInt(1, 9));
            for (Index j = std::max(Index{0}, i - w + 1);
                 j <= std::min(n_order - 1, i + w - 1); ++j)
                iband(i, j) = static_cast<Scalar>(rng.uniformInt(1, 9));
        }

        HexBandSpec spec;
        spec.abar = &abar;
        spec.bbar = &bbar;
        spec.inputValue = [this](Index i, Index j) {
            return iband(i, j);
        };
        spec.onOutput = [this](Index i, Index j, Scalar v, Cycle) {
            oband(i, j) = v;
        };
        result = runHexBandMatMul(spec);
    }
};

TEST(HexSchedule, AlignmentInvariantHoldsForEveryTriple)
{
    // Schedule invariant from hex_array.hh: at PE (r, q) on cycle τ
    // the streams can only combine samples of the unique triple
    // (i, j, k) with k−i = r, k−j = q, i+j+k = τ−(w−1). Inject a
    // single (a, b, c) triple at the documented edge entry times and
    // verify that the MAC fires exactly once, exactly at
    // τ = i+j+k+(w−1), and that the sum exits on diagonal j−i after
    // cycle i+j+min(i,j)+2w−2.
    const Index w = 3, n = 5;
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < n; ++j) {
            for (Index k = std::max(i, j);
                 k < std::min(n, std::min(i, j) + w); ++k) {
                const Cycle a_tau = i + 2 * k;
                const Cycle b_tau = 2 * k + j;
                const Cycle c_tau = i + j + std::max(i, j) + w - 1;
                const Cycle mac_tau = i + j + k + w - 1;
                const Cycle exit_tau =
                    i + j + std::min(i, j) + 2 * w - 2;
                const Index delta = j - i;

                HexArray arr(w);
                for (Cycle tau = 0; tau <= exit_tau; ++tau) {
                    if (tau == a_tau)
                        arr.setAIn(k - i, Sample::of(3));
                    if (tau == b_tau)
                        arr.setBIn(k - j, Sample::of(5));
                    if (tau == c_tau)
                        arr.setCIn(delta, Sample::of(100));
                    arr.step();
                    if (tau < exit_tau) {
                        EXPECT_FALSE(arr.cOut(delta).valid)
                            << "early exit at tau=" << tau << " for ("
                            << i << "," << j << "," << k << ")";
                    }
                }
                ASSERT_EQ(arr.usefulMacs(), 1)
                    << "(" << i << "," << j << "," << k << ")";
                EXPECT_EQ(arr.firstMacCycle(), mac_tau)
                    << "(" << i << "," << j << "," << k << ")";
                ASSERT_TRUE(arr.cOut(delta).valid);
                EXPECT_EQ(arr.cOut(delta).value, 115);
            }
        }
    }
}

TEST(HexSchedule, MisalignedOperandsNeverMac)
{
    // Corollary of the alignment invariant: operands injected one
    // cycle off the schedule can never meet, so no MAC may fire.
    const Index w = 3, i = 1, j = 2, k = 2;
    HexArray arr(w);
    const Cycle a_tau = i + 2 * k + 1; // one cycle late
    const Cycle b_tau = 2 * k + j;
    const Cycle c_tau = i + j + std::max(i, j) + w - 1;
    for (Cycle tau = 0; tau <= 4 * w + 12; ++tau) {
        if (tau == a_tau)
            arr.setAIn(k - i, Sample::of(3));
        if (tau == b_tau)
            arr.setBIn(k - j, Sample::of(5));
        if (tau == c_tau)
            arr.setCIn(j - i, Sample::of(100));
        arr.step();
    }
    EXPECT_EQ(arr.usefulMacs(), 0);
}

TEST(HexDriver, PlainBandProductMatchesOracle)
{
    for (Index w : {1, 2, 3, 4}) {
        for (Index order : {w, 2 * w + 1, 3 * w}) {
            PlainHex p(order, w, 70 + w * 10 + order);
            Dense<Scalar> expect =
                add(matMul(p.abar.toDense(), p.bbar.toDense()),
                    p.iband);
            // Outputs cover exactly the 2w−1 band; outside stays 0.
            for (Index i = 0; i < order; ++i) {
                for (Index j = 0; j < order; ++j) {
                    Index dlt = j - i;
                    if (dlt >= -(w - 1) && dlt <= w - 1) {
                        EXPECT_EQ(p.oband(i, j), expect(i, j))
                            << i << "," << j << " w=" << w;
                    } else {
                        EXPECT_EQ(p.oband(i, j), 0.0);
                    }
                }
            }
        }
    }
}

TEST(SpiralTopology, LoopsHaveExactlyWPes)
{
    // Fig. 5: the main diagonal self-loop and every sub/super pair
    // loop contain exactly w PEs.
    for (Index w : {1, 2, 3, 5, 8}) {
        SpiralFeedback fb(w);
        EXPECT_EQ(fb.loopCount(), w);
        for (Index loop = 0; loop < w; ++loop)
            EXPECT_EQ(fb.loopPeCount(loop), w)
                << "w=" << w << " loop=" << loop;
    }
}

TEST(SpiralTopology, PairingIsDeltaMinusW)
{
    const Index w = 5;
    for (Index delta = 1; delta < w; ++delta)
        EXPECT_EQ(SpiralFeedback::loopOf(w, delta),
                  SpiralFeedback::loopOf(w, delta - w));
    EXPECT_EQ(SpiralFeedback::loopOf(w, 0), 0);
}

/** Parameterized full-plan correctness on the hex array. */
class HexPlanCorrectness
    : public ::testing::TestWithParam<
          std::tuple<Index, Index, Index, Index>>
{};

TEST_P(HexPlanCorrectness, CycleSimEqualsOracle)
{
    auto [n, p, m, w] = GetParam();
    Dense<Scalar> a = randomIntDense(n, p, 80 + n * 3 + p + m + w);
    Dense<Scalar> b = randomIntDense(p, m, 81 + n + p * 5 + m + w);
    Dense<Scalar> e = randomIntDense(n, m, 82 + n + p + m * 7 + w);

    MatMulPlan plan(a, b, w);
    MatMulPlanResult r = plan.run(e);
    EXPECT_EQ(maxAbsDiff(r.c, matMulAdd(a, b, e)), 0.0)
        << "n=" << n << " p=" << p << " m=" << m << " w=" << w;
    EXPECT_TRUE(r.feedback->topologyRespected());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HexPlanCorrectness,
    ::testing::Values(
        std::make_tuple(1, 1, 1, 1), std::make_tuple(2, 2, 2, 2),
        std::make_tuple(4, 4, 4, 2), std::make_tuple(6, 6, 9, 3),
        std::make_tuple(3, 3, 3, 3), std::make_tuple(6, 3, 3, 3),
        std::make_tuple(3, 6, 3, 3), std::make_tuple(3, 3, 6, 3),
        std::make_tuple(6, 4, 8, 2), std::make_tuple(5, 7, 4, 3),
        std::make_tuple(9, 6, 6, 3), std::make_tuple(8, 8, 8, 4)));

TEST(HexPlan, TimeFormulaHolds)
{
    // T = 3w·p̄n̄m̄ + 4w − 5, measured from first MAC to last exit.
    for (Index w : {1, 2, 3, 4}) {
        for (Index nbar : {1, 2}) {
            for (Index pbar : {1, 2}) {
                for (Index mbar : {1, 2, 3}) {
                    Dense<Scalar> a = randomIntDense(nbar * w, pbar * w,
                                                     90 + w);
                    Dense<Scalar> b = randomIntDense(pbar * w, mbar * w,
                                                     91 + w);
                    MatMulPlan plan(a, b, w);
                    MatMulPlanResult r =
                        plan.run(Dense<Scalar>(nbar * w, mbar * w));
                    EXPECT_EQ(r.stats.cycles,
                              formulas::tMatMul(w, pbar, nbar, mbar))
                        << "w=" << w << " n̄=" << nbar << " p̄=" << pbar
                        << " m̄=" << mbar;
                }
            }
        }
    }
}

TEST(HexPlan, RegularFeedbackDelaysMatchPaper)
{
    // Regular pair delays equal w; main-diagonal delays equal 2w.
    for (Index w : {2, 3, 4}) {
        Dense<Scalar> a = randomIntDense(2 * w, 2 * w, 95 + w);
        Dense<Scalar> b = randomIntDense(2 * w, 2 * w, 96 + w);
        MatMulPlan plan(a, b, w);
        MatMulPlanResult r = plan.run(Dense<Scalar>(2 * w, 2 * w));
        const SpiralFeedback &fb = *r.feedback;
        ASSERT_FALSE(fb.mainDiagDelays().empty());
        for (Cycle dly : fb.mainDiagDelays())
            EXPECT_EQ(dly, 2 * w);
        ASSERT_FALSE(fb.pairDelays().empty());
        for (Cycle dly : fb.pairDelays())
            EXPECT_EQ(dly, formulas::hexRegularDelay(w));
    }
}

TEST(HexPlan, IrregularDelaysMatchDerivedFormulas)
{
    // Our schedule realizes the two irregular classes with delays
    //   U/L chain restart: 3w(n̄−1)p̄ + w
    //   L-last (C_{n̄−1,0}): 3w·n̄p̄(m̄−1) + w
    // (equal to the paper's 6(w−1)(n̄−1)p̄+w and 6n̄p̄(m̄−1)(w−1)+w at
    // w = 2; see EXPERIMENTS.md for the convention discussion).
    const Index w = 2, nbar = 3, pbar = 2, mbar = 3;
    Dense<Scalar> a = randomIntDense(nbar * w, pbar * w, 97);
    Dense<Scalar> b = randomIntDense(pbar * w, mbar * w, 98);
    MatMulPlan plan(a, b, w);
    MatMulPlanResult r = plan.run(Dense<Scalar>(nbar * w, mbar * w));
    const SpiralFeedback &fb = *r.feedback;

    Cycle restart = 3 * w * (nbar - 1) * pbar + w;
    Cycle llast = 3 * w * nbar * pbar * (mbar - 1) + w;
    ASSERT_FALSE(fb.irregularDelays().empty());
    for (Cycle dly : fb.irregularDelays())
        EXPECT_TRUE(dly == restart || dly == llast) << dly;
    // Both classes occur.
    EXPECT_NE(std::count(fb.irregularDelays().begin(),
                         fb.irregularDelays().end(), restart), 0);
    EXPECT_NE(std::count(fb.irregularDelays().begin(),
                         fb.irregularDelays().end(), llast), 0);
    // At w = 2 the paper's published expressions coincide exactly.
    EXPECT_EQ(restart, formulas::hexDelayU0j(w, nbar, pbar));
    EXPECT_EQ(llast, formulas::hexDelayLlast(w, nbar, pbar, mbar));
}

TEST(HexPlan, UtilizationApproachesOneThird)
{
    const Index w = 2;
    Dense<Scalar> a = randomIntDense(8, 8, 99);
    Dense<Scalar> b = randomIntDense(8, 8, 100);
    MatMulPlan plan(a, b, w); // p̄n̄m̄ = 64
    MatMulPlanResult r = plan.run(Dense<Scalar>(8, 8));
    double e_formula = formulas::eMatMul(w, 4, 4, 4);
    EXPECT_GT(r.stats.utilization(), 0.8 * e_formula);
    EXPECT_LT(r.stats.utilization(), 1.0 / 3.0 + 0.02);
}

TEST(HexPlan, MemoryElementsScaleAsPaperClaims)
{
    // Regular storage: main-diagonal loop holds ~2w values, pair
    // loops ~w; the irregular pool grows as Θ(w²).
    for (Index w : {2, 3, 4}) {
        Index size = 2 * w;
        Dense<Scalar> a = randomIntDense(size, size, 101 + w);
        Dense<Scalar> b = randomIntDense(size, 3 * w, 102 + w);
        MatMulPlan plan(a, b, w);
        MatMulPlanResult r =
            plan.run(Dense<Scalar>(size, 3 * w));
        const SpiralFeedback &fb = *r.feedback;
        // A delay of D cycles implemented as a register chain needs
        // at most D registers; peaks cannot exceed the delay bound
        // and must stay within the paper's published counts.
        EXPECT_LE(fb.peakRegularOccupancy(0),
                  formulas::hexMemMainDiag(w));
        EXPECT_GE(fb.peakRegularOccupancy(0), 1);
        for (Index loop = 1; loop < w; ++loop) {
            EXPECT_LE(fb.peakRegularOccupancy(loop),
                      formulas::hexMemSubDiag(w) + 1)
                << "w=" << w << " loop=" << loop;
        }
    }
}

TEST(HexPlan, BlockLevelAndCycleLevelAgree)
{
    Dense<Scalar> a = randomIntDense(6, 6, 103);
    Dense<Scalar> b = randomIntDense(6, 9, 104);
    Dense<Scalar> e = randomIntDense(6, 9, 105);
    MatMulPlan plan(a, b, 3);
    EXPECT_EQ(maxAbsDiff(plan.run(e).c, plan.runBlockLevel(e).c), 0.0);
}

} // namespace
} // namespace sap
