/**
 * @file
 * Deterministic byte-level fuzzing of the parsers that face the
 * network: the frame splitter (FrameDecoder), every payload codec,
 * and the admin-plane HTTP request parser.
 *
 * The robustness contract under test is the one net/protocol.hh
 * states: no input may ever crash, assert, or silently desync a
 * parser. Frame-level violations must poison the decoder permanently
 * (the stream cannot be re-synchronized), payload-level violations
 * must fail cleanly with a reason, and anything else must decode.
 *
 * The harness is plain gtest over seeded xorshift mutation of the
 * checked-in corpus (the .hex seeds under tests/data/fuzz) — see
 * fuzz_corpus.hh.
 * Every failure is replayable: the assertion message carries the
 * (seed, iteration) pair that derived the offending input. The
 * nightly CI job runs this same binary under ASan+UBSan, where
 * "never crash" tightens to "never touch a byte out of bounds".
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/protocol.hh"
#include "obs/http_admin.hh"
#include "tests/fuzz_corpus.hh"

namespace sap {
namespace {

using fuzz::CorpusEntry;
using fuzz::Xorshift64;

std::string
corpusDir()
{
    return std::string(SAP_TEST_DATA_DIR) + "/fuzz";
}

bool
isHttpSeed(const CorpusEntry &e)
{
    return e.name.compare(0, 5, "http_") == 0;
}

/** The checked-in seeds, split by which parser they feed. */
std::vector<CorpusEntry>
frameCorpus()
{
    std::vector<CorpusEntry> all = fuzz::loadHexCorpus(corpusDir());
    std::vector<CorpusEntry> frames;
    for (CorpusEntry &e : all)
        if (!isHttpSeed(e))
            frames.push_back(std::move(e));
    return frames;
}

std::vector<CorpusEntry>
httpCorpus()
{
    std::vector<CorpusEntry> all = fuzz::loadHexCorpus(corpusDir());
    std::vector<CorpusEntry> heads;
    for (CorpusEntry &e : all)
        if (isHttpSeed(e))
            heads.push_back(std::move(e));
    return heads;
}

/**
 * Run one decoded frame's payload through the codec its type claims,
 * then through every *other* codec too — a payload is attacker data,
 * so each decoder must survive all of them. Decoders must either
 * succeed or fail with a non-empty reason; which one is not checked
 * (that is the round-trip suite's job, on well-formed inputs).
 */
void
exercisePayloadDecoders(const Frame &frame)
{
    const std::vector<std::uint8_t> &p = frame.payload;
    std::string err;
    ServeRequest req;
    Digest digest = 0;
    WireResponse resp;
    ServerStats stats;
    MetricsSnapshot snap;
    std::string message;

    if (!decodeSubmit(p, &req, &err)) {
        ASSERT_FALSE(err.empty());
    }
    err.clear();
    if (!decodeForward(p, &digest, &req, &err)) {
        ASSERT_FALSE(err.empty());
    }
    err.clear();
    if (!decodeResponse(p, &resp, &err)) {
        ASSERT_FALSE(err.empty());
    }
    err.clear();
    if (!p.empty() && !decodeStats(p, &stats, &err)) {
        ASSERT_FALSE(err.empty());
    }
    err.clear();
    if (!p.empty() && !decodeMetrics(p, &snap, &err)) {
        ASSERT_FALSE(err.empty());
    }
    err.clear();
    if (!decodeError(p, &message, &err)) {
        ASSERT_FALSE(err.empty());
    }
    err.clear();
    std::vector<RequestTrace> traces;
    std::uint64_t total = 0;
    if (!p.empty() && !decodeTraces(p, &traces, &total, &err)) {
        ASSERT_FALSE(err.empty());
    }
}

/**
 * Feed @p bytes to a fresh FrameDecoder in random-sized chunks and
 * pump it dry, checking the poisoned-stream invariant along the way.
 * @return the number of complete frames extracted.
 */
std::size_t
pumpDecoder(const std::vector<std::uint8_t> &bytes, Xorshift64 *rng,
            const std::string &context)
{
    FrameDecoder decoder;
    std::size_t frames = 0;
    std::size_t off = 0;
    bool poisoned = false;
    std::string poison_message;
    while (off < bytes.size() || !poisoned) {
        if (off < bytes.size()) {
            std::size_t n = std::min(bytes.size() - off,
                                     1 + rng->below(97));
            decoder.feed(bytes.data() + off, n);
            off += n;
        }
        for (;;) {
            Frame frame;
            std::string err;
            FrameDecoder::Result res = decoder.next(&frame, &err);
            if (res == FrameDecoder::Result::NeedMore)
                break;
            if (res == FrameDecoder::Result::Malformed) {
                EXPECT_FALSE(err.empty()) << context;
                EXPECT_TRUE(decoder.poisoned()) << context;
                if (poisoned) {
                    // Once poisoned, always poisoned — and for the
                    // original reason, not whatever bytes came later.
                    EXPECT_EQ(err, poison_message) << context;
                }
                poisoned = true;
                poison_message = err;
                break;
            }
            EXPECT_FALSE(poisoned)
                << context << ": frame extracted after poisoning";
            ++frames;
            exercisePayloadDecoders(frame);
        }
        if (off >= bytes.size())
            break;
    }
    return frames;
}

//----------------------------------------------------------------------
// Corpus sanity: the seeds themselves must be healthy, or every
// derived mutation starts from garbage and coverage collapses.
//----------------------------------------------------------------------

TEST(FuzzCorpus, SeedsLoadAndFrameSeedsDecodeCleanly)
{
    std::vector<CorpusEntry> frames = frameCorpus();
    std::vector<CorpusEntry> heads = httpCorpus();
    EXPECT_GE(frames.size(), 8u);
    EXPECT_GE(heads.size(), 2u);

    for (const CorpusEntry &e : frames) {
        FrameDecoder decoder;
        decoder.feed(e.bytes.data(), e.bytes.size());
        Frame frame;
        std::string err;
        ASSERT_EQ(decoder.next(&frame, &err), FrameDecoder::Result::Ok)
            << e.name << ": " << err;
        EXPECT_EQ(decoder.next(&frame, &err),
                  FrameDecoder::Result::NeedMore)
            << e.name << " has trailing bytes";
    }
    for (const CorpusEntry &e : heads) {
        HttpRequest req;
        std::string text(e.bytes.begin(), e.bytes.end());
        EXPECT_EQ(parseHttpRequest(text, &req), HttpParseResult::Ok)
            << e.name;
    }
}

TEST(FuzzCorpus, MutationIsDeterministic)
{
    std::vector<CorpusEntry> corpus = frameCorpus();
    Xorshift64 a(0xfeedbeef), b(0xfeedbeef);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(fuzz::deriveInput(corpus, &a),
                  fuzz::deriveInput(corpus, &b))
            << "iteration " << i;
}

//----------------------------------------------------------------------
// The frame splitter and payload codecs under mutation.
//----------------------------------------------------------------------

TEST(FuzzFrameDecoder, MutatedFramesNeverCrashOrDesync)
{
    const std::uint64_t kSeed = 0x5a01;
    const int kIterations = 4000;
    std::vector<CorpusEntry> corpus = frameCorpus();
    Xorshift64 rng(kSeed);
    std::size_t total_frames = 0;
    for (int i = 0; i < kIterations; ++i) {
        std::vector<std::uint8_t> input =
            fuzz::deriveInput(corpus, &rng);
        total_frames += pumpDecoder(
            input, &rng,
            "seed=" + std::to_string(kSeed) +
                " iteration=" + std::to_string(i));
        if (::testing::Test::HasFailure())
            return;
    }
    // Mutation must not be so destructive that nothing survives
    // framing — that would mean the suite stopped reaching the
    // payload decoders entirely.
    EXPECT_GT(total_frames, 0u);
}

TEST(FuzzFrameDecoder, ConcatenatedMutantsStreamCleanly)
{
    // A TCP stream is many frames back to back; splice several
    // mutants (and occasionally a pristine seed) into one stream so
    // the decoder's consumed-prefix bookkeeping is exercised across
    // frame boundaries, not just from offset zero.
    const std::uint64_t kSeed = 0xc10c;
    std::vector<CorpusEntry> corpus = frameCorpus();
    Xorshift64 rng(kSeed);
    for (int i = 0; i < 400; ++i) {
        std::vector<std::uint8_t> stream;
        std::size_t parts = 2 + rng.below(4);
        for (std::size_t p = 0; p < parts; ++p) {
            std::vector<std::uint8_t> part =
                rng.below(3) == 0
                    ? corpus[rng.below(corpus.size())].bytes
                    : fuzz::deriveInput(corpus, &rng, 4);
            stream.insert(stream.end(), part.begin(), part.end());
        }
        pumpDecoder(stream, &rng,
                    "seed=" + std::to_string(kSeed) +
                        " iteration=" + std::to_string(i));
        if (::testing::Test::HasFailure())
            return;
    }
}

TEST(FuzzPayloads, MutatedPayloadsNeverCrashAnyCodec)
{
    // Strip the 20-byte header off each frame seed and mutate the
    // bare payload: this reaches payload shapes a framed mutation
    // rarely produces (the header soaks up most mutation sites).
    const std::uint64_t kSeed = 0x9a71;
    std::vector<CorpusEntry> corpus = frameCorpus();
    for (CorpusEntry &e : corpus)
        e.bytes.erase(e.bytes.begin(),
                      e.bytes.begin() +
                          std::min<std::ptrdiff_t>(
                              kFrameHeaderBytes,
                              static_cast<std::ptrdiff_t>(
                                  e.bytes.size())));
    Xorshift64 rng(kSeed);
    for (int i = 0; i < 4000; ++i) {
        Frame frame;
        frame.payload = fuzz::deriveInput(corpus, &rng);
        exercisePayloadDecoders(frame);
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "seed=" << kSeed << " iteration=" << i;
            return;
        }
    }
}

//----------------------------------------------------------------------
// Targeted poisoned-stream invariants (the fuzz loops check these
// opportunistically; these pin them down on crafted inputs).
//----------------------------------------------------------------------

TEST(FuzzPoisoning, BadMagicPoisonsPermanently)
{
    std::vector<std::uint8_t> bad = buildPingFrame(1);
    bad[0] ^= 0xff; // break the magic
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());

    Frame frame;
    std::string first_err, err;
    EXPECT_EQ(decoder.next(&frame, &first_err),
              FrameDecoder::Result::Malformed);
    EXPECT_TRUE(decoder.poisoned());

    // Feeding perfectly valid frames afterwards must not revive it,
    // and the reported reason must stay the original one.
    std::vector<std::uint8_t> good = buildPingFrame(2);
    for (int i = 0; i < 3; ++i) {
        decoder.feed(good.data(), good.size());
        EXPECT_EQ(decoder.next(&frame, &err),
                  FrameDecoder::Result::Malformed);
        EXPECT_EQ(err, first_err);
    }
}

TEST(FuzzPoisoning, OversizedLengthPoisons)
{
    // A length field over the decoder's cap is a frame-level
    // violation even though the bytes never arrive.
    FrameDecoder decoder(1024);
    std::vector<std::uint8_t> frame_bytes = buildPingFrame(1);
    frame_bytes[16] = 0xff; // payloadLen LE bytes 16..19
    frame_bytes[17] = 0xff;
    frame_bytes[18] = 0xff;
    frame_bytes[19] = 0x7f;
    decoder.feed(frame_bytes.data(), frame_bytes.size());
    Frame frame;
    std::string err;
    EXPECT_EQ(decoder.next(&frame, &err),
              FrameDecoder::Result::Malformed);
    EXPECT_TRUE(decoder.poisoned());
}

//----------------------------------------------------------------------
// The admin-plane HTTP parser under mutation.
//----------------------------------------------------------------------

TEST(FuzzHttp, MutatedRequestHeadsNeverCrash)
{
    const std::uint64_t kSeed = 0x4774;
    std::vector<CorpusEntry> corpus = httpCorpus();
    Xorshift64 rng(kSeed);
    std::size_t ok = 0;
    for (int i = 0; i < 4000; ++i) {
        std::vector<std::uint8_t> bytes =
            fuzz::deriveInput(corpus, &rng);
        std::string text(bytes.begin(), bytes.end());
        HttpRequest req;
        HttpParseResult res = parseHttpRequest(text, &req);
        ASSERT_TRUE(res == HttpParseResult::Ok ||
                    res == HttpParseResult::NeedMore ||
                    res == HttpParseResult::Malformed ||
                    res == HttpParseResult::MethodNotAllowed)
            << "seed=" << kSeed << " iteration=" << i;
        if (res == HttpParseResult::Ok) {
            ++ok;
            // A parsed request must uphold the parser's documented
            // strictness: target rooted at '/'.
            ASSERT_FALSE(req.path.empty());
            ASSERT_EQ(req.path[0], '/');
        }
    }
    // Single-byte mutations of a valid head frequently stay valid;
    // if none did, the corpus or parser drifted.
    EXPECT_GT(ok, 0u);
}

} // namespace
} // namespace sap
