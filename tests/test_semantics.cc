/**
 * @file
 * Semantics execution-path tests: the fast path (src/semantics/)
 * must be BIT-identical to the cycle simulators for every registered
 * engine across the standard sweep grids, validate mode must accept
 * every such pair, and the recoverable-error seams (Fast +
 * recordTrace, malformed plans, singular triangular systems) must
 * throw EngineError / report instead of aborting.
 */

#include <gtest/gtest.h>

#include "analysis/sweep.hh"
#include "base/error.hh"
#include "base/math_util.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "serve/batch.hh"
#include "serve/shard.hh"
#include "solve/trisolve_plan.hh"

namespace sap {
namespace {

/** One sweep point's sim-vs-fast comparison, field by field. */
struct DiffRow
{
    std::string label;
    bool yEqual = true;
    bool cEqual = true;
    bool statsEqual = true;
};

/** Exact comparison of everything both paths are required to agree
 *  on (the trace and the feedback audit pointer are exempt: Fast
 *  never produces them). */
DiffRow
diff(const std::string &label, const EngineRunResult &sim,
     const EngineRunResult &fast)
{
    DiffRow row;
    row.label = label;
    row.yEqual = sim.y.size() == fast.y.size() && sim.y == fast.y;
    row.cEqual = sim.c.rows() == fast.c.rows() &&
                 sim.c.cols() == fast.c.cols() && sim.c == fast.c;
    row.statsEqual =
        sim.stats.cycles == fast.stats.cycles &&
        sim.stats.peCount == fast.stats.peCount &&
        sim.stats.usefulMacs == fast.stats.usefulMacs &&
        sim.totalCycles == fast.totalCycles &&
        sim.feedbackDelay == fast.feedbackDelay &&
        sim.feedbackRegisters == fast.feedbackRegisters &&
        sim.conflictFree == fast.conflictFree &&
        sim.topologyRespected == fast.topologyRespected;
    return row;
}

void
expectAllEqual(const std::vector<DiffRow> &rows)
{
    for (const DiffRow &row : rows) {
        EXPECT_TRUE(row.yEqual) << row.label << ": y diverged";
        EXPECT_TRUE(row.cEqual) << row.label << ": C diverged";
        EXPECT_TRUE(row.statsEqual) << row.label
                                    << ": stats diverged";
    }
}

/** Run @p plan in both modes on @p engine and compare. */
DiffRow
comparePoint(const SystolicEngine &engine, EnginePlan plan,
             const std::string &label)
{
    plan.mode = ExecMode::Simulate;
    EngineRunResult sim = engine.run(plan);
    plan.mode = ExecMode::Fast;
    EngineRunResult fast = engine.run(plan);
    return diff(label, sim, fast);
}

//---------------------------------------------------------------------
// Bit-identity property sweep (the tentpole's acceptance criterion)
//---------------------------------------------------------------------

TEST(SemanticsBitIdentity, MatVecEnginesMatchSimulatorOnStandardSweep)
{
    for (const std::string &name : engineNames(ProblemKind::MatVec)) {
        std::unique_ptr<SystolicEngine> engine = makeEngine(name);
        ASSERT_TRUE(engine);
        std::vector<DiffRow> rows = runConfigSweep(
            standardMatVecSweep(), defaultSweepThreads(),
            [&](const MatVecConfig &cfg) {
                if (name == "overlapped" && ceilDiv(cfg.n, cfg.w) < 2)
                    return DiffRow{}; // split needs two block rows
                std::uint64_t seed = 17 + static_cast<std::uint64_t>(
                                              cfg.n + cfg.m + cfg.w);
                EnginePlan plan = EnginePlan::matVec(
                    randomIntDense(cfg.n, cfg.m, seed),
                    randomIntVec(cfg.m, seed + 1),
                    randomIntVec(cfg.n, seed + 2), cfg.w);
                return comparePoint(
                    *engine, std::move(plan),
                    name + " " + std::to_string(cfg.n) + "x" +
                        std::to_string(cfg.m) + " w=" +
                        std::to_string(cfg.w));
            });
        expectAllEqual(rows);
    }
}

TEST(SemanticsBitIdentity, MatMulEnginesMatchSimulatorOnStandardSweep)
{
    for (const std::string &name : engineNames(ProblemKind::MatMul)) {
        std::unique_ptr<SystolicEngine> engine = makeEngine(name);
        ASSERT_TRUE(engine);
        std::vector<DiffRow> rows = runConfigSweep(
            standardMatMulSweep(), defaultSweepThreads(),
            [&](const MatMulConfig &cfg) {
                std::uint64_t seed =
                    29 + static_cast<std::uint64_t>(cfg.n + cfg.p +
                                                    cfg.m + cfg.w);
                EnginePlan plan = EnginePlan::matMul(
                    randomIntDense(cfg.n, cfg.p, seed),
                    randomIntDense(cfg.p, cfg.m, seed + 1),
                    randomIntDense(cfg.n, cfg.m, seed + 2), cfg.w);
                return comparePoint(
                    *engine, std::move(plan),
                    name + " " + std::to_string(cfg.n) + "x" +
                        std::to_string(cfg.p) + "x" +
                        std::to_string(cfg.m) + " w=" +
                        std::to_string(cfg.w));
            });
        expectAllEqual(rows);
    }
}

TEST(SemanticsBitIdentity, TriSolveEngineMatchesSimulatorOnStandardSweep)
{
    for (const std::string &name :
         engineNames(ProblemKind::TriSolve)) {
        std::unique_ptr<SystolicEngine> engine = makeEngine(name);
        ASSERT_TRUE(engine);
        std::vector<DiffRow> rows = runConfigSweep(
            standardTriSolveSweep(), defaultSweepThreads(),
            [&](const TriSolveConfig &cfg) {
                // Real-valued (non-unit) diagonals: the divide in
                // the substitution must itself be bit-identical.
                EnginePlan plan = EnginePlan::triSolve(
                    randomDiagDominant(
                        cfg.n, 43 + static_cast<std::uint64_t>(
                                        cfg.n + cfg.w)),
                    randomIntVec(cfg.n,
                                 44 + static_cast<std::uint64_t>(
                                          cfg.n + cfg.w)),
                    cfg.w);
                return comparePoint(*engine, std::move(plan),
                                    name + " n=" +
                                        std::to_string(cfg.n) +
                                        " w=" +
                                        std::to_string(cfg.w));
            });
        expectAllEqual(rows);
    }
}

//---------------------------------------------------------------------
// Validate mode
//---------------------------------------------------------------------

TEST(SemanticsValidateMode, AcceptsEveryEngineAndReturnsSimResult)
{
    // Validate runs both paths and throws on any field mismatch;
    // a clean pass over every registered engine is the end-to-end
    // proof the diff plumbing agrees with the sweeps above.
    for (const std::string &name : engineNames()) {
        std::unique_ptr<SystolicEngine> engine = makeEngine(name);
        ASSERT_TRUE(engine);
        EnginePlan plan;
        switch (engine->kind()) {
        case ProblemKind::MatVec:
            plan = EnginePlan::matVec(randomIntDense(7, 9, 81),
                                      randomIntVec(9, 82),
                                      randomIntVec(7, 83), 3);
            break;
        case ProblemKind::MatMul:
            plan = EnginePlan::matMul(randomIntDense(7, 5, 84),
                                      randomIntDense(5, 6, 85),
                                      randomIntDense(7, 6, 86), 3);
            break;
        case ProblemKind::TriSolve:
            plan = EnginePlan::triSolve(randomDiagDominant(7, 87),
                                        randomIntVec(7, 88), 3);
            break;
        }
        plan.mode = ExecMode::Validate;
        EngineRunResult validated;
        ASSERT_NO_THROW(validated = engine->run(plan)) << name;

        plan.mode = ExecMode::Simulate;
        expectAllEqual({diff(name, engine->run(plan), validated)});
    }
}

TEST(SemanticsValidateMode, FastModeWithRecordTraceThrows)
{
    std::unique_ptr<SystolicEngine> engine = makeEngine("linear");
    ASSERT_TRUE(engine);
    EnginePlan plan = EnginePlan::matVec(randomIntDense(4, 4, 91),
                                         randomIntVec(4, 92),
                                         randomIntVec(4, 93), 2);
    plan.recordTrace = true;
    plan.mode = ExecMode::Fast;
    EXPECT_THROW(engine->run(plan), EngineError);

    // Prepared path too: the mode rides on the per-request inputs.
    plan.mode = ExecMode::Simulate;
    std::shared_ptr<const PreparedPlan> prepared =
        engine->prepare(plan);
    EngineInputs in = EngineInputs::of(plan);
    in.recordTrace = true;
    in.mode = ExecMode::Fast;
    EXPECT_THROW(engine->runPrepared(*prepared, in), EngineError);

    // Validate mode still supports tracing (the sim half records).
    in.mode = ExecMode::Validate;
    EngineRunResult r;
    ASSERT_NO_THROW(r = engine->runPrepared(*prepared, in));
    EXPECT_FALSE(r.trace.events().empty());
}

//---------------------------------------------------------------------
// Recoverable validation (satellites 1 and 2)
//---------------------------------------------------------------------

TEST(PlanValidation, MalformedShapesThrowInsteadOfAborting)
{
    // check() reports, validate() throws: no SAP_ASSERT abort for
    // caller-input problems.
    EnginePlan plan;
    plan.kind = ProblemKind::MatVec;
    plan.w = 2;
    plan.a = randomIntDense(3, 4, 11);
    plan.x = randomIntVec(5, 12); // wrong length (4 expected)
    plan.b = randomIntVec(3, 13);
    EXPECT_FALSE(plan.check().empty());
    EXPECT_THROW(plan.validate(), EngineError);

    plan.x = randomIntVec(4, 12);
    EXPECT_TRUE(plan.check().empty());
    EXPECT_NO_THROW(plan.validate());

    plan.w = 0;
    EXPECT_FALSE(plan.check().empty());
    EXPECT_THROW(plan.validate(), EngineError);
}

TEST(PlanValidation, ZeroDiagonalTriSolveIsRecoverable)
{
    Dense<Scalar> l = randomUnitLowerTriangular(6, 21);
    l(3, 3) = 0;
    Vec<Scalar> b = randomIntVec(6, 22);

    // The plan factory, the plan's own check, and the direct
    // TriSolvePlan constructor all refuse recoverably.
    EXPECT_THROW(EnginePlan::triSolve(l, b, 2), EngineError);
    EXPECT_THROW(TriSolvePlan(l, 2), EngineError);

    EnginePlan plan;
    plan.kind = ProblemKind::TriSolve;
    plan.a = l;
    plan.b = b;
    plan.w = 2;
    EXPECT_NE(plan.check().find("zero diagonal"), std::string::npos);

    // And the serve path reports it as an error response (the shard
    // must survive, not die on an assert).
    Shard::Options opts;
    opts.threads = 1;
    Shard shard(opts);
    ServeRequest req;
    req.engine = "tri";
    req.plan = plan;
    ServeResponse resp = shard.submit(req).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("zero diagonal"), std::string::npos);
}

//---------------------------------------------------------------------
// Mode through the batch and serve layers
//---------------------------------------------------------------------

TEST(SemanticsServe, BatchFastModeMatchesSimulate)
{
    std::unique_ptr<SystolicEngine> engine = makeEngine("linear");
    ASSERT_TRUE(engine);
    Dense<Scalar> a = randomIntDense(8, 6, 31);
    std::vector<EngineInputs> inputs;
    for (int i = 0; i < 5; ++i)
        inputs.push_back(EngineInputs::matVec(
            randomIntVec(6, 32 + static_cast<std::uint64_t>(i)),
            randomIntVec(8, 40 + static_cast<std::uint64_t>(i))));

    BatchOptions sim_opts;
    sim_opts.mode = ExecMode::Simulate;
    BatchResult sim = runManyMatVec(*engine, a, 3, inputs, sim_opts);

    BatchOptions fast_opts;
    fast_opts.mode = ExecMode::Fast;
    fast_opts.crossCheck = true;
    BatchResult fast = runManyMatVec(*engine, a, 3, inputs,
                                     fast_opts);
    EXPECT_EQ(fast.crossCheckFailures, 0u);

    ASSERT_EQ(sim.results.size(), fast.results.size());
    for (std::size_t i = 0; i < sim.results.size(); ++i)
        expectAllEqual({diff("batch input " + std::to_string(i),
                             sim.results[i], fast.results[i])});

    BatchOptions val_opts;
    val_opts.mode = ExecMode::Validate;
    EXPECT_NO_THROW(runManyMatVec(*engine, a, 3, inputs, val_opts));
}

TEST(SemanticsServe, ShardKeysStatsPerModeAndRejectsFastTrace)
{
    Shard::Options opts;
    opts.threads = 1;
    Shard shard(opts);

    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(6, 6, 51),
                                  randomIntVec(6, 52),
                                  randomIntVec(6, 53), 2);

    ServeResponse sim = shard.submit(req).get();
    ASSERT_TRUE(sim.ok) << sim.error;

    req.plan.mode = ExecMode::Fast;
    ServeResponse fast = shard.submit(req).get();
    ASSERT_TRUE(fast.ok) << fast.error;
    EXPECT_TRUE(fast.result.y == sim.result.y);
    // Same matrix: the fast request rides the cached plan.
    EXPECT_TRUE(fast.cacheHit);
    // Fast cycles come from the formulas and must equal measurement.
    EXPECT_EQ(fast.result.stats.cycles, sim.result.stats.cycles);

    req.plan.mode = ExecMode::Validate;
    ServeResponse val = shard.submit(req).get();
    ASSERT_TRUE(val.ok) << val.error;
    EXPECT_TRUE(val.result.y == sim.result.y);

    // Three groups: same engine and shape, one per execution mode.
    ServerStats stats = shard.stats();
    ASSERT_EQ(stats.groups.size(), 3u);
    EXPECT_EQ(stats.groups[0].key.mode, ExecMode::Simulate);
    EXPECT_EQ(stats.groups[1].key.mode, ExecMode::Fast);
    EXPECT_EQ(stats.groups[2].key.mode, ExecMode::Validate);
    for (const GroupStats &g : stats.groups)
        EXPECT_EQ(g.requests, 1u);
    EXPECT_NE(stats.groups[1].key.label().find("fast"),
              std::string::npos);

    // Fast + recordTrace is a recoverable request error.
    req.plan.mode = ExecMode::Fast;
    req.plan.recordTrace = true;
    ServeResponse bad = shard.submit(req).get();
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("recordTrace"), std::string::npos);
}

} // namespace
} // namespace sap
