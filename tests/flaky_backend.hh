/**
 * @file
 * The shared fault injector for gateway tests: a minimal
 * wire-protocol backend that answers PINGs (so the gateway declares
 * it routable and routes real work to it), never answers a FORWARD,
 * and after absorbing a configured number of them abruptly closes
 * both its connection and its listener — from the gateway's side, a
 * backend that accepted work and died without acknowledging any of
 * it. kill_after = 0 means "never die".
 *
 * Used by the gateway chaos suite (test_gateway.cc) and the
 * cross-tier trace-propagation suite (test_trace_propagation.cc);
 * both run under TSan in CI, so all cross-thread state is atomics.
 */

#ifndef SAP_TESTS_FLAKY_BACKEND_HH
#define SAP_TESTS_FLAKY_BACKEND_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/protocol.hh"

namespace sap {

class FlakyBackend
{
  public:
    explicit FlakyBackend(int kill_after) : kill_after_(kill_after)
    {
        // abort() on setup failure: gtest fatal assertions are not
        // usable in constructors, and a half-built injector would
        // only fail the test more confusingly later.
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            std::abort();
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        socklen_t len = sizeof(addr);
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listen_fd_, 8) != 0 ||
            ::getsockname(listen_fd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          &len) != 0)
            std::abort();
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this] { serve(); });
    }

    ~FlakyBackend()
    {
        stop_.store(true);
        if (listen_fd_ >= 0)
            ::shutdown(listen_fd_, SHUT_RDWR);
        if (thread_.joinable())
            thread_.join();
        if (listen_fd_ >= 0)
            ::close(listen_fd_);
    }

    std::uint16_t port() const { return port_; }
    int forwardsAbsorbed() const { return forwards_.load(); }
    bool dead() const { return dead_.load(); }

  private:
    void
    serve()
    {
        while (!stop_.load() && !dead_.load()) {
            int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0)
                return; // listener shut down
            handleConn(fd);
            ::close(fd);
        }
    }

    void
    handleConn(int fd)
    {
        FrameDecoder decoder;
        std::uint8_t buf[4096];
        for (;;) {
            Frame frame;
            std::string err;
            FrameDecoder::Result res = decoder.next(&frame, &err);
            if (res == FrameDecoder::Result::Malformed)
                return;
            if (res == FrameDecoder::Result::NeedMore) {
                ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
                if (n <= 0)
                    return;
                decoder.feed(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (frame.header.type ==
                static_cast<std::uint16_t>(FrameType::Ping)) {
                std::vector<std::uint8_t> echo = buildFrame(
                    FrameType::Ping, frame.header.tag, frame.payload);
                (void)!::send(fd, echo.data(), echo.size(),
                              MSG_NOSIGNAL);
            } else if (frame.header.type ==
                       static_cast<std::uint16_t>(
                           FrameType::Forward)) {
                int seen = forwards_.fetch_add(1) + 1;
                if (kill_after_ > 0 && seen >= kill_after_) {
                    // Die taking the listener with us: reconnect
                    // attempts must fail, not quietly resurrect the
                    // backend mid-test.
                    dead_.store(true);
                    ::shutdown(listen_fd_, SHUT_RDWR);
                    return;
                }
            }
            // Everything else (STATS, METRICS, TRACES, ...) is
            // absorbed silently, like the FORWARDs.
        }
    }

    int kill_after_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<int> forwards_{0};
    std::atomic<bool> stop_{false};
    std::atomic<bool> dead_{false};
};

} // namespace sap

#endif // SAP_TESTS_FLAKY_BACKEND_HH
