/**
 * @file
 * Long-haul soak of the gateway tier: sustained mixed-kind traffic
 * through a gateway over two live backends, with clients randomly
 * disconnecting mid-stream (pipelined SUBMITs abandoned unread, the
 * abuse a public front door actually sees), for SAP_SOAK_SECONDS
 * (default 60) of wall-clock.
 *
 * What must hold over the whole run:
 *  - every completed request is bit-identical to the host oracle;
 *  - the process leaks no file descriptors (/proc/self/fd settles
 *    back to its baseline once the clients are gone — abandoned
 *    connections must not pin server- or gateway-side fds);
 *  - the gateway's monotonic counters never step backwards between
 *    samples.
 *
 * This suite is OFF in the tier-1 matrix: without SAP_SOAK=1 in the
 * environment it skips immediately, and its ctest registration
 * carries the `soak` label so the nightly job runs exactly this with
 * `ctest -L soak` (see .github/workflows/nightly.yml).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/gateway.hh"
#include "net/server.hh"

namespace sap {
namespace {

/** Open descriptors right now (via /proc/self/fd). */
int
openFdCount()
{
    DIR *d = ::opendir("/proc/self/fd");
    if (!d)
        return -1;
    int n = 0;
    while (::readdir(d))
        ++n;
    ::closedir(d);
    // Subtract ".", "..", and the dirfd itself.
    return n - 3;
}

ServeRequest
soakRequest(std::uint64_t seed)
{
    ServeRequest req;
    switch (seed % 3) {
    case 0:
        req.engine = "linear";
        req.plan = EnginePlan::matVec(randomIntDense(6, 6, seed),
                                      randomIntVec(6, seed + 1),
                                      randomIntVec(6, seed + 2), 3);
        break;
    case 1:
        req.engine = "hex";
        req.plan = EnginePlan::matMul(randomIntDense(5, 5, seed),
                                      randomIntDense(5, 5, seed + 1),
                                      randomIntDense(5, 5, seed + 2),
                                      3);
        break;
    default:
        req.engine = "tri";
        req.plan =
            EnginePlan::triSolve(randomUnitLowerTriangular(6, seed),
                                 randomIntVec(6, seed + 1), 3);
        break;
    }
    return req;
}

/** Fire-and-abandon: pipeline a few SUBMITs raw, then slam the
 *  connection shut without reading a byte. */
void
abandonConnection(std::uint16_t port, std::uint64_t seed)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0) {
        for (int i = 0; i < 3; ++i) {
            std::vector<std::uint8_t> frame = buildSubmitFrame(
                static_cast<std::uint64_t>(i + 1),
                soakRequest(seed + 10 * static_cast<unsigned>(i)));
            (void)!::send(fd, frame.data(), frame.size(),
                          MSG_NOSIGNAL);
        }
    }
    ::close(fd);
}

TEST(Soak, GatewayCarriesMixedChurnWithoutLeaking)
{
    if (!std::getenv("SAP_SOAK"))
        GTEST_SKIP()
            << "soak suite is opt-in: set SAP_SOAK=1 (and optionally "
               "SAP_SOAK_SECONDS) or run `ctest -L soak`";
    const char *secs = std::getenv("SAP_SOAK_SECONDS");
    const int duration_s = secs ? std::atoi(secs) : 60;
    ASSERT_GT(duration_s, 0);

    NetServer::Options bopts;
    bopts.cluster.shards = 2;
    bopts.cluster.threadsPerShard = 2;
    NetServer a(bopts), b(bopts);
    ASSERT_TRUE(a.start()) << a.error();
    ASSERT_TRUE(b.start()) << b.error();

    Gateway::Options gopts;
    gopts.backends = {{"127.0.0.1", a.port(), 0},
                      {"127.0.0.1", b.port(), 0}};
    Gateway gw(gopts);
    ASSERT_TRUE(gw.start()) << gw.error();
    auto routable = [&] { return gw.routableBackends() == 2; };
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    while (!routable() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(routable());

    const int fd_baseline = openFdCount();
    ASSERT_GT(fd_baseline, 0);

    const int kThreads = 3;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> next_seed{1};
    std::atomic<std::uint64_t> served{0}, violations{0},
        abandons{0};

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            std::uint64_t rng = 0x9e3779b9u * (t + 1);
            NetClient client;
            bool connected = false;
            while (!done.load()) {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                // ~1 in 6 iterations: abandon a raw pipelined
                // connection mid-stream; ~1 in 8: churn the real
                // client's connection too.
                if (rng % 6 == 0) {
                    abandonConnection(gw.port(),
                                      next_seed.fetch_add(1000));
                    abandons.fetch_add(1);
                }
                if (connected && rng % 8 == 1) {
                    client.disconnect();
                    connected = false;
                }
                if (!connected) {
                    if (!client.connect("127.0.0.1", gw.port())) {
                        violations.fetch_add(1);
                        return;
                    }
                    connected = true;
                }
                std::vector<ServeRequest> reqs;
                for (int i = 0; i < 4; ++i)
                    reqs.push_back(
                        soakRequest(next_seed.fetch_add(1000)));
                std::vector<NetClient::Result> results =
                    client.submitBatch(reqs);
                for (std::size_t i = 0; i < results.size(); ++i) {
                    if (!results[i].transportOk ||
                        !results[i].response.ok ||
                        !NetClient::matchesOracle(
                            reqs[i], results[i].response))
                        violations.fetch_add(1);
                    else
                        served.fetch_add(1);
                }
            }
        });
    }

    // Sample once a second: counters monotone, descriptor count
    // bounded (live churn holds a few fds at once, so the in-flight
    // ceiling is baseline + a generous transient allowance).
    GatewayStats last = gw.stats();
    auto end = std::chrono::steady_clock::now() +
               std::chrono::seconds(duration_s);
    while (std::chrono::steady_clock::now() < end) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
        GatewayStats now = gw.stats();
        EXPECT_GE(now.requestsRouted, last.requestsRouted);
        EXPECT_GE(now.responsesRelayed, last.responsesRelayed);
        EXPECT_GE(now.failovers, last.failovers);
        EXPECT_GE(now.resubmits, last.resubmits);
        EXPECT_GE(now.errorsReturned, last.errorsReturned);
        last = now;
        int fds = openFdCount();
        EXPECT_LE(fds, fd_baseline + 32)
            << "descriptor count is growing without bound";
    }
    done.store(true);
    for (std::thread &w : workers)
        w.join();

    EXPECT_EQ(violations.load(), 0u);
    EXPECT_GT(served.load(), 0u);
    EXPECT_GT(abandons.load(), 0u);
    // Both backends stayed healthy: abandoned client connections are
    // client failures, not backend failures.
    EXPECT_EQ(gw.routableBackends(), 2u);
    EXPECT_EQ(gw.stats().failovers, 0u);

    // Leak check: with every client gone, the fd census must settle
    // back to the baseline (the gateway needs a few sweeps to reap
    // half-dead abandoned connections).
    int settled = -1;
    auto reap_deadline = std::chrono::steady_clock::now() +
                         std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < reap_deadline) {
        settled = openFdCount();
        if (settled <= fd_baseline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    EXPECT_LE(settled, fd_baseline)
        << "file descriptors leaked over the soak";

    std::printf("soak: %llu served, %llu abandoned conns, %d s, fd "
                "baseline %d settled %d\n",
                static_cast<unsigned long long>(served.load()),
                static_cast<unsigned long long>(abandons.load()),
                duration_s, fd_baseline, settled);
}

} // namespace
} // namespace sap
