/**
 * @file
 * Tests of the output-stationary mesh: the cycle-level MeshArray,
 * the block-decomposed MeshMatMulPlan, and the registry-wrapped
 * "mesh" engine — property-checked against the host oracle and the
 * repository's other mat-mul paths.
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "base/random.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "sim/mesh_array.hh"

namespace sap {
namespace {

TEST(MeshArray, SingleBlockMatMulWithSkewedFeeds)
{
    // One w×w block: A(r,t) enters row r at cycle t + r, B(t,q)
    // enters column q at cycle t + q; after w + 2(w−1) cycles PE
    // (r,q) holds Σ_t A(r,t)·B(t,q).
    const Index w = 3;
    Dense<Scalar> a = coordinateCoded(w, w);
    Dense<Scalar> b = randomIntDense(w, w, 31);
    Dense<Scalar> gold = matMul(a, b);

    MeshArray mesh(w);
    const Cycle pass = w + 2 * (w - 1);
    for (Cycle c = 0; c < pass; ++c) {
        for (Index r = 0; r < w; ++r) {
            Index t = static_cast<Index>(c) - r;
            if (t >= 0 && t < w)
                mesh.setAIn(r, Sample::of(a(r, t)));
        }
        for (Index q = 0; q < w; ++q) {
            Index t = static_cast<Index>(c) - q;
            if (t >= 0 && t < w)
                mesh.setBIn(q, Sample::of(b(t, q)));
        }
        mesh.step();
    }
    for (Index r = 0; r < w; ++r)
        for (Index q = 0; q < w; ++q)
            EXPECT_EQ(mesh.c(r, q), gold(r, q))
                << "PE (" << r << "," << q << ")";
    EXPECT_EQ(mesh.now(), pass);
    EXPECT_EQ(mesh.usefulMacs(), w * w * w);
}

TEST(MeshArray, PreloadSeedsTheAccumulators)
{
    MeshArray mesh(2);
    mesh.loadC(0, 0, 5);
    mesh.setAIn(0, Sample::of(3));
    mesh.setBIn(0, Sample::of(4));
    mesh.step();
    EXPECT_EQ(mesh.c(0, 0), 17); // 5 + 3·4
    EXPECT_EQ(mesh.c(1, 1), 0);  // no valid pair reached it
}

TEST(MeshArray, BubblesDoNotMac)
{
    MeshArray mesh(2);
    mesh.setAIn(0, Sample::of(3)); // a alone: no partner
    mesh.step();
    mesh.setBIn(0, Sample::of(4)); // b alone, and the a sample has
    mesh.step();                   // moved on: still no MAC at (0,0)
    EXPECT_EQ(mesh.usefulMacs(), 0);
    EXPECT_EQ(mesh.c(0, 0), 0);
}

TEST(MeshMatMulPlan, MatchesOracleAcrossRandomShapes)
{
    Rng rng(0x3E5);
    for (int trial = 0; trial < 14; ++trial) {
        const Index n = rng.uniformInt(1, 9);
        const Index p = rng.uniformInt(1, 9);
        const Index m = rng.uniformInt(1, 9);
        const Index w = rng.uniformInt(1, 4);
        SCOPED_TRACE("trial " + std::to_string(trial) + ": " +
                     std::to_string(n) + "x" + std::to_string(p) +
                     "x" + std::to_string(m) + " w=" +
                     std::to_string(w));
        Dense<Scalar> a = randomIntDense(n, p, 2000 + trial);
        Dense<Scalar> b = randomIntDense(p, m, 2100 + trial);
        Dense<Scalar> e = randomIntDense(n, m, 2200 + trial);

        MeshMatMulPlan plan(a, b, w);
        MeshRunResult r = plan.run(e);
        EXPECT_TRUE(r.c == matMulAdd(a, b, e));
        EXPECT_EQ(r.stats.cycles,
                  formulas::tMesh(w, plan.pbar(), plan.nbar(),
                                  plan.mbar()));
        EXPECT_EQ(r.stats.peCount, w * w);
    }
}

TEST(MeshMatMulPlan, UtilizationApproachesOneWithReductionLength)
{
    // The output-stationary contrast to the hex array's 1/3: valid-
    // sample utilization is p̄w / (p̄w + 2(w−1)) per block and grows
    // with the reduction length.
    const Index w = 4;
    double prev = 0.0;
    for (Index pbar : {1, 2, 8}) {
        Dense<Scalar> a = randomIntDense(w, pbar * w, 41);
        Dense<Scalar> b = randomIntDense(pbar * w, w, 42);
        MeshRunResult r =
            MeshMatMulPlan(a, b, w).run(Dense<Scalar>(w, w));
        double e = r.stats.utilization();
        EXPECT_NEAR(e, formulas::eMesh(w, pbar), 1e-12);
        EXPECT_GT(e, prev);
        prev = e;
    }
    EXPECT_GT(prev, 0.8); // p̄ = 8, w = 4: 32/38
}

/**
 * The satellite property test: the mesh engine must agree with the
 * no-feedback baseline run as a mat-vec on each column — i.e. with
 * the host oracle both paths are checked against — across random
 * shapes, through the registry.
 */
TEST(MeshEngine, AgreesWithBaselineMatMulAcrossRandomShapes)
{
    Rng rng(0x4E51); // distinct stream from the plan test
    auto mesh = makeEngine("mesh");
    auto hex = makeEngine("hex");
    ASSERT_NE(mesh, nullptr);
    ASSERT_NE(hex, nullptr);

    for (int trial = 0; trial < 10; ++trial) {
        const Index n = rng.uniformInt(1, 8);
        const Index p = rng.uniformInt(1, 8);
        const Index m = rng.uniformInt(1, 8);
        const Index w = rng.uniformInt(1, 4);
        SCOPED_TRACE("trial " + std::to_string(trial));
        Dense<Scalar> a = randomIntDense(n, p, 3000 + trial);
        Dense<Scalar> b = randomIntDense(p, m, 3100 + trial);
        Dense<Scalar> e = randomIntDense(n, m, 3200 + trial);
        EnginePlan plan = EnginePlan::matMul(a, b, e, w);

        Dense<Scalar> gold = matMulAdd(a, b, e);
        EngineRunResult rm = mesh->run(plan);
        EngineRunResult rh = hex->run(plan);
        EXPECT_TRUE(rm.c == gold);
        EXPECT_TRUE(rm.c == rh.c); // and with the paper's array
    }
}

TEST(MeshEngine, TraceCoversAllFourPorts)
{
    const Index n = 4, p = 5, m = 3, w = 2;
    EnginePlan plan = EnginePlan::matMul(
        randomIntDense(n, p, 51), randomIntDense(p, m, 52),
        randomIntDense(n, m, 53), w);
    plan.recordTrace = true;
    EngineRunResult r = makeEngine("mesh")->run(plan);
    ASSERT_FALSE(r.trace.empty());
    EXPECT_FALSE(r.trace.onPort(Port::AIn).empty());
    EXPECT_FALSE(r.trace.onPort(Port::BIn).empty());
    EXPECT_FALSE(r.trace.onPort(Port::CIn).empty());
    // One drained event per real (unpadded) output element.
    EXPECT_EQ(r.trace.onPort(Port::COut).size(),
              static_cast<std::size_t>(n * m));
}

} // namespace
} // namespace sap
