/**
 * @file
 * Tests of the sweep runner: the parallel fan-out over the serving
 * thread pool must produce a table bit-identical to the serial run
 * (engines are stateless and sweep workloads are derived
 * deterministically per configuration).
 */

#include <gtest/gtest.h>

#include "analysis/sweep.hh"
#include "engine/registry.hh"

namespace sap {
namespace {

void
expectRowsEqual(const std::vector<SweepRow> &serial,
                const std::vector<SweepRow> &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("row " + std::to_string(i));
        const SweepRow &a = serial[i], &b = parallel[i];
        EXPECT_EQ(a.w, b.w);
        EXPECT_EQ(a.n, b.n);
        EXPECT_EQ(a.m, b.m);
        EXPECT_EQ(a.p, b.p);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.peCount, b.peCount);
        EXPECT_EQ(a.usefulMacs, b.usefulMacs);
        EXPECT_EQ(a.utilization, b.utilization);
        EXPECT_EQ(a.resultDigest, b.resultDigest);
    }
}

TEST(SweepParallel, MatVecParallelMatchesSerial)
{
    auto engine = makeEngine("linear");
    ASSERT_NE(engine, nullptr);
    std::vector<MatVecConfig> configs = standardMatVecSweep();

    std::vector<SweepRow> serial =
        runMatVecSweep(*engine, configs, /*threads=*/1);
    std::vector<SweepRow> parallel =
        runMatVecSweep(*engine, configs, /*threads=*/4);
    expectRowsEqual(serial, parallel);

    // And the rows are in config order, measured, and plausible.
    ASSERT_EQ(serial.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(serial[i].w, configs[i].w);
        EXPECT_EQ(serial[i].n, configs[i].n);
        EXPECT_EQ(serial[i].m, configs[i].m);
        EXPECT_GT(serial[i].cycles, 0);
        EXPECT_GT(serial[i].utilization, 0.0);
        EXPECT_LE(serial[i].utilization, 1.0);
    }
}

TEST(SweepParallel, MatMulParallelMatchesSerial)
{
    auto engine = makeEngine("hex");
    ASSERT_NE(engine, nullptr);
    std::vector<MatMulConfig> configs = standardMatMulSweep();

    std::vector<SweepRow> serial =
        runMatMulSweep(*engine, configs, /*threads=*/1);
    std::vector<SweepRow> parallel =
        runMatMulSweep(*engine, configs, /*threads=*/4);
    expectRowsEqual(serial, parallel);
    ASSERT_EQ(serial.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(serial[i].p, configs[i].p);
        EXPECT_GT(serial[i].cycles, 0);
    }
}

TEST(SweepParallel, TriSolveParallelMatchesSerial)
{
    auto engine = makeEngine("tri");
    ASSERT_NE(engine, nullptr);
    std::vector<TriSolveConfig> configs = standardTriSolveSweep();

    std::vector<SweepRow> serial =
        runTriSolveSweep(*engine, configs, /*threads=*/1);
    std::vector<SweepRow> parallel =
        runTriSolveSweep(*engine, configs, /*threads=*/4);
    expectRowsEqual(serial, parallel);
    ASSERT_EQ(serial.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(serial[i].w, configs[i].w);
        EXPECT_EQ(serial[i].n, configs[i].n);
        EXPECT_GT(serial[i].cycles, 0);
        EXPECT_GT(serial[i].utilization, 0.0);
        EXPECT_LE(serial[i].utilization, 1.0);
    }
}

TEST(SweepParallel, ThreadCountDoesNotChangeTheTable)
{
    // "grouped" accepts every sweep shape ("overlapped" requires an
    // even block-row count).
    auto engine = makeEngine("grouped");
    ASSERT_NE(engine, nullptr);
    // A small slice is enough: the contract under test is that the
    // worker count is invisible in the output.
    std::vector<MatVecConfig> all = standardMatVecSweep();
    std::vector<MatVecConfig> configs(all.begin(), all.begin() + 12);
    std::vector<SweepRow> two =
        runMatVecSweep(*engine, configs, /*threads=*/2);
    std::vector<SweepRow> eight =
        runMatVecSweep(*engine, configs, /*threads=*/8);
    expectRowsEqual(two, eight);
}

} // namespace
} // namespace sap
