/**
 * @file
 * Integration tests: larger problems, plan reuse across many
 * inputs, cross-module pipelines, and failure-injection checks on
 * the spec validation layer.
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "dbt/matmul_plan.hh"
#include "dbt/matvec_plan.hh"
#include "engine/engine.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "solve/gauss_seidel.hh"
#include "solve/inverse.hh"
#include "solve/trisolve.hh"

namespace sap {
namespace {

TEST(Integration, LargeMatVecOnWideArray)
{
    const Index n = 64, m = 48, w = 8;
    Dense<Scalar> a = randomIntDense(n, m, 11000);
    Vec<Scalar> x = randomIntVec(m, 11001);
    Vec<Scalar> b = randomIntVec(n, 11002);
    EngineRunResult r =
        makeEngine("linear")->run(EnginePlan::matVec(a, x, b, w));
    EXPECT_EQ(maxAbsDiff(r.y, matVec(a, x, b)), 0.0);
    EXPECT_EQ(r.stats.cycles, formulas::tMatVec(w, 8, 6));
    EXPECT_GT(r.stats.utilization(), 0.49); // n̄m̄ = 48 -> near 1/2
}

TEST(Integration, LargeMatMulOnHexArray)
{
    const Index s = 16, w = 4;
    Dense<Scalar> a = randomIntDense(s, s, 11010);
    Dense<Scalar> b = randomIntDense(s, s, 11011);
    Dense<Scalar> e = randomIntDense(s, s, 11012);
    EngineRunResult r =
        makeEngine("hex")->run(EnginePlan::matMul(a, b, e, w));
    EXPECT_EQ(maxAbsDiff(r.c, matMulAdd(a, b, e)), 0.0);
    EXPECT_EQ(r.stats.cycles, formulas::tMatMul(w, 4, 4, 4));
    EXPECT_GT(r.stats.utilization(), 0.31);
    EXPECT_TRUE(r.topologyRespected);
}

TEST(Integration, PlanReuseAcrossManyInputs)
{
    // One transformation, many (x, b) pairs — the deployment model.
    Dense<Scalar> a = randomIntDense(10, 14, 11020);
    MatVecPlan plan(a, 4);
    for (int trial = 0; trial < 10; ++trial) {
        Vec<Scalar> x = randomIntVec(14, 11030 + trial);
        Vec<Scalar> b = randomIntVec(10, 11050 + trial);
        EXPECT_EQ(maxAbsDiff(plan.run(x, b).y, matVec(a, x, b)), 0.0)
            << "trial " << trial;
    }
}

TEST(Integration, MatMulFeedsMatVec)
{
    // Pipeline: C = A·B on the hex array, then y = C·x + b on the
    // linear array — all on fixed-size machines, all through the
    // one engine harness.
    Dense<Scalar> a = randomIntDense(6, 9, 11060);
    Dense<Scalar> b = randomIntDense(9, 6, 11061);
    Vec<Scalar> x = randomIntVec(6, 11062);
    Vec<Scalar> v = randomIntVec(6, 11063);

    Dense<Scalar> c =
        makeEngine("hex")->run(EnginePlan::matMul(a, b, 3)).c;
    Vec<Scalar> y =
        makeEngine("linear")->run(EnginePlan::matVec(c, x, v, 3)).y;
    EXPECT_EQ(maxAbsDiff(y, matVec(matMul(a, b), x, v)), 0.0);
}

TEST(Integration, PowerIterationOnTheArray)
{
    // Dominant eigenvector of a positive matrix via repeated
    // systolic mat-vec with host normalization.
    Dense<Scalar> a = randomIntDense(8, 8, 11070, 1, 5);
    MatVecPlan plan(a, 4);
    Vec<Scalar> v(8);
    for (Index i = 0; i < 8; ++i)
        v[i] = 1;
    Vec<Scalar> zero(8);
    double lambda = 0;
    for (int it = 0; it < 60; ++it) {
        Vec<Scalar> next = plan.run(v, zero).y;
        double norm = 0;
        for (Index i = 0; i < 8; ++i)
            norm = std::max(norm, std::abs(next[i]));
        for (Index i = 0; i < 8; ++i)
            next[i] /= norm;
        lambda = norm;
        v = next;
    }
    // Residual of the eigen equation.
    Vec<Scalar> av = matVec(a, v, zero);
    double resid = 0;
    for (Index i = 0; i < 8; ++i)
        resid = std::max(resid, std::abs(av[i] - lambda * v[i]));
    EXPECT_LT(resid / lambda, 1e-6);
}

TEST(Integration, SolverStackOnOneProblem)
{
    // A·x = b solved three ways (Gauss-Seidel, explicit inverse,
    // LDL-free triangular path) must agree.
    const Index n = 9, w = 3;
    Dense<Scalar> a = randomDiagDominant(n, 11080);
    Vec<Scalar> x_ref = randomIntVec(n, 11081);
    Vec<Scalar> b = matVec(a, x_ref, Vec<Scalar>(n));

    GaussSeidelResult gs = gaussSeidel(a, b, w, 1e-11, 300);
    ASSERT_TRUE(gs.converged);
    EXPECT_LT(maxAbsDiff(gs.x, x_ref), 1e-8);

    NewtonInverseResult ni = newtonInverse(a, w, 1e-12, 100);
    ASSERT_TRUE(ni.converged);
    Vec<Scalar> x_inv = matVec(ni.inv, b, Vec<Scalar>(n));
    EXPECT_LT(maxAbsDiff(x_inv, x_ref), 1e-7);
}

TEST(Integration, ZeroAndIdentityEdgeCases)
{
    // Zero matrix: y = b exactly; identity: y = x + b.
    Dense<Scalar> zero_m(5, 5);
    Vec<Scalar> x = randomIntVec(5, 11090);
    Vec<Scalar> b = randomIntVec(5, 11091);
    MatVecPlan pz(zero_m, 2);
    EXPECT_EQ(maxAbsDiff(pz.run(x, b).y, b), 0.0);

    MatVecPlan pi(identity<Scalar>(5), 2);
    Vec<Scalar> expect(5);
    for (Index i = 0; i < 5; ++i)
        expect[i] = x[i] + b[i];
    EXPECT_EQ(maxAbsDiff(pi.run(x, b).y, expect), 0.0);
}

TEST(Integration, WLargerThanMatrix)
{
    // Array bigger than the whole problem: single padded block.
    Dense<Scalar> a = randomIntDense(3, 2, 11100);
    Vec<Scalar> x = randomIntVec(2, 11101);
    Vec<Scalar> b = randomIntVec(3, 11102);
    MatVecPlan plan(a, 7);
    EXPECT_EQ(plan.dims().blockCount(), 1);
    EXPECT_EQ(maxAbsDiff(plan.run(x, b).y, matVec(a, x, b)), 0.0);

    Dense<Scalar> bm = randomIntDense(2, 4, 11103);
    MatMulPlan mm(a, bm, 5);
    EXPECT_EQ(maxAbsDiff(mm.run(Dense<Scalar>(3, 4)).c,
                         matMul(a, bm)), 0.0);
}

using SpecDeath = ::testing::Test;

TEST(SpecDeath, MismatchedSpecIsRejected)
{
    // The driver's validation layer must reject malformed specs
    // (failure injection: wrong x̄ length).
    // GTEST_FLAG() keeps gtest <= 1.12 compatibility (GTEST_FLAG_SET
    // only exists from 1.13).
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Band<Scalar> band(4, 5, 0, 1);
    for (Index i = 0; i < 4; ++i)
        for (Index d = 0; d < 2; ++d)
            band.ref(i, i + d) = 1;
    BandMatVecSpec spec;
    spec.abar = &band;
    spec.xbar = Vec<Scalar>(3); // wrong: must be 5
    spec.externalB = Vec<Scalar>(4);
    spec.bIsExternal.assign(4, 1);
    spec.yIsFinal.assign(4, 1);
    EXPECT_DEATH(runBandMatVec(spec), "x̄ length");
}

TEST(SpecDeath, FeedbackBeforeFirstOutputIsRejected)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Band<Scalar> band(4, 5, 0, 1);
    for (Index i = 0; i < 4; ++i)
        for (Index d = 0; d < 2; ++d)
            band.ref(i, i + d) = 1;
    BandMatVecSpec spec;
    spec.abar = &band;
    spec.xbar = Vec<Scalar>(5);
    spec.externalB = Vec<Scalar>(4);
    spec.bIsExternal.assign(4, 1);
    spec.bIsExternal[0] = 0; // impossible: nothing precedes row 0
    spec.yIsFinal.assign(4, 1);
    EXPECT_DEATH(runBandMatVec(spec), "feedback");
}

} // namespace
} // namespace sap
