/**
 * @file
 * Cross-tier trace propagation tests: the head-sampling decision is
 * made once at the gateway edge, rides the FORWARD trace-context
 * block to the backend, and the two tiers' committed traces stitch
 * into one request view by shared 128-bit trace id — through normal
 * serving, through a mid-request backend death (failover), and out
 * through the gateway's admin /tracez in both stitched and
 * Chrome/Perfetto form.
 *
 * Backends run with sampleEvery = 0 throughout: locally they would
 * never commit a trace, so every backend-side commit observed here
 * is proof the propagated sampled flag — not backend-local sampling
 * — drove the decision.
 *
 * Runs under TSan and ASan+UBSan in CI; cross-thread test state is
 * atomics only.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "checkers.hh"
#include "flaky_backend.hh"
#include "mat/generate.hh"
#include "net/client.hh"
#include "net/gateway.hh"
#include "net/server.hh"
#include "obs/trace_export.hh"

namespace sap {
namespace {

NetServer::Options
backendOptions()
{
    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.cluster.threadsPerShard = 2;
    opts.trace.enabled = true;
    opts.trace.sampleEvery = 0; // only the propagated flag commits
    return opts;
}

Gateway::Options
gatewayOptions(std::vector<Gateway::BackendAddr> backends,
               std::size_t sample_every = 1)
{
    Gateway::Options opts;
    opts.backends = std::move(backends);
    opts.pingIntervalMs = 25;
    opts.pingMissLimit = 4;
    opts.reconnectIntervalMs = 50;
    opts.healthzIntervalMs = 0;
    opts.trace.enabled = true;
    opts.trace.sampleEvery = sample_every;
    return opts;
}

ServeRequest
matVecRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(n, n, seed),
                                  randomIntVec(n, seed + 1),
                                  randomIntVec(n, seed + 2), w);
    return req;
}

ServeRequest
matMulRequest(std::uint64_t seed, Index n = 5, Index w = 3)
{
    ServeRequest req;
    req.engine = "hex";
    req.plan = EnginePlan::matMul(randomIntDense(n, n, seed),
                                  randomIntDense(n, n, seed + 1),
                                  randomIntDense(n, n, seed + 2), w);
    return req;
}

/** Spin (with sleeps) until @p pred or @p timeout_ms elapses. */
template <typename Pred>
bool
waitUntil(Pred pred, int timeout_ms = 5000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

/** Every stamped stage in @p t is monotonically non-decreasing. */
void
expectMonotoneStamps(const RequestTrace &t)
{
    std::uint64_t prev = 0;
    for (std::size_t s = 0; s < kTraceStages; ++s) {
        if (t.stageNanos[s] == 0)
            continue;
        EXPECT_GE(t.stageNanos[s], prev)
            << "stage " << s << " out of order";
        prev = t.stageNanos[s];
    }
}

TEST(TracePropagation, SampledSubmitStitchesAcrossTiers)
{
    NetServer backend(backendOptions());
    ASSERT_TRUE(backend.start()) << backend.error();
    Gateway gw(gatewayOptions({{"127.0.0.1", backend.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    ServeRequest req = matVecRequest(31000);
    NetClient::Result r = client.submit(req);
    ASSERT_TRUE(r.transportOk && r.response.ok)
        << r.transportError << r.response.error;
    ASSERT_TRUE(NetClient::matchesOracle(req, r.response));

    // The cross-tier set over the wire: the gateway's own rings plus
    // a scatter-gather over the backend. Both tiers commit just
    // after the client sees its response bytes — wait that out.
    std::vector<RequestTrace> traces;
    std::uint64_t total = 0;
    ASSERT_TRUE(waitUntil([&] {
        traces.clear();
        return client.traces(&traces, &total) && traces.size() >= 2;
    })) << "cross-tier TRACES never returned both parts";
    EXPECT_GE(total, 2u);

    std::vector<StitchedTrace> stitched = stitchTraces(traces);
    ASSERT_EQ(stitched.size(), 1u)
        << "one request must stitch into one group";
    const StitchedTrace &st = stitched[0];
    EXPECT_EQ(st.traceId.size(), 32u);
    ASSERT_EQ(st.parts.size(), 2u);

    // The gateway part leads (it stamped first) and carries the
    // edge stages; the backend part has every pipeline stage.
    const RequestTrace &gwpart = st.parts[0];
    const RequestTrace &bepart = st.parts[1];
    EXPECT_EQ(gwpart.tier, TraceTier::Gateway);
    EXPECT_EQ(bepart.tier, TraceTier::Backend);
    EXPECT_EQ(traceIdHex(gwpart.ctx), traceIdHex(bepart.ctx));
    EXPECT_TRUE(gwpart.ctx.sampled);
    EXPECT_TRUE(bepart.ctx.sampled);
    EXPECT_EQ(bepart.ctx.attempt, 0);
    EXPECT_EQ(gwpart.kind, "matvec");
    EXPECT_EQ(bepart.kind, "matvec");
    for (TraceStage s : {TraceStage::Decode, TraceStage::Route,
                         TraceStage::Dequeue, TraceStage::WriterPop,
                         TraceStage::Flush})
        EXPECT_GT(gwpart.nanosAt(s), 0u)
            << "gateway stage " << traceStageName(s, TraceTier::Gateway)
            << " never stamped";
    for (std::size_t s = 0; s < kTraceStages; ++s)
        EXPECT_GT(bepart.stageNanos[s], 0u)
            << "backend stage " << s << " never stamped";
    expectMonotoneStamps(gwpart);
    expectMonotoneStamps(bepart);

    // The stitched set renders as one valid multi-process Chrome
    // trace: one named lane per tier.
    const std::string chrome = toChromeTraceJson(traces);
    EXPECT_TRUE(JsonChecker(chrome).valid()) << chrome;
    std::size_t lanes = 0;
    for (std::size_t at = chrome.find("\"process_name\"");
         at != std::string::npos;
         at = chrome.find("\"process_name\"", at + 1))
        ++lanes;
    EXPECT_EQ(lanes, 2u);
    EXPECT_NE(chrome.find(st.traceId), std::string::npos);

    gw.stop();
    backend.stop();
}

TEST(TracePropagation, UnsampledRequestsCommitNothingAnywhere)
{
    NetServer backend(backendOptions());
    ASSERT_TRUE(backend.start()) << backend.error();
    // sampleEvery = 0 at the edge too: head sampling never fires, so
    // contexts propagate unsampled and neither tier commits.
    Gateway gw(gatewayOptions({{"127.0.0.1", backend.port(), 0}},
                              /*sample_every=*/0));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    for (int i = 0; i < 4; ++i) {
        NetClient::Result r = client.submit(matVecRequest(32000 + i));
        ASSERT_TRUE(r.transportOk && r.response.ok);
    }
    // Let any stray commit land before asserting absence.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<RequestTrace> traces;
    std::uint64_t total = 99;
    ASSERT_TRUE(client.traces(&traces, &total));
    EXPECT_TRUE(traces.empty());
    EXPECT_EQ(total, 0u);

    gw.stop();
    backend.stop();
}

TEST(TracePropagation, FailoverKeepsOneTraceAcrossAttempts)
{
    // A flaky backend absorbs one FORWARD and dies without
    // acknowledging it; the gateway resubmits to the honest
    // survivor. The migrated request must remain ONE trace: the
    // gateway part records the resubmit as a point event, and the
    // backend part — committed by the survivor — carries the same
    // trace id at attempt 1.
    NetServer honest(backendOptions());
    ASSERT_TRUE(honest.start()) << honest.error();
    FlakyBackend flaky(/*kill_after=*/1);
    Gateway gw(gatewayOptions({{"127.0.0.1", honest.port(), 0},
                               {"127.0.0.1", flaky.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 2; }))
        << "flaky backend never became routable";

    // Fresh digests spread over both backends; stream until one
    // lands on the flaky one and gets migrated.
    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    std::uint64_t seed = 33000;
    ASSERT_TRUE(waitUntil(
        [&] {
            std::vector<ServeRequest> reqs;
            for (int i = 0; i < 4; ++i)
                reqs.push_back(matVecRequest(seed += 100));
            for (const NetClient::Result &r :
                 client.submitBatch(reqs)) {
                EXPECT_TRUE(r.transportOk) << r.transportError;
                EXPECT_TRUE(r.response.ok) << r.response.error;
            }
            return gw.stats().resubmits >= 1;
        },
        20000))
        << "flaky backend never died (absorbed "
        << flaky.forwardsAbsorbed() << " forwards)";
    EXPECT_TRUE(flaky.dead());

    // Find the migrated request's stitched group: the one whose
    // gateway part logged the resubmit point event.
    std::vector<StitchedTrace> match;
    ASSERT_TRUE(waitUntil([&] {
        std::vector<RequestTrace> traces;
        if (!client.traces(&traces, nullptr))
            return false;
        match.clear();
        for (StitchedTrace &st : stitchTraces(std::move(traces))) {
            for (const RequestTrace &part : st.parts)
                for (const TracePoint &e : part.events)
                    if (e.name == "resubmit attempt 1" &&
                        st.parts.size() >= 2)
                        match.push_back(st);
        }
        return !match.empty();
    })) << "no stitched trace with a resubmit event and both parts";

    const StitchedTrace &st = match.front();
    EXPECT_EQ(st.traceId.size(), 32u);
    const RequestTrace *gwpart = nullptr;
    const RequestTrace *bepart = nullptr;
    for (const RequestTrace &part : st.parts) {
        if (part.tier == TraceTier::Gateway)
            gwpart = &part;
        else
            bepart = &part;
    }
    ASSERT_NE(gwpart, nullptr);
    ASSERT_NE(bepart, nullptr);
    // Both attempts are visible in the one trace: attempt 0 started
    // at the gateway (the point event marks the migration), attempt
    // 1 is the backend part the survivor committed.
    EXPECT_EQ(bepart->ctx.attempt, 1);
    EXPECT_TRUE(bepart->ok);
    EXPECT_EQ(traceIdHex(gwpart->ctx), traceIdHex(bepart->ctx));
    expectMonotoneStamps(*gwpart);
    expectMonotoneStamps(*bepart);

    gw.stop();
    honest.stop();
}

//---------------------------------------------------------------------
// The gateway admin plane's stitched /tracez
//---------------------------------------------------------------------

struct HttpReply
{
    bool ok = false;
    int status = 0;
    std::string head;
    std::string body;
};

/** Minimal HTTP/1.1 GET; the strict header contract is covered by
 *  the admin-plane suite — here only status/head/body matter. */
HttpReply
httpGet(std::uint16_t port, const std::string &target)
{
    HttpReply out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return out;
    }
    const std::string raw = "GET " + target + " HTTP/1.1\r\n"
                            "Host: 127.0.0.1\r\n\r\n";
    (void)!::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL);
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t head_end = resp.find("\r\n\r\n");
    if (resp.rfind("HTTP/1.1 ", 0) != 0 ||
        head_end == std::string::npos)
        return out;
    out.status = std::stoi(resp.substr(9, 3));
    out.head = resp.substr(0, head_end);
    out.body = resp.substr(head_end + 4);
    out.ok = true;
    return out;
}

TEST(TraceGatewayAdmin, StitchedTracezServesStrictJsonAndFilters)
{
    NetServer backend(backendOptions());
    ASSERT_TRUE(backend.start()) << backend.error();
    Gateway::Options gopts =
        gatewayOptions({{"127.0.0.1", backend.port(), 0}});
    gopts.adminEnabled = true;
    Gateway gw(gopts);
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_NE(gw.adminPort(), 0);
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    ServeRequest mv = matVecRequest(34000);
    ServeRequest mm = matMulRequest(34100);
    for (const ServeRequest *req : {&mv, &mm}) {
        NetClient::Result r = client.submit(*req);
        ASSERT_TRUE(r.transportOk && r.response.ok)
            << r.transportError << r.response.error;
    }
    // Both tiers commit asynchronously after the responses; /tracez
    // must eventually show both requests fully stitched.
    ASSERT_TRUE(waitUntil([&] {
        std::vector<RequestTrace> traces;
        return client.traces(&traces, nullptr) && traces.size() >= 4;
    })) << "both tiers never committed both requests";

    // Default view: strict JSON, grouped, both tiers' stage names.
    HttpReply stitched = httpGet(gw.adminPort(), "/tracez");
    ASSERT_TRUE(stitched.ok);
    EXPECT_EQ(stitched.status, 200);
    EXPECT_TRUE(JsonChecker(stitched.body).valid()) << stitched.body;
    EXPECT_NE(stitched.body.find("\"stitched\""), std::string::npos);
    EXPECT_NE(stitched.body.find("\"gw_decode\":"),
              std::string::npos);
    EXPECT_NE(stitched.body.find("\"decode\":"), std::string::npos);

    // Perfetto download: valid multi-process Chrome JSON.
    HttpReply chrome =
        httpGet(gw.adminPort(), "/tracez?format=chrome");
    ASSERT_TRUE(chrome.ok);
    EXPECT_EQ(chrome.status, 200);
    EXPECT_TRUE(JsonChecker(chrome.body).valid());
    EXPECT_NE(chrome.body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.head.find("sap_gateway_trace.json"),
              std::string::npos);
    EXPECT_NE(chrome.body.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(chrome.body.find("\"pid\": 2"), std::string::npos);

    // Kind filter applies across both tiers' parts.
    HttpReply only_mv = httpGet(gw.adminPort(), "/tracez?kind=matvec");
    ASSERT_TRUE(only_mv.ok);
    EXPECT_EQ(only_mv.status, 200);
    EXPECT_TRUE(JsonChecker(only_mv.body).valid());
    EXPECT_NE(only_mv.body.find("\"matvec\""), std::string::npos);
    EXPECT_EQ(only_mv.body.find("\"matmul\""), std::string::npos);

    // An impossible duration floor filters everything out but stays
    // a valid, well-formed reply.
    HttpReply none =
        httpGet(gw.adminPort(), "/tracez?min_us=999999999999");
    ASSERT_TRUE(none.ok);
    EXPECT_EQ(none.status, 200);
    EXPECT_NE(none.body.find("\"count\":0"), std::string::npos);

    // Strict parse failures answer 400 with the reason.
    HttpReply bad_min = httpGet(gw.adminPort(), "/tracez?min_us=17x");
    ASSERT_TRUE(bad_min.ok);
    EXPECT_EQ(bad_min.status, 400);
    EXPECT_NE(bad_min.body.find("bad min_us value"),
              std::string::npos);
    HttpReply bad_kind =
        httpGet(gw.adminPort(), "/tracez?kind=banded");
    ASSERT_TRUE(bad_kind.ok);
    EXPECT_EQ(bad_kind.status, 400);
    EXPECT_NE(bad_kind.body.find("bad kind value"),
              std::string::npos);

    // The rest of the admin plane serves from the gateway too.
    EXPECT_EQ(httpGet(gw.adminPort(), "/metrics").status, 200);
    EXPECT_EQ(httpGet(gw.adminPort(), "/healthz").status, 200);

    gw.stop();
    backend.stop();
}

} // namespace
} // namespace sap
