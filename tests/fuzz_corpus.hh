/**
 * @file
 * Deterministic byte-level fuzzing support for the net/ and obs/
 * parsers: a seedable xorshift generator, a hex corpus-file loader,
 * and a small set of structure-blind mutators.
 *
 * Everything here is reproducible by construction — the only entropy
 * source is Xorshift64, so a failing iteration can be replayed from
 * its (seed, iteration) pair printed by the test. No libFuzzer or
 * sanitizer runtime is required: the harness is an ordinary gtest
 * binary, which also means the nightly ASan+UBSan job fuzzes the
 * exact code the default build ships.
 *
 * Corpus files live in tests/data/fuzz/ as hex dumps (pairs of hex
 * digits; whitespace ignored; '#' starts a comment running to end of
 * line) so that malformed-byte seeds can be reviewed in a diff like
 * any other fixture.
 */

#ifndef SAP_TESTS_FUZZ_CORPUS_HH
#define SAP_TESTS_FUZZ_CORPUS_HH

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <dirent.h>

namespace sap {
namespace fuzz {

/**
 * xorshift64* — tiny, fast, and good enough to pick mutation sites;
 * never used where statistical quality matters.
 */
class Xorshift64
{
  public:
    explicit Xorshift64(std::uint64_t seed)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {
    }

    std::uint64_t next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform-ish draw in [0, bound); bound 0 yields 0. */
    std::size_t below(std::size_t bound)
    {
        return bound ? static_cast<std::size_t>(next() % bound) : 0;
    }

    std::uint8_t byte() { return static_cast<std::uint8_t>(next()); }

  private:
    std::uint64_t state_;
};

/** One corpus entry: where it came from plus its bytes. */
struct CorpusEntry
{
    std::string name;
    std::vector<std::uint8_t> bytes;
};

/**
 * Parse a hex dump (see the file comment for the grammar).
 * @throws std::runtime_error on an odd digit count or a non-hex,
 *         non-space, non-comment character.
 */
inline std::vector<std::uint8_t>
parseHexDump(const std::string &text, const std::string &what)
{
    std::vector<std::uint8_t> bytes;
    int hi = -1;
    bool in_comment = false;
    for (char c : text) {
        if (c == '\n') {
            in_comment = false;
            continue;
        }
        if (in_comment)
            continue;
        if (c == '#') {
            in_comment = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            throw std::runtime_error(what + ": stray character '" +
                                     std::string(1, c) +
                                     "' in hex dump");
        if (hi < 0) {
            hi = digit;
        } else {
            bytes.push_back(
                static_cast<std::uint8_t>((hi << 4) | digit));
            hi = -1;
        }
    }
    if (hi >= 0)
        throw std::runtime_error(what + ": odd number of hex digits");
    return bytes;
}

/**
 * Load every *.hex file under @p dir, sorted by name so corpus order
 * (and therefore every derived mutation) is stable across platforms.
 * @throws std::runtime_error if the directory cannot be read or is
 *         empty — a silently-missing corpus would turn the fuzz
 *         suite into a no-op that still reports PASS.
 */
inline std::vector<CorpusEntry>
loadHexCorpus(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        throw std::runtime_error("cannot open corpus dir " + dir);
    std::vector<std::string> names;
    while (dirent *ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".hex") == 0)
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());

    std::vector<CorpusEntry> corpus;
    for (const std::string &name : names) {
        std::ifstream is(dir + "/" + name);
        std::ostringstream text;
        text << is.rdbuf();
        corpus.push_back({name, parseHexDump(text.str(), name)});
    }
    if (corpus.empty())
        throw std::runtime_error("empty corpus dir " + dir);
    return corpus;
}

/**
 * Apply one structure-blind mutation to @p bytes in place. The
 * mutation menu is the classic byte-fuzzer set: flip a bit, smash a
 * byte, truncate, insert garbage, zero a run, duplicate a slice, or
 * perturb a byte by a small delta (which walks length fields past
 * their buffers one step at a time — the most profitable shape for a
 * length-prefixed protocol).
 */
inline void
mutateOnce(std::vector<std::uint8_t> *bytes, Xorshift64 *rng)
{
    std::vector<std::uint8_t> &b = *bytes;
    switch (rng->below(7)) {
    case 0: // flip one bit
        if (!b.empty())
            b[rng->below(b.size())] ^=
                static_cast<std::uint8_t>(1u << rng->below(8));
        break;
    case 1: // overwrite one byte
        if (!b.empty())
            b[rng->below(b.size())] = rng->byte();
        break;
    case 2: // truncate to a random prefix
        if (!b.empty())
            b.resize(rng->below(b.size()));
        break;
    case 3: { // insert up to 8 random bytes
        std::size_t pos = rng->below(b.size() + 1);
        std::size_t n = 1 + rng->below(8);
        std::vector<std::uint8_t> junk(n);
        for (std::uint8_t &j : junk)
            j = rng->byte();
        b.insert(b.begin() + static_cast<std::ptrdiff_t>(pos),
                 junk.begin(), junk.end());
        break;
    }
    case 4: { // zero a short run
        if (b.empty())
            break;
        std::size_t pos = rng->below(b.size());
        std::size_t n = std::min(1 + rng->below(16), b.size() - pos);
        std::fill_n(b.begin() + static_cast<std::ptrdiff_t>(pos), n,
                    std::uint8_t{0});
        break;
    }
    case 5: { // duplicate a slice (grows the input)
        if (b.empty() || b.size() > (1u << 20))
            break;
        std::size_t pos = rng->below(b.size());
        std::size_t n = std::min(1 + rng->below(32), b.size() - pos);
        std::vector<std::uint8_t> slice(
            b.begin() + static_cast<std::ptrdiff_t>(pos),
            b.begin() + static_cast<std::ptrdiff_t>(pos + n));
        b.insert(b.begin() + static_cast<std::ptrdiff_t>(pos),
                 slice.begin(), slice.end());
        break;
    }
    default: { // +/- small delta on one byte
        if (b.empty())
            break;
        std::size_t pos = rng->below(b.size());
        int delta = 1 + static_cast<int>(rng->below(4));
        if (rng->below(2))
            delta = -delta;
        b[pos] = static_cast<std::uint8_t>(b[pos] + delta);
        break;
    }
    }
}

/**
 * Derive one fuzz input: copy a corpus entry chosen by @p rng and
 * mutate it 1–@p max_mutations times.
 */
inline std::vector<std::uint8_t>
deriveInput(const std::vector<CorpusEntry> &corpus, Xorshift64 *rng,
            std::size_t max_mutations = 8)
{
    std::vector<std::uint8_t> bytes =
        corpus[rng->below(corpus.size())].bytes;
    std::size_t n = 1 + rng->below(max_mutations);
    for (std::size_t i = 0; i < n; ++i)
        mutateOnce(&bytes, rng);
    return bytes;
}

} // namespace fuzz
} // namespace sap

#endif // SAP_TESTS_FUZZ_CORPUS_HH
