/**
 * @file
 * Tests of the DBT-by-rows transformation (§2 of the paper):
 * structural conditions, the worked Fig. 2 example, and algebraic
 * correctness of the transformed problem against the dense oracle.
 */

#include <gtest/gtest.h>

#include "dbt/matvec_exec.hh"
#include "dbt/matvec_transform.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

namespace sap {
namespace {

TEST(DbtMatVec, DimsForPaperExample)
{
    // n=6, m=9, w=3 (the paper's worked case): n̄=2, m̄=3.
    Dense<Scalar> a = randomIntDense(6, 9, 1);
    MatVecTransform t(a, 3);
    EXPECT_EQ(t.dims().nbar, 2);
    EXPECT_EQ(t.dims().mbar, 3);
    EXPECT_EQ(t.dims().blockCount(), 6);
    EXPECT_EQ(t.dims().barRows(), 18);
    EXPECT_EQ(t.dims().barCols(), 20);
}

TEST(DbtMatVec, Fig2BlockSequence)
{
    // Fig. 2.b: the band must hold the pairs
    //   k:   0        1        2        3        4        5
    //   Ū:   U00      U01      U02      U10      U11      U12
    //   L̄:   L01      L02      L00      L11      L12      L10
    Dense<Scalar> a = randomIntDense(6, 9, 2);
    MatVecTransform t(a, 3);
    struct { Index ur, uc, lr, lc; } expect[6] = {
        {0, 0, 0, 1}, {0, 1, 0, 2}, {0, 2, 0, 0},
        {1, 0, 1, 1}, {1, 1, 1, 2}, {1, 2, 1, 0},
    };
    for (Index k = 0; k < 6; ++k) {
        EXPECT_EQ(t.pair(k).uRow, expect[k].ur) << "k=" << k;
        EXPECT_EQ(t.pair(k).uCol, expect[k].uc) << "k=" << k;
        EXPECT_EQ(t.pair(k).lRow, expect[k].lr) << "k=" << k;
        EXPECT_EQ(t.pair(k).lCol, expect[k].lc) << "k=" << k;
    }
}

TEST(DbtMatVec, ConditionsHoldOnManyShapes)
{
    for (Index n : {1, 3, 5, 6, 8}) {
        for (Index m : {1, 4, 9, 11}) {
            for (Index w : {1, 2, 3, 5}) {
                Dense<Scalar> a = randomIntDense(n, m, 7);
                MatVecTransform t(a, w);
                EXPECT_TRUE(t.validate(/*check_filled=*/false))
                    << "n=" << n << " m=" << m << " w=" << w;
            }
        }
    }
}

TEST(DbtMatVec, BandCompletelyFilledForDenseNonzero)
{
    // The paper's headline property: with a fully nonzero matrix of
    // block-multiple shape, every band position carries data.
    Dense<Scalar> a = randomIntDense(6, 9, 3, 1, 9);
    MatVecTransform t(a, 3);
    EXPECT_TRUE(t.validate(/*check_filled=*/true));
    EXPECT_TRUE(t.abar().bandCompletelyFilled());
    // Band position count equals total matrix elements n̄m̄w².
    EXPECT_EQ(t.abar().bandPositionCount(), 6 * 9);
}

TEST(DbtMatVec, BandPreservesEveryElementExactlyOnce)
{
    // Sum over the band equals the sum over the original (each U/L
    // element appears exactly once — condition 3 at value level).
    Dense<Scalar> a = randomIntDense(6, 6, 4);
    MatVecTransform t(a, 3);
    Dense<Scalar> band_dense = t.abar().toDense();
    Scalar sum_band = 0, sum_a = 0;
    for (Index i = 0; i < band_dense.rows(); ++i)
        for (Index j = 0; j < band_dense.cols(); ++j)
            sum_band += band_dense(i, j);
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < a.cols(); ++j)
            sum_a += a(i, j);
    EXPECT_EQ(sum_band, sum_a);
}

TEST(DbtMatVec, TransformXLayout)
{
    // x̄ = x0 x1 x2 | x0 x1 x2 | first w-1 of x0, for n̄=2, m̄=3.
    Dense<Scalar> a = randomIntDense(6, 9, 5);
    MatVecTransform t(a, 3);
    Vec<Scalar> x = randomIntVec(9, 6);
    Vec<Scalar> xbar = t.transformX(x);
    ASSERT_EQ(xbar.size(), 20);
    for (Index k = 0; k < 6; ++k)
        for (Index e = 0; e < 3; ++e)
            EXPECT_EQ(xbar[k * 3 + e], x[(k % 3) * 3 + e]);
    EXPECT_EQ(xbar[18], x[0]);
    EXPECT_EQ(xbar[19], x[1]);
}

TEST(DbtMatVec, ScheduleFlags)
{
    Dense<Scalar> a = randomIntDense(6, 9, 7);
    MatVecTransform t(a, 3);
    // Block-level: external b at k mod m̄ == 0; final at (k+1) mod m̄ == 0.
    EXPECT_EQ(t.bSourceOf(0), BSource::External);
    EXPECT_EQ(t.bSourceOf(1), BSource::Feedback);
    EXPECT_EQ(t.bSourceOf(3), BSource::External);
    EXPECT_EQ(t.ySinkOf(2), YSink::Emit);
    EXPECT_EQ(t.ySinkOf(5), YSink::Emit);
    EXPECT_EQ(t.ySinkOf(0), YSink::Recirculate);
    // Scalar-level agrees with block-level.
    EXPECT_TRUE(t.scalarIsExternalB(0));
    EXPECT_TRUE(t.scalarIsExternalB(2));
    EXPECT_FALSE(t.scalarIsExternalB(3));
    EXPECT_TRUE(t.scalarIsFinalY(8));
    EXPECT_FALSE(t.scalarIsFinalY(9));
}

TEST(DbtMatVec, PrtSpecialCase)
{
    // n̄ = m̄ = 1 reduces DBT-by-rows to the PRT transformation of
    // Priester et al.: a single (U00, L00) pair, all b external,
    // all y final.
    Dense<Scalar> a = randomIntDense(4, 4, 8);
    MatVecTransform t(a, 4);
    EXPECT_EQ(t.dims().blockCount(), 1);
    EXPECT_EQ(t.pair(0).uCol, 0);
    EXPECT_EQ(t.pair(0).lCol, 0);
    EXPECT_EQ(t.bSourceOf(0), BSource::External);
    EXPECT_EQ(t.ySinkOf(0), YSink::Emit);
}

/** Parameterized algebraic correctness sweep: (n, m, w). */
class DbtMatVecCorrectness
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index>>
{};

TEST_P(DbtMatVecCorrectness, TransformedEqualsOracle)
{
    auto [n, m, w] = GetParam();
    Dense<Scalar> a = randomIntDense(n, m, 100 + n * 31 + m * 7 + w);
    Vec<Scalar> x = randomIntVec(m, 200 + n + m + w);
    Vec<Scalar> b = randomIntVec(n, 300 + n * 3 + m + w);

    MatVecTransform t(a, w);
    MatVecExecResult r = execTransformed(t, x, b);
    Vec<Scalar> expect = matVec(a, x, b);
    // Integer workload: results must be bit-exact.
    EXPECT_EQ(maxAbsDiff(r.y, expect), 0.0)
        << "n=" << n << " m=" << m << " w=" << w;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DbtMatVecCorrectness,
    ::testing::Values(
        std::make_tuple(1, 1, 1), std::make_tuple(1, 1, 3),
        std::make_tuple(3, 3, 3), std::make_tuple(6, 9, 3),
        std::make_tuple(9, 6, 3), std::make_tuple(5, 7, 3),
        std::make_tuple(4, 4, 2), std::make_tuple(8, 8, 4),
        std::make_tuple(2, 10, 2), std::make_tuple(10, 2, 2),
        std::make_tuple(7, 13, 5), std::make_tuple(16, 16, 4),
        std::make_tuple(1, 9, 3), std::make_tuple(9, 1, 3),
        std::make_tuple(12, 12, 6), std::make_tuple(6, 9, 9),
        std::make_tuple(3, 3, 5)));

TEST(DbtMatVec, LinearityProperty)
{
    // DBT execution is linear in x and b: exec(αx, βb) relations.
    Dense<Scalar> a = randomIntDense(6, 6, 12);
    MatVecTransform t(a, 3);
    Vec<Scalar> x = randomIntVec(6, 13);
    Vec<Scalar> b = randomIntVec(6, 14);
    Vec<Scalar> zero(6);

    Vec<Scalar> y_full = execTransformed(t, x, b).y;
    Vec<Scalar> y_x = execTransformed(t, x, zero).y;
    Vec<Scalar> y_b = execTransformed(t, zero, b).y;
    for (Index i = 0; i < 6; ++i)
        EXPECT_EQ(y_full[i], y_x[i] + y_b[i]);
}

TEST(DbtMatVec, ExtractIgnoresPaddedRows)
{
    // n not a multiple of w: padded rows produce padded outputs that
    // extraction must drop.
    Dense<Scalar> a = randomIntDense(5, 7, 15);
    Vec<Scalar> x = randomIntVec(7, 16);
    Vec<Scalar> b = randomIntVec(5, 17);
    MatVecTransform t(a, 3);
    MatVecExecResult r = execTransformed(t, x, b);
    EXPECT_EQ(r.y.size(), 5);
    EXPECT_EQ(maxAbsDiff(r.y, matVec(a, x, b)), 0.0);
}

} // namespace
} // namespace sap
