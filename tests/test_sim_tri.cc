/**
 * @file
 * Tests of the §4 triangular-solve path: the cycle-level
 * back-substitution array (sim/tri_array.hh), the blocked
 * TriSolvePlan built on it, and the registry-wrapped "tri" engine —
 * cross-checked against both the host oracle (forwardSolve) and the
 * host-diagonal golden model (solve/trisolve.hh triSolve).
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "base/random.hh"
#include "engine/registry.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "sim/tri_array.hh"
#include "solve/trisolve.hh"
#include "solve/trisolve_plan.hh"

namespace sap {
namespace {

//---------------------------------------------------------------------
// The array itself.
//---------------------------------------------------------------------

/** Drive one w×w lower-triangular block through a fresh array. */
Vec<Scalar>
solveOnArray(TriArray &tri, const Dense<Scalar> &l,
             const Vec<Scalar> &b)
{
    const Index w = tri.size();
    for (Cycle c = 0; c < 2 * w - 1; ++c) {
        if (c < w)
            tri.setSIn(Sample::of(b[c]));
        for (Index k = 0; k < w; ++k) {
            Index i = static_cast<Index>(c) - k;
            if (i >= k && i < w)
                tri.setAIn(k, Sample::of(l(i, k)));
        }
        tri.step();
    }
    Vec<Scalar> y(w);
    for (Index k = 0; k < w; ++k) {
        EXPECT_TRUE(tri.y(k).valid) << "cell " << k;
        y[k] = tri.y(k).value;
    }
    return y;
}

TEST(TriArray, SolvesAKnownSystem)
{
    // L = [2 0 0; 1 3 0; 4 5 10], b = [2, 7, 33]:
    // y0 = 1, y1 = (7−1)/3 = 2, y2 = (33−4−10)/10 = 1.9.
    Dense<Scalar> l(3, 3);
    l(0, 0) = 2;
    l(1, 0) = 1; l(1, 1) = 3;
    l(2, 0) = 4; l(2, 1) = 5; l(2, 2) = 10;
    Vec<Scalar> b = {2, 7, 33};

    TriArray tri(3);
    Vec<Scalar> y = solveOnArray(tri, l, b);
    EXPECT_EQ(y[0], 1);
    EXPECT_EQ(y[1], 2);
    EXPECT_EQ(y[2], 1.9);
    EXPECT_EQ(tri.now(), 5); // 2w − 1
}

TEST(TriArray, PipelinesOneSolutionEveryTwoCycles)
{
    // y_k is born when row k reaches cell k: cycle 2k.
    const Index w = 4;
    Dense<Scalar> l = randomLowerTriangular(w, 11);
    Vec<Scalar> b = randomIntVec(w, 12);
    TriArray tri(w);
    solveOnArray(tri, l, b);
    for (Index k = 0; k < w; ++k)
        EXPECT_EQ(tri.yCapturedAt(k), 2 * k) << "cell " << k;
    // Per-block useful work: i subtractions + 1 divide per row i.
    EXPECT_EQ(tri.usefulOps(), w * (w + 1) / 2);
}

TEST(TriArray, SingleCellDividesOnly)
{
    TriArray tri(1);
    tri.setSIn(Sample::of(21));
    tri.setAIn(0, Sample::of(7));
    tri.step();
    EXPECT_EQ(tri.y(0).value, 3);
    EXPECT_EQ(tri.now(), 1);
}

TEST(TriArray, ClearSolutionsStartsTheNextBlock)
{
    Dense<Scalar> l1 = randomLowerTriangular(3, 21);
    Dense<Scalar> l2 = randomLowerTriangular(3, 22);
    Vec<Scalar> b = randomIntVec(3, 23);

    TriArray tri(3);
    Vec<Scalar> first = solveOnArray(tri, l1, b);
    tri.clearSolutions();
    Vec<Scalar> second = solveOnArray(tri, l2, b);

    EXPECT_LT(maxAbsDiff(first, forwardSolve(l1, b)), 1e-12);
    EXPECT_LT(maxAbsDiff(second, forwardSolve(l2, b)), 1e-12);
    EXPECT_EQ(tri.now(), 10); // the timeline keeps running
}

TEST(TriArray, MatchesForwardSolveOnRandomBlocks)
{
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 12; ++trial) {
        const Index w = rng.uniformInt(1, 6);
        SCOPED_TRACE("trial " + std::to_string(trial) + " w=" +
                     std::to_string(w));
        Dense<Scalar> l = randomLowerTriangular(w, 100 + trial);
        Vec<Scalar> b = randomIntVec(w, 200 + trial);
        TriArray tri(w);
        Vec<Scalar> y = solveOnArray(tri, l, b);
        EXPECT_LT(maxAbsDiff(y, forwardSolve(l, b)), 1e-9);
    }
}

//---------------------------------------------------------------------
// The blocked plan.
//---------------------------------------------------------------------

TEST(TriSolvePlan, MatchesHostDiagonalGoldenModelBitExactly)
{
    // The plan performs the same operations in the same order as
    // triSolve() (panels via identical MatVecPlans, diagonal
    // subtract-then-divide in ascending column order), so the two
    // must agree to the last bit even for non-unit diagonals.
    for (Index n : {3, 6, 9, 10, 13}) {
        for (Index w : {2, 3, 4}) {
            SCOPED_TRACE("n=" + std::to_string(n) + " w=" +
                         std::to_string(w));
            Dense<Scalar> l = randomLowerTriangular(n, 400 + n + w);
            Vec<Scalar> b = randomIntVec(n, 401 + n + w);

            TriSolvePlan plan(l, w);
            TriSolvePlanResult r = plan.run(b);
            TriSolveResult gold = triSolve(l, b, w);

            ASSERT_EQ(r.y.size(), gold.y.size());
            EXPECT_EQ(maxAbsDiff(r.y, gold.y), 0.0);
            // The panel work is identical; the plan adds the
            // diagonal-block array passes on top.
            EXPECT_EQ(r.stats.peCount, gold.arrayStats.peCount);
            EXPECT_GE(r.stats.usefulMacs, gold.arrayStats.usefulMacs);
        }
    }
}

TEST(TriSolvePlan, ExactOnUnitDiagonalSystems)
{
    Rng rng(0xD1A6);
    for (int trial = 0; trial < 10; ++trial) {
        const Index n = rng.uniformInt(1, 17);
        const Index w = rng.uniformInt(1, 5);
        SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                     std::to_string(n) + " w=" + std::to_string(w));
        Dense<Scalar> l = randomUnitLowerTriangular(n, 500 + trial);
        Vec<Scalar> b = randomIntVec(n, 600 + trial);
        TriSolvePlanResult r = TriSolvePlan(l, w).run(b);
        EXPECT_EQ(maxAbsDiff(r.y, forwardSolve(l, b)), 0.0);
    }
}

TEST(TriSolvePlan, StepCountMatchesTheComposedFormula)
{
    for (Index n : {4, 8, 12, 7}) {
        for (Index w : {2, 4}) {
            SCOPED_TRACE("n=" + std::to_string(n) + " w=" +
                         std::to_string(w));
            Dense<Scalar> l = randomLowerTriangular(n, 700 + n);
            TriSolvePlan plan(l, w);
            TriSolvePlanResult r = plan.run(randomIntVec(n, 701 + n));
            EXPECT_EQ(r.stats.cycles,
                      formulas::tTriSolve(w, plan.nbar()));
        }
    }
}

TEST(TriSolvePlan, TraceRecordsTheDiagonalBlockSchedule)
{
    const Index n = 6, w = 3;
    Dense<Scalar> l = randomLowerTriangular(n, 800);
    Vec<Scalar> b = randomIntVec(n, 801);
    TriSolvePlanResult r = TriSolvePlan(l, w).run(b, true);

    ASSERT_FALSE(r.trace.empty());
    // One rhs injection and one solution per (padded) row, one
    // coefficient per lower-triangle element of each diagonal block.
    EXPECT_EQ(r.trace.onPort(Port::BIn).size(), 6u);
    EXPECT_EQ(r.trace.onPort(Port::YOut).size(), 6u);
    EXPECT_EQ(r.trace.onPort(Port::AIn).size(),
              static_cast<std::size_t>(w * (w + 1))); // n̄ = 2 blocks
    // Block 1's schedule starts after block 0 and its panel.
    std::vector<TraceEvent> yout = r.trace.onPort(Port::YOut);
    EXPECT_LT(yout[w - 1].cycle, yout[w].cycle);

    // Quiet by default.
    EXPECT_TRUE(TriSolvePlan(l, w).run(b).trace.empty());
}

//---------------------------------------------------------------------
// The registry-wrapped engine.
//---------------------------------------------------------------------

TEST(TriEngine, RegistryCrossCheckOnRandomSystems)
{
    Rng rng(0x7121);
    auto engine = makeEngine("tri");
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->kind(), ProblemKind::TriSolve);

    for (int trial = 0; trial < 8; ++trial) {
        const Index n = rng.uniformInt(2, 14);
        const Index w = rng.uniformInt(1, 5);
        SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                     std::to_string(n) + " w=" + std::to_string(w));
        Dense<Scalar> l = randomLowerTriangular(n, 900 + trial);
        Vec<Scalar> b = randomIntVec(n, 950 + trial);

        EngineRunResult r =
            engine->run(EnginePlan::triSolve(l, b, w));
        EXPECT_LT(maxAbsDiff(r.y, forwardSolve(l, b)), 1e-9);
        EXPECT_EQ(maxAbsDiff(r.y, triSolve(l, b, w).y), 0.0);
        EXPECT_EQ(r.stats.peCount, w);
        EXPECT_GT(r.stats.utilization(), 0.0);
    }
}

TEST(TriEngine, PreparedPlanStreamsManyRightHandSides)
{
    const Index n = 9, w = 3;
    Dense<Scalar> l = randomUnitLowerTriangular(n, 1000);
    auto engine = makeEngine("tri");
    auto prepared = engine->prepare(
        EnginePlan::triSolve(l, Vec<Scalar>(n), w));

    for (int i = 0; i < 5; ++i) {
        Vec<Scalar> b = randomIntVec(n, 1100 + i);
        EngineRunResult r = engine->runPrepared(
            *prepared, EngineInputs::triSolve(b));
        EXPECT_EQ(maxAbsDiff(r.y, forwardSolve(l, b)), 0.0) << i;
    }
}

} // namespace
} // namespace sap
