/**
 * @file
 * Unit tests for the matrix substrate: dense/band/triangular
 * containers, block partitioning, oracle operations, generators.
 */

#include <gtest/gtest.h>

#include "mat/band.hh"
#include "mat/block.hh"
#include "mat/dense.hh"
#include "mat/generate.hh"
#include "mat/io.hh"
#include "mat/ops.hh"
#include "mat/triangular.hh"
#include "mat/vector.hh"

namespace sap {
namespace {

TEST(Dense, ConstructAndIndex)
{
    Dense<Scalar> a(2, 3);
    EXPECT_EQ(a.rows(), 2);
    EXPECT_EQ(a.cols(), 3);
    a(1, 2) = 5;
    EXPECT_EQ(a(1, 2), 5);
    EXPECT_EQ(a(0, 0), 0);
}

TEST(Dense, Transpose)
{
    Dense<Scalar> a = coordinateCoded(2, 3);
    Dense<Scalar> t = a.transposed();
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 2);
    for (Index i = 0; i < 2; ++i)
        for (Index j = 0; j < 3; ++j)
            EXPECT_EQ(a(i, j), t(j, i));
}

TEST(Dense, TransposeInvolution)
{
    Dense<Scalar> a = randomIntDense(5, 7, 1);
    EXPECT_TRUE(a.transposed().transposed() == a);
}

TEST(Dense, PaddedToKeepsValuesAndZeroFills)
{
    Dense<Scalar> a = coordinateCoded(2, 2);
    Dense<Scalar> p = a.paddedTo(3, 4);
    EXPECT_EQ(p(1, 1), a(1, 1));
    EXPECT_EQ(p(2, 3), 0);
    EXPECT_TRUE(p.topLeft(2, 2) == a);
}

TEST(Dense, MaxAbsDiff)
{
    Dense<Scalar> a = randomIntDense(3, 3, 2);
    Dense<Scalar> b = a;
    EXPECT_EQ(maxAbsDiff(a, b), 0.0);
    b(1, 1) += 2.5;
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 2.5);
}

TEST(Vec, SliceAndAppend)
{
    Vec<Scalar> v{1, 2, 3, 4, 5};
    Vec<Scalar> s = v.slice(1, 3);
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[2], 4);
    s.append(v.slice(0, 1));
    EXPECT_EQ(s.size(), 4);
    EXPECT_EQ(s[3], 1);
}

TEST(Vec, PaddedTo)
{
    Vec<Scalar> v{1, 2};
    Vec<Scalar> p = v.paddedTo(4);
    EXPECT_EQ(p.size(), 4);
    EXPECT_EQ(p[1], 2);
    EXPECT_EQ(p[3], 0);
}

TEST(Band, InBandAndAccess)
{
    Band<Scalar> b(4, 6, 0, 2); // upper band, bandwidth 3
    EXPECT_TRUE(b.inBand(0, 0));
    EXPECT_TRUE(b.inBand(0, 2));
    EXPECT_FALSE(b.inBand(0, 3));
    EXPECT_FALSE(b.inBand(1, 0));
    b.ref(1, 3) = 7;
    EXPECT_EQ(b.at(1, 3), 7);
    EXPECT_EQ(b.at(3, 0), 0); // outside band reads zero
}

TEST(Band, ToDenseRoundTrip)
{
    Band<Scalar> b(3, 5, 0, 2);
    for (Index r = 0; r < 3; ++r)
        for (Index off = 0; off <= 2; ++off)
            if (r + off < 5)
                b.ref(r, r + off) = 10 * r + off + 1;
    Dense<Scalar> d = b.toDense();
    EXPECT_EQ(d(0, 0), 1);
    EXPECT_EQ(d(2, 4), 23);
    EXPECT_EQ(d(2, 0), 0);
}

TEST(Band, FilledDetection)
{
    Band<Scalar> b(2, 3, 0, 1);
    b.ref(0, 0) = 1;
    b.ref(0, 1) = 1;
    b.ref(1, 1) = 1;
    EXPECT_FALSE(b.bandCompletelyFilled());
    b.ref(1, 2) = 1;
    EXPECT_TRUE(b.bandCompletelyFilled());
    EXPECT_EQ(b.bandPositionCount(), 4);
}

TEST(Triangular, SplitULPartition)
{
    Dense<Scalar> blk = coordinateCoded(4, 4);
    auto [u, l] = splitUL(blk);
    // U + L == original, U upper-with-diag, L strictly lower.
    EXPECT_TRUE(add(u, l) == blk);
    EXPECT_TRUE(conformsToTriPart(u, TriPart::UpperWithDiag));
    EXPECT_TRUE(conformsToTriPart(l, TriPart::LowerStrict));
    // The diagonal belongs to U (the paper's convention).
    EXPECT_EQ(u(2, 2), blk(2, 2));
    EXPECT_EQ(l(2, 2), 0);
}

TEST(Triangular, PartPredicates)
{
    EXPECT_TRUE(inTriPart(TriPart::UpperWithDiag, 1, 1));
    EXPECT_FALSE(inTriPart(TriPart::UpperStrict, 1, 1));
    EXPECT_TRUE(inTriPart(TriPart::LowerStrict, 2, 0));
    EXPECT_TRUE(inTriPart(TriPart::DiagOnly, 3, 3));
    EXPECT_FALSE(inTriPart(TriPart::DiagOnly, 3, 2));
}

TEST(Block, PartitionPadsToMultiples)
{
    Dense<Scalar> a = coordinateCoded(5, 7);
    BlockPartition<Scalar> p(a, 3);
    EXPECT_EQ(p.blockRows(), 2);
    EXPECT_EQ(p.blockCols(), 3);
    EXPECT_EQ(p.paddedRows(), 6);
    EXPECT_EQ(p.paddedCols(), 9);
    // Original content preserved, padding zero.
    EXPECT_EQ(p.padded()(4, 6), a(4, 6));
    EXPECT_EQ(p.padded()(5, 8), 0);
}

TEST(Block, BlockExtraction)
{
    Dense<Scalar> a = coordinateCoded(6, 6);
    BlockPartition<Scalar> p(a, 3);
    Dense<Scalar> blk = p.block(1, 0);
    for (Index r = 0; r < 3; ++r)
        for (Index c = 0; c < 3; ++c)
            EXPECT_EQ(blk(r, c), a(3 + r, c));
}

TEST(Block, ZeroBlockDetection)
{
    Dense<Scalar> a(6, 6);
    a(0, 0) = 1; // only block (0,0) nonzero
    BlockPartition<Scalar> p(a, 3);
    EXPECT_FALSE(p.blockIsZero(0, 0));
    EXPECT_TRUE(p.blockIsZero(0, 1));
    EXPECT_TRUE(p.blockIsZero(1, 1));
}

TEST(Ops, MatVecOracle)
{
    Dense<Scalar> a{2, 3};
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    Vec<Scalar> x{1, 1, 1};
    Vec<Scalar> b{10, 20};
    Vec<Scalar> y = matVec(a, x, b);
    EXPECT_EQ(y[0], 16);
    EXPECT_EQ(y[1], 35);
}

TEST(Ops, MatMulIdentity)
{
    Dense<Scalar> a = randomIntDense(4, 4, 3);
    EXPECT_TRUE(matMul(a, identity<Scalar>(4)) == a);
    EXPECT_TRUE(matMul(identity<Scalar>(4), a) == a);
}

TEST(Ops, MatMulAssociatesWithOracle)
{
    Dense<Scalar> a = randomIntDense(3, 4, 4);
    Dense<Scalar> b = randomIntDense(4, 2, 5);
    Dense<Scalar> e = randomIntDense(3, 2, 6);
    Dense<Scalar> c = matMulAdd(a, b, e);
    for (Index i = 0; i < 3; ++i) {
        for (Index j = 0; j < 2; ++j) {
            Scalar acc = e(i, j);
            for (Index k = 0; k < 4; ++k)
                acc += a(i, k) * b(k, j);
            EXPECT_EQ(c(i, j), acc);
        }
    }
}

TEST(Ops, ForwardSolve)
{
    Dense<Scalar> l = randomLowerTriangular(6, 7);
    Vec<Scalar> x_ref = randomIntVec(6, 8);
    Vec<Scalar> b(6);
    for (Index i = 0; i < 6; ++i) {
        Scalar acc = 0;
        for (Index j = 0; j <= i; ++j)
            acc += l(i, j) * x_ref[j];
        b[i] = acc;
    }
    Vec<Scalar> x = forwardSolve(l, b);
    EXPECT_LT(maxAbsDiff(x, x_ref), 1e-9);
}

TEST(Generate, IntDenseInRangeAndNonzero)
{
    Dense<Scalar> a = randomIntDense(8, 8, 9, 1, 9);
    for (Index i = 0; i < 8; ++i) {
        for (Index j = 0; j < 8; ++j) {
            EXPECT_GE(a(i, j), 1);
            EXPECT_LE(a(i, j), 9);
        }
    }
}

TEST(Generate, BlockSparseHasZeroBlocks)
{
    Dense<Scalar> a = randomBlockSparse(12, 12, 3, 0.5, 10);
    BlockPartition<Scalar> p(a, 3);
    int zero_blocks = 0;
    for (Index i = 0; i < p.blockRows(); ++i)
        for (Index j = 0; j < p.blockCols(); ++j)
            if (p.blockIsZero(i, j))
                ++zero_blocks;
    EXPECT_GT(zero_blocks, 0);
    EXPECT_LT(zero_blocks, 16);
}

TEST(Generate, DiagDominant)
{
    Dense<Scalar> a = randomDiagDominant(10, 11);
    for (Index i = 0; i < 10; ++i) {
        Scalar off = 0;
        for (Index j = 0; j < 10; ++j)
            if (j != i)
                off += std::abs(a(i, j));
        EXPECT_GT(a(i, i), off);
    }
}

TEST(Io, OccupancyPicture)
{
    Dense<Scalar> a(2, 2);
    a(0, 0) = 1;
    EXPECT_EQ(occupancyPicture(a), "#.\n..\n");
}

TEST(Io, ToStringVector)
{
    Vec<Scalar> v{1, 2};
    EXPECT_EQ(toString(v, 0), "[1 2]");
}

} // namespace
} // namespace sap
