/**
 * @file
 * Chaos and routing tests for the gateway tier (net/gateway.hh): an
 * unmodified NetClient served correctly through the front door,
 * digest-sticky routing into per-backend plan caches, scatter-gather
 * snapshots, and — the point of the tier — fault injection: a
 * backend killed mid-stream with unacknowledged SUBMITs must cost no
 * client an answer. Every request ends in a correct RESPONSE
 * (post-failover, oracle-checked) or a clean ERROR frame; a tag is
 * never dropped and never answered twice (a duplicate would surface
 * as NetClient's unknown-tag protocol violation and fail the run).
 *
 * The injected faults come from FlakyBackend, an in-test backend
 * that speaks just enough of the wire protocol to become routable
 * (it answers PINGs), absorbs FORWARDs without ever answering them,
 * and drops dead — connection and listener both — after a
 * configured number of absorbed requests. That models the worst
 * failure shape: a backend that took work, acknowledged nothing,
 * and vanished.
 *
 * Everything here runs under TSan in CI; cross-thread test state is
 * atomics only.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/gateway.hh"
#include "net/server.hh"

#include "flaky_backend.hh"

namespace sap {
namespace {

NetServer::Options
backendOptions()
{
    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.cluster.threadsPerShard = 2;
    return opts;
}

Gateway::Options
gatewayOptions(std::vector<Gateway::BackendAddr> backends)
{
    Gateway::Options opts;
    opts.backends = std::move(backends);
    // Test-speed timings: fast pings and reconnects so failure
    // detection fits in a test, not a deployment.
    opts.pingIntervalMs = 25;
    opts.pingMissLimit = 4;
    opts.reconnectIntervalMs = 50;
    opts.healthzIntervalMs = 0; // probed-plane tests opt back in
    return opts;
}

ServeRequest
matVecRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(n, n, seed),
                                  randomIntVec(n, seed + 1),
                                  randomIntVec(n, seed + 2), w);
    return req;
}

ServeRequest
matMulRequest(std::uint64_t seed, Index n = 5, Index w = 3)
{
    ServeRequest req;
    req.engine = "hex";
    req.plan = EnginePlan::matMul(randomIntDense(n, n, seed),
                                  randomIntDense(n, n, seed + 1),
                                  randomIntDense(n, n, seed + 2), w);
    return req;
}

ServeRequest
triSolveRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "tri";
    req.plan = EnginePlan::triSolve(randomUnitLowerTriangular(n, seed),
                                    randomIntVec(n, seed + 1), w);
    return req;
}

/** Spin (with sleeps) until @p pred or @p timeout_ms elapses. */
template <typename Pred>
bool
waitUntil(Pred pred, int timeout_ms = 5000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
}

// FlakyBackend now lives in flaky_backend.hh, shared with the
// trace-propagation suite.

/**
 * A raw loopback connection for crafting frames below the NetClient
 * abstraction (cf. test_net_server.cc's RawConn).
 */
class RawGatewayConn
{
  public:
    explicit RawGatewayConn(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawGatewayConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    void
    send(const std::vector<std::uint8_t> &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return;
            off += static_cast<std::size_t>(n);
        }
    }

    bool
    readFrame(Frame *out)
    {
        std::uint8_t buf[4096];
        for (;;) {
            std::string err;
            FrameDecoder::Result res = decoder_.next(out, &err);
            if (res == FrameDecoder::Result::Ok)
                return true;
            if (res == FrameDecoder::Result::Malformed)
                return false;
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return false;
            decoder_.feed(buf, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

/** Find a loopback port that is currently free (bind 0, read, close).
 *  Races are possible in principle; in the test container they are
 *  not a practical concern. */
std::uint16_t
freeLoopbackPort()
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    std::uint16_t port = ntohs(addr.sin_port);
    ::close(fd);
    return port;
}

//----------------------------------------------------------------------
// Routing correctness through a healthy gateway.
//----------------------------------------------------------------------

TEST(Gateway, ServesEveryKindThroughTheFrontDoor)
{
    NetServer a(backendOptions()), b(backendOptions());
    ASSERT_TRUE(a.start()) << a.error();
    ASSERT_TRUE(b.start()) << b.error();

    Gateway gw(gatewayOptions(
        {{"127.0.0.1", a.port(), 0}, {"127.0.0.1", b.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 2; }))
        << "backends never became routable";

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()))
        << client.lastError();

    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 4; ++i) {
        reqs.push_back(matVecRequest(1000 + 10 * i));
        reqs.push_back(matMulRequest(2000 + 10 * i));
        reqs.push_back(triSolveRequest(3000 + 10 * i));
    }
    std::vector<NetClient::Result> results = client.submitBatch(reqs);
    ASSERT_EQ(results.size(), reqs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].transportOk)
            << i << ": " << results[i].transportError;
        ASSERT_TRUE(results[i].response.ok)
            << i << ": " << results[i].response.error;
        EXPECT_TRUE(
            NetClient::matchesOracle(reqs[i], results[i].response))
            << i;
    }

    GatewayStats gs = gw.stats();
    EXPECT_GE(gs.requestsRouted, reqs.size());
    EXPECT_GE(gs.responsesRelayed, reqs.size());
    EXPECT_EQ(gs.failovers, 0u);

    // Both backends must actually carry traffic — the ring spreads
    // 12 distinct digests over 2 backends, so a backend with zero
    // requests means routing collapsed to one leg.
    ServerStats sa, sb;
    NetClient ca, cb;
    ASSERT_TRUE(ca.connect("127.0.0.1", a.port()));
    ASSERT_TRUE(cb.connect("127.0.0.1", b.port()));
    ASSERT_TRUE(ca.stats(&sa));
    ASSERT_TRUE(cb.stats(&sb));
    EXPECT_GT(sa.requests, 0u);
    EXPECT_GT(sb.requests, 0u);
    EXPECT_EQ(sa.requests + sb.requests, reqs.size());
}

TEST(Gateway, StatsAndMetricsScatterGatherAcrossBackends)
{
    NetServer a(backendOptions()), b(backendOptions());
    ASSERT_TRUE(a.start()) << a.error();
    ASSERT_TRUE(b.start()) << b.error();
    Gateway gw(gatewayOptions(
        {{"127.0.0.1", a.port(), 0}, {"127.0.0.1", b.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 2; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 8; ++i)
        reqs.push_back(matVecRequest(4000 + 10 * i));
    for (const NetClient::Result &r : client.submitBatch(reqs)) {
        ASSERT_TRUE(r.transportOk) << r.transportError;
        ASSERT_TRUE(r.response.ok) << r.response.error;
    }

    // STATS through the gateway = the merge of both backends.
    ServerStats merged;
    ASSERT_TRUE(client.stats(&merged)) << client.lastError();
    EXPECT_EQ(merged.requests, reqs.size());

    // METRICS likewise merges the backends' registries; the serving
    // counter must cover every request exactly once.
    MetricsSnapshot snap;
    ASSERT_TRUE(client.metrics(&snap)) << client.lastError();
    auto it = snap.counters.find("net_frames_received_total");
    ASSERT_NE(it, snap.counters.end())
        << "merged metrics carry no net-layer counters";
    EXPECT_GE(it->second, reqs.size());

    // PING is answered at the gateway itself.
    EXPECT_TRUE(client.ping()) << client.lastError();
}

TEST(Gateway, RoutingIsDigestStickyIntoBackendPlanCaches)
{
    NetServer a(backendOptions()), b(backendOptions());
    ASSERT_TRUE(a.start()) << a.error();
    ASSERT_TRUE(b.start()) << b.error();
    Gateway gw(gatewayOptions(
        {{"127.0.0.1", a.port(), 0}, {"127.0.0.1", b.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 2; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));

    // Same matrix (= same plan digest), fresh vector: the second
    // submit must land on the same backend — and there, in its plan
    // cache. Ten distinct matrices so both ring legs participate.
    for (int i = 0; i < 10; ++i) {
        ServeRequest req = matVecRequest(5000 + 100 * i);
        NetClient::Result first = client.submit(req);
        ASSERT_TRUE(first.transportOk && first.response.ok)
            << first.transportError << first.response.error;
        EXPECT_FALSE(first.response.cacheHit) << i;

        req.plan.x = randomIntVec(req.plan.a.cols(), 6000 + i);
        NetClient::Result second = client.submit(req);
        ASSERT_TRUE(second.transportOk && second.response.ok);
        EXPECT_TRUE(second.response.cacheHit)
            << i << ": resubmit missed the plan cache — digest "
                    "routing is not sticky";
        EXPECT_TRUE(NetClient::matchesOracle(req, second.response));
    }
}

TEST(Gateway, UnexpectedFrameEarnsErrorAndConnectionSurvives)
{
    NetServer a(backendOptions());
    ASSERT_TRUE(a.start()) << a.error();
    Gateway gw(gatewayOptions({{"127.0.0.1", a.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; }));

    // A RESPONSE frame from a client is nonsense at the gateway: it
    // must earn a payload-level ERROR on the same tag — and the
    // connection must keep serving afterwards.
    RawGatewayConn raw(gw.port());
    ASSERT_TRUE(raw.ok());
    WireResponse bogus;
    bogus.ok = true;
    raw.send(buildResponseFrame(77, bogus));
    Frame frame;
    ASSERT_TRUE(raw.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_EQ(frame.header.tag, 77u);
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err)) << err;
    EXPECT_NE(message.find("unexpected"), std::string::npos)
        << message;

    // Still alive: a PING on the same connection echoes.
    raw.send(buildPingFrame(78));
    ASSERT_TRUE(raw.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Ping));
    EXPECT_EQ(frame.header.tag, 78u);
}

//----------------------------------------------------------------------
// Fault injection.
//----------------------------------------------------------------------

TEST(Gateway, NoRoutableBackendYieldsCleanErrorNotAHang)
{
    // The only configured backend does not exist.
    Gateway gw(gatewayOptions({{"127.0.0.1", freeLoopbackPort(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    EXPECT_EQ(gw.routableBackends(), 0u);

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    NetClient::Result r = client.submit(matVecRequest(7200));
    ASSERT_TRUE(r.transportOk) << r.transportError;
    EXPECT_FALSE(r.response.ok);
    EXPECT_NE(r.response.error.find("no routable backend"),
              std::string::npos)
        << r.response.error;
    EXPECT_GE(gw.stats().errorsReturned, 1u);
}

TEST(Gateway, FailoverMidStreamLosesNoClientAndNoTag)
{
    // One honest backend, one flaky one that dies after absorbing 3
    // unacknowledged FORWARDs. Several client threads stream fresh
    // requests through the gateway the whole time. The contract:
    // every submit ends in a correct oracle-checked RESPONSE (the
    // in-flight ones via failover to the survivor) — never a hang,
    // never a dropped tag, and never a duplicate (a duplicated tag
    // would make NetClient::submitBatch fail the stream with an
    // unknown-tag protocol violation).
    NetServer honest(backendOptions());
    ASSERT_TRUE(honest.start()) << honest.error();
    FlakyBackend flaky(/*kill_after=*/3);

    Gateway gw(gatewayOptions({{"127.0.0.1", honest.port(), 0},
                               {"127.0.0.1", flaky.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 2; }))
        << "flaky backend never became routable";

    const int kThreads = 3;
    std::atomic<std::uint64_t> next_seed{10000};
    std::atomic<bool> done{false};
    std::atomic<int> served{0}, errored{0}, violations{0};

    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&] {
            NetClient client;
            if (!client.connect("127.0.0.1", gw.port())) {
                violations.fetch_add(1);
                return;
            }
            while (!done.load()) {
                std::vector<ServeRequest> reqs;
                for (int i = 0; i < 4; ++i)
                    reqs.push_back(matVecRequest(
                        next_seed.fetch_add(100)));
                std::vector<NetClient::Result> results =
                    client.submitBatch(reqs);
                for (std::size_t i = 0; i < results.size(); ++i) {
                    const NetClient::Result &r = results[i];
                    if (!r.transportOk) {
                        // Transport failures (incl. duplicate-tag
                        // protocol violations) are test failures.
                        violations.fetch_add(1);
                        return;
                    }
                    if (!r.response.ok) {
                        // A clean ERROR is permitted by the
                        // contract (resubmit budget); with one
                        // failover and budget 2 it should not
                        // actually happen — counted, asserted 0
                        // below.
                        errored.fetch_add(1);
                    } else if (!NetClient::matchesOracle(
                                   reqs[i], r.response)) {
                        violations.fetch_add(1);
                    } else {
                        served.fetch_add(1);
                    }
                }
            }
        });
    }

    // Run until the gateway has seen the backend die and failed
    // over, then a little longer to prove the survivor carries the
    // full stream.
    EXPECT_TRUE(waitUntil(
        [&] { return gw.stats().failovers >= 1; }, 20000))
        << "flaky backend never died (absorbed "
        << flaky.forwardsAbsorbed() << " forwards)";
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    done.store(true);
    for (std::thread &t : clients)
        t.join();

    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(errored.load(), 0)
        << "a request burned its whole resubmit budget on one "
           "failover";
    EXPECT_GT(served.load(), 0);
    EXPECT_TRUE(flaky.dead());

    GatewayStats gs = gw.stats();
    EXPECT_GE(gs.failovers, 1u);
    EXPECT_GE(gs.resubmits, 1u)
        << "the absorbed FORWARDs were not migrated";
    EXPECT_EQ(gw.routableBackends(), 1u);

    // And the tier keeps serving new work after the chaos.
    NetClient after;
    ASSERT_TRUE(after.connect("127.0.0.1", gw.port()));
    ServeRequest req = matVecRequest(999999);
    NetClient::Result r = after.submit(req);
    ASSERT_TRUE(r.transportOk && r.response.ok)
        << r.transportError << r.response.error;
    EXPECT_TRUE(NetClient::matchesOracle(req, r.response));
}

TEST(Gateway, LastBackendDyingFailsInflightCleanly)
{
    // The flaky backend is the ONLY backend: when it dies holding
    // unacknowledged SUBMITs there is nowhere to fail over to, so
    // every in-flight request must come back as a prompt, clean
    // ERROR — the client must never hang on a dead backend.
    FlakyBackend flaky(/*kill_after=*/1);
    Gateway gw(gatewayOptions({{"127.0.0.1", flaky.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 4; ++i)
        reqs.push_back(matVecRequest(20000 + 100 * i));
    std::vector<NetClient::Result> results = client.submitBatch(reqs);

    ASSERT_EQ(results.size(), reqs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].transportOk)
            << i << ": " << results[i].transportError;
        EXPECT_FALSE(results[i].response.ok) << i;
        EXPECT_FALSE(results[i].response.error.empty()) << i;
    }
    EXPECT_TRUE(flaky.dead());
    GatewayStats gs = gw.stats();
    EXPECT_GE(gs.failovers, 1u);
    EXPECT_GE(gs.errorsReturned, reqs.size());
}

TEST(Gateway, DeadBackendRejoinsTheRingOnRecovery)
{
    std::uint16_t port = freeLoopbackPort();
    NetServer::Options opts = backendOptions();
    opts.port = port;
    auto server = std::make_unique<NetServer>(opts);
    ASSERT_TRUE(server->start()) << server->error();

    Gateway gw(gatewayOptions({{"127.0.0.1", port, 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    NetClient::Result r = client.submit(matVecRequest(30000));
    ASSERT_TRUE(r.transportOk && r.response.ok);

    // Kill the backend; the gateway must pull it from the ring and
    // answer new work with a clean ERROR.
    server->stop();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 0; }))
        << "gateway never noticed the backend die";
    r = client.submit(matVecRequest(30100));
    ASSERT_TRUE(r.transportOk) << r.transportError;
    EXPECT_FALSE(r.response.ok);

    // Revive it on the same port; the reconnect loop must bring it
    // back into the ring and traffic must flow again.
    server = std::make_unique<NetServer>(opts);
    ASSERT_TRUE(server->start()) << server->error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 1; },
                          10000))
        << "backend never rejoined after recovery";
    ServeRequest req = matVecRequest(30200);
    r = client.submit(req);
    ASSERT_TRUE(r.transportOk && r.response.ok)
        << r.transportError << r.response.error;
    EXPECT_TRUE(NetClient::matchesOracle(req, r.response));
}

//----------------------------------------------------------------------
// The /healthz probe plane.
//----------------------------------------------------------------------

TEST(Gateway, HealthzProbeAnswersAgainstARealAdminPlane)
{
    NetServer::Options opts = backendOptions();
    opts.adminEnabled = true;
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();

    EXPECT_TRUE(probeHealthz("127.0.0.1", server.adminPort(), 1000));
    // Nothing listens on a freshly-freed port: probe must fail fast,
    // not hang.
    EXPECT_FALSE(probeHealthz("127.0.0.1", freeLoopbackPort(), 1000));
}

TEST(Gateway, FailingHealthzProbePullsBackendFromRing)
{
    // The backend's data plane is perfectly healthy — TCP connects,
    // PINGs answer — but its configured admin port is dead. The
    // prober must veto routability: that is how an operator drains a
    // backend (flip /healthz to 503) without killing its socket.
    NetServer server(backendOptions());
    ASSERT_TRUE(server.start()) << server.error();

    std::vector<Gateway::BackendAddr> addrs = {
        {"127.0.0.1", server.port(), freeLoopbackPort()}};
    Gateway::Options gopts = gatewayOptions(std::move(addrs));
    gopts.healthzIntervalMs = 50;
    Gateway gw(gopts);
    ASSERT_TRUE(gw.start()) << gw.error();

    // The backend may be routable for an instant before the first
    // probe lands; it must settle at 0 and stay there.
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 0; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(gw.routableBackends(), 0u);

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    NetClient::Result r = client.submit(matVecRequest(40000));
    ASSERT_TRUE(r.transportOk) << r.transportError;
    EXPECT_FALSE(r.response.ok);
    EXPECT_NE(r.response.error.find("no routable backend"),
              std::string::npos);
}

TEST(Gateway, GatewayMetricsExposeRoutingAndFailure)
{
    NetServer honest(backendOptions());
    ASSERT_TRUE(honest.start()) << honest.error();
    FlakyBackend flaky(/*kill_after=*/1);
    Gateway gw(gatewayOptions({{"127.0.0.1", honest.port(), 0},
                               {"127.0.0.1", flaky.port(), 0}}));
    ASSERT_TRUE(gw.start()) << gw.error();
    ASSERT_TRUE(waitUntil([&] { return gw.routableBackends() == 2; }));

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", gw.port()));
    // Stream until the flaky backend has died and failed over.
    std::uint64_t seed = 50000;
    ASSERT_TRUE(waitUntil(
        [&] {
            std::vector<ServeRequest> reqs;
            for (int i = 0; i < 4; ++i)
                reqs.push_back(matVecRequest(seed += 100));
            for (const NetClient::Result &r :
                 client.submitBatch(reqs)) {
                EXPECT_TRUE(r.transportOk) << r.transportError;
            }
            return gw.stats().failovers >= 1;
        },
        20000));

    MetricsSnapshot snap = gw.metricsSnapshot();
    auto counter = [&](const std::string &name) -> long {
        auto it = snap.counters.find(name);
        return it == snap.counters.end()
                   ? -1
                   : static_cast<long>(it->second);
    };
    EXPECT_GT(counter("gateway_requests_total"), 0);
    EXPECT_GT(counter("gateway_responses_relayed_total"), 0);
    EXPECT_GE(counter("gateway_failovers_total"), 1);
    auto hist = snap.histograms.find("gateway_route_micros");
    ASSERT_NE(hist, snap.histograms.end())
        << "route latency histogram missing";
    EXPECT_GT(hist->second.count, 0u);
}

} // namespace
} // namespace sap
