/**
 * @file
 * Property-based tests: algebraic identities and structural
 * invariants that must hold across randomly drawn shapes and
 * values, beyond the worked examples.
 */

#include <gtest/gtest.h>

#include "analysis/formulas.hh"
#include "analysis/sweep.hh"
#include "base/math_util.hh"
#include "base/random.hh"
#include "dbt/interleave.hh"
#include "engine/registry.hh"
#include "dbt/matmul_plan.hh"
#include "dbt/matvec_exec.hh"
#include "dbt/matvec_plan.hh"
#include "dbt/sparse_dbt.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "mat/triangular.hh"
#include "serve/fingerprint.hh"

namespace sap {
namespace {

/** Sweep seeds for the randomized property tests. */
class RandomShapes : public ::testing::TestWithParam<int>
{
  protected:
    /** Draw a shape in [1, 12] and an array size in [1, 5]. */
    void
    draw(Index &n, Index &m, Index &w)
    {
        Rng rng(1000 + GetParam());
        n = rng.uniformInt(1, 12);
        m = rng.uniformInt(1, 12);
        w = rng.uniformInt(1, 5);
    }
};

TEST_P(RandomShapes, MatVecPlanExactOnRandomShape)
{
    Index n, m, w;
    draw(n, m, w);
    Dense<Scalar> a = randomIntDense(n, m, 2000 + GetParam());
    Vec<Scalar> x = randomIntVec(m, 3000 + GetParam());
    Vec<Scalar> b = randomIntVec(n, 4000 + GetParam());
    MatVecPlan plan(a, w);
    EXPECT_EQ(maxAbsDiff(plan.run(x, b).y, matVec(a, x, b)), 0.0)
        << "n=" << n << " m=" << m << " w=" << w;
}

TEST_P(RandomShapes, TimeAndUtilizationFormulasOnRandomShape)
{
    Index n, m, w;
    draw(n, m, w);
    Dense<Scalar> a = randomIntDense(n, m, 2100 + GetParam());
    MatVecPlan plan(a, w);
    MatVecPlanResult r = plan.run(randomIntVec(m, 1),
                                  randomIntVec(n, 2));
    const MatVecDims &d = plan.dims();
    EXPECT_EQ(r.stats.cycles, formulas::tMatVec(w, d.nbar, d.mbar));
    EXPECT_NEAR(r.stats.utilization(),
                formulas::eMatVec(w, d.nbar, d.mbar), 1e-12);
}

TEST_P(RandomShapes, AlgebraicAndCycleExecutorsAgree)
{
    Index n, m, w;
    draw(n, m, w);
    Dense<Scalar> a = randomIntDense(n, m, 2200 + GetParam());
    Vec<Scalar> x = randomIntVec(m, 2300 + GetParam());
    Vec<Scalar> b = randomIntVec(n, 2400 + GetParam());
    MatVecTransform t(a, w);
    MatVecPlan plan(a, w);
    EXPECT_EQ(maxAbsDiff(execTransformed(t, x, b).y,
                         plan.run(x, b).y), 0.0);
}

TEST_P(RandomShapes, SparseDbtMatchesDenseOnRandomPattern)
{
    Index n, m, w;
    draw(n, m, w);
    double prob = 0.1 * (GetParam() % 10);
    Dense<Scalar> a = randomBlockSparse(n, m, w, prob,
                                        2500 + GetParam());
    Vec<Scalar> x = randomIntVec(m, 2600 + GetParam());
    Vec<Scalar> b = randomIntVec(n, 2700 + GetParam());
    SparseDbt sparse(a, w);
    BandMatVecSpec spec = sparse.spec(x, b);
    Vec<Scalar> y;
    if (sparse.keptBlocks() > 0) {
        LinearRunResult r = runBandMatVec(spec);
        y = sparse.extractY(r.ybar);
    } else {
        y = sparse.extractY(Vec<Scalar>(0));
    }
    EXPECT_EQ(maxAbsDiff(y, matVec(a, x, b)), 0.0)
        << "n=" << n << " m=" << m << " w=" << w << " p=" << prob;
}

TEST_P(RandomShapes, OverlapSplitPreservesResults)
{
    Index n, m, w;
    draw(n, m, w);
    n = std::max(n, 2 * w); // ensure n̄ >= 2
    Dense<Scalar> a = randomIntDense(n, m, 2800 + GetParam());
    Vec<Scalar> x = randomIntVec(m, 2900 + GetParam());
    Vec<Scalar> b = randomIntVec(n, 3100 + GetParam());
    MatVecPlan plan(a, w);
    EXPECT_EQ(maxAbsDiff(plan.runOverlapped(x, b).y, matVec(a, x, b)),
              0.0)
        << "n=" << n << " m=" << m << " w=" << w;
}

TEST_P(RandomShapes, EveryMatVecEngineExactOnRandomShape)
{
    // The engine harness must be exact on every topology across the
    // same shape sweep as the per-driver tests above.
    Index n, m, w;
    draw(n, m, w);
    Dense<Scalar> a = randomIntDense(n, m, 3200 + GetParam());
    Vec<Scalar> x = randomIntVec(m, 3300 + GetParam());
    Vec<Scalar> b = randomIntVec(n, 3400 + GetParam());
    Vec<Scalar> gold = matVec(a, x, b);
    EnginePlan plan = EnginePlan::matVec(a, x, b, w);
    for (const std::string &name : engineNames(ProblemKind::MatVec)) {
        if (name == "overlapped" && ceilDiv(n, w) < 2)
            continue; // split needs at least two block rows
        EngineRunResult r = makeEngine(name)->run(plan);
        EXPECT_EQ(maxAbsDiff(r.y, gold), 0.0)
            << name << " n=" << n << " m=" << m << " w=" << w;
        EXPECT_TRUE(r.conflictFree) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapes, ::testing::Range(0, 24));

/** Random mat-mul shapes. */
class RandomMatMul : public ::testing::TestWithParam<int>
{
  protected:
    void
    draw(Index &n, Index &p, Index &m, Index &w)
    {
        Rng rng(5000 + GetParam());
        n = rng.uniformInt(1, 9);
        p = rng.uniformInt(1, 9);
        m = rng.uniformInt(1, 9);
        w = rng.uniformInt(1, 4);
    }
};

TEST_P(RandomMatMul, BlockOracleExact)
{
    Index n, p, m, w;
    draw(n, p, m, w);
    Dense<Scalar> a = randomIntDense(n, p, 6000 + GetParam());
    Dense<Scalar> b = randomIntDense(p, m, 7000 + GetParam());
    Dense<Scalar> e = randomIntDense(n, m, 8000 + GetParam());
    MatMulTransform t(a, b, w);
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(maxAbsDiff(execTransformedMatMul(t, e).c,
                         matMulAdd(a, b, e)), 0.0)
        << "n=" << n << " p=" << p << " m=" << m << " w=" << w;
}

TEST_P(RandomMatMul, CycleSimExactAndOnTime)
{
    Index n, p, m, w;
    draw(n, p, m, w);
    Dense<Scalar> a = randomIntDense(n, p, 6100 + GetParam());
    Dense<Scalar> b = randomIntDense(p, m, 7100 + GetParam());
    Dense<Scalar> e = randomIntDense(n, m, 8100 + GetParam());
    MatMulPlan plan(a, b, w);
    MatMulPlanResult r = plan.run(e);
    EXPECT_EQ(maxAbsDiff(r.c, matMulAdd(a, b, e)), 0.0);
    const MatMulDims &d = plan.dims();
    EXPECT_EQ(r.stats.cycles,
              formulas::tMatMul(w, d.pbar, d.nbar, d.mbar));
    EXPECT_TRUE(r.feedback->topologyRespected());
}

TEST_P(RandomMatMul, EveryMatMulEngineExactOnRandomShape)
{
    Index n, p, m, w;
    draw(n, p, m, w);
    Dense<Scalar> a = randomIntDense(n, p, 6200 + GetParam());
    Dense<Scalar> b = randomIntDense(p, m, 7200 + GetParam());
    Dense<Scalar> e = randomIntDense(n, m, 8200 + GetParam());
    Dense<Scalar> gold = matMulAdd(a, b, e);
    EnginePlan plan = EnginePlan::matMul(a, b, e, w);
    for (const std::string &name : engineNames(ProblemKind::MatMul)) {
        EngineRunResult r = makeEngine(name)->run(plan);
        EXPECT_TRUE(r.c == gold)
            << name << " n=" << n << " p=" << p << " m=" << m
            << " w=" << w;
        EXPECT_TRUE(r.topologyRespected) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatMul, ::testing::Range(0, 16));

//---------------------------------------------------------------------
// Parallel property harness: the every-engine exactness sweeps are
// the slowest property family, and engines are stateless, so the
// (seed × engine) points fan out over the serving thread pool via
// the shared analysis/sweep.hh runConfigSweep runner. Workers only
// compute (gtest assertions are not thread-safe); the main thread
// requires every pooled digest to be bit-identical to the serial
// pass and to the host oracle.
//---------------------------------------------------------------------

/** One engine-exactness point: (result digest, oracle digest).
 *  A pure function of (engine, seed) — the parallel contract. */
std::pair<Digest, Digest>
matVecEnginePoint(const std::string &name, int seed)
{
    Rng rng(1000 + seed); // same draw as the RandomShapes fixture
    Index n = rng.uniformInt(1, 12);
    Index m = rng.uniformInt(1, 12);
    Index w = rng.uniformInt(1, 5);
    Dense<Scalar> a = randomIntDense(n, m, 3200 + seed);
    Vec<Scalar> x = randomIntVec(m, 3300 + seed);
    Vec<Scalar> b = randomIntVec(n, 3400 + seed);
    EngineRunResult r =
        makeEngine(name)->run(EnginePlan::matVec(a, x, b, w));
    return {fingerprintVec(r.y), fingerprintVec(matVec(a, x, b))};
}

/** @copydoc matVecEnginePoint() */
std::pair<Digest, Digest>
matMulEnginePoint(const std::string &name, int seed)
{
    Rng rng(5000 + seed); // same draw as the RandomMatMul fixture
    Index n = rng.uniformInt(1, 9);
    Index p = rng.uniformInt(1, 9);
    Index m = rng.uniformInt(1, 9);
    Index w = rng.uniformInt(1, 4);
    Dense<Scalar> a = randomIntDense(n, p, 6200 + seed);
    Dense<Scalar> b = randomIntDense(p, m, 7200 + seed);
    Dense<Scalar> e = randomIntDense(n, m, 8200 + seed);
    EngineRunResult r =
        makeEngine(name)->run(EnginePlan::matMul(a, b, e, w));
    return {fingerprintDense(r.c),
            fingerprintDense(matMulAdd(a, b, e))};
}

TEST(ParallelProperty, MatVecEngineSweepPooledBitIdenticalToSerial)
{
    std::vector<std::pair<std::string, int>> points;
    for (int seed = 0; seed < 24; ++seed) {
        Rng rng(1000 + seed);
        Index n = rng.uniformInt(1, 12);
        rng.uniformInt(1, 12);
        Index w = rng.uniformInt(1, 5);
        for (const std::string &name :
             engineNames(ProblemKind::MatVec)) {
            if (name == "overlapped" && ceilDiv(n, w) < 2)
                continue; // split needs at least two block rows
            points.emplace_back(name, seed);
        }
    }

    std::vector<std::pair<Digest, Digest>> serial;
    serial.reserve(points.size());
    for (const auto &pt : points)
        serial.push_back(matVecEnginePoint(pt.first, pt.second));

    std::vector<std::pair<Digest, Digest>> pooled = runConfigSweep(
        points, /*threads=*/4,
        [](const std::pair<std::string, int> &pt) {
            return matVecEnginePoint(pt.first, pt.second);
        });

    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(pooled[i].first, serial[i].first)
            << points[i].first << " seed " << points[i].second;
        EXPECT_EQ(pooled[i].first, pooled[i].second)
            << points[i].first << " seed " << points[i].second
            << " diverges from the host oracle";
    }
}

TEST(ParallelProperty, MatMulEngineSweepPooledBitIdenticalToSerial)
{
    std::vector<std::pair<std::string, int>> points;
    for (int seed = 0; seed < 16; ++seed)
        for (const std::string &name :
             engineNames(ProblemKind::MatMul))
            points.emplace_back(name, seed);

    std::vector<std::pair<Digest, Digest>> serial;
    serial.reserve(points.size());
    for (const auto &pt : points)
        serial.push_back(matMulEnginePoint(pt.first, pt.second));

    std::vector<std::pair<Digest, Digest>> pooled = runConfigSweep(
        points, /*threads=*/4,
        [](const std::pair<std::string, int> &pt) {
            return matMulEnginePoint(pt.first, pt.second);
        });

    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(pooled[i].first, serial[i].first)
            << points[i].first << " seed " << points[i].second;
        EXPECT_EQ(pooled[i].first, pooled[i].second)
            << points[i].first << " seed " << points[i].second
            << " diverges from the host oracle";
    }
}

//---------------------------------------------------------------------
// Algebraic identities
//---------------------------------------------------------------------

TEST(Identities, DbtTransposeDuality)
{
    // DBT-transposed-by-rows(B) = (DBT-by-rows(Bᵀ))ᵀ manifests in
    // the mat-mul B̄ band: its diagonal blocks are the transposes of
    // the Ū blocks that DBT-by-rows would produce for Bᵀ.
    Dense<Scalar> b = randomIntDense(6, 9, 9000);
    MatMulTransform mm(identity<Scalar>(6), b, 3);
    // Column block 0 of B corresponds to DBT of (B_0)ᵀ.
    Dense<Scalar> b0(6, 3);
    for (Index i = 0; i < 6; ++i)
        for (Index j = 0; j < 3; ++j)
            b0(i, j) = b(i, j);
    MatVecTransform mv(b0.transposed(), 3);
    for (Index l = 0; l < mm.dims().pbar; ++l) {
        Dense<Scalar> from_mm = mm.bDiagBlock(l);
        // Ū_l of DBT(B_0ᵀ) is U_{0,l}; its transpose is the L⁺
        // block of B̄ at row l.
        Dense<Scalar> blk(3, 3);
        for (Index i = 0; i < 3; ++i)
            for (Index j = i; j < 3; ++j)
                blk(i, j) = mv.abar().at(l * 3 + i, l * 3 + j);
        EXPECT_TRUE(from_mm == blk.transposed()) << "l=" << l;
    }
}

TEST(Identities, MatMulLinearInE)
{
    Dense<Scalar> a = randomIntDense(6, 6, 9100);
    Dense<Scalar> b = randomIntDense(6, 6, 9200);
    Dense<Scalar> e1 = randomIntDense(6, 6, 9300);
    Dense<Scalar> e2 = randomIntDense(6, 6, 9400);
    MatMulPlan plan(a, b, 3);
    Dense<Scalar> sum = add(plan.run(e1).c, plan.run(e2).c);
    Dense<Scalar> joint = plan.run(add(e1, e2)).c;
    Dense<Scalar> base = plan.run(Dense<Scalar>(6, 6)).c;
    EXPECT_EQ(maxAbsDiff(joint, add(sum, Dense<Scalar>(6, 6))),
              maxAbsDiff(joint, sum)); // same shape sanity
    // joint + base == sum + 2*base  <=>  joint == sum - base.
    Dense<Scalar> expect(6, 6);
    for (Index i = 0; i < 6; ++i)
        for (Index j = 0; j < 6; ++j)
            expect(i, j) = sum(i, j) - base(i, j);
    EXPECT_EQ(maxAbsDiff(joint, expect), 0.0);
}

TEST(Identities, MatVecIsColumnOfMatMul)
{
    // A·x as A·X with X a single padded column, both on the arrays.
    Dense<Scalar> a = randomIntDense(6, 6, 9500);
    Vec<Scalar> x = randomIntVec(6, 9600);
    Dense<Scalar> xmat(6, 1);
    for (Index i = 0; i < 6; ++i)
        xmat(i, 0) = x[i];
    MatVecPlan mv(a, 3);
    MatMulPlan mm(a, xmat, 3);
    Vec<Scalar> y = mv.run(x, Vec<Scalar>(6)).y;
    Dense<Scalar> c = mm.run(Dense<Scalar>(6, 1)).c;
    for (Index i = 0; i < 6; ++i)
        EXPECT_EQ(y[i], c(i, 0));
}

TEST(Identities, RealValuedWorkloadsWithinTolerance)
{
    // Real-valued (non-integer) data: systolic evaluation reorders
    // additions, so allow a tiny tolerance.
    Dense<Scalar> a = randomRealDense(8, 8, 9700);
    Vec<Scalar> x(8), b(8);
    Rng rng(9800);
    for (Index i = 0; i < 8; ++i) {
        x[i] = rng.uniformReal(-1, 1);
        b[i] = rng.uniformReal(-1, 1);
    }
    MatVecPlan plan(a, 3);
    EXPECT_LT(maxAbsDiff(plan.run(x, b).y, matVec(a, x, b)), 1e-12);

    Dense<Scalar> bm = randomRealDense(8, 8, 9900);
    MatMulPlan mm(a, bm, 3);
    EXPECT_LT(maxAbsDiff(mm.run(Dense<Scalar>(8, 8)).c,
                         matMul(a, bm)), 1e-12);
}

TEST(Identities, PlanIsDeterministic)
{
    Dense<Scalar> a = randomIntDense(7, 5, 9950);
    Vec<Scalar> x = randomIntVec(5, 9960);
    Vec<Scalar> b = randomIntVec(7, 9970);
    MatVecPlan plan(a, 3);
    MatVecPlanResult r1 = plan.run(x, b);
    MatVecPlanResult r2 = plan.run(x, b);
    EXPECT_TRUE(r1.y == r2.y);
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
    EXPECT_EQ(r1.stats.usefulMacs, r2.stats.usefulMacs);
}

TEST(Identities, BandPositionCountEqualsMatrixElements)
{
    // The filled band has exactly n̄m̄w² in-matrix positions — the
    // padded element count, i.e. no position is wasted.
    for (Index w : {2, 3, 4}) {
        Dense<Scalar> a = randomIntDense(2 * w, 3 * w, 9990 + w);
        MatVecTransform t(a, w);
        EXPECT_EQ(t.abar().bandPositionCount(), 2 * 3 * w * w);
    }
}

} // namespace
} // namespace sap
