/**
 * @file
 * Loopback integration tests for the TCP front end: every problem
 * kind served over the wire bit-identical to the host oracle,
 * multi-client concurrency, the STATS and PING round-trips, and the
 * malformed-frame suite — garbage on a connection must earn an ERROR
 * frame and leave the server (and other connections) healthy.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mat/generate.hh"
#include "mat/ops.hh"
#include "net/client.hh"
#include "net/server.hh"

namespace sap {
namespace {

NetServer::Options
smallServerOptions()
{
    NetServer::Options opts;
    opts.cluster.shards = 2;
    opts.cluster.threadsPerShard = 2;
    return opts;
}

ServeRequest
matVecRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(n, n, seed),
                                  randomIntVec(n, seed + 1),
                                  randomIntVec(n, seed + 2), w);
    return req;
}

ServeRequest
matMulRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "hex";
    req.plan = EnginePlan::matMul(randomIntDense(n, n, seed),
                                  randomIntDense(n, n, seed + 1),
                                  randomIntDense(n, n, seed + 2), w);
    return req;
}

ServeRequest
triSolveRequest(std::uint64_t seed, Index n = 6, Index w = 3)
{
    ServeRequest req;
    req.engine = "tri";
    req.plan = EnginePlan::triSolve(randomUnitLowerTriangular(n, seed),
                                    randomIntVec(n, seed + 1), w);
    return req;
}

/**
 * A raw loopback connection for crafting arbitrary (including
 * malformed) byte streams, below the NetClient abstraction.
 */
class RawConn
{
  public:
    explicit RawConn(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    /** Half-close: no more writes, reads stay open. */
    void shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

    void
    send(const std::vector<std::uint8_t> &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return;
            off += static_cast<std::size_t>(n);
        }
    }

    /** Block for one frame; false on close/garbage. */
    bool
    readFrame(Frame *out)
    {
        std::uint8_t buf[4096];
        for (;;) {
            std::string err;
            FrameDecoder::Result res = decoder_.next(out, &err);
            if (res == FrameDecoder::Result::Ok)
                return true;
            if (res == FrameDecoder::Result::Malformed)
                return false;
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return false;
            decoder_.feed(buf, static_cast<std::size_t>(n));
        }
    }

    /** True when the server closed the connection (EOF). */
    bool
    awaitClose()
    {
        std::uint8_t buf[4096];
        for (;;) {
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n == 0)
                return true;
            if (n < 0)
                return false;
            decoder_.feed(buf, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

//---------------------------------------------------------------------
// Happy paths
//---------------------------------------------------------------------

TEST(NetServer, ServesEveryKindBitIdenticalOverLoopback)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()))
        << client.lastError();

    std::vector<ServeRequest> reqs = {
        matVecRequest(100), matMulRequest(200), triSolveRequest(300)};
    std::vector<NetClient::Result> results = client.submitBatch(reqs);
    ASSERT_EQ(results.size(), reqs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].transportOk)
            << results[i].transportError;
        ASSERT_TRUE(results[i].response.ok)
            << results[i].response.error;
        EXPECT_TRUE(
            NetClient::matchesOracle(reqs[i], results[i].response))
            << "kind " << static_cast<int>(reqs[i].plan.kind);
    }
}

TEST(NetServer, RepeatedMatrixHitsThePlanCacheOverTheWire)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    ServeRequest req = matVecRequest(42);
    NetClient::Result first = client.submit(req);
    ASSERT_TRUE(first.transportOk && first.response.ok);
    EXPECT_FALSE(first.response.cacheHit);

    req.plan.x = randomIntVec(req.plan.a.cols(), 4242);
    NetClient::Result second = client.submit(req);
    ASSERT_TRUE(second.transportOk && second.response.ok);
    EXPECT_TRUE(second.response.cacheHit);
    EXPECT_TRUE(NetClient::matchesOracle(req, second.response));
}

TEST(NetServer, PingAndStatsRoundTrip)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    EXPECT_TRUE(client.ping()) << client.lastError();

    // Serve a few requests, then check the aggregated snapshot.
    for (int i = 0; i < 3; ++i) {
        NetClient::Result r = client.submit(matVecRequest(500 + i));
        ASSERT_TRUE(r.transportOk && r.response.ok);
    }
    ServerStats stats;
    ASSERT_TRUE(client.stats(&stats)) << client.lastError();
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_EQ(stats.failures, 0u);
    ASSERT_FALSE(stats.groups.empty());
    EXPECT_EQ(stats.groups[0].key.engine, "linear");
    EXPECT_EQ(stats.groups[0].requests, 3u);
    EXPECT_GT(stats.groups[0].latency.p50, 0.0);
}

TEST(NetServer, MetricsFrameMergesEveryLayerOverTheWire)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    constexpr int kRequests = 5;
    for (int i = 0; i < kRequests; ++i) {
        NetClient::Result r = client.submit(matVecRequest(900 + i));
        ASSERT_TRUE(r.transportOk && r.response.ok);
    }

    MetricsSnapshot snap;
    ASSERT_TRUE(client.metrics(&snap)) << client.lastError();

    // Shard-side counters, merged exactly across both shards.
    EXPECT_EQ(snap.counters["serve_requests_total"],
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.counters["serve_failures_total"], 0u);
    EXPECT_EQ(snap.counters["plan_cache_hits_total"] +
                  snap.counters["plan_cache_misses_total"],
              static_cast<std::uint64_t>(kRequests));

    // Wire-level counters from the server itself.  The METRICS
    // snapshot is taken while its own request is in flight, so that
    // frame counts as received but its response is not yet sent.
    EXPECT_EQ(snap.counters["net_frames_received_total"],
              static_cast<std::uint64_t>(kRequests) + 1);
    EXPECT_EQ(snap.counters["net_responses_sent_total"],
              static_cast<std::uint64_t>(kRequests));
    EXPECT_GT(snap.counters["net_bytes_received_total"], 0u);
    EXPECT_GT(snap.counters["net_bytes_sent_total"], 0u);
    EXPECT_EQ(snap.gauges["net_connections_live"].value, 1.0);

    // Latency histogram carries every request and sane quantiles.
    ASSERT_TRUE(snap.histograms.count("serve_latency_micros"));
    const HistogramSnapshot &lat =
        snap.histograms["serve_latency_micros"];
    EXPECT_EQ(lat.count, static_cast<std::uint64_t>(kRequests));
    EXPECT_GT(lat.quantile(0.5), 0.0);
    EXPECT_LE(lat.quantile(0.5), lat.max);
}

TEST(NetServer, MetricsDisabledYieldsEmptySnapshotOverTheWire)
{
    NetServer::Options opts = smallServerOptions();
    opts.metrics = false;
    opts.cluster.metrics = false;
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    NetClient::Result r = client.submit(matVecRequest(31));
    ASSERT_TRUE(r.transportOk && r.response.ok);

    MetricsSnapshot snap;
    ASSERT_TRUE(client.metrics(&snap)) << client.lastError();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
}

TEST(NetServer, PingEchoesItsPayloadVerbatim)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
    conn.send(buildFrame(FrameType::Ping, 77, payload));

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Ping));
    EXPECT_EQ(frame.header.tag, 77u);
    EXPECT_EQ(frame.payload, payload);
}

TEST(NetServer, CrossCheckFlagTravelsTheWire)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    ServeRequest req = matVecRequest(77);
    req.crossCheck = true;
    NetClient::Result r = client.submit(req);
    ASSERT_TRUE(r.transportOk && r.response.ok);
    EXPECT_TRUE(r.response.crossCheckOk);
}

TEST(NetServer, ExecutionModeTravelsTheWire)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    ServeRequest req = matVecRequest(610);
    NetClient::Result sim = client.submit(req);
    ASSERT_TRUE(sim.transportOk && sim.response.ok)
        << sim.response.error;

    // Fast mode: bit-identical result, formula-identical cycles.
    req.plan.mode = ExecMode::Fast;
    NetClient::Result fast = client.submit(req);
    ASSERT_TRUE(fast.transportOk) << fast.transportError;
    ASSERT_TRUE(fast.response.ok) << fast.response.error;
    EXPECT_TRUE(fast.response.y == sim.response.y);
    EXPECT_EQ(fast.response.simCycles, sim.response.simCycles);
    EXPECT_TRUE(NetClient::matchesOracle(req, fast.response));

    // Validate mode: both paths run and diff server-side.
    req.plan.mode = ExecMode::Validate;
    NetClient::Result val = client.submit(req);
    ASSERT_TRUE(val.transportOk) << val.transportError;
    ASSERT_TRUE(val.response.ok) << val.response.error;
    EXPECT_TRUE(val.response.y == sim.response.y);

    // One stats group per execution mode, same engine and shape.
    ServerStats stats;
    ASSERT_TRUE(client.stats(&stats)) << client.lastError();
    ASSERT_EQ(stats.groups.size(), 3u);
    EXPECT_EQ(stats.groups[0].key.mode, ExecMode::Simulate);
    EXPECT_EQ(stats.groups[1].key.mode, ExecMode::Fast);
    EXPECT_EQ(stats.groups[2].key.mode, ExecMode::Validate);
    for (const GroupStats &g : stats.groups)
        EXPECT_EQ(g.requests, 1u);
}

TEST(NetServer, ApplicationErrorsComeBackAsFailedResponses)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

    // Unknown engine: decodes fine, fails in the shard.
    ServeRequest req = matVecRequest(900);
    req.engine = "warp-drive";
    NetClient::Result r = client.submit(req);
    ASSERT_TRUE(r.transportOk) << r.transportError;
    EXPECT_FALSE(r.response.ok);
    EXPECT_NE(r.response.error.find("unknown engine"),
              std::string::npos)
        << r.response.error;

    // Shape mismatch: also a per-request failure.
    ServeRequest bad = matVecRequest(901);
    bad.plan.x = randomIntVec(bad.plan.a.cols() + 1, 902);
    r = client.submit(bad);
    ASSERT_TRUE(r.transportOk) << r.transportError;
    EXPECT_FALSE(r.response.ok);

    // The connection keeps serving after both failures.
    ServeRequest good = matVecRequest(903);
    r = client.submit(good);
    ASSERT_TRUE(r.transportOk && r.response.ok);
    EXPECT_TRUE(NetClient::matchesOracle(good, r.response));
}

TEST(NetServer, ManyClientsManyKindsConcurrently)
{
    NetServer::Options opts = smallServerOptions();
    opts.cluster.shards = 4;
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();

    const int kClients = 4;
    const int kRounds = 5;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            NetClient client;
            if (!client.connect("127.0.0.1", server.port())) {
                failures.fetch_add(1);
                return;
            }
            for (int i = 0; i < kRounds; ++i) {
                std::uint64_t seed =
                    static_cast<std::uint64_t>(1000 + c * 100 + i);
                std::vector<ServeRequest> reqs = {
                    matVecRequest(seed), matMulRequest(seed + 40),
                    triSolveRequest(seed + 80)};
                std::vector<NetClient::Result> results =
                    client.submitBatch(reqs);
                for (std::size_t k = 0; k < results.size(); ++k) {
                    if (!results[k].transportOk ||
                        !results[k].response.ok ||
                        !NetClient::matchesOracle(
                            reqs[k], results[k].response))
                        failures.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    NetServerStats net = server.netStats();
    EXPECT_EQ(net.connectionsAccepted,
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(net.responsesSent,
              static_cast<std::uint64_t>(kClients * kRounds * 3));
    EXPECT_EQ(net.protocolErrors, 0u);
}

TEST(NetServer, HalfClosedClientStillGetsEveryResponse)
{
    // A standards-following client may pipeline its SUBMITs,
    // shutdown its write side, and then read to EOF: the server
    // must deliver every owed response before closing, not drop
    // the in-flight ones with the read side.
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();

    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    const int kRequests = 6;
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < kRequests; ++i) {
        reqs.push_back(matVecRequest(7000 + i));
        conn.send(buildSubmitFrame(static_cast<std::uint64_t>(i),
                                   reqs.back()));
    }
    conn.shutdownWrite();

    std::vector<bool> got(kRequests, false);
    for (int i = 0; i < kRequests; ++i) {
        Frame frame;
        ASSERT_TRUE(conn.readFrame(&frame)) << "response " << i;
        ASSERT_EQ(frame.header.type,
                  static_cast<std::uint16_t>(FrameType::Response));
        ASSERT_LT(frame.header.tag,
                  static_cast<std::uint64_t>(kRequests));
        WireResponse resp;
        std::string err;
        ASSERT_TRUE(decodeResponse(frame.payload, &resp, &err)) << err;
        EXPECT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(NetClient::matchesOracle(
            reqs[static_cast<std::size_t>(frame.header.tag)], resp));
        got[static_cast<std::size_t>(frame.header.tag)] = true;
    }
    for (int i = 0; i < kRequests; ++i)
        EXPECT_TRUE(got[static_cast<std::size_t>(i)]) << i;
    // After the last owed response the server closes the connection.
    EXPECT_TRUE(conn.awaitClose());
}

TEST(NetServer, PipelinedBatchSurvivesServerBackpressure)
{
    // Regression: submitBatch() used to write the whole pipeline
    // before reading anything. With the server's per-connection
    // output cap tripped (it stops reading clients whose pending
    // responses exceed maxQueuedOutputBytes) and a deliberately tiny
    // client send buffer, that wedges both sides forever: the server
    // waits for the client to drain responses, the client waits for
    // the socket to accept more SUBMIT bytes. The fixed client
    // interleaves sends with reads, so this completes instead of
    // deadlocking (a hang here fails via the ctest timeout).
    NetServer::Options opts = smallServerOptions();
    opts.maxQueuedOutputBytes = 16u << 10;
    NetServer server(opts);
    ASSERT_TRUE(server.start()) << server.error();

    NetClient client;
    client.setSendBufferBytes(4096);
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()))
        << client.lastError();

    // ~40 matmuls at n=16: a few hundred KiB of requests and well
    // over the 16 KiB response cap, so backpressure engages while
    // most of the pipeline is still unsent.
    std::vector<ServeRequest> reqs;
    for (int i = 0; i < 40; ++i)
        reqs.push_back(matMulRequest(9000 + i, /*n=*/16));
    std::vector<NetClient::Result> results = client.submitBatch(reqs);

    ASSERT_EQ(results.size(), reqs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].transportOk)
            << i << ": " << results[i].transportError;
        ASSERT_TRUE(results[i].response.ok)
            << i << ": " << results[i].response.error;
        EXPECT_TRUE(
            NetClient::matchesOracle(reqs[i], results[i].response))
            << i;
    }
}

TEST(NetServer, RestartAfterStopIsRefused)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();
    server.stop();
    EXPECT_FALSE(server.start());
    EXPECT_NE(server.error().find("restarted"), std::string::npos)
        << server.error();
}

TEST(NetServer, StopWhileClientsConnectedIsClean)
{
    NetServer server(smallServerOptions());
    ASSERT_TRUE(server.start()) << server.error();
    NetClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
    NetClient::Result r = client.submit(matVecRequest(1));
    ASSERT_TRUE(r.transportOk && r.response.ok);
    server.stop();
    // The socket is gone; the client sees a transport failure, not a
    // hang.
    r = client.submit(matVecRequest(2));
    EXPECT_FALSE(r.transportOk);
}

//---------------------------------------------------------------------
// Malformed-frame suite: ERROR frames, healthy server
//---------------------------------------------------------------------

/**
 * Fixture driving a healthy control client alongside each
 * malformed-input connection: after every abuse, the control client
 * must still be served correctly.
 */
class NetServerMalformed : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server = std::make_unique<NetServer>(smallServerOptions());
        ASSERT_TRUE(server->start()) << server->error();
        ASSERT_TRUE(control.connect("127.0.0.1", server->port()))
            << control.lastError();
    }

    void
    expectServerStillHealthy()
    {
        ServeRequest req = matVecRequest(31337);
        NetClient::Result r = control.submit(req);
        ASSERT_TRUE(r.transportOk) << r.transportError;
        ASSERT_TRUE(r.response.ok) << r.response.error;
        EXPECT_TRUE(NetClient::matchesOracle(req, r.response));
    }

    std::unique_ptr<NetServer> server;
    NetClient control;
};

TEST_F(NetServerMalformed, BadMagicGetsErrorThenClose)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    std::vector<std::uint8_t> bytes = buildPingFrame(1);
    bytes[0] ^= 0xFF;
    conn.send(bytes);

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err));
    EXPECT_NE(message.find("magic"), std::string::npos) << message;
    // Frame-level: the stream cannot re-sync, so the server closes.
    EXPECT_TRUE(conn.awaitClose());
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, BadVersionGetsErrorThenClose)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    std::vector<std::uint8_t> bytes = buildPingFrame(1);
    bytes[4] = 0x42;
    conn.send(bytes);

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err));
    EXPECT_NE(message.find("version"), std::string::npos) << message;
    EXPECT_TRUE(conn.awaitClose());
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, OversizedLengthPrefixGetsErrorThenClose)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    WireWriter w;
    w.u32(kWireMagic);
    w.u16(kWireVersion);
    w.u16(static_cast<std::uint16_t>(FrameType::Submit));
    w.u64(9);
    w.u32(0xF0000000u); // 3.75 GiB "payload"
    conn.send(w.take());

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err));
    EXPECT_NE(message.find("cap"), std::string::npos) << message;
    EXPECT_TRUE(conn.awaitClose());
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, TruncatedSubmitPayloadKeepsConnection)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    // A syntactically framed SUBMIT whose payload is cut short:
    // payload-level, so the connection survives.
    ServeRequest req = matVecRequest(5);
    std::vector<std::uint8_t> payload = encodeSubmit(req);
    payload.resize(payload.size() / 2);
    conn.send(buildFrame(FrameType::Submit, 11, payload));

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_EQ(frame.header.tag, 11u);

    // Same connection serves a well-formed request afterwards.
    conn.send(buildSubmitFrame(12, req));
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Response));
    EXPECT_EQ(frame.header.tag, 12u);
    WireResponse resp;
    std::string err;
    ASSERT_TRUE(decodeResponse(frame.payload, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_TRUE(NetClient::matchesOracle(req, resp));
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, UnknownProblemKindKeepsConnection)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    WireWriter w;
    w.str("linear");
    w.u8(42); // no such kind
    w.i64(3);
    w.u8(0);
    conn.send(buildFrame(FrameType::Submit, 21, w.take()));

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_EQ(frame.header.tag, 21u);
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err));
    EXPECT_NE(message.find("unknown problem kind"), std::string::npos)
        << message;

    ServeRequest req = matVecRequest(6);
    conn.send(buildSubmitFrame(22, req));
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Response));
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, ZeroDimensionMatrixKeepsConnection)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    WireWriter w;
    w.str("linear");
    w.u8(0); // MatVec
    w.i64(3);
    w.u8(0);
    w.i64(0); // A rows = 0
    w.i64(4); // A cols
    w.i64(4); // x length
    for (int i = 0; i < 4; ++i)
        w.f64(1.0);
    w.i64(0); // b length
    conn.send(buildFrame(FrameType::Submit, 31, w.take()));

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_EQ(frame.header.tag, 31u);
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err));
    EXPECT_NE(message.find("zero-dimension"), std::string::npos)
        << message;
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, RecordTraceRequestIsRejectedNotDropped)
{
    // RESPONSE frames carry no trace, so a SUBMIT asking for one is
    // refused with an explicit error instead of silently serving a
    // traceless result (the flags byte carries the bit precisely so
    // the server can catch this).
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    ServeRequest req = matVecRequest(8);
    req.plan.recordTrace = true;
    conn.send(buildSubmitFrame(61, req));

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_EQ(frame.header.tag, 61u);
    std::string message, err;
    ASSERT_TRUE(decodeError(frame.payload, &message, &err));
    EXPECT_NE(message.find("no trace"), std::string::npos) << message;

    // Payload-level: the same connection keeps serving.
    req.plan.recordTrace = false;
    conn.send(buildSubmitFrame(62, req));
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Response));
    EXPECT_EQ(frame.header.tag, 62u);
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, UnknownFrameTypeKeepsConnection)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    conn.send(buildFrame(static_cast<FrameType>(200), 41, {9, 9}));

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_EQ(frame.header.tag, 41u);

    conn.send(buildPingFrame(42));
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Ping));
    EXPECT_EQ(frame.header.tag, 42u);
    expectServerStillHealthy();
}

TEST_F(NetServerMalformed, MidFrameDisconnectLeavesServerHealthy)
{
    {
        RawConn conn(server->port());
        ASSERT_TRUE(conn.ok());
        ServeRequest req = matVecRequest(7);
        std::vector<std::uint8_t> bytes = buildSubmitFrame(51, req);
        bytes.resize(bytes.size() / 3); // drop mid-frame
        conn.send(bytes);
        // Destructor closes the socket with a frame half-sent.
    }
    expectServerStillHealthy();
    EXPECT_EQ(server->netStats().protocolErrors, 0u);
}

TEST_F(NetServerMalformed, GarbageFloodDoesNotStarveOtherClients)
{
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    std::vector<std::uint8_t> garbage(4096, 0xAB);
    conn.send(garbage);

    Frame frame;
    ASSERT_TRUE(conn.readFrame(&frame));
    EXPECT_EQ(frame.header.type,
              static_cast<std::uint16_t>(FrameType::Error));
    EXPECT_TRUE(conn.awaitClose());
    expectServerStillHealthy();
    EXPECT_GE(server->netStats().protocolErrors, 1u);
}

} // namespace
} // namespace sap
