/**
 * @file
 * Tests of the mat-mul transformations (§3 + Appendix): Ā/B̄
 * structure, the Fig. 4 worked example, I/O composition rules, and
 * exact end-to-end correctness C = A·B + E at block level.
 */

#include <gtest/gtest.h>

#include "dbt/matmul_exec.hh"
#include "dbt/matmul_io.hh"
#include "dbt/matmul_transform.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"
#include "mat/triangular.hh"

namespace sap {
namespace {

TEST(MatMulTransform, DimsForFig4Example)
{
    // Fig. 4: n̄=2, p̄=2, m̄=3 (with w=3: n=6, p=6, m=9).
    Dense<Scalar> a = randomIntDense(6, 6, 1);
    Dense<Scalar> b = randomIntDense(6, 9, 2);
    MatMulTransform t(a, b, 3);
    EXPECT_EQ(t.dims().nbar, 2);
    EXPECT_EQ(t.dims().pbar, 2);
    EXPECT_EQ(t.dims().mbar, 3);
    EXPECT_EQ(t.dims().blockCount(), 12);  // p̄n̄m̄
    EXPECT_EQ(t.dims().order(), 38);       // w·K + w − 1
}

TEST(MatMulTransform, BandShapes)
{
    Dense<Scalar> a = randomIntDense(4, 4, 3);
    Dense<Scalar> b = randomIntDense(4, 4, 4);
    MatMulTransform t(a, b, 2);
    EXPECT_EQ(t.abar().sub(), 0);
    EXPECT_EQ(t.abar().super(), 1);
    EXPECT_EQ(t.bbar().sub(), 1);
    EXPECT_EQ(t.bbar().super(), 0);
    EXPECT_EQ(t.abar().rows(), t.dims().order());
    EXPECT_EQ(t.bbar().rows(), t.dims().order());
    EXPECT_TRUE(t.validate());
}

TEST(MatMulTransform, ProvenanceIndices)
{
    // k = c·n̄p̄ + r·p̄ + s with n̄=2, p̄=2, m̄=3.
    Dense<Scalar> a = randomIntDense(6, 6, 5);
    Dense<Scalar> b = randomIntDense(6, 9, 6);
    MatMulTransform t(a, b, 3);
    // k = 0 -> (r,s,c) = (0,0,0); k = 5 -> c=1? 5 = 1*4 + 0*2 + 1.
    EXPECT_EQ(t.rOf(0), 0);
    EXPECT_EQ(t.sOf(0), 0);
    EXPECT_EQ(t.cOf(0), 0);
    EXPECT_EQ(t.rOf(5), 0);
    EXPECT_EQ(t.sOf(5), 1);
    EXPECT_EQ(t.cOf(5), 1);
    EXPECT_EQ(t.rOf(11), 1);
    EXPECT_EQ(t.sOf(11), 1);
    EXPECT_EQ(t.cOf(11), 2);
}

TEST(MatMulTransform, ABarJuxtaposesCopies)
{
    // The m̄ copies of Ā^b carry identical data: Ā(k,k) for k and
    // k + n̄p̄ hold the same U block.
    Dense<Scalar> a = randomIntDense(6, 6, 7);
    Dense<Scalar> b = randomIntDense(6, 9, 8);
    MatMulTransform t(a, b, 3);
    Index period = t.dims().nbar * t.dims().pbar;
    for (Index k = 0; k + period < t.dims().blockCount(); ++k)
        EXPECT_TRUE(t.aDiagBlock(k) == t.aDiagBlock(k + period))
            << "k=" << k;
}

TEST(MatMulTransform, BBarColumnBlocksAndWrap)
{
    // B̄ diag block at row k is the lower part of B block (s, c);
    // the sub-diagonal block wraps to the previous copy's column at
    // copy boundaries.
    Dense<Scalar> a = randomIntDense(6, 6, 9);
    Dense<Scalar> b = randomIntDense(6, 9, 10);
    MatMulTransform t(a, b, 3);
    BlockPartition<Scalar> bp(b, 3);
    // k=5: s=1, c=1.
    EXPECT_TRUE(t.bDiagBlock(5) ==
                triPartOf(bp.block(1, 1), TriPart::LowerWithDiag));
    // k=4 (copy boundary): sub block comes from column c=0.
    EXPECT_TRUE(t.bSubBlock(4) ==
                triPartOf(bp.block(0, 0), TriPart::UpperStrict));
    // interior: k=5 sub block from column 1.
    EXPECT_TRUE(t.bSubBlock(5) ==
                triPartOf(bp.block(1, 1), TriPart::UpperStrict));
}

TEST(MatMulTransform, TailBlocksAreLeadingCorners)
{
    Dense<Scalar> a = randomIntDense(6, 6, 11);
    Dense<Scalar> b = randomIntDense(6, 9, 12);
    MatMulTransform t(a, b, 3);
    const Index K = t.dims().blockCount();
    const Index w = 3;
    Dense<Scalar> u_tail = t.aDiagBlock(K);
    Dense<Scalar> u00 = t.aDiagBlock(0);
    for (Index i = 0; i < w - 1; ++i)
        for (Index j = i; j < w - 1; ++j)
            EXPECT_EQ(u_tail(i, j), u00(i, j));
    for (Index tcol = 0; tcol < w; ++tcol) {
        EXPECT_EQ(u_tail(w - 1, tcol), 0);
        EXPECT_EQ(u_tail(tcol, w - 1), 0);
    }
}

TEST(IoComposerTest, ValidatesAcrossShapes)
{
    for (Index nbar : {1, 2, 3}) {
        for (Index pbar : {1, 2, 3}) {
            for (Index mbar : {1, 2, 3}) {
                for (Index w : {1, 2, 3}) {
                    MatMulDims d{nbar * w, pbar * w, mbar * w, w,
                                 nbar, pbar, mbar};
                    IoComposer comp(d);
                    EXPECT_TRUE(comp.validate())
                        << "n̄=" << nbar << " p̄=" << pbar
                        << " m̄=" << mbar << " w=" << w;
                }
            }
        }
    }
}

TEST(IoComposerTest, ChainStartsTakeE)
{
    MatMulDims d{6, 6, 9, 3, 2, 2, 3};
    IoComposer comp(d);
    // Chain of C(1,0) starts at k = 2 (= r·p̄): E enters the
    // sub-diagonal slot.
    IoSource s = comp.inputSource(2, BandPart::USub);
    EXPECT_EQ(s.kind, IoSource::Kind::FromE);
    EXPECT_EQ(s.eRow, 1);
    EXPECT_EQ(s.eCol, 0);
    // Chain of C(0,1) starts at k = 4 (copy boundary): E enters the
    // diagonal-upper slot and the sub-diagonal takes the long
    // feedback of C(0,0)'s partial.
    IoSource s2 = comp.inputSource(4, BandPart::UDiag);
    EXPECT_EQ(s2.kind, IoSource::Kind::FromE);
    EXPECT_EQ(s2.eRow, 0);
    EXPECT_EQ(s2.eCol, 1);
    IoSource s3 = comp.inputSource(4, BandPart::USub);
    EXPECT_EQ(s3.kind, IoSource::Kind::FromO);
    EXPECT_EQ(s3.oRow, 1); // k − p̄(n̄−1) − 1 = 4 − 3
    EXPECT_EQ(s3.oPart, BandPart::UDiag);
    EXPECT_TRUE(s3.irregular);
}

TEST(IoComposerTest, LChainIrregularities)
{
    MatMulDims d{6, 6, 9, 3, 2, 2, 3};
    IoComposer comp(d);
    const Index K = d.blockCount(); // 12
    // The global tail: L chain of C(n̄−1, 0) resumes at k = K−1.
    IoSource s = comp.inputSource(K - 1, BandPart::LSuper);
    EXPECT_EQ(s.kind, IoSource::Kind::FromO);
    EXPECT_EQ(s.oRow, 3); // p̄n̄ − 1
    EXPECT_EQ(s.oPart, BandPart::LDiag);
    EXPECT_TRUE(s.irregular);
    // E for chain (n̄−1, 1) enters at the early super-diagonal slot
    // k = n̄p̄ − 1 = 3.
    IoSource s2 = comp.inputSource(3, BandPart::LSuper);
    EXPECT_EQ(s2.kind, IoSource::Kind::FromE);
    EXPECT_EQ(s2.eRow, 1);
    EXPECT_EQ(s2.eCol, 1);
}

/** Parameterized end-to-end correctness: (n, p, m, w). */
class MatMulCorrectness
    : public ::testing::TestWithParam<
          std::tuple<Index, Index, Index, Index>>
{};

TEST_P(MatMulCorrectness, BlockExecEqualsOracle)
{
    auto [n, p, m, w] = GetParam();
    Dense<Scalar> a = randomIntDense(n, p, 40 + n * 13 + p + m + w);
    Dense<Scalar> b = randomIntDense(p, m, 41 + n + p * 7 + m + w);
    Dense<Scalar> e = randomIntDense(n, m, 42 + n + p + m * 3 + w);

    MatMulTransform t(a, b, w);
    EXPECT_TRUE(t.validate());
    MatMulExecResult r = execTransformedMatMul(t, e);
    Dense<Scalar> expect = matMulAdd(a, b, e);
    EXPECT_EQ(maxAbsDiff(r.c, expect), 0.0)
        << "n=" << n << " p=" << p << " m=" << m << " w=" << w;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulCorrectness,
    ::testing::Values(
        std::make_tuple(1, 1, 1, 1), std::make_tuple(2, 2, 2, 2),
        std::make_tuple(2, 2, 2, 1), std::make_tuple(4, 4, 4, 2),
        std::make_tuple(6, 6, 9, 3),   // the paper's Fig. 4 shape
        std::make_tuple(3, 3, 3, 3),   // single block
        std::make_tuple(6, 3, 3, 3),   // n̄=2, p̄=1, m̄=1
        std::make_tuple(3, 6, 3, 3),   // p̄=2 only
        std::make_tuple(3, 3, 6, 3),   // m̄=2 only
        std::make_tuple(9, 6, 3, 3),   // n̄=3, p̄=2, m̄=1
        std::make_tuple(3, 9, 6, 3),   // p̄=3, m̄=2
        std::make_tuple(8, 6, 4, 2),   // n̄=4, p̄=3, m̄=2
        std::make_tuple(5, 7, 4, 3),   // padding on all sides
        std::make_tuple(2, 9, 5, 4),   // heavy padding
        std::make_tuple(12, 12, 12, 3),
        std::make_tuple(4, 4, 4, 4),
        std::make_tuple(10, 10, 10, 5)));

TEST(MatMulExec, ZeroEGivesPlainProduct)
{
    Dense<Scalar> a = randomIntDense(6, 6, 50);
    Dense<Scalar> b = randomIntDense(6, 6, 51);
    Dense<Scalar> e(6, 6);
    MatMulTransform t(a, b, 3);
    MatMulExecResult r = execTransformedMatMul(t, e);
    EXPECT_EQ(maxAbsDiff(r.c, matMul(a, b)), 0.0);
}

TEST(MatMulExec, IdentityAPassesBThrough)
{
    Dense<Scalar> b = randomIntDense(6, 6, 52);
    Dense<Scalar> e(6, 6);
    MatMulTransform t(identity<Scalar>(6), b, 3);
    MatMulExecResult r = execTransformedMatMul(t, e);
    EXPECT_EQ(maxAbsDiff(r.c, b), 0.0);
}

TEST(MatMulExec, OBandPartsHaveDeclaredShapes)
{
    Dense<Scalar> a = randomIntDense(6, 6, 53);
    Dense<Scalar> b = randomIntDense(6, 9, 54);
    MatMulTransform t(a, b, 3);
    MatMulExecResult r = execTransformedMatMul(t, randomIntDense(6, 9, 55));
    for (const OBandRow &row : r.oband) {
        EXPECT_TRUE(conformsToTriPart(row.uSub, TriPart::UpperStrict));
        EXPECT_TRUE(conformsToTriPart(row.uDiag, TriPart::UpperStrict));
        EXPECT_TRUE(conformsToTriPart(row.lDiag, TriPart::LowerStrict));
        EXPECT_TRUE(conformsToTriPart(row.lSuper, TriPart::LowerStrict));
        EXPECT_TRUE(conformsToTriPart(row.diag, TriPart::DiagOnly));
    }
}

} // namespace
} // namespace sap
