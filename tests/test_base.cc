/**
 * @file
 * Unit tests for the base utilities (math, strings, tables, RNG).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "base/logging.hh"
#include "base/math_util.hh"
#include "base/random.hh"
#include "base/string_util.hh"
#include "base/table.hh"

namespace sap {
namespace {

TEST(MathUtil, CeilDivExact)
{
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(12, 4), 3);
}

TEST(MathUtil, CeilDivRoundsUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(10, 4), 12);
    EXPECT_EQ(roundUp(8, 4), 8);
    EXPECT_EQ(roundUp(0, 4), 0);
}

TEST(MathUtil, PosModWrapsNegative)
{
    EXPECT_EQ(posMod(-1, 3), 2);
    EXPECT_EQ(posMod(-3, 3), 0);
    EXPECT_EQ(posMod(5, 3), 2);
}

TEST(MathUtil, StrictTriangleCount)
{
    EXPECT_EQ(strictTriangleCount(1), 0);
    EXPECT_EQ(strictTriangleCount(3), 3);
    EXPECT_EQ(strictTriangleCount(5), 10);
}

TEST(StringUtil, FormatReal)
{
    EXPECT_EQ(formatReal(1.0, 2), "1.00");
    EXPECT_EQ(formatReal(0.5, 0), "0"); // rounds to even
    EXPECT_EQ(formatReal(2.25, 1), "2.2");
}

TEST(StringUtil, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(StringUtil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"w", "T"});
    t.addRow({"3", "39"});
    t.addRow({"10", "5"});
    std::string out = t.render();
    EXPECT_NE(out.find(" w   T"), std::string::npos);
    EXPECT_NE(out.find(" 3  39"), std::string::npos);
    EXPECT_NE(out.find("10   5"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, RangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        Index v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30))
            ++same;
    EXPECT_LT(same, 5);
}

TEST(StringUtil, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nfeed\ttab\rret"),
              "line\\nfeed\\ttab\\rret");
    EXPECT_EQ(jsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
}

TEST(Logging, SetLogFileTeesAndCloses)
{
    std::string path = ::testing::TempDir() + "sap_log_tee_test.log";
    std::remove(path.c_str());

    ASSERT_TRUE(setLogFile(path));
    SAP_LOG_INFO("tee check ", 12345, " end");
    ASSERT_TRUE(setLogFile("")); // close and disable

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("tee check 12345 end"), std::string::npos)
        << contents;
    // One line, fully formed (timestamped prefix, newline-terminated).
    EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 1);
    EXPECT_NE(contents.find("info"), std::string::npos);

    // Lines logged while disabled must not reach the file.
    SAP_LOG_INFO("after close");
    std::ifstream again(path);
    std::string after((std::istreambuf_iterator<char>(again)),
                      std::istreambuf_iterator<char>());
    EXPECT_EQ(after.find("after close"), std::string::npos);

    std::remove(path.c_str());
}

TEST(Logging, SetLogFileFailureFallsBackToStderrOnly)
{
    // Opening a path under a non-existent directory fails; logging
    // must keep working (stderr-only) and report the failure.
    EXPECT_FALSE(setLogFile("/nonexistent-dir-zz/x/y.log"));
    SAP_LOG_INFO("still alive");
    EXPECT_TRUE(setLogFile("")); // reset for other tests
}

} // namespace
} // namespace sap
