#include "obs/trace_ring.hh"

#include <algorithm>

#include "base/logging.hh"

namespace sap {

const char *
traceStageName(TraceStage stage)
{
    switch (stage) {
      case TraceStage::Decode:
        return "decode";
      case TraceStage::Route:
        return "route";
      case TraceStage::Dequeue:
        return "dequeue";
      case TraceStage::Prepare:
        return "prepare";
      case TraceStage::Execute:
        return "execute";
      case TraceStage::CqPush:
        return "cq_push";
      case TraceStage::WriterPop:
        return "writer_pop";
      case TraceStage::Flush:
        return "flush";
    }
    return "?";
}

const char *
traceStageName(TraceStage stage, TraceTier tier)
{
    if (tier == TraceTier::Backend)
        return traceStageName(stage);
    // Gateway tier: the monotone slot subset it stamps gets gateway
    // names; any other slot would be a bug, named loudly.
    switch (stage) {
      case TraceStage::Decode:
        return "gw_decode";
      case TraceStage::Route:
        return "gw_route";
      case TraceStage::Dequeue:
        return "gw_forward";
      case TraceStage::WriterPop:
        return "gw_relay_pop";
      case TraceStage::Flush:
        return "gw_flush";
      default:
        return "gw_?";
    }
}

std::string
traceIdHex(const TraceContext &ctx)
{
    static const char kHex[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
        out[15 - i] =
            kHex[(ctx.traceIdHi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i)
        out[31 - i] =
            kHex[(ctx.traceIdLo >> (4 * i)) & 0xf];
    return out;
}

namespace {

/** splitmix64: every distinct input yields a distinct output. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

TraceContext
makeTraceContext(bool sampled)
{
    static std::atomic<std::uint64_t> counter{1};
    const std::uint64_t n =
        counter.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    TraceContext ctx;
    // Mix a per-process counter with the clock so ids stay unique
    // across processes on one host (two tiers mint ids).
    ctx.traceIdHi = mix64(n ^ (now << 1));
    ctx.traceIdLo = mix64(now ^ (n << 32));
    if (!ctx.valid())
        ctx.traceIdLo = 1; // all-zero means "no context" on the wire
    ctx.sampled = sampled;
    ctx.originNanos = now;
    ctx.attempt = 0;
    return ctx;
}

std::uint64_t
RequestTrace::startNanos() const
{
    for (std::size_t i = 0; i < kTraceStages; ++i) {
        if (stageNanos[i])
            return stageNanos[i];
    }
    return 0;
}

std::uint64_t
RequestTrace::endNanos() const
{
    for (std::size_t i = kTraceStages; i-- > 0;) {
        if (stageNanos[i])
            return stageNanos[i];
    }
    return 0;
}

double
RequestTrace::totalMicros() const
{
    const std::uint64_t start = startNanos();
    const std::uint64_t end = endNanos();
    return end > start ? static_cast<double>(end - start) / 1e3 : 0;
}

void
TraceRing::push(RequestTrace trace)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++committed_;
    if (slots_.size() < capacity_) {
        slots_.push_back(std::move(trace));
        return;
    }
    if (capacity_ == 0)
        return;
    slots_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
}

std::vector<RequestTrace>
TraceRing::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RequestTrace> out;
    out.reserve(slots_.size());
    // Oldest first: the slot at next_ is the oldest once wrapped.
    for (std::size_t i = 0; i < slots_.size(); ++i)
        out.push_back(slots_[(next_ + i) % slots_.size()]);
    return out;
}

std::uint64_t
TraceRing::totalCommitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return committed_;
}

TraceCollector::TraceCollector(TraceConfig config,
                               MetricsRegistry *stageMetrics)
    : config_(config), stage_metrics_(stageMetrics)
{
}

std::shared_ptr<RequestTrace>
TraceCollector::begin()
{
    if (!config_.enabled)
        return nullptr;
    auto trace = std::make_shared<RequestTrace>();
    trace->requestId = next_id_.fetch_add(1, std::memory_order_relaxed);
    return trace;
}

std::shared_ptr<RequestTrace>
TraceCollector::adopt(const TraceContext &ctx)
{
    if (!config_.enabled || !ctx.valid() || !ctx.sampled)
        return nullptr;
    std::shared_ptr<RequestTrace> trace = begin();
    if (trace)
        trace->ctx = ctx;
    return trace;
}

bool
TraceCollector::headSample()
{
    if (!config_.enabled || config_.sampleEvery == 0)
        return false;
    if (config_.sampleEvery == 1)
        return true;
    return sample_counter_.fetch_add(1, std::memory_order_relaxed) %
               config_.sampleEvery ==
           0;
}

bool
TraceCollector::finish(const std::shared_ptr<RequestTrace> &trace)
{
    if (!trace)
        return false;
    const double total = trace->totalMicros();
    const bool slow =
        config_.slowMicros > 0 && total >= config_.slowMicros;
    bool sampled = false;
    if (trace->ctx.valid()) {
        // The edge decided once for the whole request; honor it so a
        // sampled request is sampled on every tier it touches.
        sampled = trace->ctx.sampled;
    } else if (config_.sampleEvery == 1) {
        sampled = true;
    } else if (config_.sampleEvery > 1) {
        sampled = sample_counter_.fetch_add(
                      1, std::memory_order_relaxed) %
                      config_.sampleEvery ==
                  0;
    }
    if (slow) {
        if (trace->ctx.valid()) {
            SAP_LOG_WARN("slow request id=", trace->requestId,
                         " trace=", traceIdHex(trace->ctx), " [",
                         trace->label, "] total=", total,
                         "us (threshold ", config_.slowMicros, "us)");
        } else {
            SAP_LOG_WARN("slow request id=", trace->requestId, " [",
                         trace->label, "] total=", total,
                         "us (threshold ", config_.slowMicros, "us)");
        }
    }
    if (!sampled && !slow)
        return false;
    if (stage_metrics_) {
        for (const TraceSpan &span : traceSpans(*trace)) {
            stage_metrics_
                ->histogram(std::string("trace_stage_") +
                            traceStageName(span.to, trace->tier) +
                            "_micros")
                .record(span.micros);
        }
        stage_metrics_->histogram("trace_total_micros").record(total);
    }
    ringForThisThread().push(*trace);
    return true;
}

std::vector<RequestTrace>
TraceCollector::snapshot() const
{
    std::vector<RequestTrace> out;
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto &[tid, ring] : rings_) {
        std::vector<RequestTrace> part = ring->snapshot();
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    return out;
}

std::uint64_t
TraceCollector::totalCommitted() const
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto &[tid, ring] : rings_)
        total += ring->totalCommitted();
    return total;
}

TraceRing &
TraceCollector::ringForThisThread()
{
    const std::uint32_t tid = currentThreadId();
    std::lock_guard<std::mutex> lock(rings_mu_);
    auto &slot = rings_[tid];
    if (!slot)
        slot = std::make_unique<TraceRing>(config_.ringCapacity);
    return *slot;
}

std::vector<TraceSpan>
traceSpans(const RequestTrace &trace)
{
    std::vector<TraceSpan> spans;
    bool havePrev = false;
    TraceStage prev = TraceStage::Decode;
    std::uint64_t prevNanos = 0;
    for (std::size_t i = 0; i < kTraceStages; ++i) {
        if (!trace.stageNanos[i])
            continue;
        const auto stage = static_cast<TraceStage>(i);
        if (havePrev) {
            const std::uint64_t now = trace.stageNanos[i];
            spans.push_back(
                {prev, stage,
                 now > prevNanos
                     ? static_cast<double>(now - prevNanos) / 1e3
                     : 0});
        }
        havePrev = true;
        prev = stage;
        prevNanos = trace.stageNanos[i];
    }
    return spans;
}

} // namespace sap
