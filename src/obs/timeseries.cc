#include "obs/timeseries.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"
#include "base/string_util.hh"

namespace sap {

namespace {

/** Shortest interval sample() will divide by (clock went backwards,
 *  or a test folded two samples at the same timestamp). */
constexpr double kMinIntervalSeconds = 1e-3;

std::string
tsJsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

void
FlightRecorder::Ring::push(double v, std::size_t capacity)
{
    if (slots.size() < capacity) {
        slots.push_back(v);
        head = slots.size() % capacity;
        count = slots.size();
        return;
    }
    slots[head] = v;
    head = (head + 1) % slots.size();
    count = slots.size();
}

std::vector<double>
FlightRecorder::Ring::ordered() const
{
    std::vector<double> out;
    out.reserve(count);
    if (count < slots.size()) {
        // Still filling: slots[0..count) are already oldest-first.
        out.assign(slots.begin(), slots.begin() + count);
        return out;
    }
    for (std::size_t i = 0; i < slots.size(); ++i)
        out.push_back(slots[(head + i) % slots.size()]);
    return out;
}

FlightRecorder::FlightRecorder(Source source,
                               const FlightRecorderConfig &config)
    : source_(std::move(source)), config_(config)
{
    config_.intervalSeconds = std::max(config_.intervalSeconds, 0.01);
    config_.retainSamples = std::max<std::size_t>(config_.retainSamples, 2);
}

FlightRecorder::~FlightRecorder()
{
    stop();
}

void
FlightRecorder::start()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (thread_running_)
        return;
    stop_requested_ = false;
    thread_running_ = true;
    thread_ = std::thread(&FlightRecorder::samplerLoop, this);
}

void
FlightRecorder::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!thread_running_)
            return;
        stop_requested_ = true;
        cv_.notify_all();
    }
    thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    thread_running_ = false;
}

void
FlightRecorder::samplerLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait_for(
                lock,
                std::chrono::duration<double>(config_.intervalSeconds),
                [&] { return stop_requested_; });
            if (stop_requested_)
                return;
        }
        // Take the (potentially slow: cluster-wide merge) snapshot
        // outside the lock so readers never wait on the source.
        sample(source_(), monotonicSeconds());
    }
}

void
FlightRecorder::pushLocked(const std::string &name, double v)
{
    series_[name].push(v, config_.retainSamples);
}

void
FlightRecorder::sample(const MetricsSnapshot &snap, double nowSeconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    double interval = config_.intervalSeconds;
    if (have_prev_)
        interval = std::max(nowSeconds - prev_seconds_,
                            kMinIntervalSeconds);

    // First sample: establish the baseline only. Rates need two
    // points; publishing cumulative totals as "rates" would spike
    // every chart at t=0.
    if (have_prev_) {
        const MetricsSnapshot delta = metricsDelta(snap, prev_);
        times_.push(nowSeconds, config_.retainSamples);
        for (const auto &[name, v] : delta.counters)
            pushLocked(name + ":rate",
                       static_cast<double>(v) / interval);
        for (const auto &[name, gv] : delta.gauges)
            pushLocked(name, gv.value);
        for (const auto &[name, h] : delta.histograms) {
            pushLocked(name + ":rate",
                       static_cast<double>(h.count) / interval);
            pushLocked(name + ":p50", h.quantile(0.5));
            pushLocked(name + ":p99", h.quantile(0.99));
        }
    }
    prev_ = snap;
    prev_seconds_ = nowSeconds;
    have_prev_ = true;
    ++samples_taken_;
}

FlightRecorderSnapshot
FlightRecorder::snapshot() const
{
    FlightRecorderSnapshot out;
    std::lock_guard<std::mutex> lock(mu_);
    out.intervalSeconds = config_.intervalSeconds;
    out.timesSeconds = times_.ordered();
    out.series.reserve(series_.size());
    for (const auto &[name, ring] : series_) {
        TimeSeries ts;
        ts.name = name;
        ts.values = ring.ordered();
        out.series.push_back(std::move(ts));
    }
    return out;
}

double
FlightRecorder::latestValue(const std::string &name, double fallback) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = series_.find(name);
    if (it == series_.end() || it->second.count == 0)
        return fallback;
    const Ring &ring = it->second;
    const std::size_t last =
        ring.count < ring.slots.size()
            ? ring.count - 1
            : (ring.head + ring.slots.size() - 1) % ring.slots.size();
    return ring.slots[last];
}

std::uint64_t
FlightRecorder::samplesTaken() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_taken_;
}

std::string
toTimeseriesJson(const FlightRecorderSnapshot &snap)
{
    std::string out = "{\"interval_seconds\":" +
                      tsJsonNumber(snap.intervalSeconds) + ",\"times\":[";
    for (std::size_t i = 0; i < snap.timesSeconds.size(); ++i) {
        if (i)
            out += ",";
        out += tsJsonNumber(snap.timesSeconds[i]);
    }
    out += "],\"series\":{";
    for (std::size_t s = 0; s < snap.series.size(); ++s) {
        if (s)
            out += ",";
        out += "\"" + jsonEscape(snap.series[s].name) + "\":[";
        const std::vector<double> &vals = snap.series[s].values;
        for (std::size_t i = 0; i < vals.size(); ++i) {
            if (i)
                out += ",";
            out += tsJsonNumber(vals[i]);
        }
        out += "]";
    }
    out += "}}";
    return out;
}

} // namespace sap
