#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "base/logging.hh"
#include "base/string_util.hh"

namespace sap {

namespace {

/** log base kHistGrowth, precomputed. */
const double kInvLogGrowth = 1.0 / std::log(kHistGrowth);

} // namespace

std::size_t
histBucketOf(double v)
{
    if (!(v >= kHistMinValue)) // also catches NaN
        return 0;
    // Bucket i (1-based among geometric buckets) holds
    // (min*g^(i-1), min*g^i]; solve for i and nudge for float error
    // so exact boundary values land on the inclusive-upper side.
    double t = std::log(v / kHistMinValue) * kInvLogGrowth;
    std::size_t i = static_cast<std::size_t>(t) + 1;
    // Float rounding can push a boundary value one bucket high or
    // leave it one low; settle against the actual bounds.
    while (i > 1 && v <= histBucketUpper(i - 1))
        --i;
    while (i <= kHistGeomBuckets && v > histBucketUpper(i))
        ++i;
    return std::min(i, kHistGeomBuckets + 1);
}

double
histBucketUpper(std::size_t i)
{
    if (i == 0)
        return kHistMinValue;
    if (i > kHistGeomBuckets)
        return std::numeric_limits<double>::infinity();
    return kHistMinValue * std::pow(kHistGrowth, static_cast<double>(i));
}

double
histBucketLower(std::size_t i)
{
    if (i == 0)
        return 0;
    return histBucketUpper(i - 1);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the q-th sample (1-based, ceil convention).
    const double rank = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < bucketIndex.size(); ++k) {
        const std::uint64_t c = bucketCount[k];
        if (c == 0)
            continue;
        if (static_cast<double>(seen + c) >= rank) {
            const std::size_t b = bucketIndex[k];
            const double lo = histBucketLower(b);
            double hi = histBucketUpper(b);
            if (std::isinf(hi))
                hi = max; // overflow bucket: cap at observed max
            // Linear interpolation of the rank within the bucket.
            const double frac =
                (rank - static_cast<double>(seen)) / static_cast<double>(c);
            double v = lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
            return std::min(std::max(v, min), max);
        }
        seen += c;
    }
    return max;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    // Merge two sorted sparse bucket lists by index.
    std::vector<std::uint32_t> idx;
    std::vector<std::uint64_t> cnt;
    idx.reserve(bucketIndex.size() + other.bucketIndex.size());
    cnt.reserve(idx.capacity());
    std::size_t a = 0, b = 0;
    while (a < bucketIndex.size() || b < other.bucketIndex.size()) {
        bool takeA = b >= other.bucketIndex.size() ||
                     (a < bucketIndex.size() &&
                      bucketIndex[a] <= other.bucketIndex[b]);
        bool takeB = a >= bucketIndex.size() ||
                     (b < other.bucketIndex.size() &&
                      other.bucketIndex[b] <= bucketIndex[a]);
        std::uint32_t i =
            takeA ? bucketIndex[a] : other.bucketIndex[b];
        std::uint64_t c = 0;
        if (takeA)
            c += bucketCount[a++];
        if (takeB && (!takeA || other.bucketIndex[b] == i))
            c += other.bucketCount[b++];
        idx.push_back(i);
        cnt.push_back(c);
    }
    bucketIndex = std::move(idx);
    bucketCount = std::move(cnt);
}

void
Histogram::record(double v)
{
    const std::size_t b = histBucketOf(v);
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++buckets_[b];
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
        if (buckets_[i]) {
            snap.bucketIndex.push_back(static_cast<std::uint32_t>(i));
            snap.bucketCount.push_back(buckets_[i]);
        }
    }
    return snap;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, gv] : other.gauges) {
        auto it = gauges.find(name);
        if (it == gauges.end()) {
            gauges[name] = gv;
        } else if (gv.agg == GaugeAgg::Max) {
            it->second.value = std::max(it->second.value, gv.value);
        } else {
            it->second.value += gv.value;
        }
    }
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, GaugeAgg agg)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>(agg);
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = GaugeValue{g->value(), g->agg()};
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->snapshot();
    return snap;
}

MetricsSnapshot
mergeMetrics(const std::vector<MetricsSnapshot> &parts)
{
    MetricsSnapshot merged;
    for (const auto &part : parts)
        merged.merge(part);
    return merged;
}

HistogramSnapshot
histogramDelta(const HistogramSnapshot &now, const HistogramSnapshot &prev)
{
    std::vector<std::uint64_t> dense(kHistBuckets, 0);
    for (std::size_t i = 0; i < now.bucketIndex.size(); ++i)
        dense[now.bucketIndex[i]] += now.bucketCount[i];
    for (std::size_t i = 0; i < prev.bucketIndex.size(); ++i) {
        std::uint64_t &d = dense[prev.bucketIndex[i]];
        d = d >= prev.bucketCount[i] ? d - prev.bucketCount[i] : 0;
    }
    HistogramSnapshot diff;
    diff.sum = now.sum - prev.sum;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
        if (dense[i] == 0)
            continue;
        diff.bucketIndex.push_back(static_cast<std::uint32_t>(i));
        diff.bucketCount.push_back(dense[i]);
        diff.count += dense[i];
        if (diff.bucketIndex.size() == 1)
            diff.min = histBucketLower(i);
        // Overflow bucket has no finite upper bound; report the last
        // finite boundary instead.
        diff.max = i + 1 < kHistBuckets
                       ? histBucketUpper(i)
                       : histBucketUpper(kHistBuckets - 2);
    }
    // A restarted source can shrink sum while buckets clamp to now's
    // counts; keep sum consistent with "treat now as the whole story".
    if (diff.sum < 0)
        diff.sum = now.sum;
    return diff;
}

MetricsSnapshot
metricsDelta(const MetricsSnapshot &now, const MetricsSnapshot &prev)
{
    MetricsSnapshot delta;
    for (const auto &[name, v] : now.counters) {
        auto it = prev.counters.find(name);
        const std::uint64_t p =
            it == prev.counters.end() ? 0 : it->second;
        delta.counters[name] = v >= p ? v - p : v;
    }
    delta.gauges = now.gauges;
    for (const auto &[name, h] : now.histograms) {
        auto it = prev.histograms.find(name);
        delta.histograms[name] =
            it == prev.histograms.end() ? h
                                        : histogramDelta(h, it->second);
    }
    return delta;
}

namespace {

/** %g with enough digits to round-trip in practice for exposition. */
std::string
fmtDouble(double v)
{
    char buf[64];
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** A double as a strict-JSON number token. JSON has no Inf/NaN;
 *  non-finite values (the overflow bucket's +inf boundary) render as
 *  null, which every JSON consumer can at least parse. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Exposition-format label *value* escaping: backslash, quote,
 *  newline. (Names are never escaped; callers must pass valid
 *  metric/label identifiers.) */
std::string
promLabelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Pre-rendered `key="value"` pairs, comma-joined (no braces). */
std::string
renderLabelPairs(const std::map<std::string, std::string> &labels)
{
    std::string out;
    for (const auto &[k, v] : labels) {
        if (!out.empty())
            out += ",";
        out += k + "=\"" + promLabelEscape(v) + "\"";
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot &snap,
                 const std::map<std::string, std::string> &labels)
{
    // "{a="1"}" when labels exist, "" when not — appended to every
    // non-bucket sample name.
    const std::string pairs = renderLabelPairs(labels);
    const std::string plain = pairs.empty() ? "" : "{" + pairs + "}";
    // Bucket lines already carry `le`; prefix the shared labels.
    const std::string bucketPrefix =
        pairs.empty() ? "_bucket{le=\"" : "_bucket{" + pairs + ",le=\"";

    std::string out;
    out.reserve(4096);
    for (const auto &[name, v] : snap.counters) {
        out += "# TYPE " + name + " counter\n";
        out += name + plain + " " + std::to_string(v) + "\n";
    }
    for (const auto &[name, gv] : snap.gauges) {
        out += "# TYPE " + name + " gauge\n";
        out += name + plain + " " + fmtDouble(gv.value) + "\n";
    }
    for (const auto &[name, h] : snap.histograms) {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t k = 0; k < h.bucketIndex.size(); ++k) {
            cum += h.bucketCount[k];
            out += name + bucketPrefix +
                   fmtDouble(histBucketUpper(h.bucketIndex[k])) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += name + bucketPrefix + "+Inf\"} " +
               std::to_string(h.count) + "\n";
        out += name + "_sum" + plain + " " + fmtDouble(h.sum) + "\n";
        out += name + "_count" + plain + " " + std::to_string(h.count) +
               "\n";
    }
    return out;
}

std::string
renderPrometheus(const MetricsSnapshot &snap)
{
    return renderPrometheus(snap, {});
}

std::string
renderMetricsJson(const MetricsSnapshot &snap)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : snap.counters) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":" + std::to_string(v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, gv] : snap.gauges) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":{\"value\":" +
               jsonNumber(gv.value) + ",\"agg\":\"" +
               (gv.agg == GaugeAgg::Max ? "max" : "sum") + "\"}";
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":{";
        out += "\"count\":" + std::to_string(h.count);
        out += ",\"sum\":" + jsonNumber(h.sum);
        out += ",\"min\":" + jsonNumber(h.count ? h.min : 0);
        out += ",\"max\":" + jsonNumber(h.count ? h.max : 0);
        out += ",\"mean\":" + jsonNumber(h.mean());
        out += ",\"p50\":" + jsonNumber(h.quantile(0.5));
        out += ",\"p90\":" + jsonNumber(h.quantile(0.9));
        out += ",\"p99\":" + jsonNumber(h.quantile(0.99));
        out += ",\"buckets\":[";
        for (std::size_t k = 0; k < h.bucketIndex.size(); ++k) {
            if (k)
                out += ",";
            out += "{\"le\":" +
                   jsonNumber(histBucketUpper(h.bucketIndex[k])) +
                   ",\"count\":" + std::to_string(h.bucketCount[k]) +
                   "}";
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

} // namespace sap
