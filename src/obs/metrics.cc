#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "base/logging.hh"

namespace sap {

namespace {

/** log base kHistGrowth, precomputed. */
const double kInvLogGrowth = 1.0 / std::log(kHistGrowth);

} // namespace

std::size_t
histBucketOf(double v)
{
    if (!(v >= kHistMinValue)) // also catches NaN
        return 0;
    // Bucket i (1-based among geometric buckets) holds
    // (min*g^(i-1), min*g^i]; solve for i and nudge for float error
    // so exact boundary values land on the inclusive-upper side.
    double t = std::log(v / kHistMinValue) * kInvLogGrowth;
    std::size_t i = static_cast<std::size_t>(t) + 1;
    // Float rounding can push a boundary value one bucket high or
    // leave it one low; settle against the actual bounds.
    while (i > 1 && v <= histBucketUpper(i - 1))
        --i;
    while (i <= kHistGeomBuckets && v > histBucketUpper(i))
        ++i;
    return std::min(i, kHistGeomBuckets + 1);
}

double
histBucketUpper(std::size_t i)
{
    if (i == 0)
        return kHistMinValue;
    if (i > kHistGeomBuckets)
        return std::numeric_limits<double>::infinity();
    return kHistMinValue * std::pow(kHistGrowth, static_cast<double>(i));
}

double
histBucketLower(std::size_t i)
{
    if (i == 0)
        return 0;
    return histBucketUpper(i - 1);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the q-th sample (1-based, ceil convention).
    const double rank = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < bucketIndex.size(); ++k) {
        const std::uint64_t c = bucketCount[k];
        if (c == 0)
            continue;
        if (static_cast<double>(seen + c) >= rank) {
            const std::size_t b = bucketIndex[k];
            const double lo = histBucketLower(b);
            double hi = histBucketUpper(b);
            if (std::isinf(hi))
                hi = max; // overflow bucket: cap at observed max
            // Linear interpolation of the rank within the bucket.
            const double frac =
                (rank - static_cast<double>(seen)) / static_cast<double>(c);
            double v = lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
            return std::min(std::max(v, min), max);
        }
        seen += c;
    }
    return max;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    // Merge two sorted sparse bucket lists by index.
    std::vector<std::uint32_t> idx;
    std::vector<std::uint64_t> cnt;
    idx.reserve(bucketIndex.size() + other.bucketIndex.size());
    cnt.reserve(idx.capacity());
    std::size_t a = 0, b = 0;
    while (a < bucketIndex.size() || b < other.bucketIndex.size()) {
        bool takeA = b >= other.bucketIndex.size() ||
                     (a < bucketIndex.size() &&
                      bucketIndex[a] <= other.bucketIndex[b]);
        bool takeB = a >= bucketIndex.size() ||
                     (b < other.bucketIndex.size() &&
                      other.bucketIndex[b] <= bucketIndex[a]);
        std::uint32_t i =
            takeA ? bucketIndex[a] : other.bucketIndex[b];
        std::uint64_t c = 0;
        if (takeA)
            c += bucketCount[a++];
        if (takeB && (!takeA || other.bucketIndex[b] == i))
            c += other.bucketCount[b++];
        idx.push_back(i);
        cnt.push_back(c);
    }
    bucketIndex = std::move(idx);
    bucketCount = std::move(cnt);
}

void
Histogram::record(double v)
{
    const std::size_t b = histBucketOf(v);
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++buckets_[b];
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
        if (buckets_[i]) {
            snap.bucketIndex.push_back(static_cast<std::uint32_t>(i));
            snap.bucketCount.push_back(buckets_[i]);
        }
    }
    return snap;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, gv] : other.gauges) {
        auto it = gauges.find(name);
        if (it == gauges.end()) {
            gauges[name] = gv;
        } else if (gv.agg == GaugeAgg::Max) {
            it->second.value = std::max(it->second.value, gv.value);
        } else {
            it->second.value += gv.value;
        }
    }
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, GaugeAgg agg)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>(agg);
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = GaugeValue{g->value(), g->agg()};
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->snapshot();
    return snap;
}

MetricsSnapshot
mergeMetrics(const std::vector<MetricsSnapshot> &parts)
{
    MetricsSnapshot merged;
    for (const auto &part : parts)
        merged.merge(part);
    return merged;
}

namespace {

/** %g with enough digits to round-trip in practice for exposition. */
std::string
fmtDouble(double v)
{
    char buf[64];
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot &snap)
{
    std::string out;
    out.reserve(4096);
    for (const auto &[name, v] : snap.counters) {
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(v) + "\n";
    }
    for (const auto &[name, gv] : snap.gauges) {
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + fmtDouble(gv.value) + "\n";
    }
    for (const auto &[name, h] : snap.histograms) {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t k = 0; k < h.bucketIndex.size(); ++k) {
            cum += h.bucketCount[k];
            out += name + "_bucket{le=\"" +
                   fmtDouble(histBucketUpper(h.bucketIndex[k])) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
               "\n";
        out += name + "_sum " + fmtDouble(h.sum) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

} // namespace sap
