/**
 * @file
 * Flight recorder: a bounded in-process time series of metric
 * snapshots, so "what happened in the last five minutes" survives
 * without any external scrape infrastructure.
 *
 * A background sampler thread (or a test calling sample() directly)
 * snapshots a MetricsRegistry source on a fixed interval and folds
 * each snapshot into per-series rings of doubles:
 *
 *   counter    "name:rate"   events/s over the interval
 *   gauge      "name"        instantaneous value at the sample
 *   histogram  "name:rate"   samples/s over the interval
 *              "name:p50"    interval p50 (histogramDelta quantile)
 *              "name:p99"    interval p99
 *
 * Everything is *per interval*, not cumulative — the quantity an
 * operator actually wants from a dashboard — computed with the same
 * exact bucket-subtraction (metricsDelta) the sap_stats --watch CLI
 * uses. Memory is fixed: retainSamples doubles per series (default
 * 300 × 1 s ≈ 5 minutes), regardless of uptime. Rings only ever grow
 * in series *count* when new metrics appear, bounded by the registry
 * size.
 *
 * Thread-safety: start()/stop()/sample()/snapshot()/latestValue()
 * serialize on an internal mutex; the sampler thread takes the source
 * snapshot outside the lock so a slow source never blocks readers.
 */

#ifndef SAP_OBS_TIMESERIES_HH
#define SAP_OBS_TIMESERIES_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace sap {

/** Sampler cadence and retention (see file comment). */
struct FlightRecorderConfig
{
    /** Seconds between samples (clamped to >= 0.01). */
    double intervalSeconds = 1.0;
    /** Ring capacity per series (clamped to >= 2). 300 × 1 s ≈ 5
     *  minutes of history. */
    std::size_t retainSamples = 300;
};

/** One series' recent values, oldest first (snapshot() output). */
struct TimeSeries
{
    std::string name;
    std::vector<double> values;
};

/** Point-in-time copy of the recorder state. */
struct FlightRecorderSnapshot
{
    double intervalSeconds = 0;
    /** Monotonic seconds of each retained sample, oldest first; all
     *  series are parallel to this axis (shorter series are
     *  right-aligned: a series with k values covers the *last* k
     *  timestamps). */
    std::vector<double> timesSeconds;
    std::vector<TimeSeries> series;
};

/**
 * The recorder. Construct with a snapshot source (e.g. a lambda over
 * NetServer::metricsSnapshot), then either start() the background
 * sampler or drive sample() by hand (tests, single-threaded tools).
 */
class FlightRecorder
{
  public:
    using Source = std::function<MetricsSnapshot()>;

    FlightRecorder(Source source, const FlightRecorderConfig &config);

    /** Stops the sampler thread (if running). */
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Spawn the sampler thread; idempotent. */
    void start();

    /** Join the sampler thread; idempotent, called by destructor. */
    void stop();

    /**
     * Fold one externally taken snapshot at time @p nowSeconds into
     * the rings (what the sampler thread does each tick; public so
     * tests and CLIs can drive the recorder deterministically).
     * Out-of-order samples (nowSeconds <= the previous sample) are
     * folded with a minimum-width interval rather than dividing by
     * zero or negative time.
     */
    void sample(const MetricsSnapshot &snap, double nowSeconds);

    /** All retained series (bounded copy; safe from any thread). */
    FlightRecorderSnapshot snapshot() const;

    /**
     * The newest value of one derived series ("serve_latency_micros:p99",
     * "net_bytes_received_total:rate", ...), or @p fallback when the
     * series does not exist yet or holds no samples.
     */
    double latestValue(const std::string &name, double fallback = 0) const;

    /** Samples folded so far (monotone; for tests to await a tick). */
    std::uint64_t samplesTaken() const;

    const FlightRecorderConfig &config() const { return config_; }

  private:
    /** Fixed-capacity ring of doubles (capacity = retainSamples). */
    struct Ring
    {
        std::vector<double> slots;
        std::size_t head = 0;  ///< next write position
        std::size_t count = 0; ///< valid values (<= slots.size())

        void push(double v, std::size_t capacity);
        std::vector<double> ordered() const; ///< oldest first
    };

    void samplerLoop();
    void pushLocked(const std::string &name, double v);

    Source source_;
    FlightRecorderConfig config_;

    mutable std::mutex mu_;
    std::condition_variable cv_; ///< wakes the sampler for stop()
    bool thread_running_ = false;
    bool stop_requested_ = false;
    std::thread thread_;

    bool have_prev_ = false;
    MetricsSnapshot prev_;
    double prev_seconds_ = 0;
    std::uint64_t samples_taken_ = 0;
    Ring times_;
    std::map<std::string, Ring> series_;
};

/**
 * The /timeseriesz payload: strict-JSON object with
 * "interval_seconds", "times" (monotonic seconds, oldest first), and
 * "series" (name → right-aligned value array; see
 * FlightRecorderSnapshot::timesSeconds).
 */
std::string toTimeseriesJson(const FlightRecorderSnapshot &snap);

} // namespace sap

#endif // SAP_OBS_TIMESERIES_HH
