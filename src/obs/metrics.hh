/**
 * @file
 * Named counters, gauges, and log-bucketed histograms for the serving
 * stack — the measured half of the paper's measured-vs-analytic
 * performance discipline.
 *
 * The paper's contribution is *analytic* accounting: closed-form
 * cycle counts and PE-efficiency ratios (§4–§5) that predict array
 * performance from (w, n̄, m̄, p̄) alone. A serving installation needs
 * the measured side of that ledger kept continuously, per shard, and
 * mergeable across shards without error. Three primitives cover it:
 *
 *  - Counter:   monotone u64 (requests, cache hits, bytes).
 *  - Gauge:     instantaneous i64/double with an explicit cross-shard
 *               aggregation rule (Sum for queue depths and connection
 *               counts, Max for worst-case drift).
 *  - Histogram: log-bucketed value distribution with *bounded memory*
 *               and *exact merge* — two snapshots merge by adding
 *               bucket counts, so cluster-level p50/p99 computed from
 *               the merged histogram equals what a single process
 *               observing every sample would report, to within one
 *               bucket's resolution. This replaces the reservoir
 *               percentiles in serve/server_stats (whose merge is
 *               approximate by construction) as the primary latency
 *               source.
 *
 * Bucket scheme: bucket 0 catches values below kHistMinValue
 * (including zero/negative/NaN), then geometric buckets with growth
 * 2^(1/8) per step (~9% width) up to kHistMaxValue, then one overflow
 * bucket — ~295 buckets total, u64 each, so a histogram is a few KiB
 * regardless of sample count. Quantiles come from a cumulative walk
 * with linear interpolation inside the winning bucket, clamped to the
 * recorded [min, max], so worst-case quantile error is half a bucket
 * width (~4.5% relative).
 *
 * Registries are plain mutex-protected maps: metric updates happen at
 * request granularity (hundreds of microseconds of simulation per
 * request), so a ~20ns uncontended lock is noise; snapshot() gives a
 * consistent point-in-time copy for export or merging.
 */

#ifndef SAP_OBS_METRICS_HH
#define SAP_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sap {

//----------------------------------------------------------------------
// Histogram buckets.
//----------------------------------------------------------------------

/** Values below this land in the underflow bucket (µs scale: 10ns). */
constexpr double kHistMinValue = 0.01;

/** Per-bucket geometric growth factor: 2^(1/8). */
constexpr double kHistGrowth = 1.0905077326652577;

/** Number of geometric buckets between min and overflow. Covers
 *  kHistMinValue * kHistGrowth^292 ≈ 1.1e9 µs (~18 minutes) before
 *  the overflow bucket takes over. */
constexpr std::size_t kHistGeomBuckets = 293;

/** Total buckets: underflow + geometric + overflow. */
constexpr std::size_t kHistBuckets = kHistGeomBuckets + 2;

/** Bucket index for @p v (NaN and sub-min values map to bucket 0). */
std::size_t histBucketOf(double v);

/** Inclusive upper bound of bucket @p i (+inf for the overflow). */
double histBucketUpper(std::size_t i);

/** Lower bound of bucket @p i (0 for the underflow bucket). */
double histBucketLower(std::size_t i);

/**
 * Point-in-time copy of a histogram: the value-bearing type that
 * travels on the wire and merges across shards.
 */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0; ///< meaningful only when count > 0
    double max = 0; ///< meaningful only when count > 0
    /** Sparse bucket counts: parallel arrays, indices ascending. */
    std::vector<std::uint32_t> bucketIndex;
    std::vector<std::uint64_t> bucketCount;

    double mean() const { return count ? sum / double(count) : 0; }

    /**
     * Quantile estimate for q in [0, 1] by cumulative bucket walk
     * with linear interpolation, clamped to [min, max]. Exact merge
     * means quantile(merged) == quantile(union of samples) to within
     * one bucket (~9% relative).
     */
    double quantile(double q) const;

    /** Exact merge: bucket-wise count addition. */
    void merge(const HistogramSnapshot &other);
};

//----------------------------------------------------------------------
// Live metric instruments.
//----------------------------------------------------------------------

/** Monotone event count. Mutex-protected: updates happen at request
 *  granularity, so an uncontended lock is noise (see file comment). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        std::lock_guard<std::mutex> lock(mu_);
        value_ += n;
    }
    std::uint64_t value() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return value_;
    }

  private:
    mutable std::mutex mu_;
    std::uint64_t value_ = 0;
};

/** How a gauge combines across shards in a cluster snapshot. */
enum class GaugeAgg : std::uint8_t
{
    Sum = 0, ///< additive quantities: queue depth, connections
    Max = 1, ///< worst-case quantities: cycle drift
};

/** Instantaneous value with an explicit cross-shard rule. */
class Gauge
{
  public:
    explicit Gauge(GaugeAgg agg = GaugeAgg::Sum) : agg_(agg) {}

    void set(double v)
    {
        std::lock_guard<std::mutex> lock(mu_);
        value_ = v;
    }
    void add(double d)
    {
        std::lock_guard<std::mutex> lock(mu_);
        value_ += d;
    }
    /** set(v) only if v exceeds the current value (for Max gauges). */
    void setMax(double v)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (v > value_)
            value_ = v;
    }
    double value() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return value_;
    }
    GaugeAgg agg() const { return agg_; }

  private:
    mutable std::mutex mu_;
    double value_ = 0;
    GaugeAgg agg_;
};

/** Live log-bucketed histogram; record() is O(1) and lock-cheap. */
class Histogram
{
  public:
    void record(double v);
    HistogramSnapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    /** Dense while live (fixed ~2.3 KiB); sparse on snapshot. */
    std::uint64_t buckets_[kHistBuckets] = {};
};

//----------------------------------------------------------------------
// Registry and snapshots.
//----------------------------------------------------------------------

/** One gauge's exported state. */
struct GaugeValue
{
    double value = 0;
    GaugeAgg agg = GaugeAgg::Sum;
};

/**
 * Point-in-time copy of a whole registry. Ordered maps so exports and
 * wire encodings are deterministic.
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeValue> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Exact merge: counters/histogram buckets add; gauges follow
     *  their GaugeAgg. */
    void merge(const MetricsSnapshot &other);
};

/**
 * Named-metric owner for one component (a shard, a net server). Names
 * follow the Prometheus convention: lowercase, underscores, unit
 * suffix (e.g. "serve_queue_wait_micros"). Instruments are created on
 * first use and live as long as the registry; the returned references
 * stay valid, so hot paths look up once and cache the pointer.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name, GaugeAgg agg = GaugeAgg::Sum);
    Histogram &histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Merge @p parts into one snapshot (exact; see MetricsSnapshot). */
MetricsSnapshot mergeMetrics(const std::vector<MetricsSnapshot> &parts);

/**
 * The interval histogram @p now − @p prev, bucket-by-bucket — the
 * inverse of merge(), and exact for the same reason. Min/max are not
 * subtractable, so the delta takes its bounds from the populated
 * buckets (the overflow bucket reports the last finite boundary);
 * quantiles stay exact to bucket resolution. A count that shrank
 * (restarted source) clamps to the @p now value bucket-wise rather
 * than underflowing.
 */
HistogramSnapshot histogramDelta(const HistogramSnapshot &now,
                                 const HistogramSnapshot &prev);

/**
 * The interval snapshot @p now − @p prev: counters subtract (clamped
 * at 0 on restarts; a counter absent from @p prev reports its full
 * @p now value), gauges pass through their current value (deltas of
 * instantaneous values are meaningless), histograms go through
 * histogramDelta(). Metrics absent from @p now are omitted.
 */
MetricsSnapshot metricsDelta(const MetricsSnapshot &now,
                             const MetricsSnapshot &prev);

/**
 * Render a snapshot as Prometheus text exposition (# TYPE comments,
 * cumulative _bucket{le="..."} lines, _sum and _count).
 */
std::string renderPrometheus(const MetricsSnapshot &snap);

/**
 * Same, with @p labels attached to every sample line (merged with the
 * histogram `le` label). Label values are escaped per the exposition
 * format: `\` → `\\`, `"` → `\"`, newline → `\n`.
 */
std::string renderPrometheus(
    const MetricsSnapshot &snap,
    const std::map<std::string, std::string> &labels);

/**
 * Render a snapshot as a JSON object (strict RFC 8259): top-level
 * "counters", "gauges" (value + agg), and "histograms" (count, sum,
 * min, max, mean, p50/p90/p99, sparse buckets). Deterministic: map
 * order in, same text out.
 */
std::string renderMetricsJson(const MetricsSnapshot &snap);

} // namespace sap

#endif // SAP_OBS_METRICS_HH
