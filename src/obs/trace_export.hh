/**
 * @file
 * Exporters for committed request traces: Chrome/Perfetto
 * `trace_event` JSON (load in chrome://tracing or ui.perfetto.dev)
 * and a flat CSV for spreadsheet/script analysis.
 *
 * The JSON uses complete events (ph "X"): one event per stage span
 * (decode→route→...→flush) plus one enclosing "request" event, all on
 * a per-request virtual track (tid = request id) so concurrent
 * requests render as parallel rows. Timestamps are the trace's raw
 * monotonic nanoseconds converted to microseconds — Perfetto only
 * needs them mutually consistent, not epoch-anchored.
 *
 * Cross-tier convention: pid = tier + 1 (backend lane pid 1, gateway
 * lane pid 2), with one process_name metadata event (ph "M") per
 * tier present, so a stitched gateway+backend trace renders as two
 * named process lanes on one timeline and the gateway→backend gap
 * reads directly as wire + queue time. Traces that share a 128-bit
 * trace id are the same request seen from different tiers;
 * stitchTraces() groups them, and point events (gateway failover /
 * resubmit) export as instant events (ph "i").
 */

#ifndef SAP_OBS_TRACE_EXPORT_HH
#define SAP_OBS_TRACE_EXPORT_HH

#include <map>
#include <string>
#include <vector>

#include "obs/trace_ring.hh"

namespace sap {

/** Chrome trace_event JSON ({"traceEvents":[...]}) for @p traces. */
std::string toChromeTraceJson(const std::vector<RequestTrace> &traces);

/**
 * CSV with one row per trace: request id, label, ok, cache hit, total
 * µs, then one column per stage with its absolute µs timestamp (empty
 * when the stage was never stamped).
 */
std::string toTraceCsv(const std::vector<RequestTrace> &traces);

/**
 * The /tracez payload: strict-JSON object with "total_committed"
 * (traces committed since start, including ones the rings have since
 * overwritten), "count", and "traces" — one object per trace with
 * request id, label, kind, tier, ok, cache_hit, total_micros, the
 * trace id / attempt when the trace carries a cross-tier context, a
 * "stages" object mapping (tier-aware) stage name → absolute
 * microsecond timestamp (unstamped stages omitted), and an "events"
 * array when the trace has point events.
 */
std::string toTracezJson(const std::vector<RequestTrace> &traces,
                         std::uint64_t totalCommitted);

/**
 * One cross-tier request: every committed trace that shares a trace
 * id, across tiers. traceId is the 32-hex id ("" for a trace that
 * carried no context and so forms a singleton group).
 */
struct StitchedTrace
{
    std::string traceId;
    std::vector<RequestTrace> parts;
};

/**
 * Join @p traces by 128-bit trace id: traces sharing an id become one
 * StitchedTrace (parts ordered by start time), context-less traces
 * stay singleton groups. Group order follows first appearance.
 */
std::vector<StitchedTrace>
stitchTraces(std::vector<RequestTrace> traces);

/**
 * The gateway's stitched /tracez payload: like toTracezJson but
 * grouped — {"total_committed":N,"count":N,"stitched":[{"trace_id":
 * "...","parts":[...]}]} where each part is a toTracezJson trace
 * object.
 */
std::string
toStitchedTracezJson(const std::vector<StitchedTrace> &stitched,
                     std::uint64_t totalCommitted);

/**
 * Parse /tracez filter parameters out of @p query with admin-parser
 * strictness: `min_us` must be all decimal digits, `kind` must be
 * one of matvec/matmul/trisolve; anything else fails with *error
 * set (the handler answers 400). Unrelated keys (format=...) pass
 * through untouched. Absent filters leave *minMicros at 0 and *kind
 * empty.
 */
bool parseTraceQuery(const std::map<std::string, std::string> &query,
                     std::uint64_t *minMicros, std::string *kind,
                     std::string *error);

/** Traces with totalMicros ≥ @p minMicros and (when @p kind is
 *  non-empty) a matching problem kind. */
std::vector<RequestTrace>
filterTraces(std::vector<RequestTrace> traces, std::uint64_t minMicros,
             const std::string &kind);

} // namespace sap

#endif // SAP_OBS_TRACE_EXPORT_HH
