/**
 * @file
 * Exporters for committed request traces: Chrome/Perfetto
 * `trace_event` JSON (load in chrome://tracing or ui.perfetto.dev)
 * and a flat CSV for spreadsheet/script analysis.
 *
 * The JSON uses complete events (ph "X"): one event per stage span
 * (decode→route→...→flush) plus one enclosing "request" event, all on
 * a per-request virtual track (tid = request id) so concurrent
 * requests render as parallel rows. Timestamps are the trace's raw
 * monotonic nanoseconds converted to microseconds — Perfetto only
 * needs them mutually consistent, not epoch-anchored.
 */

#ifndef SAP_OBS_TRACE_EXPORT_HH
#define SAP_OBS_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "obs/trace_ring.hh"

namespace sap {

/** Chrome trace_event JSON ({"traceEvents":[...]}) for @p traces. */
std::string toChromeTraceJson(const std::vector<RequestTrace> &traces);

/**
 * CSV with one row per trace: request id, label, ok, cache hit, total
 * µs, then one column per stage with its absolute µs timestamp (empty
 * when the stage was never stamped).
 */
std::string toTraceCsv(const std::vector<RequestTrace> &traces);

/**
 * The /tracez payload: strict-JSON object with "total_committed"
 * (traces committed since start, including ones the rings have since
 * overwritten), "count", and "traces" — one object per trace with
 * request id, label, ok, cache_hit, total_micros, and a "stages"
 * object mapping stage name → absolute microsecond timestamp
 * (unstamped stages omitted).
 */
std::string toTracezJson(const std::vector<RequestTrace> &traces,
                         std::uint64_t totalCommitted);

} // namespace sap

#endif // SAP_OBS_TRACE_EXPORT_HH
