#include "obs/http_admin.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace sap {

namespace {

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Target bytes must be printable ASCII — no spaces (token-split
 *  already), no controls, nothing above 0x7e. */
bool
printableTarget(const std::string &s)
{
    for (char c : s) {
        unsigned char u = static_cast<unsigned char>(c);
        if (u <= 0x20 || u > 0x7e)
            return false;
    }
    return !s.empty();
}

/** One header line "Name: value" — syntax only, content ignored. */
bool
validHeaderLine(const std::string &line)
{
    std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0)
        return false;
    for (std::size_t i = 0; i < colon; ++i) {
        unsigned char u = static_cast<unsigned char>(line[i]);
        // RFC 7230 token characters, loosely: printable, no space.
        if (u <= 0x20 || u > 0x7e)
            return false;
    }
    for (std::size_t i = colon + 1; i < line.size(); ++i) {
        unsigned char u = static_cast<unsigned char>(line[i]);
        if ((u < 0x20 && u != '\t') || u == 0x7f)
            return false;
    }
    return true;
}

} // namespace

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 431:
        return "Request Header Fields Too Large";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

HttpParseResult
parseHttpRequest(const std::string &data, HttpRequest *out)
{
    const std::size_t headEnd = data.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        // A lone LF-LF is not a valid head, and a head containing a
        // NUL will never become one.
        if (data.find('\0') != std::string::npos)
            return HttpParseResult::Malformed;
        return HttpParseResult::NeedMore;
    }
    const std::string head = data.substr(0, headEnd);

    // Split into CRLF-terminated lines; bare LF or CR is malformed.
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos) {
            lines.push_back(head.substr(pos));
            break;
        }
        lines.push_back(head.substr(pos, eol - pos));
        pos = eol + 2;
    }
    if (lines.empty() || lines[0].empty())
        return HttpParseResult::Malformed;
    for (const std::string &line : lines)
        if (line.find('\r') != std::string::npos ||
            line.find('\n') != std::string::npos)
            return HttpParseResult::Malformed;

    // Request line: exactly METHOD SP TARGET SP VERSION.
    const std::string &reqline = lines[0];
    std::size_t sp1 = reqline.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : reqline.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        reqline.find(' ', sp2 + 1) != std::string::npos)
        return HttpParseResult::Malformed;
    const std::string method = reqline.substr(0, sp1);
    const std::string target = reqline.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = reqline.substr(sp2 + 1);

    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return HttpParseResult::Malformed;
    if (!printableTarget(target) || target[0] != '/')
        return HttpParseResult::Malformed;
    if (method.empty() ||
        method.find_first_not_of(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ") != std::string::npos)
        return HttpParseResult::Malformed;

    // Header lines: syntax-checked, then ignored (no body is read).
    for (std::size_t i = 1; i < lines.size(); ++i)
        if (!validHeaderLine(lines[i]))
            return HttpParseResult::Malformed;

    if (method != "GET" && method != "HEAD")
        return HttpParseResult::MethodNotAllowed;

    out->method = method;
    const std::size_t qmark = target.find('?');
    out->path = target.substr(0, qmark);
    out->query.clear();
    if (qmark != std::string::npos) {
        std::size_t qpos = qmark + 1;
        while (qpos <= target.size()) {
            std::size_t amp = target.find('&', qpos);
            const std::string pair =
                amp == std::string::npos
                    ? target.substr(qpos)
                    : target.substr(qpos, amp - qpos);
            if (!pair.empty()) {
                std::size_t eq = pair.find('=');
                if (eq == std::string::npos)
                    out->query[pair] = "";
                else
                    out->query[pair.substr(0, eq)] = pair.substr(eq + 1);
            }
            if (amp == std::string::npos)
                break;
            qpos = amp + 1;
        }
    }
    return HttpParseResult::Ok;
}

std::string
renderHttpResponse(const HttpResponse &resp, bool headOnly)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      httpStatusReason(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    out += "Connection: close\r\n";
    for (const auto &[k, v] : resp.extraHeaders)
        out += k + ": " + v + "\r\n";
    out += "\r\n";
    if (!headOnly)
        out += resp.body;
    return out;
}

HttpAdminServer::HttpAdminServer(const Options &opts) : opts_(opts)
{
    opts_.maxRequestBytes = std::max<std::size_t>(opts_.maxRequestBytes, 64);
    opts_.maxConnections = std::max<std::size_t>(opts_.maxConnections, 1);
}

HttpAdminServer::~HttpAdminServer()
{
    stop();
}

void
HttpAdminServer::addHandler(const std::string &path, Handler handler)
{
    handlers_[path] = std::move(handler);
}

bool
HttpAdminServer::start()
{
    if (running_.load() || stopped_) {
        error_ = "admin server cannot be restarted";
        return false;
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error_ = errnoString("socket");
        return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    socklen_t addrlen = sizeof(addr);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0 || !setNonBlocking(listen_fd_) ||
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &addrlen) != 0) {
        error_ = errnoString("bind/listen");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_pipe_) != 0 || !setNonBlocking(wake_pipe_[0]) ||
        !setNonBlocking(wake_pipe_[1])) {
        error_ = errnoString("pipe");
        ::close(listen_fd_);
        listen_fd_ = -1;
        for (int i = 0; i < 2; ++i) {
            if (wake_pipe_[i] >= 0)
                ::close(wake_pipe_[i]);
            wake_pipe_[i] = -1;
        }
        return false;
    }

    stop_requested_.store(false);
    running_.store(true);
    thread_ = std::thread(&HttpAdminServer::serveLoop, this);
    SAP_LOG_INFO("admin server listening on 127.0.0.1:", port_);
    return true;
}

void
HttpAdminServer::stop()
{
    if (!running_.load()) {
        stopped_ = true;
        return;
    }
    stop_requested_.store(true);
    char byte = 0;
    // Best-effort: a full pipe already guarantees a pending wake.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    thread_.join();
    running_.store(false);
    stopped_ = true;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    SAP_LOG_INFO("admin server stopped");
}

HttpResponse
HttpAdminServer::dispatch(const HttpRequest &req)
{
    auto it = handlers_.find(req.path);
    if (it == handlers_.end()) {
        HttpResponse resp;
        resp.status = 404;
        resp.body = "not found: " + req.path + "\n";
        return resp;
    }
    return it->second(req);
}

bool
HttpAdminServer::makeResponse(Conn &conn)
{
    HttpRequest req;
    HttpParseResult parsed = parseHttpRequest(conn.in, &req);
    if (parsed == HttpParseResult::NeedMore) {
        if (conn.in.size() >= opts_.maxRequestBytes) {
            HttpResponse resp;
            resp.status = 431;
            resp.body = "request too large\n";
            conn.out = renderHttpResponse(resp);
            conn.responding = true;
            requests_served_.fetch_add(1);
        }
        return true;
    }

    HttpResponse resp;
    bool headOnly = false;
    switch (parsed) {
      case HttpParseResult::Ok:
        resp = dispatch(req);
        headOnly = req.method == "HEAD";
        break;
      case HttpParseResult::MethodNotAllowed:
        resp.status = 405;
        resp.body = "only GET and HEAD are served here\n";
        resp.extraHeaders.emplace_back("Allow", "GET, HEAD");
        break;
      default:
        resp.status = 400;
        resp.body = "malformed request\n";
        break;
    }
    conn.out = renderHttpResponse(resp, headOnly);
    conn.responding = true;
    requests_served_.fetch_add(1);
    return true;
}

void
HttpAdminServer::serveLoop()
{
    std::vector<Conn> conns;
    while (!stop_requested_.load()) {
        std::vector<pollfd> pfds;
        pfds.push_back({wake_pipe_[0], POLLIN, 0});
        pfds.push_back({listen_fd_, POLLIN, 0});
        for (const Conn &c : conns) {
            short events = c.responding && !c.draining ? POLLOUT
                                                       : POLLIN;
            pfds.push_back({c.fd, events, 0});
        }
        // Connections accepted below are appended past this point
        // and have no pfd entry until the next iteration.
        const std::size_t polled = conns.size();

        int rc = ::poll(pfds.data(),
                        static_cast<nfds_t>(pfds.size()), 250);
        if (rc < 0 && errno != EINTR)
            break;
        const double now = monotonicSeconds();

        if (pfds[0].revents & POLLIN) {
            char drain[64];
            while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
            }
        }

        if (pfds[1].revents & POLLIN) {
            for (;;) {
                int fd = ::accept(listen_fd_, nullptr, nullptr);
                if (fd < 0)
                    break;
                if (!setNonBlocking(fd) ||
                    conns.size() >= opts_.maxConnections) {
                    ::close(fd);
                    continue;
                }
                Conn c;
                c.fd = fd;
                c.idleSince = now;
                conns.push_back(std::move(c));
            }
        }

        // Service the connections that were polled; pfds[i + 2]
        // pairs conns[i] for i < polled only.
        std::vector<std::size_t> dead;
        for (std::size_t i = 0; i < polled; ++i) {
            Conn &c = conns[i];
            const short revents = pfds[i + 2].revents;
            bool drop = false;
            if (revents & (POLLERR | POLLNVAL)) {
                drop = true;
            } else if (c.draining && (revents & (POLLIN | POLLHUP))) {
                // Lingering close: discard whatever the peer still
                // sends; its close (EOF) releases the connection.
                char buf[2048];
                for (;;) {
                    ssize_t n = ::read(c.fd, buf, sizeof(buf));
                    if (n > 0)
                        continue;
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    drop = true; // EOF or error: done
                    break;
                }
            } else if (!c.responding && (revents & (POLLIN | POLLHUP))) {
                char buf[2048];
                for (;;) {
                    ssize_t n = ::read(c.fd, buf, sizeof(buf));
                    if (n > 0) {
                        c.idleSince = now;
                        // Cap the buffered head: bytes beyond the
                        // limit cannot change the (431) outcome.
                        const std::size_t room =
                            opts_.maxRequestBytes > c.in.size()
                                ? opts_.maxRequestBytes - c.in.size()
                                : 0;
                        c.in.append(
                            buf, std::min<std::size_t>(
                                     static_cast<std::size_t>(n), room));
                        if (room == 0)
                            break;
                        continue;
                    }
                    if (n == 0) {
                        // EOF before a full head: nothing to answer.
                        if (!c.responding)
                            drop = true;
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    drop = true;
                    break;
                }
                if (!drop)
                    makeResponse(c);
            }
            if (!drop && c.responding && !c.draining &&
                !c.out.empty()) {
                while (c.outoff < c.out.size()) {
                    ssize_t n = ::write(c.fd, c.out.data() + c.outoff,
                                        c.out.size() - c.outoff);
                    if (n > 0) {
                        c.outoff += static_cast<std::size_t>(n);
                        c.idleSince = now;
                        continue;
                    }
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    drop = true;
                    break;
                }
                if (c.outoff >= c.out.size()) {
                    // Fully answered: half-close and linger until
                    // the peer closes, so the response survives any
                    // unread request bytes (no RST).
                    ::shutdown(c.fd, SHUT_WR);
                    c.draining = true;
                }
            }
            if (!drop && now - c.idleSince > opts_.idleTimeoutSeconds)
                drop = true;
            if (drop)
                dead.push_back(i);
        }
        for (std::size_t k = dead.size(); k-- > 0;) {
            ::close(conns[dead[k]].fd);
            conns.erase(conns.begin() +
                        static_cast<std::ptrdiff_t>(dead[k]));
        }
    }
    for (Conn &c : conns)
        ::close(c.fd);
}

} // namespace sap
