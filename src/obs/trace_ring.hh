/**
 * @file
 * End-to-end request tracing: stage timestamps carried with each
 * request through the net → cluster → shard → writer pipeline, with
 * sampled commits into bounded per-thread ring buffers.
 *
 * A served request crosses four thread domains (the server IO thread,
 * the shard worker that executes it, the completion-queue writer
 * thread, plus routing in between); per-(engine,shape) latency totals
 * cannot say *which* domain a slow request spent its time in. Tracing
 * answers that: each traced request carries a RequestTrace — a
 * request id plus one monotonic timestamp per TraceStage — stamped as
 * it passes each boundary. Stages map to the wire/cluster pipeline:
 *
 *   Decode    SUBMIT frame decoded on the IO thread
 *   Route     consistent-hash shard selection in the cluster
 *   Dequeue   shard worker picked the request off the pool queue
 *   Prepare   plan-cache lookup done (hit or rebuilt)
 *   Execute   engine runPrepared returned
 *   CqPush    completion pushed onto the CompletionQueue
 *   WriterPop writer thread popped the completion
 *   Flush     response bytes handed to the socket layer
 *
 * Cost model: when tracing is enabled every request gets a
 * RequestTrace (one small allocation plus one steady_clock read per
 * stage — the only way "always sample slow requests" can work, since
 * slowness is only known at the end); the trace is *committed* to a
 * ring only when sampled (1-in-N) or slow (≥ slowMicros, also logged
 * via SAP_LOG_WARN). When tracing is disabled requests carry a null
 * pointer and every stamp is a no-op branch.
 *
 * Commits go to small per-thread ring buffers (TraceConfig::
 * ringCapacity each) so threads never contend on a shared ring in the
 * hot path;
 * snapshot() collects all rings under the registration lock. All
 * cross-thread trace handoffs ride the same mutex-protected queues as
 * the request itself, so stamps need no atomics of their own.
 */

#ifndef SAP_OBS_TRACE_RING_HH
#define SAP_OBS_TRACE_RING_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace sap {

/** Pipeline stages a request is stamped at, in pipeline order. */
enum class TraceStage : std::uint8_t
{
    Decode = 0,
    Route,
    Dequeue,
    Prepare,
    Execute,
    CqPush,
    WriterPop,
    Flush,
};

/** Number of TraceStage values. */
constexpr std::size_t kTraceStages = 8;

/**
 * Which tier of the serving stack stamped a trace. Backends reuse the
 * eight TraceStage slots with their pipeline meaning; the gateway
 * reuses a monotone subset of the same slots for its own stages
 * (Decode=gw_decode, Route=gw_route, Dequeue=gw_forward,
 * WriterPop=gw_relay_pop, Flush=gw_flush) so span math works
 * unchanged while names and export lanes stay distinct.
 */
enum class TraceTier : std::uint8_t
{
    Backend = 0,
    Gateway = 1,
};

/** Printable stage name ("decode", "route", ...). */
const char *traceStageName(TraceStage stage);

/** Tier-aware stage name (gateway slots read "gw_decode", ...). */
const char *traceStageName(TraceStage stage, TraceTier tier);

/**
 * The cross-tier trace identity a request carries on the wire: a
 * 128-bit trace id, the edge's head-sampling decision, the edge's
 * monotonic clock at admission (so stitched views can show the
 * gateway→backend gap even though the tiers run separate steady
 * clocks on one host), and the delivery attempt (0 = first send,
 * bumped per gateway resubmit).
 *
 * An all-zero trace id means "no context" — makeTraceContext never
 * produces one and the wire codec rejects it.
 */
struct TraceContext
{
    std::uint64_t traceIdHi = 0;
    std::uint64_t traceIdLo = 0;
    bool sampled = false;
    std::uint64_t originNanos = 0;
    std::uint8_t attempt = 0;

    bool valid() const { return (traceIdHi | traceIdLo) != 0; }
};

/** 32-hex-digit lowercase rendering of the 128-bit trace id. */
std::string traceIdHex(const TraceContext &ctx);

/**
 * Mint a fresh context at the edge: unique nonzero 128-bit id,
 * @p sampled as decided by the edge's head sampler, originNanos =
 * steady_clock now, attempt 0.
 */
TraceContext makeTraceContext(bool sampled);

/** A point-in-time annotation on a trace (failover, resubmit, ...).
 *  Named TracePoint to stay clear of the simulator's TraceEvent
 *  (sim/trace.hh) — both live in namespace sap. */
struct TracePoint
{
    std::string name;
    std::uint64_t nanos = 0;
};

/**
 * One request's trace: id, metadata, and a monotonic nanosecond
 * timestamp per stage (0 = never stamped). Owned by a shared_ptr that
 * rides ServeRequest/ServeResponse; each field is written by exactly
 * one pipeline thread and every handoff between threads goes through
 * a mutex-protected queue, which orders the writes.
 */
struct RequestTrace
{
    std::uint64_t requestId = 0;
    /** Engine + shape label filled in by the shard ("linear mv ..."). */
    std::string label;
    /** Problem kind ("matvec"/"matmul"/"trisolve"); "" = unknown. */
    std::string kind;
    bool cacheHit = false;
    bool ok = true;
    /** Which tier's stage vocabulary stageNanos uses. */
    TraceTier tier = TraceTier::Backend;
    /** Cross-tier identity; !ctx.valid() = locally-sampled trace. */
    TraceContext ctx;
    std::uint64_t stageNanos[kTraceStages] = {};
    /** Point events (gateway failover/resubmit), stamp order. */
    std::vector<TracePoint> events;

    void addEvent(std::string name)
    {
        events.push_back(
            {std::move(name),
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now()
                         .time_since_epoch())
                     .count())});
    }

    void stamp(TraceStage stage)
    {
        stageNanos[static_cast<std::size_t>(stage)] =
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count());
    }

    std::uint64_t nanosAt(TraceStage stage) const
    {
        return stageNanos[static_cast<std::size_t>(stage)];
    }

    /** First stamped timestamp (0 when none). */
    std::uint64_t startNanos() const;
    /** Last stamped timestamp (0 when none). */
    std::uint64_t endNanos() const;
    /** endNanos - startNanos, in microseconds. */
    double totalMicros() const;
};

/** Stamp @p stage iff @p trace is non-null (the universal call). */
inline void
traceStamp(const std::shared_ptr<RequestTrace> &trace, TraceStage stage)
{
    if (trace)
        trace->stamp(stage);
}

/** Tracing knobs (TraceCollector construction). */
struct TraceConfig
{
    /** Master switch; off = requests carry no trace at all. */
    bool enabled = false;
    /** Commit 1 in sampleEvery requests (1 = all, 0 = none). */
    std::uint32_t sampleEvery = 64;
    /** Requests at or above this total latency always commit and are
     *  logged at Warn level. 0 disables the slow path. */
    double slowMicros = 0;
    /** Capacity of each per-thread ring. */
    std::size_t ringCapacity = 1024;
};

/**
 * Fixed-capacity overwrite-oldest ring of committed traces. One per
 * committing thread; push is a lock over a thread-private ring
 * (uncontended in steady state — snapshot() is the only other
 * locker).
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity) : capacity_(capacity)
    {
        slots_.reserve(capacity);
    }

    void push(RequestTrace trace);
    /** Committed traces, oldest first. */
    std::vector<RequestTrace> snapshot() const;
    std::uint64_t totalCommitted() const;

  private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::uint64_t committed_ = 0;
    std::vector<RequestTrace> slots_;
};

/**
 * The process-wide tracing front end: owns the config, the sampling
 * counter, the per-thread rings, and the per-stage span histograms
 * (recorded into @p stageMetrics for every *committed* trace, so
 * stage p50/p99 come from the same source as the exports).
 */
class TraceCollector
{
  public:
    explicit TraceCollector(TraceConfig config,
                            MetricsRegistry *stageMetrics = nullptr);

    const TraceConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled; }

    /**
     * Begin tracing one request: returns a fresh RequestTrace with a
     * unique id, or null when tracing is disabled (callers thread the
     * null through and every stamp no-ops).
     */
    std::shared_ptr<RequestTrace> begin();

    /**
     * Begin tracing a request that arrived with a propagated
     * TraceContext: the edge already made the sampling decision, so
     * this returns null unless tracing is enabled here *and* the
     * context is marked sampled — honoring the edge's 1-in-N instead
     * of rolling a second one (which would sample 1-in-N² of
     * cross-tier requests). The returned trace carries @p ctx and is
     * committed unconditionally by finish().
     */
    std::shared_ptr<RequestTrace> adopt(const TraceContext &ctx);

    /**
     * Consume one tick of the 1-in-N head sampler and return whether
     * this request is sampled. For the edge tier, which decides once
     * per request and stamps the decision into the TraceContext it
     * propagates. False when tracing is disabled.
     */
    bool headSample();

    /**
     * Finish a trace: decide sampled-or-slow, record per-stage span
     * histograms, and commit into the calling thread's ring. Traces
     * carrying a valid TraceContext commit iff the context is marked
     * sampled (the edge's decision) or the trace is slow. Safe to
     * call with null (no-op). Returns true when the trace committed.
     */
    bool finish(const std::shared_ptr<RequestTrace> &trace);

    /** All committed traces across rings, oldest-to-newest per ring. */
    std::vector<RequestTrace> snapshot() const;

    /** Total commits across all rings (≥ snapshot().size()). */
    std::uint64_t totalCommitted() const;

  private:
    TraceRing &ringForThisThread();

    TraceConfig config_;
    MetricsRegistry *stage_metrics_;
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::uint64_t> sample_counter_{0};

    mutable std::mutex rings_mu_; ///< guards the ring map
    /** One ring per committing thread, keyed by currentThreadId().
     *  Commits are sampled, so the lookup lock is uncontended. */
    std::map<std::uint32_t, std::unique_ptr<TraceRing>> rings_;
};

/** Span durations between consecutive stamped stages of @p trace:
 *  (fromStage, toStage, micros) tuples in pipeline order. */
struct TraceSpan
{
    TraceStage from;
    TraceStage to;
    double micros = 0;
};
std::vector<TraceSpan> traceSpans(const RequestTrace &trace);

} // namespace sap

#endif // SAP_OBS_TRACE_RING_HH
