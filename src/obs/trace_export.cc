#include "obs/trace_export.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "base/string_util.hh"

namespace sap {

namespace {

/** CSV quoted-field escaping: double any embedded quote. */
std::string
csvEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    return out;
}

std::string
fmtMicros(std::uint64_t nanos)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", nanos / 1000,
                  static_cast<unsigned>(nanos % 1000));
    return buf;
}

/** pid = tier + 1: backend lane 1 (the pre-gateway value, so
 *  single-tier exports render unchanged), gateway lane 2. */
int
tierPid(TraceTier tier)
{
    return static_cast<int>(tier) + 1;
}

const char *
tierName(TraceTier tier)
{
    return tier == TraceTier::Gateway ? "gateway" : "backend";
}

void
appendEvent(std::string *out, bool *first, const std::string &name,
            int pid, std::uint64_t tid, std::uint64_t tsNanos,
            std::uint64_t durNanos, const std::string &args)
{
    if (!*first)
        *out += ",\n";
    *first = false;
    *out += "    {\"name\": \"" + name + "\", \"ph\": \"X\", \"ts\": " +
            fmtMicros(tsNanos) + ", \"dur\": " + fmtMicros(durNanos) +
            ", \"pid\": " + std::to_string(pid) +
            ", \"tid\": " + std::to_string(tid);
    if (!args.empty())
        *out += ", \"args\": {" + args + "}";
    *out += "}";
}

void
appendInstant(std::string *out, bool *first, const std::string &name,
              int pid, std::uint64_t tid, std::uint64_t tsNanos)
{
    if (!*first)
        *out += ",\n";
    *first = false;
    *out += "    {\"name\": \"" + name +
            "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " +
            fmtMicros(tsNanos) + ", \"pid\": " + std::to_string(pid) +
            ", \"tid\": " + std::to_string(tid) + "}";
}

void
appendProcessName(std::string *out, bool *first, TraceTier tier)
{
    if (!*first)
        *out += ",\n";
    *first = false;
    *out += std::string("    {\"name\": \"process_name\", \"ph\": "
                        "\"M\", \"pid\": ") +
            std::to_string(tierPid(tier)) +
            ", \"args\": {\"name\": \"" + tierName(tier) + "\"}}";
}

/** The per-trace object body shared by flat and stitched /tracez. */
std::string
tracezTraceJson(const RequestTrace &t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", t.totalMicros());
    std::string out =
        "{\"request_id\":" + std::to_string(t.requestId) +
        ",\"label\":\"" + jsonEscape(t.label) + "\",\"kind\":\"" +
        jsonEscape(t.kind) + "\",\"tier\":\"" + tierName(t.tier) +
        "\",\"ok\":" + (t.ok ? "true" : "false") + ",\"cache_hit\":" +
        (t.cacheHit ? "true" : "false") + ",\"total_micros\":" + buf;
    if (t.ctx.valid()) {
        out += ",\"trace_id\":\"" + traceIdHex(t.ctx) +
               "\",\"attempt\":" + std::to_string(t.ctx.attempt);
    }
    out += ",\"stages\":{";
    bool firstStage = true;
    for (std::size_t i = 0; i < kTraceStages; ++i) {
        if (!t.stageNanos[i])
            continue;
        if (!firstStage)
            out += ",";
        firstStage = false;
        out += std::string("\"") +
               traceStageName(static_cast<TraceStage>(i), t.tier) +
               "\":" + fmtMicros(t.stageNanos[i]);
    }
    out += "}";
    if (!t.events.empty()) {
        out += ",\"events\":[";
        bool firstEvent = true;
        for (const TracePoint &e : t.events) {
            if (!firstEvent)
                out += ",";
            firstEvent = false;
            out += "{\"name\":\"" + jsonEscape(e.name) +
                   "\",\"t_micros\":" + fmtMicros(e.nanos) + "}";
        }
        out += "]";
    }
    out += "}";
    return out;
}

} // namespace

std::string
toChromeTraceJson(const std::vector<RequestTrace> &traces)
{
    std::string out = "{\n  \"traceEvents\": [\n";
    bool first = true;
    // One named process lane per tier present, backend then gateway.
    bool tierPresent[2] = {false, false};
    for (const RequestTrace &t : traces)
        tierPresent[static_cast<std::size_t>(t.tier) & 1] = true;
    for (TraceTier tier : {TraceTier::Backend, TraceTier::Gateway})
        if (tierPresent[static_cast<std::size_t>(tier)])
            appendProcessName(&out, &first, tier);
    for (const RequestTrace &t : traces) {
        const std::uint64_t start = t.startNanos();
        const std::uint64_t end = t.endNanos();
        if (!start)
            continue;
        const int pid = tierPid(t.tier);
        std::string args =
            "\"label\": \"" + jsonEscape(t.label) + "\", \"ok\": " +
            (t.ok ? "true" : "false") +
            ", \"cache_hit\": " + (t.cacheHit ? "true" : "false");
        if (t.ctx.valid()) {
            args += ", \"trace_id\": \"" + traceIdHex(t.ctx) +
                    "\", \"attempt\": " +
                    std::to_string(t.ctx.attempt);
        }
        appendEvent(&out, &first, "request", pid, t.requestId, start,
                    end > start ? end - start : 0, args);
        for (const TraceSpan &span : traceSpans(t)) {
            const std::uint64_t from = t.nanosAt(span.from);
            const std::uint64_t to = t.nanosAt(span.to);
            appendEvent(&out, &first,
                        traceStageName(span.to, t.tier), pid,
                        t.requestId, from, to > from ? to - from : 0,
                        "");
        }
        for (const TracePoint &e : t.events)
            appendInstant(&out, &first, e.name, pid, t.requestId,
                          e.nanos);
    }
    out += "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n";
    return out;
}

std::string
toTracezJson(const std::vector<RequestTrace> &traces,
             std::uint64_t totalCommitted)
{
    std::string out = "{\"total_committed\":" +
                      std::to_string(totalCommitted) +
                      ",\"count\":" + std::to_string(traces.size()) +
                      ",\"traces\":[";
    bool firstTrace = true;
    for (const RequestTrace &t : traces) {
        if (!firstTrace)
            out += ",";
        firstTrace = false;
        out += tracezTraceJson(t);
    }
    out += "]}";
    return out;
}

std::vector<StitchedTrace>
stitchTraces(std::vector<RequestTrace> traces)
{
    std::vector<StitchedTrace> out;
    std::map<std::string, std::size_t> byId;
    for (RequestTrace &t : traces) {
        if (!t.ctx.valid()) {
            out.push_back({"", {std::move(t)}});
            continue;
        }
        const std::string id = traceIdHex(t.ctx);
        auto [it, inserted] = byId.emplace(id, out.size());
        if (inserted)
            out.push_back({id, {}});
        out[it->second].parts.push_back(std::move(t));
    }
    for (StitchedTrace &st : out) {
        std::sort(st.parts.begin(), st.parts.end(),
                  [](const RequestTrace &a, const RequestTrace &b) {
                      return a.startNanos() < b.startNanos();
                  });
    }
    return out;
}

std::string
toStitchedTracezJson(const std::vector<StitchedTrace> &stitched,
                     std::uint64_t totalCommitted)
{
    std::string out = "{\"total_committed\":" +
                      std::to_string(totalCommitted) + ",\"count\":" +
                      std::to_string(stitched.size()) +
                      ",\"stitched\":[";
    bool firstGroup = true;
    for (const StitchedTrace &st : stitched) {
        if (!firstGroup)
            out += ",";
        firstGroup = false;
        out += "{\"trace_id\":";
        out += st.traceId.empty() ? std::string("null")
                                  : "\"" + st.traceId + "\"";
        out += ",\"parts\":[";
        bool firstPart = true;
        for (const RequestTrace &t : st.parts) {
            if (!firstPart)
                out += ",";
            firstPart = false;
            out += tracezTraceJson(t);
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

bool
parseTraceQuery(const std::map<std::string, std::string> &query,
                std::uint64_t *minMicros, std::string *kind,
                std::string *error)
{
    *minMicros = 0;
    kind->clear();
    auto it = query.find("min_us");
    if (it != query.end()) {
        const std::string &v = it->second;
        if (v.empty() ||
            v.find_first_not_of("0123456789") != std::string::npos ||
            v.size() > 19) {
            *error = "bad min_us value '" + v +
                     "' (want a decimal microsecond count)";
            return false;
        }
        std::uint64_t n = 0;
        for (char c : v)
            n = n * 10 + static_cast<std::uint64_t>(c - '0');
        *minMicros = n;
    }
    it = query.find("kind");
    if (it != query.end()) {
        const std::string &v = it->second;
        if (v != "matvec" && v != "matmul" && v != "trisolve") {
            *error = "bad kind value '" + v +
                     "' (want matvec, matmul, or trisolve)";
            return false;
        }
        *kind = v;
    }
    return true;
}

std::vector<RequestTrace>
filterTraces(std::vector<RequestTrace> traces, std::uint64_t minMicros,
             const std::string &kind)
{
    if (minMicros == 0 && kind.empty())
        return traces;
    std::vector<RequestTrace> out;
    out.reserve(traces.size());
    for (RequestTrace &t : traces) {
        if (minMicros > 0 &&
            t.totalMicros() < static_cast<double>(minMicros))
            continue;
        if (!kind.empty() && t.kind != kind)
            continue;
        out.push_back(std::move(t));
    }
    return out;
}

std::string
toTraceCsv(const std::vector<RequestTrace> &traces)
{
    std::string out = "request_id,label,ok,cache_hit,total_micros";
    for (std::size_t i = 0; i < kTraceStages; ++i) {
        out += ",";
        out += traceStageName(static_cast<TraceStage>(i));
        out += "_micros";
    }
    out += "\n";
    for (const RequestTrace &t : traces) {
        out += std::to_string(t.requestId) + ",\"" +
               csvEscape(t.label) + "\"," +
               (t.ok ? "1" : "0") + "," + (t.cacheHit ? "1" : "0") +
               ",";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.3f", t.totalMicros());
        out += buf;
        for (std::size_t i = 0; i < kTraceStages; ++i) {
            out += ",";
            if (t.stageNanos[i])
                out += fmtMicros(t.stageNanos[i]);
        }
        out += "\n";
    }
    return out;
}

} // namespace sap
