#include "obs/trace_export.hh"

#include <cinttypes>
#include <cstdio>

#include "base/string_util.hh"

namespace sap {

namespace {

/** CSV quoted-field escaping: double any embedded quote. */
std::string
csvEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    return out;
}

std::string
fmtMicros(std::uint64_t nanos)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", nanos / 1000,
                  static_cast<unsigned>(nanos % 1000));
    return buf;
}

void
appendEvent(std::string *out, bool *first, const std::string &name,
            std::uint64_t tid, std::uint64_t tsNanos,
            std::uint64_t durNanos, const std::string &args)
{
    if (!*first)
        *out += ",\n";
    *first = false;
    *out += "    {\"name\": \"" + name + "\", \"ph\": \"X\", \"ts\": " +
            fmtMicros(tsNanos) + ", \"dur\": " + fmtMicros(durNanos) +
            ", \"pid\": 1, \"tid\": " + std::to_string(tid);
    if (!args.empty())
        *out += ", \"args\": {" + args + "}";
    *out += "}";
}

} // namespace

std::string
toChromeTraceJson(const std::vector<RequestTrace> &traces)
{
    std::string out = "{\n  \"traceEvents\": [\n";
    bool first = true;
    for (const RequestTrace &t : traces) {
        const std::uint64_t start = t.startNanos();
        const std::uint64_t end = t.endNanos();
        if (!start)
            continue;
        const std::string args =
            "\"label\": \"" + jsonEscape(t.label) + "\", \"ok\": " +
            (t.ok ? "true" : "false") +
            ", \"cache_hit\": " + (t.cacheHit ? "true" : "false");
        appendEvent(&out, &first, "request", t.requestId, start,
                    end > start ? end - start : 0, args);
        for (const TraceSpan &span : traceSpans(t)) {
            const std::uint64_t from = t.nanosAt(span.from);
            const std::uint64_t to = t.nanosAt(span.to);
            appendEvent(&out, &first, traceStageName(span.to),
                        t.requestId, from, to > from ? to - from : 0,
                        "");
        }
    }
    out += "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n";
    return out;
}

std::string
toTracezJson(const std::vector<RequestTrace> &traces,
             std::uint64_t totalCommitted)
{
    std::string out = "{\"total_committed\":" +
                      std::to_string(totalCommitted) +
                      ",\"count\":" + std::to_string(traces.size()) +
                      ",\"traces\":[";
    bool firstTrace = true;
    for (const RequestTrace &t : traces) {
        if (!firstTrace)
            out += ",";
        firstTrace = false;
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.3f", t.totalMicros());
        out += "{\"request_id\":" + std::to_string(t.requestId) +
               ",\"label\":\"" + jsonEscape(t.label) + "\",\"ok\":" +
               (t.ok ? "true" : "false") + ",\"cache_hit\":" +
               (t.cacheHit ? "true" : "false") + ",\"total_micros\":" +
               buf + ",\"stages\":{";
        bool firstStage = true;
        for (std::size_t i = 0; i < kTraceStages; ++i) {
            if (!t.stageNanos[i])
                continue;
            if (!firstStage)
                out += ",";
            firstStage = false;
            out += std::string("\"") +
                   traceStageName(static_cast<TraceStage>(i)) +
                   "\":" + fmtMicros(t.stageNanos[i]);
        }
        out += "}}";
    }
    out += "]}";
    return out;
}

std::string
toTraceCsv(const std::vector<RequestTrace> &traces)
{
    std::string out = "request_id,label,ok,cache_hit,total_micros";
    for (std::size_t i = 0; i < kTraceStages; ++i) {
        out += ",";
        out += traceStageName(static_cast<TraceStage>(i));
        out += "_micros";
    }
    out += "\n";
    for (const RequestTrace &t : traces) {
        out += std::to_string(t.requestId) + ",\"" +
               csvEscape(t.label) + "\"," +
               (t.ok ? "1" : "0") + "," + (t.cacheHit ? "1" : "0") +
               ",";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.3f", t.totalMicros());
        out += buf;
        for (std::size_t i = 0; i < kTraceStages; ++i) {
            out += ",";
            if (t.stageNanos[i])
                out += fmtMicros(t.stageNanos[i]);
        }
        out += "\n";
    }
    return out;
}

} // namespace sap
