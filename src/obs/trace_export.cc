#include "obs/trace_export.hh"

#include <cinttypes>
#include <cstdio>

namespace sap {

namespace {

/** JSON string escaping for the label field (quotes, backslashes,
 *  control characters; engine labels are ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** CSV quoted-field escaping: double any embedded quote. */
std::string
csvEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    return out;
}

std::string
fmtMicros(std::uint64_t nanos)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", nanos / 1000,
                  static_cast<unsigned>(nanos % 1000));
    return buf;
}

void
appendEvent(std::string *out, bool *first, const std::string &name,
            std::uint64_t tid, std::uint64_t tsNanos,
            std::uint64_t durNanos, const std::string &args)
{
    if (!*first)
        *out += ",\n";
    *first = false;
    *out += "    {\"name\": \"" + name + "\", \"ph\": \"X\", \"ts\": " +
            fmtMicros(tsNanos) + ", \"dur\": " + fmtMicros(durNanos) +
            ", \"pid\": 1, \"tid\": " + std::to_string(tid);
    if (!args.empty())
        *out += ", \"args\": {" + args + "}";
    *out += "}";
}

} // namespace

std::string
toChromeTraceJson(const std::vector<RequestTrace> &traces)
{
    std::string out = "{\n  \"traceEvents\": [\n";
    bool first = true;
    for (const RequestTrace &t : traces) {
        const std::uint64_t start = t.startNanos();
        const std::uint64_t end = t.endNanos();
        if (!start)
            continue;
        const std::string args =
            "\"label\": \"" + jsonEscape(t.label) + "\", \"ok\": " +
            (t.ok ? "true" : "false") +
            ", \"cache_hit\": " + (t.cacheHit ? "true" : "false");
        appendEvent(&out, &first, "request", t.requestId, start,
                    end > start ? end - start : 0, args);
        for (const TraceSpan &span : traceSpans(t)) {
            const std::uint64_t from = t.nanosAt(span.from);
            const std::uint64_t to = t.nanosAt(span.to);
            appendEvent(&out, &first, traceStageName(span.to),
                        t.requestId, from, to > from ? to - from : 0,
                        "");
        }
    }
    out += "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n";
    return out;
}

std::string
toTraceCsv(const std::vector<RequestTrace> &traces)
{
    std::string out = "request_id,label,ok,cache_hit,total_micros";
    for (std::size_t i = 0; i < kTraceStages; ++i) {
        out += ",";
        out += traceStageName(static_cast<TraceStage>(i));
        out += "_micros";
    }
    out += "\n";
    for (const RequestTrace &t : traces) {
        out += std::to_string(t.requestId) + ",\"" +
               csvEscape(t.label) + "\"," +
               (t.ok ? "1" : "0") + "," + (t.cacheHit ? "1" : "0") +
               ",";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.3f", t.totalMicros());
        out += buf;
        for (std::size_t i = 0; i < kTraceStages; ++i) {
            out += ",";
            if (t.stageNanos[i])
                out += fmtMicros(t.stageNanos[i]);
        }
        out += "\n";
    }
    return out;
}

} // namespace sap
