/**
 * @file
 * Health and readiness model for a serving installation: the signal a
 * routing tier or load balancer consumes to decide where traffic goes.
 *
 * A process is *live* when it can still make progress (restarting it
 * would lose work for nothing) and *ready* when it should receive new
 * traffic. The admin plane maps these onto the conventional HTTP
 * pair: GET /healthz (liveness) and GET /readyz (readiness), each
 * answering 200 or 503 from the state computed here.
 *
 * The state machine has three states driven by four inputs:
 *
 *   Ok         all inputs inside their thresholds
 *   Degraded   still correct but past a soft threshold (queue depth,
 *              protocol-error rate, or interval p99 over its budget);
 *              a router should prefer other backends but need not
 *              drain this one
 *   Unhealthy  past a hard threshold (saturated completion/work
 *              queues, protocol-error storm) or not serving at all;
 *              stop sending traffic
 *
 * Transitions are hysteretic: entering Unhealthy requires crossing
 * the hard ("unhealthy") threshold, but *leaving* it requires coming
 * back under the soft ("degraded") threshold, so a backend hovering
 * at the boundary does not flap in and out of a load balancer's
 * rotation. Rates (protocol errors/s) are computed from consecutive
 * evaluate() calls over monotonic time; evaluations closer together
 * than kMinRateWindowSeconds reuse the previous rate rather than
 * amplifying a one-frame burst into a huge instantaneous rate.
 *
 * Thread-safety: HealthModel::evaluate() serializes on an internal
 * mutex; any thread may call it.
 */

#ifndef SAP_OBS_HEALTH_HH
#define SAP_OBS_HEALTH_HH

#include <cstdint>
#include <mutex>
#include <string>

namespace sap {

/** The three health states, in decreasing order of health. */
enum class HealthState : std::uint8_t
{
    Ok = 0,
    Degraded = 1,
    Unhealthy = 2,
};

/** Printable state name ("ok"/"degraded"/"unhealthy"). */
const char *healthStateName(HealthState state);

/** Evaluations closer together than this reuse the previous
 *  protocol-error rate instead of computing one over a tiny window. */
constexpr double kMinRateWindowSeconds = 0.05;

/**
 * Thresholds the model evaluates inputs against. The defaults suit a
 * small loopback installation; a production deployment sizes the
 * queue thresholds to its shard/worker counts.
 */
struct HealthThresholds
{
    /** Queued-but-unserved requests at which the backend counts as
     *  falling behind (soft) and saturated (hard). */
    double degradedQueueDepth = 64;
    double unhealthyQueueDepth = 256;
    /** Wire protocol errors per second: soft and hard bounds. */
    double degradedProtocolErrorsPerSec = 5;
    double unhealthyProtocolErrorsPerSec = 50;
    /** Per-interval p99 latency budget in microseconds; exceeding it
     *  is Degraded (a latency SLO miss is a routing preference, not a
     *  reason to drop a correct backend). 0 disables the check. */
    double p99BudgetMicros = 0;
};

/** One evaluation's inputs, gathered by the owner (see net/server). */
struct HealthInputs
{
    /** Lifecycle: accepting and serving requests right now. */
    bool serving = false;
    /** Requests accepted but not yet answered: shard work queues
     *  plus the completion queue awaiting the writer. */
    double queueDepth = 0;
    /** Cumulative protocol-error count (rate derives across calls). */
    std::uint64_t protocolErrors = 0;
    /** Interval p99 of the serve latency histogram, µs (0 = no
     *  traffic this interval; the budget check is skipped). */
    double p99Micros = 0;
    /** Monotonic timestamp of this sample, seconds. */
    double nowSeconds = 0;
};

/** What one evaluation concluded. */
struct HealthReport
{
    HealthState state = HealthState::Ok;
    /** healthz: false only when Unhealthy (or never started). */
    bool live = false;
    /** readyz: live AND currently serving. */
    bool ready = false;
    /** Human-readable cause when state != Ok (empty otherwise). */
    std::string reason;
    /** The rate the error thresholds were compared against. */
    double protocolErrorsPerSec = 0;
};

/**
 * The stateful evaluator: owns the thresholds, the previous sample
 * (for rates), and the current state (for hysteresis).
 */
class HealthModel
{
  public:
    explicit HealthModel(const HealthThresholds &thresholds);

    const HealthThresholds &thresholds() const { return thresholds_; }

    /**
     * Fold @p in into the state machine and report the new state.
     * Call at whatever cadence the owner likes (every probe request
     * is fine); rate windows shorter than kMinRateWindowSeconds
     * reuse the previous rate.
     */
    HealthReport evaluate(const HealthInputs &in);

    /** The state as of the last evaluate() (Ok before the first). */
    HealthState state() const;

  private:
    HealthThresholds thresholds_;

    mutable std::mutex mu_;
    HealthState state_ = HealthState::Ok;
    bool have_prev_ = false;
    std::uint64_t prev_errors_ = 0;
    double prev_seconds_ = 0;
    double prev_rate_ = 0;
};

} // namespace sap

#endif // SAP_OBS_HEALTH_HH
