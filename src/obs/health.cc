#include "obs/health.hh"

#include <sstream>

namespace sap {

namespace {

/** "queue depth 312 >= 256" etc., built only when state != Ok. */
std::string
describe(const char *what, double value, double bound)
{
    std::ostringstream os;
    os << what << " " << value << " >= " << bound;
    return os.str();
}

} // namespace

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Ok:
        return "ok";
      case HealthState::Degraded:
        return "degraded";
      case HealthState::Unhealthy:
        return "unhealthy";
    }
    return "?";
}

HealthModel::HealthModel(const HealthThresholds &thresholds)
    : thresholds_(thresholds)
{
}

HealthState
HealthModel::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

HealthReport
HealthModel::evaluate(const HealthInputs &in)
{
    std::lock_guard<std::mutex> lock(mu_);

    // Protocol-error rate from the cumulative counter. Counter resets
    // (server restart reusing a model) read as a negative delta: start
    // the rate over instead of reporting a huge unsigned wrap.
    double rate = prev_rate_;
    if (!have_prev_ || in.protocolErrors < prev_errors_) {
        rate = 0;
        prev_errors_ = in.protocolErrors;
        prev_seconds_ = in.nowSeconds;
        have_prev_ = true;
    } else if (in.nowSeconds - prev_seconds_ >= kMinRateWindowSeconds) {
        rate = double(in.protocolErrors - prev_errors_) /
               (in.nowSeconds - prev_seconds_);
        prev_errors_ = in.protocolErrors;
        prev_seconds_ = in.nowSeconds;
    }
    prev_rate_ = rate;

    const HealthThresholds &t = thresholds_;

    // Classify against the hard and soft thresholds independently;
    // hysteresis below decides which classification is allowed to
    // move the state.
    HealthState assessed = HealthState::Ok;
    std::string reason;
    if (!in.serving) {
        assessed = HealthState::Unhealthy;
        reason = "not serving";
    } else if (in.queueDepth >= t.unhealthyQueueDepth) {
        assessed = HealthState::Unhealthy;
        reason = describe("queue depth", in.queueDepth,
                          t.unhealthyQueueDepth);
    } else if (rate >= t.unhealthyProtocolErrorsPerSec) {
        assessed = HealthState::Unhealthy;
        reason = describe("protocol errors/s", rate,
                          t.unhealthyProtocolErrorsPerSec);
    } else if (in.queueDepth >= t.degradedQueueDepth) {
        assessed = HealthState::Degraded;
        reason =
            describe("queue depth", in.queueDepth, t.degradedQueueDepth);
    } else if (rate >= t.degradedProtocolErrorsPerSec) {
        assessed = HealthState::Degraded;
        reason = describe("protocol errors/s", rate,
                          t.degradedProtocolErrorsPerSec);
    } else if (t.p99BudgetMicros > 0 && in.p99Micros > t.p99BudgetMicros) {
        assessed = HealthState::Degraded;
        reason = describe("p99 micros", in.p99Micros, t.p99BudgetMicros);
    }

    // Hysteresis: leaving Unhealthy requires the *soft* classification
    // to clear, i.e. assessed == Ok. While any degraded threshold is
    // still tripped, an Unhealthy backend stays Unhealthy so it does
    // not flap in and out of rotation at the hard boundary. ("not
    // serving" clearing is lifecycle, not load — hysteresis would
    // just keep a cleanly restarted model red.)
    if (state_ == HealthState::Unhealthy &&
        assessed == HealthState::Degraded && in.serving) {
        reason += " (recovering; holding unhealthy)";
        assessed = HealthState::Unhealthy;
    }
    state_ = assessed;

    HealthReport report;
    report.state = state_;
    report.live = state_ != HealthState::Unhealthy;
    report.ready = report.live && in.serving;
    report.reason = state_ == HealthState::Ok ? std::string() : reason;
    report.protocolErrorsPerSec = rate;
    return report;
}

} // namespace sap
