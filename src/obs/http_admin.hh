/**
 * @file
 * Minimal embedded HTTP/1.1 admin server: the observability side
 * door next to the binary-protocol front door.
 *
 * The binary protocol (net/protocol.hh) is the data plane; operators
 * and standard tooling (curl, a Prometheus scraper, a load balancer's
 * health checker) speak HTTP. This server exists solely so those
 * tools can reach the obs/ surfaces — it is deliberately *not* a web
 * framework:
 *
 *  - GET (and HEAD) only; anything else is 405.
 *  - One request per connection ("Connection: close"); no keep-alive,
 *    no chunked encoding, no percent-decoding. Admin traffic is a
 *    handful of requests per second, so connection reuse buys
 *    nothing and every dropped feature is parsing attack surface
 *    gone.
 *  - Strictly bounds-checked request parsing in the spirit of
 *    net/protocol: a hard cap on request bytes (431 when exceeded),
 *    request line of exactly three tokens, printable-ASCII target,
 *    malformed input earns a 400 and a close — never a crash.
 *  - One thread, poll()-based, handlers run inline on it. Handlers
 *    render obs snapshots (microseconds to low milliseconds); an
 *    admin port does not need concurrency, it needs predictability.
 *
 * Routing is exact-path: register a handler per path; the query
 * string is split into key=value pairs and passed along. Unknown
 * paths earn 404. The owner (net/NetServer, or anything else)
 * registers handlers *before* start() — registration is not
 * thread-safe against a running server, by design.
 *
 * Lifecycle mirrors NetServer: construct, addHandler(), start()
 * (binds 127.0.0.1, port 0 = ephemeral, see port()), stop() joins
 * the thread; stopped servers do not restart.
 */

#ifndef SAP_OBS_HTTP_ADMIN_HH
#define SAP_OBS_HTTP_ADMIN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace sap {

/** A parsed (valid) admin request. */
struct HttpRequest
{
    std::string method; ///< "GET" or "HEAD"
    std::string path;   ///< target up to '?', e.g. "/metrics"
    /** Query pairs, e.g. {"format","chrome"} from "?format=chrome".
     *  Keys without '=' map to "". No percent-decoding (documented;
     *  admin values are plain tokens). */
    std::map<std::string, std::string> query;
};

/** What a handler answers with. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    /** Extra headers, e.g. {"Content-Disposition","attachment"}. */
    std::vector<std::pair<std::string, std::string>> extraHeaders;
};

/** Standard reason phrase for the handful of codes we emit. */
const char *httpStatusReason(int status);

/**
 * Outcome of parsing one request head. Exposed (with parseHttpRequest)
 * so tests can drive the parser without sockets.
 */
enum class HttpParseResult : std::uint8_t
{
    Ok = 0,          ///< request filled in
    NeedMore = 1,    ///< no terminating CRLFCRLF yet
    Malformed = 2,   ///< 400: not a request this server accepts
    MethodNotAllowed = 3, ///< 405: valid request line, not GET/HEAD
};

/**
 * Parse one request head from @p data (everything up to and including
 * the first CRLFCRLF). Strict: three-token request line, version
 * HTTP/1.0 or HTTP/1.1, target starting with '/' and printable ASCII,
 * header lines syntactically checked (then ignored — no request body
 * is ever read). @p data longer than the head is fine; the body (if a
 * client sends one anyway) is ignored.
 */
HttpParseResult parseHttpRequest(const std::string &data,
                                 HttpRequest *out);

/** Serialize status line + headers + body (the exact wire bytes). */
std::string renderHttpResponse(const HttpResponse &resp,
                               bool headOnly = false);

/**
 * The server (see file comment).
 */
class HttpAdminServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    struct Options
    {
        /** TCP port on 127.0.0.1; 0 binds an ephemeral port. */
        std::uint16_t port = 0;
        /** Hard cap on request-head bytes; beyond it: 431 + close. */
        std::size_t maxRequestBytes = 8192;
        /** Idle connections are dropped after this many seconds
         *  (a client that connects and sends nothing cannot pin a
         *  slot forever). */
        double idleTimeoutSeconds = 10.0;
        /** Cap on simultaneously open admin connections; beyond it
         *  the oldest pending connection is dropped. */
        std::size_t maxConnections = 32;
    };

    explicit HttpAdminServer(const Options &opts);
    ~HttpAdminServer();

    HttpAdminServer(const HttpAdminServer &) = delete;
    HttpAdminServer &operator=(const HttpAdminServer &) = delete;

    /** Register @p handler for exact path @p path (before start()). */
    void addHandler(const std::string &path, Handler handler);

    /** Bind + listen + spawn the serving thread.
     *  @return false (error() set) on socket failure. */
    bool start();

    /** Stop serving and join; idempotent, called by the destructor. */
    void stop();

    bool running() const { return running_.load(); }

    /** Bound port (valid after a successful start()). */
    std::uint16_t port() const { return port_; }

    /** Why start() failed (empty otherwise). */
    const std::string &error() const { return error_; }

    /** Requests answered (any status), for tests/metrics. */
    std::uint64_t requestsServed() const
    {
        return requests_served_.load();
    }

  private:
    struct Conn
    {
        int fd = -1;
        std::string in;       ///< request bytes so far
        std::string out;      ///< response bytes not yet written
        std::size_t outoff = 0;
        bool responding = false; ///< head parsed, response queued
        /** Response fully written; write side shut down, discarding
         *  reads until the peer closes (lingering close — an
         *  immediate close() with unread request bytes in the
         *  receive queue would RST and could destroy the response
         *  before the client reads it). */
        bool draining = false;
        double idleSince = 0;
    };

    void serveLoop();
    /** Parse-and-dispatch once conn.in holds a full head (or is
     *  hopeless); fills conn.out. @return false to drop now. */
    bool makeResponse(Conn &conn);
    HttpResponse dispatch(const HttpRequest &req);

    Options opts_;
    std::string error_;
    std::map<std::string, Handler> handlers_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    bool stopped_ = false;
    std::thread thread_;
    std::atomic<std::uint64_t> requests_served_{0};
};

} // namespace sap

#endif // SAP_OBS_HTTP_ADMIN_HH
