/**
 * @file
 * Batched execution: build (or fetch) the transformed plan once,
 * stream many requests through it.
 *
 * This is the software analogue of the hyper-systolic amortization:
 * the per-matrix setup cost (the DBT dense→band transform) is paid
 * once per distinct matrix, and every further (x, b) — or (B, E) —
 * operand set rides the prepared band structure. An optional
 * golden-model cross-check validates every streamed result against
 * the host oracle (mat/ops.hh).
 */

#ifndef SAP_SERVE_BATCH_HH
#define SAP_SERVE_BATCH_HH

#include <vector>

#include "engine/engine.hh"
#include "serve/plan_cache.hh"

namespace sap {

/** Options shared by the runMany() entry points. */
struct BatchOptions
{
    /**
     * Verify every streamed result against the host oracle
     * (exact comparison; integer workloads are exact in double).
     * Mismatches are counted, not fatal.
     */
    bool crossCheck = false;

    /**
     * Optional plan cache shared across calls. Without one, each
     * call builds its plans locally (still amortized within the
     * call).
     */
    PlanCache *cache = nullptr;

    /**
     * Execution path for every request in the batch (overrides the
     * per-input mode fields): Simulate runs the cycle simulators,
     * Fast the bit-identical semantics kernels, Validate both with
     * a field-by-field diff. See SystolicEngine::run().
     */
    ExecMode mode = ExecMode::Simulate;
};

/** Result of one batched execution. */
struct BatchResult
{
    /** Per-request results, in request order. */
    std::vector<EngineRunResult> results;
    /** Requests whose cross-check mismatched (0 when disabled). */
    std::size_t crossCheckFailures = 0;
    /** Plans served from options.cache. */
    std::size_t cacheHits = 0;
    /** Plans built (cache misses, or all plans without a cache). */
    std::size_t planBuilds = 0;
};

/**
 * Stream every element of @p inputs through one plan built from
 * @p plan's bound matrices (its own x/b/e operand fields are
 * ignored). Works for every problem kind: MatMul plans bind (A, B)
 * and each input contributes an E; TriSolve plans bind L and each
 * input contributes a right-hand side.
 */
BatchResult runMany(const SystolicEngine &engine,
                    const EnginePlan &plan,
                    const std::vector<EngineInputs> &inputs,
                    const BatchOptions &opts = {});

/**
 * y_j = A·x_j + b_j for every input pair, building the plan for
 * (A, w) once.
 *
 * @pre engine.kind() == ProblemKind::MatVec (asserted).
 */
BatchResult runManyMatVec(const SystolicEngine &engine,
                          const Dense<Scalar> &a, Index w,
                          const std::vector<EngineInputs> &inputs,
                          const BatchOptions &opts = {});

/**
 * y_j = solution of L·y_j = b_j for every input (rhs in the b
 * field), building the plan for (L, w) once.
 *
 * @pre engine.kind() == ProblemKind::TriSolve (asserted).
 * @pre L is square lower-triangular with nonzero diagonal.
 */
BatchResult runManyTriSolve(const SystolicEngine &engine,
                            const Dense<Scalar> &l, Index w,
                            const std::vector<EngineInputs> &inputs,
                            const BatchOptions &opts = {});

/** One (B, E) request of a mat-mul stream sharing A. */
struct MatMulItem
{
    Dense<Scalar> bmat; ///< B_j (A.cols × m)
    Dense<Scalar> e;    ///< E_j (A.rows × m)
};

/**
 * C_j = A·B_j + E_j for every item. The hexagonal transform binds
 * (A, B) together, so each *distinct* B needs its own plan; repeated
 * B_j within the stream (or across calls, via options.cache) reuse
 * the cached plan. Items sharing a B therefore amortize exactly
 * like mat-vec inputs sharing an A.
 *
 * @pre engine.kind() == ProblemKind::MatMul (asserted).
 * @pre All items share B's shape (asserted).
 */
BatchResult runManyMatMul(const SystolicEngine &engine,
                          const Dense<Scalar> &a, Index w,
                          const std::vector<MatMulItem> &items,
                          const BatchOptions &opts = {});

} // namespace sap

#endif // SAP_SERVE_BATCH_HH
