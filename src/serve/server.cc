#include "serve/server.hh"

#include <chrono>

#include "engine/registry.hh"
#include "mat/ops.hh"

namespace sap {

namespace {

/**
 * Request validation that *reports* instead of asserting: the same
 * conditions as EnginePlan::validate() plus the engine-kind match,
 * returned as an error string (empty = valid) so a malformed request
 * becomes an error response, not a dead server.
 */
std::string
validateRequest(const SystolicEngine &engine, const EnginePlan &plan)
{
    if (plan.kind != engine.kind())
        return "engine '" + engine.name() + "' serves " +
               problemKindName(engine.kind()) + " but the request is " +
               problemKindName(plan.kind);
    if (plan.w < 1)
        return "array size w must be >= 1";
    if (plan.a.rows() <= 0 || plan.a.cols() <= 0)
        return "empty matrix A";
    if (plan.kind == ProblemKind::MatVec) {
        if (plan.x.size() != plan.a.cols())
            return "x length " + std::to_string(plan.x.size()) +
                   " != A cols " + std::to_string(plan.a.cols());
        if (plan.b.size() != plan.a.rows())
            return "b length " + std::to_string(plan.b.size()) +
                   " != A rows " + std::to_string(plan.a.rows());
    } else {
        if (plan.bmat.rows() != plan.a.cols())
            return "B rows " + std::to_string(plan.bmat.rows()) +
                   " != A cols " + std::to_string(plan.a.cols());
        if (plan.e.rows() != plan.a.rows() ||
            plan.e.cols() != plan.bmat.cols())
            return "E shape mismatch";
    }
    return {};
}

ShapeKey
shapeKeyOf(const std::string &engine_name, const EnginePlan &plan)
{
    ShapeKey key;
    key.engine = engine_name;
    key.kind = plan.kind;
    key.rows = plan.a.rows();
    key.cols = plan.a.cols();
    key.outCols =
        plan.kind == ProblemKind::MatMul ? plan.bmat.cols() : 0;
    key.w = plan.w;
    return key;
}

bool
matchesOracle(const EnginePlan &plan, const EngineRunResult &r)
{
    if (plan.kind == ProblemKind::MatVec) {
        Vec<Scalar> gold = matVec(plan.a, plan.x, plan.b);
        return r.y.size() == gold.size() &&
               maxAbsDiff(r.y, gold) == 0.0;
    }
    return r.c == matMulAdd(plan.a, plan.bmat, plan.e);
}

} // namespace

Server::Server() : Server(Options()) {}

Server::Server(const Options &opts)
    : opts_(opts), cache_(opts.planCacheCapacity),
      pool_(opts.threads)
{
}

std::future<ServeResponse>
Server::submit(ServeRequest req)
{
    auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
        [this, req = std::move(req)]() { return handle(req); });
    std::future<ServeResponse> fut = task->get_future();
    pool_.post([task] { (*task)(); });
    return fut;
}

const SystolicEngine *
Server::engineFor(const std::string &name)
{
    std::lock_guard<std::mutex> lock(engines_mutex_);
    auto it = engines_.find(name);
    if (it != engines_.end())
        return it->second.get();
    std::unique_ptr<SystolicEngine> engine = makeEngine(name);
    if (!engine)
        return nullptr;
    return engines_.emplace(name, std::move(engine))
        .first->second.get();
}

ServeResponse
Server::handle(const ServeRequest &req)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    auto elapsedMicros = [&t0] {
        return std::chrono::duration<double, std::micro>(
                   Clock::now() - t0)
            .count();
    };

    ServeResponse resp;
    const SystolicEngine *engine = engineFor(req.engine);
    if (!engine) {
        resp.error = "unknown engine '" + req.engine + "'";
        stats_.recordFailure();
        resp.latencyMicros = elapsedMicros();
        return resp;
    }
    std::string error = validateRequest(*engine, req.plan);
    if (!error.empty()) {
        resp.error = std::move(error);
        stats_.recordFailure();
        resp.latencyMicros = elapsedMicros();
        return resp;
    }

    PlanCache::Prepared cached = cache_.prepare(*engine, req.plan);
    resp.cacheHit = cached.hit;
    resp.result =
        engine->runPrepared(*cached.plan, EngineInputs::of(req.plan));
    resp.ok = true;

    if (req.crossCheck || opts_.crossCheckAll) {
        resp.crossCheckOk = matchesOracle(req.plan, resp.result);
        if (!resp.crossCheckOk)
            stats_.recordCrossCheckFailure();
    }

    resp.latencyMicros = elapsedMicros();
    stats_.record(shapeKeyOf(req.engine, req.plan), resp.cacheHit,
                  resp.result.stats.cycles, resp.latencyMicros);
    return resp;
}

ServerStats
Server::stats() const
{
    PlanCacheStats cache_stats = cache_.stats();
    return stats_.snapshot(&cache_stats);
}

} // namespace sap
