#include "serve/server.hh"

namespace sap {

Shard::Options
Server::shardOptions(const Options &opts)
{
    Shard::Options shard;
    shard.threads = opts.threads;
    shard.planCacheCapacity = opts.planCacheCapacity;
    shard.crossCheckAll = opts.crossCheckAll;
    return shard;
}

Server::Server() : Server(Options()) {}

Server::Server(const Options &opts) : shard_(shardOptions(opts)) {}

std::future<ServeResponse>
Server::submit(ServeRequest req)
{
    return shard_.submit(std::move(req));
}

void
Server::submitAsync(ServeRequest req, CompletionFn done)
{
    shard_.submitAsync(std::move(req), std::move(done));
}

std::vector<std::future<ServeResponse>>
Server::submitBatch(std::vector<ServeRequest> reqs)
{
    return shard_.submitBatch(std::move(reqs));
}

ServerStats
Server::stats() const
{
    return shard_.stats();
}

} // namespace sap
