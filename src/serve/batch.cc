#include "serve/batch.hh"

#include "base/logging.hh"
#include "mat/ops.hh"

namespace sap {

namespace {

/** True when @p r matches the host oracle for (@p plan, @p in). */
bool
crossCheckOne(const EnginePlan &plan, const EngineInputs &in,
              const EngineRunResult &r)
{
    if (plan.kind == ProblemKind::MatMul)
        return r.c == matMulAdd(plan.a, plan.bmat, in.e);
    Vec<Scalar> gold = plan.kind == ProblemKind::MatVec
        ? matVec(plan.a, in.x, in.b)
        : forwardSolve(plan.a, in.b);
    return r.y.size() == gold.size() && maxAbsDiff(r.y, gold) == 0.0;
}

} // namespace

BatchResult
runMany(const SystolicEngine &engine, const EnginePlan &plan,
        const std::vector<EngineInputs> &inputs,
        const BatchOptions &opts)
{
    BatchResult out;
    if (inputs.empty())
        return out;

    std::shared_ptr<const PreparedPlan> prepared;
    if (opts.cache) {
        PlanCache::Prepared cached = opts.cache->prepare(engine, plan);
        prepared = cached.plan;
        if (cached.hit)
            ++out.cacheHits;
        else
            ++out.planBuilds;
    } else {
        prepared = engine.prepare(plan);
        ++out.planBuilds;
    }

    // The batch-wide mode overrides whatever the inputs carry; copy
    // only when some input actually disagrees.
    const std::vector<EngineInputs> *use = &inputs;
    std::vector<EngineInputs> moded;
    for (const EngineInputs &in : inputs) {
        if (in.mode != opts.mode) {
            moded = inputs;
            for (EngineInputs &m : moded)
                m.mode = opts.mode;
            use = &moded;
            break;
        }
    }

    out.results = engine.runManyPrepared(*prepared, *use);
    if (opts.crossCheck)
        for (std::size_t i = 0; i < inputs.size(); ++i)
            if (!crossCheckOne(plan, inputs[i], out.results[i]))
                ++out.crossCheckFailures;
    return out;
}

BatchResult
runManyMatVec(const SystolicEngine &engine, const Dense<Scalar> &a,
              Index w, const std::vector<EngineInputs> &inputs,
              const BatchOptions &opts)
{
    SAP_ASSERT(engine.kind() == ProblemKind::MatVec,
               engine.name(), " engine cannot serve a matvec batch");
    // Zero operand placeholders: runMany() binds only the matrix.
    EnginePlan plan = EnginePlan::matVec(a, Vec<Scalar>(a.cols()),
                                         Vec<Scalar>(a.rows()), w);
    return runMany(engine, plan, inputs, opts);
}

BatchResult
runManyTriSolve(const SystolicEngine &engine, const Dense<Scalar> &l,
                Index w, const std::vector<EngineInputs> &inputs,
                const BatchOptions &opts)
{
    SAP_ASSERT(engine.kind() == ProblemKind::TriSolve,
               engine.name(), " engine cannot serve a trisolve batch");
    // Zero rhs placeholder: runMany() binds only the matrix.
    EnginePlan plan =
        EnginePlan::triSolve(l, Vec<Scalar>(l.rows()), w);
    return runMany(engine, plan, inputs, opts);
}

BatchResult
runManyMatMul(const SystolicEngine &engine, const Dense<Scalar> &a,
              Index w, const std::vector<MatMulItem> &items,
              const BatchOptions &opts)
{
    SAP_ASSERT(engine.kind() == ProblemKind::MatMul,
               engine.name(), " engine cannot serve a matmul batch");
    BatchResult out;
    if (items.empty())
        return out;

    // Without a shared cache, amortize repeated B's within this
    // call through a local one.
    PlanCache local(items.size());
    PlanCache *cache = opts.cache ? opts.cache : &local;

    out.results.reserve(items.size());
    for (const MatMulItem &item : items) {
        SAP_ASSERT(item.bmat.rows() == a.cols(),
                   "B rows ", item.bmat.rows(), " != A cols ",
                   a.cols());
        EnginePlan plan = EnginePlan::matMul(a, item.bmat, item.e, w);
        PlanCache::Prepared cached = cache->prepare(engine, plan);
        if (cached.hit)
            ++out.cacheHits;
        else
            ++out.planBuilds;
        EngineInputs in = EngineInputs::matMul(item.e);
        in.mode = opts.mode;
        out.results.push_back(engine.runPrepared(*cached.plan, in));
        if (opts.crossCheck &&
            !crossCheckOne(plan, in, out.results.back()))
            ++out.crossCheckFailures;
    }
    return out;
}

} // namespace sap
