#include "serve/server_stats.hh"

#include <algorithm>
#include <cmath>

namespace sap {

namespace {

/** Reservoir cap per group; halved (every other sample) when hit. */
constexpr std::size_t kReservoirCap = 8192;

/** Percentile (q in [0,1]) of an unsorted copy of @p samples. */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = q * static_cast<double>(samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

} // namespace

std::string
ShapeKey::label() const
{
    std::string s = engine + " " + std::to_string(rows) + "x" +
                    std::to_string(cols);
    if (kind == ProblemKind::MatMul)
        s += "x" + std::to_string(outCols);
    s += " w=" + std::to_string(w);
    s += " ";
    s += execModeName(mode);
    return s;
}

StatsRecorder::MapKey
StatsRecorder::mapKey(const ShapeKey &key)
{
    return {key.engine, static_cast<int>(key.kind),
            static_cast<int>(key.mode), key.rows, key.cols,
            key.outCols, key.w};
}

void
StatsRecorder::record(const ShapeKey &key, bool cacheHit,
                      Cycle simCycles, double latencyMicros)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Series &s = groups_[mapKey(key)];
    if (s.requests == 0)
        s.key = key;
    ++s.requests;
    if (cacheHit)
        ++s.cacheHits;
    s.simCycles += simCycles;
    s.latencySum += latencyMicros;
    ++s.latencyCount;
    s.latencyMax = std::max(s.latencyMax, latencyMicros);
    if (s.reservoir.size() >= kReservoirCap) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < s.reservoir.size(); i += 2)
            s.reservoir[keep++] = s.reservoir[i];
        s.reservoir.resize(keep);
    }
    s.reservoir.push_back(latencyMicros);
}

void
StatsRecorder::recordFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++failures_;
}

void
StatsRecorder::recordCrossCheckFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++cross_check_failures_;
}

ServerStats
StatsRecorder::snapshot(const PlanCacheStats *cache_stats,
                        bool include_samples) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats out;
    out.failures = failures_;
    out.crossCheckFailures = cross_check_failures_;
    if (cache_stats)
        out.planCache = *cache_stats;

    std::vector<double> all;
    for (const auto &entry : groups_) {
        const Series &s = entry.second;
        GroupStats g;
        g.key = s.key;
        g.requests = s.requests;
        g.cacheHits = s.cacheHits;
        g.simCycles = s.simCycles;
        g.latency.samples = s.latencyCount;
        g.latency.mean = s.latencyCount == 0
            ? 0.0
            : s.latencySum / static_cast<double>(s.latencyCount);
        g.latency.p50 = percentile(s.reservoir, 0.5);
        g.latency.p99 = percentile(s.reservoir, 0.99);
        g.latency.max = s.latencyMax;
        if (include_samples)
            g.latencySamples = s.reservoir;
        out.groups.push_back(std::move(g));

        out.requests += s.requests;
        out.latency.samples += s.latencyCount;
        out.latency.mean += s.latencySum;
        out.latency.max = std::max(out.latency.max, s.latencyMax);
        all.insert(all.end(), s.reservoir.begin(), s.reservoir.end());
    }
    out.latency.mean = out.latency.samples == 0
        ? 0.0
        : out.latency.mean / static_cast<double>(out.latency.samples);
    out.latency.p50 = percentile(all, 0.5);
    out.latency.p99 = percentile(std::move(all), 0.99);
    return out;
}

ServerStats
mergeServerStats(const std::vector<ServerStats> &parts)
{
    // Re-accumulate per-key, mirroring the recorder's map so the
    // merged groups come out in the same stable order.
    struct Merged
    {
        GroupStats group;
        double latencySum = 0;
        std::vector<double> samples;
    };
    using MapKey =
        std::tuple<std::string, int, int, Index, Index, Index, Index>;
    std::map<MapKey, Merged> merged;

    ServerStats out;
    for (const ServerStats &part : parts) {
        out.requests += part.requests;
        out.failures += part.failures;
        out.crossCheckFailures += part.crossCheckFailures;
        out.planCache.hits += part.planCache.hits;
        out.planCache.misses += part.planCache.misses;
        out.planCache.evictions += part.planCache.evictions;
        out.planCache.collisions += part.planCache.collisions;
        for (const GroupStats &g : part.groups) {
            MapKey key{g.key.engine, static_cast<int>(g.key.kind),
                       static_cast<int>(g.key.mode), g.key.rows,
                       g.key.cols, g.key.outCols, g.key.w};
            Merged &m = merged[key];
            if (m.group.requests == 0)
                m.group.key = g.key;
            m.group.requests += g.requests;
            m.group.cacheHits += g.cacheHits;
            m.group.simCycles += g.simCycles;
            m.group.latency.samples += g.latency.samples;
            // A group that observed latencies but exported no
            // reservoir cannot contribute to merged percentiles —
            // flag the whole merge as approximate rather than let
            // partial percentiles pass for exact.
            if (g.latency.samples > 0 && g.latencySamples.empty())
                out.approximatePercentiles = true;
            m.latencySum +=
                g.latency.mean * static_cast<double>(g.latency.samples);
            m.group.latency.max =
                std::max(m.group.latency.max, g.latency.max);
            m.samples.insert(m.samples.end(), g.latencySamples.begin(),
                             g.latencySamples.end());
        }
    }

    std::vector<double> all;
    for (auto &entry : merged) {
        Merged &m = entry.second;
        m.group.latency.mean =
            m.group.latency.samples == 0
                ? 0.0
                : m.latencySum /
                      static_cast<double>(m.group.latency.samples);
        m.group.latency.p50 = percentile(m.samples, 0.5);
        m.group.latency.p99 = percentile(m.samples, 0.99);
        all.insert(all.end(), m.samples.begin(), m.samples.end());

        out.latency.samples += m.group.latency.samples;
        out.latency.mean += m.latencySum;
        out.latency.max = std::max(out.latency.max, m.group.latency.max);
        out.groups.push_back(std::move(m.group));
    }
    out.latency.mean = out.latency.samples == 0
        ? 0.0
        : out.latency.mean / static_cast<double>(out.latency.samples);
    out.latency.p50 = percentile(all, 0.5);
    out.latency.p99 = percentile(std::move(all), 0.99);
    return out;
}

} // namespace sap
