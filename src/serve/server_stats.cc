#include "serve/server_stats.hh"

#include <algorithm>
#include <cmath>

namespace sap {

namespace {

/** Reservoir cap per group; halved (every other sample) when hit. */
constexpr std::size_t kReservoirCap = 8192;

/** Percentile (q in [0,1]) of an unsorted copy of @p samples. */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = q * static_cast<double>(samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

} // namespace

std::string
ShapeKey::label() const
{
    std::string s = engine + " " + std::to_string(rows) + "x" +
                    std::to_string(cols);
    if (kind == ProblemKind::MatMul)
        s += "x" + std::to_string(outCols);
    s += " w=" + std::to_string(w);
    return s;
}

StatsRecorder::MapKey
StatsRecorder::mapKey(const ShapeKey &key)
{
    return {key.engine, static_cast<int>(key.kind), key.rows,
            key.cols, key.outCols, key.w};
}

void
StatsRecorder::record(const ShapeKey &key, bool cacheHit,
                      Cycle simCycles, double latencyMicros)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Series &s = groups_[mapKey(key)];
    if (s.requests == 0)
        s.key = key;
    ++s.requests;
    if (cacheHit)
        ++s.cacheHits;
    s.simCycles += simCycles;
    s.latencySum += latencyMicros;
    ++s.latencyCount;
    s.latencyMax = std::max(s.latencyMax, latencyMicros);
    if (s.reservoir.size() >= kReservoirCap) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < s.reservoir.size(); i += 2)
            s.reservoir[keep++] = s.reservoir[i];
        s.reservoir.resize(keep);
    }
    s.reservoir.push_back(latencyMicros);
}

void
StatsRecorder::recordFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++failures_;
}

void
StatsRecorder::recordCrossCheckFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++cross_check_failures_;
}

ServerStats
StatsRecorder::snapshot(const PlanCacheStats *cache_stats) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats out;
    out.failures = failures_;
    out.crossCheckFailures = cross_check_failures_;
    if (cache_stats)
        out.planCache = *cache_stats;

    std::vector<double> all;
    for (const auto &entry : groups_) {
        const Series &s = entry.second;
        GroupStats g;
        g.key = s.key;
        g.requests = s.requests;
        g.cacheHits = s.cacheHits;
        g.simCycles = s.simCycles;
        g.latency.samples = s.latencyCount;
        g.latency.mean = s.latencyCount == 0
            ? 0.0
            : s.latencySum / static_cast<double>(s.latencyCount);
        g.latency.p50 = percentile(s.reservoir, 0.5);
        g.latency.p99 = percentile(s.reservoir, 0.99);
        g.latency.max = s.latencyMax;
        out.groups.push_back(std::move(g));

        out.requests += s.requests;
        out.latency.samples += s.latencyCount;
        out.latency.mean += s.latencySum;
        out.latency.max = std::max(out.latency.max, s.latencyMax);
        all.insert(all.end(), s.reservoir.begin(), s.reservoir.end());
    }
    out.latency.mean = out.latency.samples == 0
        ? 0.0
        : out.latency.mean / static_cast<double>(out.latency.samples);
    out.latency.p50 = percentile(all, 0.5);
    out.latency.p99 = percentile(std::move(all), 0.99);
    return out;
}

} // namespace sap
