#include "serve/thread_pool.hh"

#include "base/logging.hh"

namespace sap {

ThreadPool::ThreadPool(std::size_t threads)
{
    SAP_ASSERT(threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SAP_ASSERT(!stopping_, "post() on a stopping thread pool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

std::size_t
ThreadPool::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace sap
