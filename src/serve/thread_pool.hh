/**
 * @file
 * Minimal fixed-size worker pool for the serving layer.
 *
 * Engines are stateless and documented thread-safe, so fanning
 * requests out over a pool of plain workers is all the concurrency
 * machinery serving needs. Tasks are drained on destruction: every
 * task posted before ~ThreadPool() runs to completion, so futures
 * handed out by the server always become ready.
 */

#ifndef SAP_SERVE_THREAD_POOL_HH
#define SAP_SERVE_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sap {

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /** @param threads Number of workers (>= 1). */
    explicit ThreadPool(std::size_t threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task for execution on some worker.
     *
     * @pre The pool is not being destroyed (asserted).
     */
    void post(std::function<void()> task);

    /** Number of workers. */
    std::size_t threadCount() const { return workers_.size(); }

    /** Tasks currently queued (excluding ones being executed). */
    std::size_t pending() const;

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace sap

#endif // SAP_SERVE_THREAD_POOL_HH
