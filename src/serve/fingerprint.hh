/**
 * @file
 * Matrix identity fingerprints for the serving layer.
 *
 * The plan cache (serve/plan_cache.hh) keys transformed plans by the
 * *content* of the operand matrices, not by object identity, so two
 * clients submitting the same A hit one cached plan. Digests are
 * cheap 64-bit FNV-1a hashes over the shape and raw element bytes;
 * they are an index, not a proof — the cache always confirms a
 * digest match with an exact element-wise comparison, so a hash
 * collision costs a probe, never a wrong plan.
 */

#ifndef SAP_SERVE_FINGERPRINT_HH
#define SAP_SERVE_FINGERPRINT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** 64-bit content digest. */
using Digest = std::uint64_t;

/** FNV-1a over the shape and raw element bytes of @p a. */
Digest fingerprintDense(const Dense<Scalar> &a);

/** FNV-1a over the length and raw element bytes of @p v. */
Digest fingerprintVec(const Vec<Scalar> &v);

/** FNV-1a over the bytes of @p s. */
Digest fingerprintString(const std::string &s);

/** Order-dependent combination of two digests. */
Digest combineDigests(Digest seed, Digest next);

/**
 * Injectable dense-matrix hash, so tests can force collisions and
 * verify that the cache disambiguates distinct matrices.
 */
using DenseHashFn = std::function<Digest(const Dense<Scalar> &)>;

} // namespace sap

#endif // SAP_SERVE_FINGERPRINT_HH
