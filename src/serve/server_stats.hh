/**
 * @file
 * Request statistics for the serving layer: per-(engine, shape)
 * counters plus latency percentiles, collected by workers and read
 * as a consistent snapshot.
 */

#ifndef SAP_SERVE_SERVER_STATS_HH
#define SAP_SERVE_SERVER_STATS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "base/types.hh"
#include "engine/engine.hh"
#include "serve/plan_cache.hh"

namespace sap {

/** Identity of one (engine, problem shape, execution mode)
 *  statistics group. */
struct ShapeKey
{
    std::string engine;
    ProblemKind kind = ProblemKind::MatVec;
    Index rows = 0;    ///< A rows
    Index cols = 0;    ///< A cols
    Index outCols = 0; ///< MatMul: B cols (0 for MatVec)
    Index w = 0;       ///< array size
    ExecMode mode = ExecMode::Simulate; ///< execution path served

    /** "engine n×m[×p] w=.. mode": stable human-readable label. */
    std::string label() const;
};

/** Latency distribution summary in microseconds. */
struct LatencySummary
{
    std::uint64_t samples = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    double max = 0;
};

/** Snapshot of one statistics group. */
struct GroupStats
{
    ShapeKey key;
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;
    Cycle simCycles = 0; ///< total simulated cycles served
    LatencySummary latency;
    /**
     * The group's latency reservoir (microseconds, bounded — see
     * StatsRecorder). Empty unless the snapshot was taken with
     * include_samples, which aggregators (Cluster::statsSnapshot)
     * request so merged percentiles come from merged samples rather
     * than from averaging per-shard percentiles.
     */
    std::vector<double> latencySamples;
};

/** Whole-server snapshot returned by Server::stats(). */
struct ServerStats
{
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t crossCheckFailures = 0;
    PlanCacheStats planCache;
    LatencySummary latency;
    /** Per-(engine, shape, mode) groups, in a stable order: by
     *  engine name, then kind, then execution mode, then numeric
     *  shape (rows, cols, outCols, w). */
    std::vector<GroupStats> groups;
    /**
     * Set by mergeServerStats() when any input group carried latency
     * observations but no latencySamples reservoir: the merged
     * percentiles then cover only the sampled inputs (zero when none
     * had samples) instead of silently passing for exact. Exact
     * cluster-wide percentiles come from the obs/ histogram metrics,
     * whose bucket merge needs no reservoirs.
     */
    bool approximatePercentiles = false;
};

/**
 * Thread-safe accumulator behind ServerStats.
 *
 * Latency samples are kept per group in a bounded reservoir: once a
 * group exceeds its cap the recorder halves the series by dropping
 * every other sample, which bounds memory while preserving the
 * distribution shape for percentile estimates.
 */
class StatsRecorder
{
  public:
    /** Record one successfully served request. */
    void record(const ShapeKey &key, bool cacheHit, Cycle simCycles,
                double latencyMicros);

    /** Record one failed request (unknown engine, bad shapes...). */
    void recordFailure();

    /** Record one golden-model cross-check mismatch. */
    void recordCrossCheckFailure();

    /**
     * Consistent snapshot; @p cache_stats (optional) is copied into
     * ServerStats::planCache. @p include_samples additionally copies
     * each group's latency reservoir into
     * GroupStats::latencySamples (for exact cross-shard merging).
     */
    ServerStats snapshot(const PlanCacheStats *cache_stats = nullptr,
                         bool include_samples = false) const;

  private:
    struct Series
    {
        ShapeKey key;
        std::uint64_t requests = 0;
        std::uint64_t cacheHits = 0;
        Cycle simCycles = 0;
        double latencySum = 0;
        std::uint64_t latencyCount = 0;
        double latencyMax = 0;
        std::vector<double> reservoir;
    };
    using MapKey =
        std::tuple<std::string, int, int, Index, Index, Index, Index>;

    static MapKey mapKey(const ShapeKey &key);

    mutable std::mutex mutex_;
    std::map<MapKey, Series> groups_;
    std::uint64_t failures_ = 0;
    std::uint64_t cross_check_failures_ = 0;
};

/**
 * Merge per-shard snapshots into one whole-installation view:
 * counters are summed, per-(engine, shape) groups with the same key
 * are combined, and latency percentiles are recomputed from the
 * concatenated latencySamples reservoirs — so take the inputs with
 * include_samples for exact merged p50/p99. Summary-only inputs
 * degrade to sample-weighted means and max-of-max; that degradation
 * is *flagged* on the result (ServerStats::approximatePercentiles)
 * instead of silently reporting partial percentiles as exact. Groups
 * come back in the recorder's stable order and with their merged
 * samples dropped (the merge is a reporting artifact, not a
 * recorder).
 */
ServerStats mergeServerStats(const std::vector<ServerStats> &parts);

} // namespace sap

#endif // SAP_SERVE_SERVER_STATS_HH
