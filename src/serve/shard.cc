#include "serve/shard.hh"

#include <chrono>
#include <unordered_map>

#include "analysis/formulas.hh"
#include "analysis/metrics.hh"
#include "base/error.hh"
#include "base/logging.hh"
#include "engine/registry.hh"
#include "mat/ops.hh"

namespace sap {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedMicros(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     t0)
        .count();
}

/**
 * Request validation that *reports* instead of throwing: the
 * engine-kind match plus exactly EnginePlan::check() — the serve
 * path reuses the library's own validation seam, so the two can
 * never drift apart again.
 */
std::string
validateRequest(const SystolicEngine &engine, const EnginePlan &plan)
{
    if (plan.kind != engine.kind())
        return "engine '" + engine.name() + "' serves " +
               problemKindName(engine.kind()) + " but the request is " +
               problemKindName(plan.kind);
    return plan.check();
}

ShapeKey
shapeKeyOf(const std::string &engine_name, const EnginePlan &plan)
{
    ShapeKey key;
    key.engine = engine_name;
    key.kind = plan.kind;
    key.rows = plan.a.rows();
    key.cols = plan.a.cols();
    key.outCols =
        plan.kind == ProblemKind::MatMul ? plan.bmat.cols() : 0;
    key.w = plan.w;
    key.mode = plan.mode;
    return key;
}

/**
 * Exact comparison against the host oracle. Trisolve requests
 * divide, so cross-checked workloads should keep the intermediates
 * representable (e.g. unit-diagonal integer systems); the tolerance
 * hook for real-valued workloads is the ROADMAP float item.
 */
bool
matchesOracle(const EnginePlan &plan, const EngineRunResult &r)
{
    if (plan.kind == ProblemKind::MatMul)
        return r.c == matMulAdd(plan.a, plan.bmat, plan.e);
    Vec<Scalar> gold = plan.kind == ProblemKind::MatVec
        ? matVec(plan.a, plan.x, plan.b)
        : forwardSolve(plan.a, plan.b);
    return r.y.size() == gold.size() && maxAbsDiff(r.y, gold) == 0.0;
}

/**
 * True when two requests bind identical plans: same engine, kind,
 * array size, and element-wise equal bound matrices. This is the
 * exact-compare backstop behind digest-keyed batch grouping — two
 * requests whose digests collide must not share a prepared plan.
 */
bool
sameBinding(const ServeRequest &a, const ServeRequest &b)
{
    return a.engine == b.engine && a.plan.kind == b.plan.kind &&
           a.plan.w == b.plan.w && a.plan.a == b.plan.a &&
           (a.plan.kind != ProblemKind::MatMul ||
            a.plan.bmat == b.plan.bmat);
}

/**
 * The paper's closed-form cycle count for @p plan on @p engine_name
 * (§4–§5 via analysis/formulas.hh), or -1 when no formula covers the
 * engine (grouped/spiral/no-feedback have extra scheduling slack the
 * closed forms do not model). Feeds the measured-vs-analytic drift
 * gauge: continuous serving-time evidence that the simulators still
 * track the formulas.
 */
Cycle
formulaCycles(const std::string &engine_name, const EnginePlan &plan)
{
    const Index w = plan.w;
    if (w <= 0)
        return -1;
    auto bar = [w](Index n) { return (n + w - 1) / w; };
    if (engine_name == "linear")
        return formulas::tMatVec(w, bar(plan.a.rows()),
                                 bar(plan.a.cols()));
    if (engine_name == "overlapped")
        return formulas::tMatVecOverlap(w, bar(plan.a.rows()),
                                        bar(plan.a.cols()));
    if (engine_name == "hex")
        return formulas::tMatMul(w, bar(plan.a.cols()),
                                 bar(plan.a.rows()),
                                 bar(plan.bmat.cols()));
    if (engine_name == "mesh")
        return formulas::tMesh(w, bar(plan.a.cols()),
                               bar(plan.a.rows()),
                               bar(plan.bmat.cols()));
    if (engine_name == "tri")
        return formulas::tTriSolve(w, bar(plan.a.rows()));
    return -1;
}

} // namespace

Shard::Shard(const Options &opts)
    : opts_(opts), cache_(opts.planCacheCapacity), pool_(opts.threads)
{
    if (opts_.metrics) {
        metrics_ = std::make_unique<MetricsRegistry>();
        inst_.requests = &metrics_->counter("serve_requests_total");
        inst_.failures = &metrics_->counter("serve_failures_total");
        inst_.crossCheckFailures =
            &metrics_->counter("serve_cross_check_failures_total");
        inst_.modeCounts[0] =
            &metrics_->counter("serve_mode_simulate_total");
        inst_.modeCounts[1] =
            &metrics_->counter("serve_mode_fast_total");
        inst_.modeCounts[2] =
            &metrics_->counter("serve_mode_validate_total");
        inst_.queueDepth =
            &metrics_->gauge("serve_queue_depth", GaugeAgg::Sum);
        inst_.cyclesDrift = &metrics_->gauge(
            "serve_cycles_formula_drift", GaugeAgg::Max);
        inst_.queueWait =
            &metrics_->histogram("serve_queue_wait_micros");
        inst_.latency = &metrics_->histogram("serve_latency_micros");
    }
}

void
Shard::noteEnqueued(std::size_t n)
{
    if (inst_.queueDepth)
        inst_.queueDepth->add(static_cast<double>(n));
}

void
Shard::noteDequeued(Clock::time_point enqueuedAt,
                    const std::shared_ptr<RequestTrace> &trace,
                    std::size_t n)
{
    traceStamp(trace, TraceStage::Dequeue);
    if (inst_.queueDepth)
        inst_.queueDepth->add(-static_cast<double>(n));
    if (inst_.queueWait)
        inst_.queueWait->record(elapsedMicros(enqueuedAt));
}

std::future<ServeResponse>
Shard::submit(ServeRequest req)
{
    // No digest hint: hash on the worker (inside handle), keeping
    // the submitting client thread free of O(rows·cols) work.
    const Clock::time_point tq = Clock::now();
    noteEnqueued();
    auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
        [this, req = std::move(req), tq]() {
            noteDequeued(tq, req.trace);
            return handle(req);
        });
    std::future<ServeResponse> fut = task->get_future();
    pool_.post([task] { (*task)(); });
    return fut;
}

std::future<ServeResponse>
Shard::submit(ServeRequest req, Digest digest)
{
    const Clock::time_point tq = Clock::now();
    noteEnqueued();
    auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
        [this, req = std::move(req), digest, tq]() {
            noteDequeued(tq, req.trace);
            return handle(req, digest);
        });
    std::future<ServeResponse> fut = task->get_future();
    pool_.post([task] { (*task)(); });
    return fut;
}

void
Shard::submitAsync(ServeRequest req, CompletionFn done)
{
    SAP_ASSERT(done, "submitAsync() needs a completion callback");
    // One shared holder: std::function requires copyable targets,
    // and the request is worth not copying per post. As with
    // submit(), hashing happens on the worker.
    const Clock::time_point tq = Clock::now();
    noteEnqueued();
    auto job = std::make_shared<std::pair<ServeRequest, CompletionFn>>(
        std::move(req), std::move(done));
    pool_.post([this, job, tq] {
        noteDequeued(tq, job->first.trace);
        job->second(handle(job->first));
    });
}

void
Shard::submitAsync(ServeRequest req, CompletionFn done, Digest digest)
{
    SAP_ASSERT(done, "submitAsync() needs a completion callback");
    const Clock::time_point tq = Clock::now();
    noteEnqueued();
    auto job = std::make_shared<std::pair<ServeRequest, CompletionFn>>(
        std::move(req), std::move(done));
    pool_.post([this, job, digest, tq] {
        noteDequeued(tq, job->first.trace);
        job->second(handle(job->first, digest));
    });
}

std::vector<std::future<ServeResponse>>
Shard::submitBatch(std::vector<ServeRequest> reqs)
{
    std::vector<std::pair<ServeRequest, Digest>> keyed;
    keyed.reserve(reqs.size());
    for (ServeRequest &req : reqs) {
        Digest digest = planDigest(req.engine, req.plan);
        keyed.emplace_back(std::move(req), digest);
    }
    return submitBatch(std::move(keyed));
}

std::vector<std::future<ServeResponse>>
Shard::submitBatch(std::vector<std::pair<ServeRequest, Digest>> reqs)
{
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(reqs.size());

    // Partition by plan digest; serveGroup() re-checks exact binding
    // equality, so a digest collision degrades to individual service
    // rather than a shared (wrong) plan.
    std::unordered_map<Digest, std::shared_ptr<std::vector<Job>>>
        groups;
    std::vector<std::pair<Digest, std::shared_ptr<std::vector<Job>>>>
        post_order;
    for (auto &keyed : reqs) {
        Job job;
        job.req = std::move(keyed.first);
        futures.push_back(job.promise.get_future());
        std::shared_ptr<std::vector<Job>> &group =
            groups[keyed.second];
        if (!group) {
            group = std::make_shared<std::vector<Job>>();
            post_order.emplace_back(keyed.second, group);
        }
        group->push_back(std::move(job));
    }
    const Clock::time_point tq = Clock::now();
    noteEnqueued(reqs.size());
    for (const auto &entry : post_order) {
        const Digest digest = entry.first;
        const std::shared_ptr<std::vector<Job>> group = entry.second;
        pool_.post([this, digest, group, tq] {
            // The whole group leaves the queue when its worker picks
            // it up; per-job Dequeue stamps happen in serveGroup().
            noteDequeued(tq, nullptr, group->size());
            serveGroup(digest, *group);
        });
    }
    return futures;
}

const SystolicEngine *
Shard::engineFor(const std::string &name)
{
    std::lock_guard<std::mutex> lock(engines_mutex_);
    auto it = engines_.find(name);
    if (it != engines_.end())
        return it->second.get();
    std::unique_ptr<SystolicEngine> engine = makeEngine(name);
    if (!engine)
        return nullptr;
    return engines_.emplace(name, std::move(engine))
        .first->second.get();
}

ServeResponse
Shard::handle(const ServeRequest &req)
{
    return handle(req, planDigest(req.engine, req.plan));
}

ServeResponse
Shard::handle(const ServeRequest &req, Digest digest)
{
    const Clock::time_point t0 = Clock::now();
    const SystolicEngine *engine = engineFor(req.engine);
    if (!engine) {
        ServeResponse resp =
            fail("unknown engine '" + req.engine + "'", t0);
        resp.trace = req.trace;
        return resp;
    }
    std::string error = validateRequest(*engine, req.plan);
    if (!error.empty()) {
        ServeResponse resp = fail(std::move(error), t0);
        resp.trace = req.trace;
        return resp;
    }

    // Preparation and execution can fail recoverably (a singular
    // triangular system, a validate-mode divergence): an error
    // response, not a dead shard.
    try {
        PlanCache::Prepared cached =
            cache_.prepare(*engine, req.plan, digest);
        if (req.trace) {
            req.trace->stamp(TraceStage::Prepare);
            req.trace->cacheHit = cached.hit;
        }
        ServeResponse resp =
            finish(req, *engine, *cached.plan, cached.hit, t0);
        resp.trace = req.trace;
        return resp;
    } catch (const EngineError &e) {
        ServeResponse resp = fail(e.what(), t0);
        resp.trace = req.trace;
        return resp;
    }
}

ServeResponse
Shard::fail(std::string error, Clock::time_point t0)
{
    ServeResponse resp;
    resp.error = std::move(error);
    stats_.recordFailure();
    if (inst_.failures)
        inst_.failures->add();
    resp.latencyMicros = elapsedMicros(t0);
    return resp;
}

ServeResponse
Shard::finish(const ServeRequest &req, const SystolicEngine &engine,
              const PreparedPlan &prepared, bool cacheHit,
              Clock::time_point t0)
{
    ServeResponse resp;
    resp.cacheHit = cacheHit;
    resp.result =
        engine.runPrepared(prepared, EngineInputs::of(req.plan));
    resp.ok = true;
    traceStamp(req.trace, TraceStage::Execute);

    if (req.crossCheck || opts_.crossCheckAll) {
        resp.crossCheckOk = matchesOracle(req.plan, resp.result);
        if (!resp.crossCheckOk) {
            stats_.recordCrossCheckFailure();
            if (inst_.crossCheckFailures)
                inst_.crossCheckFailures->add();
        }
    }

    resp.latencyMicros = elapsedMicros(t0);
    const ShapeKey shape = shapeKeyOf(req.engine, req.plan);
    stats_.record(shape, cacheHit, resp.result.stats.cycles,
                  resp.latencyMicros);
    if (metrics_) {
        inst_.requests->add();
        inst_.latency->record(resp.latencyMicros);
        const auto mode = static_cast<std::size_t>(req.plan.mode);
        if (mode < 3)
            inst_.modeCounts[mode]->add();
        // Measured-vs-analytic drift: how far the served cycle count
        // strayed from the paper's closed form for this engine/shape
        // (Max-aggregated — the gauge reports the worst case seen).
        const Cycle predicted = formulaCycles(req.engine, req.plan);
        if (predicted > 0)
            inst_.cyclesDrift->setMax(relDiff(
                static_cast<double>(resp.result.stats.cycles),
                static_cast<double>(predicted)));
    }
    if (req.trace) {
        req.trace->label = shape.label();
        req.trace->kind = problemKindName(req.plan.kind);
        req.trace->cacheHit = cacheHit;
    }
    return resp;
}

void
Shard::serveGroup(Digest digest, std::vector<Job> &jobs)
{
    // The first valid request is the leader: it pays the (possibly
    // cached) prepare, and every follower with identical bindings
    // rides the same plan as a reported cache hit. Malformed
    // requests resolve to error responses without blocking the
    // group; digest collisions fall back to individual service.
    const Job *leader = nullptr;
    const SystolicEngine *leader_engine = nullptr;
    std::shared_ptr<const PreparedPlan> shared_plan;

    for (Job &job : jobs) {
        const ServeRequest &req = job.req;
        const Clock::time_point t0 = Clock::now();
        traceStamp(req.trace, TraceStage::Dequeue);

        if (leader && sameBinding(leader->req, req)) {
            // Followers still need operand validation: sameBinding()
            // covers only the bound matrices, and a malformed x/b/e
            // must become an error response, not an engine assert.
            std::string error =
                validateRequest(*leader_engine, req.plan);
            if (!error.empty()) {
                job.promise.set_value(fail(std::move(error), t0));
                continue;
            }
            try {
                job.promise.set_value(finish(req, *leader_engine,
                                             *shared_plan,
                                             /*cacheHit=*/true, t0));
            } catch (const EngineError &e) {
                job.promise.set_value(fail(e.what(), t0));
            }
            continue;
        }
        if (leader) {
            // Digest collision: a different binding in this group.
            job.promise.set_value(handle(req));
            continue;
        }

        const SystolicEngine *engine = engineFor(req.engine);
        if (!engine) {
            job.promise.set_value(
                fail("unknown engine '" + req.engine + "'", t0));
            continue;
        }
        std::string error = validateRequest(*engine, req.plan);
        if (!error.empty()) {
            job.promise.set_value(fail(std::move(error), t0));
            continue;
        }
        try {
            PlanCache::Prepared cached =
                cache_.prepare(*engine, req.plan, digest);
            leader = &job;
            leader_engine = engine;
            shared_plan = cached.plan;
            job.promise.set_value(
                finish(req, *engine, *shared_plan, cached.hit, t0));
        } catch (const EngineError &e) {
            job.promise.set_value(fail(e.what(), t0));
        }
    }
}

ServerStats
Shard::stats() const
{
    return stats(/*include_samples=*/false);
}

ServerStats
Shard::stats(bool include_samples) const
{
    PlanCacheStats cache_stats = cache_.stats();
    return stats_.snapshot(&cache_stats, include_samples);
}

MetricsSnapshot
Shard::metricsSnapshot() const
{
    if (!metrics_)
        return {};
    MetricsSnapshot snap = metrics_->snapshot();
    // The plan cache keeps its own counters; inject them here rather
    // than double-count on the request path.
    const PlanCacheStats cache_stats = cache_.stats();
    snap.counters["plan_cache_hits_total"] = cache_stats.hits;
    snap.counters["plan_cache_misses_total"] = cache_stats.misses;
    snap.counters["plan_cache_evictions_total"] =
        cache_stats.evictions;
    snap.counters["plan_cache_collisions_total"] =
        cache_stats.collisions;
    return snap;
}

double
Shard::queueDepth() const
{
    return inst_.queueDepth ? inst_.queueDepth->value() : 0;
}

} // namespace sap
