/**
 * @file
 * The serving front end: submit(request) -> future<response> over a
 * worker pool, with plan caching and per-(engine, shape) statistics.
 *
 * This turns the stateless engine layer into a high-throughput
 * request server. Workers resolve the engine by registry name, fetch
 * the DBT-transformed plan from the content-addressed PlanCache
 * (building it on first sight of a matrix), stream the request's
 * operands through it, and optionally cross-check the result against
 * the host oracle. Malformed requests (unknown engine, wrong kind,
 * inconsistent shapes) resolve to error responses instead of
 * asserting, so one bad client cannot take the server down.
 */

#ifndef SAP_SERVE_SERVER_HH
#define SAP_SERVE_SERVER_HH

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/engine.hh"
#include "serve/plan_cache.hh"
#include "serve/server_stats.hh"
#include "serve/thread_pool.hh"

namespace sap {

/** One serving request: which engine, which problem. */
struct ServeRequest
{
    /** Engine registry name ("linear", "hex", ...). */
    std::string engine;
    /** The full problem: bound matrices plus streamed operands. */
    EnginePlan plan;
    /** Cross-check this request against the host oracle. */
    bool crossCheck = false;
};

/** What a request resolves to. */
struct ServeResponse
{
    /** False when the request was malformed; see error. */
    bool ok = false;
    /** Human-readable reason when !ok. */
    std::string error;
    /** Engine results (valid when ok). */
    EngineRunResult result;
    /** The plan came from the cache (dense→band rebuild skipped). */
    bool cacheHit = false;
    /** False when a requested cross-check mismatched. */
    bool crossCheckOk = true;
    /** Wall-clock service time of this request in microseconds. */
    double latencyMicros = 0;
};

/**
 * Multi-threaded serving layer over the engine registry.
 *
 * Thread-safety: submit() and stats() may be called from any number
 * of client threads. Destruction drains queued requests first, so
 * every returned future becomes ready.
 */
class Server
{
  public:
    struct Options
    {
        /** Worker threads. */
        std::size_t threads = 4;
        /** Plans kept by the LRU plan cache. */
        std::size_t planCacheCapacity = PlanCache::kDefaultCapacity;
        /** Cross-check every request (overrides per-request flag). */
        bool crossCheckAll = false;
    };

    /** Server with default options. */
    Server();

    explicit Server(const Options &opts);

    /** Drains in-flight and queued requests, then stops workers. */
    ~Server() = default;

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Enqueue @p req; the future resolves when a worker served it. */
    std::future<ServeResponse> submit(ServeRequest req);

    /** Consistent statistics snapshot (includes plan-cache stats). */
    ServerStats stats() const;

    /** Worker count. */
    std::size_t threadCount() const { return pool_.threadCount(); }

    /** The shared plan cache (for tests and monitoring). */
    const PlanCache &planCache() const { return cache_; }

  private:
    ServeResponse handle(const ServeRequest &req);
    /** Lazily instantiated shared engine instances, by name. */
    const SystolicEngine *engineFor(const std::string &name);

    Options opts_;
    PlanCache cache_;
    StatsRecorder stats_;

    std::mutex engines_mutex_;
    std::map<std::string, std::unique_ptr<SystolicEngine>> engines_;

    /** Declared last: destroyed first, so workers drain while every
     *  other member is still alive. */
    ThreadPool pool_;
};

} // namespace sap

#endif // SAP_SERVE_SERVER_HH
