/**
 * @file
 * The single-pool serving front end: submit(request) ->
 * future<response> over a worker pool, with plan caching and
 * per-(engine, shape) statistics.
 *
 * Since the cluster layer landed, all serving mechanics live in
 * serve/shard.hh — a Server is exactly one Shard behind a stable
 * facade (and ServeRequest/ServeResponse are defined there). Use
 * cluster/cluster.hh when you want several shards behind consistent-
 * hash routing, or the async completion-queue surfaces; use Server
 * when one pool and future-based IO are enough.
 */

#ifndef SAP_SERVE_SERVER_HH
#define SAP_SERVE_SERVER_HH

#include <future>

#include "serve/shard.hh"

namespace sap {

/**
 * Multi-threaded serving layer over the engine registry: requests
 * name an engine and carry a full EnginePlan (any problem kind);
 * workers validate, fetch or build the prepared plan through the
 * LRU cache, execute, and optionally cross-check against the host
 * oracle.
 *
 * Thread-safety: all submission surfaces and stats() may be called
 * from any number of client threads. submitAsync() callbacks run on
 * the worker thread that served the request.
 *
 * Ownership: the server owns its worker threads, plan cache, and
 * engine instances; destruction drains in-flight and queued
 * requests first, so every returned future becomes ready and every
 * accepted callback fires. The reference returned by planCache()
 * stays valid for the server's lifetime.
 */
class Server
{
  public:
    struct Options
    {
        /** Worker threads. */
        std::size_t threads = 4;
        /** Plans kept by the LRU plan cache. */
        std::size_t planCacheCapacity = PlanCache::kDefaultCapacity;
        /** Cross-check every request (overrides per-request flag). */
        bool crossCheckAll = false;
    };

    /** Server with default options. */
    Server();

    explicit Server(const Options &opts);

    /** Drains in-flight and queued requests, then stops workers. */
    ~Server() = default;

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Enqueue @p req; the future resolves when a worker served it. */
    std::future<ServeResponse> submit(ServeRequest req);

    /** @copydoc Shard::submitAsync */
    void submitAsync(ServeRequest req, CompletionFn done);

    /** @copydoc Shard::submitBatch */
    std::vector<std::future<ServeResponse>>
    submitBatch(std::vector<ServeRequest> reqs);

    /** Consistent statistics snapshot (includes plan-cache stats). */
    ServerStats stats() const;

    /** Worker count. */
    std::size_t threadCount() const { return shard_.threadCount(); }

    /** The shared plan cache (for tests and monitoring). */
    const PlanCache &planCache() const { return shard_.planCache(); }

  private:
    static Shard::Options shardOptions(const Options &opts);

    Shard shard_;
};

} // namespace sap

#endif // SAP_SERVE_SERVER_HH
