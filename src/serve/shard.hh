/**
 * @file
 * One serving shard: a self-contained array installation with its
 * own worker pool, plan cache, and statistics.
 *
 * This is the unit the serving layer composes. The single-pool
 * Server (serve/server.hh) is exactly one shard behind a compatible
 * facade; the cluster front end (cluster/cluster.hh) owns N of them
 * and routes requests by consistent hashing on the matrix
 * fingerprint, so a given matrix's prepared plan lives on exactly
 * one shard and plan-cache lock contention stays bounded by a
 * shard's own thread count instead of the whole installation's.
 *
 * Three submission surfaces:
 *  - submit()       future-based, for clients that can block;
 *  - submitAsync()  completion-callback, for clients that cannot
 *                   (the callback runs on the worker thread);
 *  - submitBatch()  server-side grouping: requests against the same
 *                   bound matrices are served through one prepared
 *                   plan fetched once, the software analogue of
 *                   streaming a request group through the array
 *                   back-to-back.
 */

#ifndef SAP_SERVE_SHARD_HH
#define SAP_SERVE_SHARD_HH

#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "obs/metrics.hh"
#include "obs/trace_ring.hh"
#include "serve/plan_cache.hh"
#include "serve/server_stats.hh"
#include "serve/thread_pool.hh"

namespace sap {

/** One serving request: which engine, which problem. */
struct ServeRequest
{
    /** Engine registry name ("linear", "hex", ...). */
    std::string engine;
    /** The full problem: bound matrices plus streamed operands. */
    EnginePlan plan;
    /** Cross-check this request against the host oracle. */
    bool crossCheck = false;
    /**
     * End-to-end trace riding with the request (obs/trace_ring.hh);
     * null = untraced (the common case). The shard stamps Dequeue /
     * Prepare / Execute and hands the pointer back on the response.
     */
    std::shared_ptr<RequestTrace> trace;
    /**
     * Cross-tier trace identity, when the request arrived with one
     * on the wire (FORWARD, or SUBMIT with the trace-context flag).
     * !valid() = none; the serving layers never require it.
     */
    TraceContext traceContext;
};

/** What a request resolves to. */
struct ServeResponse
{
    /** False when the request was malformed; see error. */
    bool ok = false;
    /** Human-readable reason when !ok. */
    std::string error;
    /** Engine results (valid when ok). */
    EngineRunResult result;
    /** The plan came from the cache (dense→band rebuild skipped). */
    bool cacheHit = false;
    /** False when a requested cross-check mismatched. */
    bool crossCheckOk = true;
    /** Wall-clock service time of this request in microseconds. */
    double latencyMicros = 0;
    /** The request's trace, handed through for downstream stamps
     *  (completion-queue push, writer pop, flush). */
    std::shared_ptr<RequestTrace> trace;
};

/** Completion callback for the async submission surface. */
using CompletionFn = std::function<void(ServeResponse)>;

/**
 * One shard of a serving installation.
 *
 * Thread-safety: all submission surfaces and stats() may be called
 * from any number of client threads. Destruction drains queued
 * requests first, so every returned future becomes ready and every
 * accepted callback fires.
 */
class Shard
{
  public:
    struct Options
    {
        /** Worker threads dedicated to this shard. */
        std::size_t threads = 2;
        /** Plans kept by this shard's LRU plan cache. */
        std::size_t planCacheCapacity = PlanCache::kDefaultCapacity;
        /** Cross-check every request (overrides per-request flag). */
        bool crossCheckAll = false;
        /**
         * Maintain the obs/ metrics registry (queue depth and wait,
         * latency and mode histograms, cycle-drift gauge). Off =
         * the pre-observability hot path, the baseline
         * bench_obs_overhead compares against.
         */
        bool metrics = true;
    };

    explicit Shard(const Options &opts);

    /** Drains in-flight and queued requests, then stops workers. */
    ~Shard() = default;

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /** Enqueue @p req; the future resolves when a worker served it. */
    std::future<ServeResponse> submit(ServeRequest req);

    /**
     * As submit(), with @p digest = planDigest(req.engine, req.plan)
     * already computed — the cluster router passes its routing key
     * through so the matrices are hashed once per request.
     */
    std::future<ServeResponse> submit(ServeRequest req, Digest digest);

    /**
     * Enqueue @p req; @p done runs on the worker thread that served
     * it, with the response. For clients that cannot block on
     * futures — the cluster layer builds its completion queue on
     * this.
     */
    void submitAsync(ServeRequest req, CompletionFn done);

    /** As submitAsync(), with the plan digest precomputed. */
    void submitAsync(ServeRequest req, CompletionFn done,
                     Digest digest);

    /**
     * Enqueue a request group, returning one future per request in
     * order. Requests whose (engine, kind, w, bound matrices) agree
     * are served through a single prepared plan fetched once from
     * the cache — followers are reported as cache hits — and each
     * group occupies one worker, streaming its requests
     * back-to-back.
     */
    std::vector<std::future<ServeResponse>>
    submitBatch(std::vector<ServeRequest> reqs);

    /** As submitBatch(), with each request's plan digest paired in. */
    std::vector<std::future<ServeResponse>>
    submitBatch(std::vector<std::pair<ServeRequest, Digest>> reqs);

    /** Consistent statistics snapshot (includes plan-cache stats). */
    ServerStats stats() const;

    /**
     * As stats(); @p include_samples additionally exports each
     * group's latency reservoir so an aggregator
     * (Cluster::statsSnapshot) can merge percentiles exactly.
     */
    ServerStats stats(bool include_samples) const;

    /** Worker count. */
    std::size_t threadCount() const { return pool_.threadCount(); }

    /** The shard's plan cache (for tests and monitoring). */
    const PlanCache &planCache() const { return cache_; }

    /**
     * Point-in-time copy of this shard's obs/ metrics (plan-cache
     * counters injected from the cache, queue depth from the live
     * gauge). Empty when Options::metrics is off. Cluster snapshots
     * merge these exactly — counters and histogram buckets add.
     */
    MetricsSnapshot metricsSnapshot() const;

    /**
     * Requests enqueued but not yet picked up by a worker, from the
     * live queue-depth gauge (0 when Options::metrics is off) — the
     * health model's saturation input, cheaper than a full snapshot.
     */
    double queueDepth() const;

  private:
    /** One batched request plus the promise that resolves it. */
    struct Job
    {
        ServeRequest req;
        std::promise<ServeResponse> promise;
    };

    ServeResponse handle(const ServeRequest &req);
    ServeResponse handle(const ServeRequest &req, Digest digest);
    /** Metrics hook at enqueue time (queue depth up). */
    void noteEnqueued(std::size_t n = 1);
    /** Metrics + trace hook when a worker picks a request up:
     *  Dequeue stamp, queue-wait histogram, queue depth down. */
    void noteDequeued(std::chrono::steady_clock::time_point enqueuedAt,
                      const std::shared_ptr<RequestTrace> &trace,
                      std::size_t n = 1);
    /** Error response for a malformed request (records the failure). */
    ServeResponse fail(std::string error,
                       std::chrono::steady_clock::time_point t0);
    /** Execute a validated request through @p prepared and record it. */
    ServeResponse finish(const ServeRequest &req,
                         const SystolicEngine &engine,
                         const PreparedPlan &prepared, bool cacheHit,
                         std::chrono::steady_clock::time_point t0);
    /** Serve one same-digest group through a shared prepared plan. */
    void serveGroup(Digest digest, std::vector<Job> &jobs);
    /** Lazily instantiated shared engine instances, by name. */
    const SystolicEngine *engineFor(const std::string &name);

    /** Hot-path instruments resolved once at construction, so
     *  recording never pays the registry's name lookup. All null
     *  when Options::metrics is off. */
    struct Instruments
    {
        Counter *requests = nullptr;
        Counter *failures = nullptr;
        Counter *crossCheckFailures = nullptr;
        /** Indexed by ExecMode value. */
        Counter *modeCounts[3] = {};
        Gauge *queueDepth = nullptr;
        Gauge *cyclesDrift = nullptr;
        Histogram *queueWait = nullptr;
        Histogram *latency = nullptr;
    };

    Options opts_;
    PlanCache cache_;
    StatsRecorder stats_;
    /** Created iff Options::metrics; null keeps the hot path at one
     *  pointer test per hook. */
    std::unique_ptr<MetricsRegistry> metrics_;
    Instruments inst_;

    std::mutex engines_mutex_;
    std::map<std::string, std::unique_ptr<SystolicEngine>> engines_;

    /** Declared last: destroyed first, so workers drain while every
     *  other member is still alive. */
    ThreadPool pool_;
};

} // namespace sap

#endif // SAP_SERVE_SHARD_HH
