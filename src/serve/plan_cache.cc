#include "serve/plan_cache.hh"

#include "base/logging.hh"

namespace sap {

Digest
planDigest(const std::string &engine_name, const EnginePlan &plan,
           const DenseHashFn &hash)
{
    auto hashOf = [&hash](const Dense<Scalar> &m) {
        return hash ? hash(m) : fingerprintDense(m);
    };
    Digest d = fingerprintString(engine_name);
    d = combineDigests(d, static_cast<Digest>(plan.kind));
    d = combineDigests(d, static_cast<Digest>(plan.w));
    d = combineDigests(d, hashOf(plan.a));
    if (plan.kind == ProblemKind::MatMul)
        d = combineDigests(d, hashOf(plan.bmat));
    return d;
}

PlanCache::PlanCache(std::size_t capacity, DenseHashFn hash)
    : capacity_(capacity), default_hash_(!hash),
      hash_(hash ? std::move(hash) : DenseHashFn(fingerprintDense))
{
}

Digest
PlanCache::digestOf(const std::string &engine_name,
                    const EnginePlan &plan) const
{
    return planDigest(engine_name, plan, hash_);
}

bool
PlanCache::entryMatches(const Entry &e, const std::string &engine_name,
                        const EnginePlan &plan) const
{
    return e.engine == engine_name && e.kind == plan.kind &&
           e.w == plan.w && e.a == plan.a &&
           (plan.kind != ProblemKind::MatMul || e.bmat == plan.bmat);
}

std::shared_ptr<const PreparedPlan>
PlanCache::lookupLocked(Digest digest, const std::string &engine_name,
                        const EnginePlan &plan)
{
    auto range = index_.equal_range(digest);
    bool probed = false;
    for (auto it = range.first; it != range.second; ++it) {
        if (entryMatches(*it->second, engine_name, plan)) {
            // A non-matching probe under the same digest is a hash
            // collision even when a later entry matches.
            if (probed)
                ++stats_.collisions;
            // Promote to most-recently-used.
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->plan;
        }
        probed = true;
    }
    if (probed)
        ++stats_.collisions;
    return nullptr;
}

PlanCache::Prepared
PlanCache::prepare(const SystolicEngine &engine, const EnginePlan &plan)
{
    return prepareKeyed(engine, plan, digestOf(engine.name(), plan));
}

PlanCache::Prepared
PlanCache::prepare(const SystolicEngine &engine, const EnginePlan &plan,
                   Digest digest)
{
    // A caller's hint was computed with the default hash; recompute
    // when this cache hashes differently.
    if (!default_hash_)
        digest = digestOf(engine.name(), plan);
    return prepareKeyed(engine, plan, digest);
}

PlanCache::Prepared
PlanCache::prepareKeyed(const SystolicEngine &engine,
                        const EnginePlan &plan, Digest digest)
{
    const std::string engine_name = engine.name();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto cached = lookupLocked(digest, engine_name, plan)) {
            ++stats_.hits;
            return {cached, /*hit=*/true};
        }
        ++stats_.misses;
    }

    // Build outside the lock: the transform is the expensive part
    // and must not serialize unrelated requests.
    std::shared_ptr<const PreparedPlan> built = engine.prepare(plan);

    // Capacity 0 = caching disabled: serve the build, keep nothing.
    if (capacity_ == 0)
        return {built, /*hit=*/false};

    std::lock_guard<std::mutex> lock(mutex_);
    // Another thread may have inserted the same key meanwhile;
    // prefer the incumbent so the cache holds one plan per matrix.
    if (auto cached = lookupLocked(digest, engine_name, plan))
        return {cached, /*hit=*/false};

    Entry e;
    e.digest = digest;
    e.engine = engine_name;
    e.kind = plan.kind;
    e.w = plan.w;
    e.a = plan.a;
    if (plan.kind == ProblemKind::MatMul)
        e.bmat = plan.bmat;
    e.plan = built;
    lru_.push_front(std::move(e));
    index_.emplace(digest, lru_.begin());
    while (lru_.size() > capacity_)
        evictLocked();
    return {built, /*hit=*/false};
}

void
PlanCache::evictLocked()
{
    SAP_ASSERT(!lru_.empty(), "evicting from an empty cache");
    auto victim = std::prev(lru_.end());
    auto range = index_.equal_range(victim->digest);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second == victim) {
            index_.erase(it);
            break;
        }
    }
    lru_.erase(victim);
    ++stats_.evictions;
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    stats_ = PlanCacheStats{};
}

} // namespace sap
