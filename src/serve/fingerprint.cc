#include "serve/fingerprint.hh"

#include <cstring>

namespace sap {

namespace {

constexpr Digest kFnvOffset = 14695981039346656037ULL;
constexpr Digest kFnvPrime = 1099511628211ULL;

Digest
fnv1a(Digest h, const void *data, std::size_t len)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

Digest
fnv1aIndex(Digest h, Index v)
{
    return fnv1a(h, &v, sizeof(v));
}

} // namespace

Digest
fingerprintDense(const Dense<Scalar> &a)
{
    Digest h = kFnvOffset;
    h = fnv1aIndex(h, a.rows());
    h = fnv1aIndex(h, a.cols());
    if (!a.data().empty())
        h = fnv1a(h, a.data().data(),
                  a.data().size() * sizeof(Scalar));
    return h;
}

Digest
fingerprintVec(const Vec<Scalar> &v)
{
    Digest h = kFnvOffset;
    h = fnv1aIndex(h, v.size());
    for (Index i = 0; i < v.size(); ++i) {
        Scalar s = v[i];
        h = fnv1a(h, &s, sizeof(s));
    }
    return h;
}

Digest
fingerprintString(const std::string &s)
{
    return fnv1a(kFnvOffset, s.data(), s.size());
}

Digest
combineDigests(Digest seed, Digest next)
{
    // Boost-style order-dependent mix.
    return seed ^ (next + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                   (seed >> 2));
}

} // namespace sap
