/**
 * @file
 * Content-addressed cache of prepared (DBT-transformed) plans.
 *
 * The dense→band transform is the amortizable cost of the paper's
 * size-independent scheme: a w-cell array serves any problem size,
 * so a serving system pays the transform once per distinct matrix
 * and streams every subsequent request through the cached band
 * structure. This cache implements that amortization: plans are
 * keyed by (engine, kind, w, fingerprint of the bound operand
 * matrices) with LRU eviction.
 *
 * Collision safety: a digest match is only a candidate; the cache
 * confirms every hit with an exact element-wise comparison of the
 * bound matrices, so distinct matrices that collide in the hash
 * never share a plan (counted in stats().collisions). The hash
 * function is injectable for tests to force this path.
 *
 * Thread-safety: all public members are safe to call concurrently.
 * Plan construction runs outside the lock, so two threads missing on
 * the same key may both build; the first insertion wins and the
 * loser's plan serves only its own request.
 */

#ifndef SAP_SERVE_PLAN_CACHE_HH
#define SAP_SERVE_PLAN_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "engine/engine.hh"
#include "serve/fingerprint.hh"

namespace sap {

/** Monotonic cache counters (since construction or clear()). */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Digest matches that were distinct matrices (hash collisions). */
    std::uint64_t collisions = 0;

    /** Hit fraction in [0, 1] (0 when no lookups yet). */
    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * The cache-identity digest of (engine, plan): what PlanCache keys
 * entries by and what the cluster router (cluster/router.hh) hashes
 * to pin a matrix to one shard. Covers engine name, problem kind,
 * array size, and the content digests of the bound matrices (A, and
 * B for MatMul).
 *
 * @param hash Dense-matrix hash; empty uses fingerprintDense.
 */
Digest planDigest(const std::string &engine_name,
                  const EnginePlan &plan,
                  const DenseHashFn &hash = nullptr);

/**
 * LRU cache of prepared plans keyed by matrix content.
 *
 * Thread-safety: all public members are safe to call concurrently;
 * plan construction runs outside the lock (see file comment).
 *
 * Ownership: entries hold shared_ptr<const PreparedPlan>, so a plan
 * returned by prepare() remains valid after eviction or clear() —
 * eviction only drops the cache's reference. The cache also keeps a
 * copy of the bound matrices as the collision-check ground truth,
 * so its memory footprint is capacity × (plan + operands).
 */
class PlanCache
{
  public:
    /** Default number of cached plans. */
    static constexpr std::size_t kDefaultCapacity = 64;

    /**
     * @param capacity Maximum number of cached plans. Capacity 0
     *        disables caching: every prepare() builds and counts a
     *        miss, and nothing is retained.
     * @param hash Dense-matrix hash; nullptr uses fingerprintDense.
     */
    explicit PlanCache(std::size_t capacity = kDefaultCapacity,
                       DenseHashFn hash = nullptr);

    /** One cache answer: the plan plus whether it was cached. */
    struct Prepared
    {
        std::shared_ptr<const PreparedPlan> plan;
        bool hit = false;
    };

    /**
     * Return the cached prepared plan for @p plan's bound matrices
     * on @p engine, building and inserting it on a miss.
     *
     * @pre plan.kind == engine.kind() (asserted by the engine).
     */
    Prepared prepare(const SystolicEngine &engine,
                     const EnginePlan &plan);

    /**
     * As prepare(), with the key digest already computed — callers
     * that hashed the matrices for routing (cluster/cluster.hh)
     * or batch grouping (serve/shard.hh) skip rehashing them here.
     *
     * @pre @p digest == planDigest(engine.name(), plan) with the
     *      default hash. When the cache was built with a custom
     *      hash, the hint is ignored and the digest is recomputed.
     */
    Prepared prepare(const SystolicEngine &engine,
                     const EnginePlan &plan, Digest digest);

    /** Counter snapshot. */
    PlanCacheStats stats() const;

    /** Number of plans currently cached. */
    std::size_t size() const;

    /** Maximum number of plans. */
    std::size_t capacity() const { return capacity_; }

    /** Drop all cached plans and reset the counters. */
    void clear();

  private:
    struct Entry
    {
        Digest digest;
        std::string engine;
        ProblemKind kind;
        Index w;
        // Bound operand copies: the ground truth a digest match is
        // verified against (bmat is empty for MatVec plans).
        Dense<Scalar> a;
        Dense<Scalar> bmat;
        std::shared_ptr<const PreparedPlan> plan;
    };
    using Lru = std::list<Entry>;

    Digest digestOf(const std::string &engine_name,
                    const EnginePlan &plan) const;
    /** The shared lookup/insert path; trusts @p digest as the key. */
    Prepared prepareKeyed(const SystolicEngine &engine,
                          const EnginePlan &plan, Digest digest);
    bool entryMatches(const Entry &e, const std::string &engine_name,
                      const EnginePlan &plan) const;
    /** Lookup under lock_; promotes the entry on hit. */
    std::shared_ptr<const PreparedPlan>
    lookupLocked(Digest digest, const std::string &engine_name,
                 const EnginePlan &plan);
    void evictLocked();

    std::size_t capacity_;
    /** True when hash_ is fingerprintDense: only then may callers'
     *  precomputed planDigest() hints substitute for digestOf().
     *  Declared before hash_ so it is initialized from the ctor
     *  argument before that argument is moved into hash_. */
    bool default_hash_;
    DenseHashFn hash_;

    mutable std::mutex mutex_;
    Lru lru_; ///< front = most recently used
    std::unordered_multimap<Digest, Lru::iterator> index_;
    PlanCacheStats stats_;
};

} // namespace sap

#endif // SAP_SERVE_PLAN_CACHE_HH
