/**
 * @file
 * Gauss-Seidel iteration on the fixed-size array — another of the
 * paper's §4 applications.
 *
 * Each sweep solves (L+D)·x^{k+1} = b − U·x^k: the strictly-upper
 * product runs on the systolic array through a DBT mat-vec plan and
 * the triangular solve reuses the blocked array-backed solver.
 */

#ifndef SAP_SOLVE_GAUSS_SEIDEL_HH
#define SAP_SOLVE_GAUSS_SEIDEL_HH

#include "analysis/metrics.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Result of a Gauss-Seidel run. */
struct GaussSeidelResult
{
    Vec<Scalar> x;         ///< final iterate
    Index sweeps = 0;      ///< sweeps executed
    double residual = 0;   ///< max-norm of b − A·x at exit
    bool converged = false;
    RunStats arrayStats;   ///< accumulated array work
};

/**
 * Iterate until the max-norm residual drops below @p tol or
 * @p max_sweeps is reached.
 *
 * @param a System matrix (diagonally dominant recommended).
 * @param b Right-hand side.
 * @param w Array size.
 */
GaussSeidelResult gaussSeidel(const Dense<Scalar> &a,
                              const Vec<Scalar> &b, Index w,
                              double tol = 1e-10,
                              Index max_sweeps = 200);

} // namespace sap

#endif // SAP_SOLVE_GAUSS_SEIDEL_HH
