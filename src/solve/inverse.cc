#include "solve/inverse.hh"

#include <cmath>

#include "base/logging.hh"
#include "dbt/matmul_plan.hh"
#include "mat/ops.hh"
#include "solve/trisolve.hh"

namespace sap {

TriInverseResult
triInverse(const Dense<Scalar> &l, Index w)
{
    const Index n = l.rows();
    SAP_ASSERT(l.cols() == n, "L must be square");

    TriInverseResult res;
    res.inv = Dense<Scalar>(n, n);
    res.arrayStats.peCount = w;
    for (Index col = 0; col < n; ++col) {
        Vec<Scalar> e(n);
        e[col] = 1;
        TriSolveResult s = triSolve(l, e, w);
        for (Index i = 0; i < n; ++i)
            res.inv(i, col) = s.y[i];
        res.arrayStats.cycles += s.arrayStats.cycles;
        res.arrayStats.usefulMacs += s.arrayStats.usefulMacs;
    }
    return res;
}

NewtonInverseResult
newtonInverse(const Dense<Scalar> &a, Index w, double tol,
              Index max_iters)
{
    const Index n = a.rows();
    SAP_ASSERT(a.cols() == n, "A must be square");

    // Classic scaling X0 = Aᵀ / (‖A‖₁·‖A‖∞) guarantees convergence
    // for nonsingular A with a modest condition number.
    double norm1 = 0, norm_inf = 0;
    for (Index j = 0; j < n; ++j) {
        double col_sum = 0;
        for (Index i = 0; i < n; ++i)
            col_sum += std::abs(a(i, j));
        norm1 = std::max(norm1, col_sum);
    }
    for (Index i = 0; i < n; ++i) {
        double row_sum = 0;
        for (Index j = 0; j < n; ++j)
            row_sum += std::abs(a(i, j));
        norm_inf = std::max(norm_inf, row_sum);
    }
    SAP_ASSERT(norm1 > 0 && norm_inf > 0, "A must be nonzero");

    Dense<Scalar> x = a.transposed();
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < n; ++j)
            x(i, j) /= norm1 * norm_inf;

    NewtonInverseResult res;
    res.arrayStats.peCount = w * w;
    Dense<Scalar> id = identity<Scalar>(n);

    for (Index it = 0; it < max_iters; ++it) {
        // M = A·X on the hexagonal array (E = 0).
        MatMulPlan pm(a, x, w);
        MatMulPlanResult m = pm.run(Dense<Scalar>(n, n));
        res.arrayStats.cycles += m.stats.cycles;
        res.arrayStats.usefulMacs += m.stats.usefulMacs;

        // R = 2I − M; convergence when ‖I − M‖∞ small.
        double worst = 0;
        Dense<Scalar> rmat(n, n);
        for (Index i = 0; i < n; ++i) {
            for (Index j = 0; j < n; ++j) {
                Scalar target = (i == j) ? 1.0 : 0.0;
                worst = std::max(worst,
                                 std::abs(target - m.c(i, j)));
                rmat(i, j) = 2 * target - m.c(i, j);
            }
        }
        res.residual = worst;
        ++res.iterations;
        if (worst < tol) {
            res.converged = true;
            break;
        }

        // X = X·R on the hexagonal array.
        MatMulPlan px(x, rmat, w);
        MatMulPlanResult xr = px.run(Dense<Scalar>(n, n));
        res.arrayStats.cycles += xr.stats.cycles;
        res.arrayStats.usefulMacs += xr.stats.usefulMacs;
        x = xr.c;
    }
    res.inv = x;
    return res;
}

} // namespace sap
