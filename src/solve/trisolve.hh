/**
 * @file
 * Blocked triangular system solver on the fixed-size array — the
 * first of the further applications listed in the paper's
 * conclusions ("Triangular systems of linear and matrix
 * equations").
 *
 * Scheme: classic panel-and-update forward substitution by w-wide
 * block rows. The O(n²) update work (b_r −= Σ_{s<r} L_{r,s}·y_s) is
 * executed on the simulated systolic array through DBT mat-vec
 * plans; only the n/w diagonal w×w triangular solves (O(n·w) work)
 * run on the host, mirroring how a real deployment would pair the
 * array with a small scalar unit.
 */

#ifndef SAP_SOLVE_TRISOLVE_HH
#define SAP_SOLVE_TRISOLVE_HH

#include "analysis/metrics.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Result of a blocked triangular solve. */
struct TriSolveResult
{
    Vec<Scalar> y;       ///< solution of L·y = b
    RunStats arrayStats; ///< accumulated over all array runs
    Index hostOps = 0;   ///< scalar ops done on the host
};

/**
 * Solve L·y = b with L lower-triangular (nonzero diagonal) using
 * the w-PE systolic array for the update products.
 *
 * @param l Lower-triangular matrix (n×n).
 * @param b Right-hand side (n).
 * @param w Array size.
 */
TriSolveResult triSolve(const Dense<Scalar> &l, const Vec<Scalar> &b,
                        Index w);

} // namespace sap

#endif // SAP_SOLVE_TRISOLVE_HH
