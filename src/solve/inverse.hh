/**
 * @file
 * Matrix inversion on the fixed-size arrays — the last of the
 * paper's §4 applications ("inverses of triangular and dense
 * matrices").
 *
 *  - Triangular inverse: column-by-column via the blocked
 *    array-backed forward solver.
 *  - Dense inverse: Newton-Schulz iteration X_{k+1} = X_k(2I − A·X_k)
 *    where both products of every step run on the simulated
 *    hexagonal array through DBT mat-mul plans.
 */

#ifndef SAP_SOLVE_INVERSE_HH
#define SAP_SOLVE_INVERSE_HH

#include "analysis/metrics.hh"
#include "mat/dense.hh"

namespace sap {

/** Result of a triangular inversion. */
struct TriInverseResult
{
    Dense<Scalar> inv;
    RunStats arrayStats;
};

/** Invert a lower-triangular matrix with nonzero diagonal. */
TriInverseResult triInverse(const Dense<Scalar> &l, Index w);

/** Result of a Newton-Schulz dense inversion. */
struct NewtonInverseResult
{
    Dense<Scalar> inv;
    Index iterations = 0;
    double residual = 0;   ///< max-norm of I − A·X at exit
    bool converged = false;
    RunStats arrayStats;   ///< accumulated hexagonal-array work
};

/**
 * Invert a well-conditioned square matrix by Newton-Schulz
 * iteration with systolic mat-mul steps.
 *
 * @param a Square matrix.
 * @param w Hexagonal array size.
 * @param tol Convergence threshold on the residual max-norm.
 * @param max_iters Iteration cap.
 */
NewtonInverseResult newtonInverse(const Dense<Scalar> &a, Index w,
                                  double tol = 1e-10,
                                  Index max_iters = 60);

} // namespace sap

#endif // SAP_SOLVE_INVERSE_HH
