#include "solve/gauss_seidel.hh"

#include <cmath>

#include "base/logging.hh"
#include "dbt/matvec_plan.hh"
#include "mat/ops.hh"
#include "mat/triangular.hh"
#include "solve/trisolve.hh"

namespace sap {

GaussSeidelResult
gaussSeidel(const Dense<Scalar> &a, const Vec<Scalar> &b, Index w,
            double tol, Index max_sweeps)
{
    const Index n = a.rows();
    SAP_ASSERT(a.cols() == n && b.size() == n, "shape mismatch");

    Dense<Scalar> upper = triPartOf(a, TriPart::UpperStrict);
    Dense<Scalar> lower_diag = triPartOf(a, TriPart::LowerWithDiag);
    MatVecPlan upper_plan(upper, w);

    GaussSeidelResult res;
    res.arrayStats.peCount = w;
    res.x = Vec<Scalar>(n); // start from zero

    for (Index sweep = 0; sweep < max_sweeps; ++sweep) {
        // rhs = b − U·x^k on the array (negated via x scaling).
        MatVecPlanResult up = upper_plan.run(res.x, Vec<Scalar>(n));
        res.arrayStats.cycles += up.stats.cycles;
        res.arrayStats.usefulMacs += up.stats.usefulMacs;
        Vec<Scalar> rhs(n);
        for (Index i = 0; i < n; ++i)
            rhs[i] = b[i] - up.y[i];

        // (L+D)·x^{k+1} = rhs via the blocked array-backed solver.
        TriSolveResult tri = triSolve(lower_diag, rhs, w);
        res.arrayStats.cycles += tri.arrayStats.cycles;
        res.arrayStats.usefulMacs += tri.arrayStats.usefulMacs;
        res.x = tri.y;
        ++res.sweeps;

        // Convergence check on the host.
        Vec<Scalar> ax = matVec(a, res.x, Vec<Scalar>(n));
        double worst = 0;
        for (Index i = 0; i < n; ++i)
            worst = std::max(worst, std::abs(b[i] - ax[i]));
        res.residual = worst;
        if (worst < tol) {
            res.converged = true;
            break;
        }
    }
    return res;
}

} // namespace sap
