#include "solve/trisolve.hh"

#include "base/logging.hh"
#include "base/math_util.hh"
#include "dbt/matvec_plan.hh"
#include "mat/block.hh"

namespace sap {

TriSolveResult
triSolve(const Dense<Scalar> &l, const Vec<Scalar> &b, Index w)
{
    const Index n = l.rows();
    SAP_ASSERT(l.cols() == n, "L must be square");
    SAP_ASSERT(b.size() == n, "shape mismatch");

    BlockPartition<Scalar> part(l, w);
    const Index nbar = part.blockRows();
    Vec<Scalar> bp = b.paddedTo(nbar * w);
    // Padded diagonal entries are zero; patch them to 1 so the
    // padded sub-systems stay solvable (their solutions are 0).
    Dense<Scalar> lp = part.padded();
    for (Index i = n; i < nbar * w; ++i)
        lp(i, i) = 1;

    TriSolveResult res;
    res.arrayStats.peCount = w;
    Vec<Scalar> y(nbar * w);

    for (Index r = 0; r < nbar; ++r) {
        // Update: rhs_r = b_r − [L_{r,0} … L_{r,r−1}]·y_{0..r−1},
        // computed on the array as one DBT mat-vec over the panel.
        Vec<Scalar> rhs = bp.slice(r * w, w);
        if (r > 0) {
            Dense<Scalar> panel(w, r * w);
            for (Index i = 0; i < w; ++i)
                for (Index j = 0; j < r * w; ++j)
                    panel(i, j) = lp(r * w + i, j);
            MatVecPlan plan(panel, w);
            MatVecPlanResult pr = plan.run(y.slice(0, r * w),
                                           Vec<Scalar>(w));
            for (Index i = 0; i < w; ++i)
                rhs[i] -= pr.y[i];
            res.hostOps += w;
            res.arrayStats.cycles += pr.stats.cycles;
            res.arrayStats.usefulMacs += pr.stats.usefulMacs;
        }

        // Host: solve the w×w diagonal triangular system.
        for (Index i = 0; i < w; ++i) {
            Scalar acc = rhs[i];
            for (Index j = 0; j < i; ++j) {
                acc -= lp(r * w + i, r * w + j) * y[r * w + j];
                ++res.hostOps;
            }
            Scalar diag = lp(r * w + i, r * w + i);
            SAP_ASSERT(diag != 0, "zero diagonal at ", r * w + i);
            y[r * w + i] = acc / diag;
            ++res.hostOps;
        }
    }

    res.y = y.slice(0, n);
    return res;
}

} // namespace sap
