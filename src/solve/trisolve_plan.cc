#include "solve/trisolve_plan.hh"

#include <string>

#include "base/error.hh"
#include "base/logging.hh"
#include "base/math_util.hh"
#include "mat/block.hh"
#include "sim/tri_array.hh"

namespace sap {

TriSolvePlan::TriSolvePlan(const Dense<Scalar> &l, Index w)
    : n_(l.rows()), w_(w)
{
    SAP_ASSERT(l.cols() == n_, "L must be square, got ", l.rows(),
               "x", l.cols());
    SAP_ASSERT(n_ >= 1, "empty system");
    SAP_ASSERT(w >= 1, "array size w = ", w, " must be at least 1");
    // A singular system is a caller input problem, not an internal
    // invariant: fail recoverably before the back-substitution
    // array would divide by the zero.
    for (Index i = 0; i < n_; ++i)
        if (l(i, i) == 0)
            throw EngineError("zero diagonal at " +
                              std::to_string(i));

    BlockPartition<Scalar> part(l, w);
    nbar_ = part.blockRows();
    const Dense<Scalar> &padded = part.padded();

    diag_.reserve(static_cast<std::size_t>(nbar_));
    for (Index r = 0; r < nbar_; ++r) {
        diag_.push_back(part.block(r, r));
        // Padded diagonal entries are zero; patch them to 1 so the
        // padded sub-systems stay solvable (their solutions are 0).
        for (Index i = 0; i < w_; ++i)
            if (r * w_ + i >= n_)
                diag_.back()(i, i) = 1;
    }

    panels_.reserve(static_cast<std::size_t>(nbar_ - 1));
    for (Index r = 1; r < nbar_; ++r) {
        Dense<Scalar> panel(w_, r * w_);
        for (Index i = 0; i < w_; ++i)
            for (Index j = 0; j < r * w_; ++j)
                panel(i, j) = padded(r * w_ + i, j);
        panels_.emplace_back(panel, w_);
    }
}

TriSolvePlanResult
TriSolvePlan::run(const Vec<Scalar> &b, bool record_trace) const
{
    SAP_ASSERT(b.size() == n_, "b length ", b.size(), " != order ",
               n_);
    Vec<Scalar> bp = b.paddedTo(nbar_ * w_);

    TriSolvePlanResult res;
    res.stats.peCount = w_;
    Vec<Scalar> y(nbar_ * w_);

    // One back-substitution array, reused across diagonal blocks; a
    // fresh one would be equivalent, but reusing it keeps the cycle
    // counter a single global timeline for the trace.
    TriArray tri(w_);

    for (Index r = 0; r < nbar_; ++r) {
        // Update: rhs_r = b_r − [L_{r,0} … L_{r,r−1}]·y_{0..r−1},
        // streamed through the linear array as one DBT mat-vec.
        Vec<Scalar> rhs = bp.slice(r * w_, w_);
        if (r > 0) {
            const MatVecPlan &panel =
                panels_[static_cast<std::size_t>(r - 1)];
            MatVecPlanResult pr =
                panel.run(y.slice(0, r * w_), Vec<Scalar>(w_));
            for (Index i = 0; i < w_; ++i)
                rhs[i] -= pr.y[i];
            res.stats.cycles += pr.stats.cycles;
            res.stats.usefulMacs += pr.stats.usefulMacs;
        }

        // Diagonal block on the back-substitution array. Trace
        // cycles are global: panel cycles already accumulated shift
        // the tri-array timeline, so the CSV reads as one serial
        // schedule of the whole installation.
        const Cycle start = res.stats.cycles;
        const Cycle t0 = tri.now();
        const Dense<Scalar> &blk =
            diag_[static_cast<std::size_t>(r)];
        tri.clearSolutions();
        for (Cycle c = 0; c < 2 * w_ - 1; ++c) {
            // Row i enters cell 0 at pass-cycle i...
            if (c < w_) {
                tri.setSIn(Sample::of(rhs[c]));
                if (record_trace)
                    res.trace.add(start + c, Port::BIn, r * w_ + c,
                                  rhs[c]);
            }
            // ...and its coefficient l_ik reaches cell k at i + k.
            for (Index k = 0; k < w_; ++k) {
                Index i = static_cast<Index>(c) - k;
                if (i >= k && i < w_) {
                    Scalar v = blk(i, k);
                    tri.setAIn(k, Sample::of(v));
                    if (record_trace)
                        res.trace.add(start + c, Port::AIn,
                                      (r * w_ + i) * (nbar_ * w_) +
                                          (r * w_ + k),
                                      v);
                }
            }
            tri.step();
        }
        for (Index k = 0; k < w_; ++k) {
            Sample s = tri.y(k);
            SAP_ASSERT(s.valid, "cell ", k, " never saw its diagonal");
            y[r * w_ + k] = s.value;
            if (record_trace)
                res.trace.add(start + (tri.yCapturedAt(k) - t0),
                              Port::YOut, r * w_ + k, s.value);
        }
        res.stats.cycles += 2 * w_ - 1;
    }
    res.stats.usefulMacs += tri.usefulOps();

    res.y = y.slice(0, n_);
    return res;
}

} // namespace sap
