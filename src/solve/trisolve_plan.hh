/**
 * @file
 * Reusable, size-independent execution plan for triangular systems
 * L·y = b on the fixed-size array pair — the engine-layer backend of
 * the paper's §4 scheme.
 *
 * The decomposition mirrors triSolve() (solve/trisolve.hh): the
 * system is partitioned into w-wide block rows; the O(n²) panel
 * update b_r − Σ_{s<r} L_{r,s}·y_s streams through the linear
 * contraflow array as a DBT mat-vec, and each w×w diagonal block is
 * then solved on the cycle-level back-substitution array
 * (sim/tri_array.hh) instead of the host. Both arrays are w cells
 * wide, so the plan models one installation whose cells gain a
 * divide path — the matrix-bound artifact (panel plans + diagonal
 * coefficient blocks) is built once per (L, w) and any number of
 * right-hand sides stream through it, which is what the serving
 * layer caches.
 *
 * Thread-compatibility: const member functions are safe to call
 * concurrently (each run builds its own simulators).
 */

#ifndef SAP_SOLVE_TRISOLVE_PLAN_HH
#define SAP_SOLVE_TRISOLVE_PLAN_HH

#include <vector>

#include "analysis/metrics.hh"
#include "dbt/matvec_plan.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"
#include "sim/trace.hh"

namespace sap {

/** Result of a planned systolic triangular solve. */
struct TriSolvePlanResult
{
    /** The solution of L·y = b (length n). */
    Vec<Scalar> y;
    /** Accumulated over every panel and diagonal-block array run. */
    RunStats stats;
    /** Diagonal-block port events when requested (see run()). */
    Trace trace;
};

/**
 * Blocked forward-substitution plan for one (L, w) pair.
 *
 * The paper's step-count claims compose: each panel r costs
 * tMatVec(w, 1, r) = 2wr + 2w − 3 cycles on the linear array and
 * each diagonal block costs 2w − 1 cycles on the back-substitution
 * array, so T = n̄(2w−1) + Σ_{r=1}^{n̄−1}(2wr + 2w − 3)
 * (formulas::tTriSolve).
 */
class TriSolvePlan
{
  public:
    /**
     * @param l Lower-triangular matrix (n×n; elements above the
     *          diagonal are ignored, matching forwardSolve()).
     * @param w The fixed systolic array size.
     * @throws EngineError if any diagonal element of @p l is zero
     *         (a singular system is the caller's input problem, not
     *         an internal invariant).
     */
    TriSolvePlan(const Dense<Scalar> &l, Index w);

    /** Order of the bound system. */
    Index n() const { return n_; }
    /** Array size. */
    Index w() const { return w_; }
    /** Number of w-wide block rows n̄ = ceil(n/w). */
    Index nbar() const { return nbar_; }

    /**
     * Solve L·y = b on the simulated arrays.
     *
     * @param b Right-hand side (length n).
     * @param record_trace Record the diagonal-block array's port
     *        events (rhs in, coefficients, solutions out) on a
     *        global cycle timeline; panel mat-vec runs contribute
     *        cycles but no events.
     */
    TriSolvePlanResult run(const Vec<Scalar> &b,
                           bool record_trace = false) const;

    /**
     * Semantics replay of run() (src/semantics/): panels through
     * the mat-vec semantics kernel, diagonal blocks forward-
     * substituted in the array's retirement order; y bit-identical
     * to the simulation, stats from analysis/formulas.hh, no trace.
     */
    TriSolvePlanResult runSemantics(const Vec<Scalar> &b) const;

  private:
    Index n_;
    Index w_;
    Index nbar_;
    /** The w×w diagonal blocks L_{r,r}, zero-padded with padded
     *  diagonal entries patched to 1 (the off-diagonal panels live
     *  inside panels_; keeping only these bounds the prepared
     *  artifact at panels + n̄·w² scalars). */
    std::vector<Dense<Scalar>> diag_;
    /** Panel plans: panels_[r−1] binds [L_{r,0} … L_{r,r−1}]. */
    std::vector<MatVecPlan> panels_;
};

} // namespace sap

#endif // SAP_SOLVE_TRISOLVE_PLAN_HH
