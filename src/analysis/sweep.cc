#include "analysis/sweep.hh"

#include <algorithm>
#include <thread>

#include "base/logging.hh"
#include "mat/generate.hh"

namespace sap {

std::vector<MatVecConfig>
standardMatVecSweep()
{
    std::vector<MatVecConfig> out;
    for (Index w : {2, 3, 4, 5, 8}) {
        for (Index nbar : {1, 2, 4, 8}) {
            for (Index mbar : {1, 2, 4, 8}) {
                out.push_back({w, nbar * w, mbar * w});
            }
        }
    }
    // Non-multiple shapes exercise the zero-padding path.
    out.push_back({3, 6, 9});   // the paper's worked example
    out.push_back({3, 7, 10});
    out.push_back({4, 5, 13});
    return out;
}

std::vector<MatMulConfig>
standardMatMulSweep()
{
    std::vector<MatMulConfig> out;
    for (Index w : {2, 3, 4}) {
        for (Index nbar : {1, 2, 3}) {
            for (Index pbar : {1, 2, 3}) {
                for (Index mbar : {1, 2, 3}) {
                    out.push_back({w, nbar * w, pbar * w, mbar * w});
                }
            }
        }
    }
    out.push_back({3, 6, 6, 9});  // the paper's Fig. 4 shape (n̄=2,p̄=2,m̄=3)
    out.push_back({2, 3, 5, 7});  // padding path
    return out;
}

std::vector<TriSolveConfig>
standardTriSolveSweep()
{
    std::vector<TriSolveConfig> out;
    for (Index w : {2, 3, 4, 5}) {
        for (Index nbar : {1, 2, 4, 8}) {
            out.push_back({w, nbar * w});
        }
    }
    // Non-multiple orders exercise the padded diagonal patch.
    out.push_back({3, 7});
    out.push_back({4, 10});
    return out;
}

namespace {

/** Fill the measured fields shared by both sweep kinds. */
void
fillStats(SweepRow &row, const EngineRunResult &r)
{
    row.cycles = r.stats.cycles;
    row.peCount = r.stats.peCount;
    row.usefulMacs = r.stats.usefulMacs;
    row.utilization = r.stats.utilization();
}

SweepRow
runMatVecPoint(const SystolicEngine &engine, const MatVecConfig &cfg)
{
    // Workload seeds depend only on the config: the contract that
    // makes rows order- and thread-independent.
    std::uint64_t seed =
        17 + static_cast<std::uint64_t>(cfg.n + cfg.m + cfg.w);
    EnginePlan plan = EnginePlan::matVec(
        randomIntDense(cfg.n, cfg.m, seed),
        randomIntVec(cfg.m, seed + 1), randomIntVec(cfg.n, seed + 2),
        cfg.w);
    EngineRunResult r = engine.run(plan);

    SweepRow row;
    row.w = cfg.w;
    row.n = cfg.n;
    row.m = cfg.m;
    fillStats(row, r);
    row.resultDigest = fingerprintVec(r.y);
    return row;
}

SweepRow
runMatMulPoint(const SystolicEngine &engine, const MatMulConfig &cfg)
{
    std::uint64_t seed =
        29 + static_cast<std::uint64_t>(cfg.n + cfg.p + cfg.m + cfg.w);
    EnginePlan plan = EnginePlan::matMul(
        randomIntDense(cfg.n, cfg.p, seed),
        randomIntDense(cfg.p, cfg.m, seed + 1),
        randomIntDense(cfg.n, cfg.m, seed + 2), cfg.w);
    EngineRunResult r = engine.run(plan);

    SweepRow row;
    row.w = cfg.w;
    row.n = cfg.n;
    row.m = cfg.m;
    row.p = cfg.p;
    fillStats(row, r);
    row.resultDigest = fingerprintDense(r.c);
    return row;
}

SweepRow
runTriSolvePoint(const SystolicEngine &engine,
                 const TriSolveConfig &cfg)
{
    // Unit-diagonal systems keep every intermediate an exact
    // integer, so the result digest is platform-independent.
    std::uint64_t seed =
        43 + static_cast<std::uint64_t>(cfg.n + cfg.w);
    EnginePlan plan = EnginePlan::triSolve(
        randomUnitLowerTriangular(cfg.n, seed),
        randomIntVec(cfg.n, seed + 1), cfg.w);
    EngineRunResult r = engine.run(plan);

    SweepRow row;
    row.w = cfg.w;
    row.n = cfg.n;
    fillStats(row, r);
    row.resultDigest = fingerprintVec(r.y);
    return row;
}

} // namespace

std::size_t
defaultSweepThreads()
{
    std::size_t hw = std::thread::hardware_concurrency();
    return std::min<std::size_t>(std::max<std::size_t>(hw, 2), 16);
}

std::vector<SweepRow>
runMatVecSweep(const SystolicEngine &engine,
               const std::vector<MatVecConfig> &configs,
               std::size_t threads)
{
    SAP_ASSERT(engine.kind() == ProblemKind::MatVec,
               engine.name(), " engine cannot run a matvec sweep");
    return runConfigSweep(configs, threads, [&engine](const MatVecConfig &c) {
        return runMatVecPoint(engine, c);
    });
}

std::vector<SweepRow>
runMatMulSweep(const SystolicEngine &engine,
               const std::vector<MatMulConfig> &configs,
               std::size_t threads)
{
    SAP_ASSERT(engine.kind() == ProblemKind::MatMul,
               engine.name(), " engine cannot run a matmul sweep");
    return runConfigSweep(configs, threads, [&engine](const MatMulConfig &c) {
        return runMatMulPoint(engine, c);
    });
}

std::vector<SweepRow>
runTriSolveSweep(const SystolicEngine &engine,
                 const std::vector<TriSolveConfig> &configs,
                 std::size_t threads)
{
    SAP_ASSERT(engine.kind() == ProblemKind::TriSolve,
               engine.name(), " engine cannot run a trisolve sweep");
    return runConfigSweep(configs, threads,
                    [&engine](const TriSolveConfig &c) {
                        return runTriSolvePoint(engine, c);
                    });
}

} // namespace sap
