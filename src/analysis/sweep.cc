#include "analysis/sweep.hh"

namespace sap {

std::vector<MatVecConfig>
standardMatVecSweep()
{
    std::vector<MatVecConfig> out;
    for (Index w : {2, 3, 4, 5, 8}) {
        for (Index nbar : {1, 2, 4, 8}) {
            for (Index mbar : {1, 2, 4, 8}) {
                out.push_back({w, nbar * w, mbar * w});
            }
        }
    }
    // Non-multiple shapes exercise the zero-padding path.
    out.push_back({3, 6, 9});   // the paper's worked example
    out.push_back({3, 7, 10});
    out.push_back({4, 5, 13});
    return out;
}

std::vector<MatMulConfig>
standardMatMulSweep()
{
    std::vector<MatMulConfig> out;
    for (Index w : {2, 3, 4}) {
        for (Index nbar : {1, 2, 3}) {
            for (Index pbar : {1, 2, 3}) {
                for (Index mbar : {1, 2, 3}) {
                    out.push_back({w, nbar * w, pbar * w, mbar * w});
                }
            }
        }
    }
    out.push_back({3, 6, 6, 9});  // the paper's Fig. 4 shape (n̄=2,p̄=2,m̄=3)
    out.push_back({2, 3, 5, 7});  // padding path
    return out;
}

} // namespace sap
