/**
 * @file
 * Analytic expressions published in the paper (§2, §3).
 *
 * These are the claims the reproduction validates: the simulators
 * *measure* T, utilization, feedback delays and storage, and the
 * tests/benches compare measurements against these formulas.
 *
 * Notation follows the paper: w = array size, n̄/m̄/p̄ = block counts
 * (written nbar/mbar/pbar).
 */

#ifndef SAP_ANALYSIS_FORMULAS_HH
#define SAP_ANALYSIS_FORMULAS_HH

#include "base/types.hh"

namespace sap {
namespace formulas {

//---------------------------------------------------------------------
// §2: matrix-vector multiplication on the linear array
//---------------------------------------------------------------------

/**
 * Steps to solve the transformed mat-vec problem with no
 * overlapping: T = 2·w·n̄·m̄ + 2w − 3.
 */
Cycle tMatVec(Index w, Index nbar, Index mbar);

/**
 * Steps with two interleaved sub-problems (overlapping):
 * T = w·n̄·m̄ + 2w − 2.
 */
Cycle tMatVecOverlap(Index w, Index nbar, Index mbar);

/**
 * PE utilization without overlapping:
 * e = 1 / (2 + 2/(n̄m̄) − 3/(w·n̄m̄)), asymptote 1/2.
 *
 * (The printed formula in the scanned paper is corrupted; this is
 * the algebraic reconstruction e = N/(A·T) with N = n̄m̄w², A = w.)
 */
double eMatVec(Index w, Index nbar, Index mbar);

/** PE utilization with overlapping: asymptote 1. */
double eMatVecOverlap(Index w, Index nbar, Index mbar);

/** Feedback delay of the linear array (= array size w). */
Cycle linearFeedbackDelay(Index w);

/** Registers needed by the linear feedback path (= w). */
Index linearFeedbackRegisters(Index w);

//---------------------------------------------------------------------
// §3: matrix-matrix multiplication on the hexagonal array
//---------------------------------------------------------------------

/** Steps for the transformed mat-mul: T = 3·w·p̄·n̄·m̄ + 4w − 5. */
Cycle tMatMul(Index w, Index pbar, Index nbar, Index mbar);

/**
 * PE utilization:
 * e = 1 / (3 + 4/(p̄n̄m̄) − 5/(w·p̄n̄m̄)), asymptote 1/3.
 */
double eMatMul(Index w, Index pbar, Index nbar, Index mbar);

/** Regular feedback delay on the hex array (paper: w). */
Cycle hexRegularDelay(Index w);

/**
 * Irregular delay of the last partial result when computing the
 * U_{0,j} blocks: 6(w−1)(n̄−1)p̄ + w.
 */
Cycle hexDelayU0j(Index w, Index nbar, Index pbar);

/**
 * Irregular delay of the last partial result when computing
 * L_{p̄−1,0}: 6(n̄p̄)(m̄−1)(w−1) + w.
 */
Cycle hexDelayLlast(Index w, Index nbar, Index pbar, Index mbar);

/** Memory elements for the constant-delay main diagonal loop: 2w. */
Index hexMemMainDiag(Index w);

/** Memory elements per constant-delay sub-diagonal pair: w. */
Index hexMemSubDiag(Index w);

/** Memory elements for the irregular feedbacks: w(w−1)·3/2. */
Index hexMemIrregular(Index w);

//---------------------------------------------------------------------
// §4 and contrast topologies (derived, not printed in the paper):
// composition of the §2 step counts with the new arrays' schedules.
//---------------------------------------------------------------------

/**
 * Steps for the blocked triangular solve (tri engine): each of the
 * n̄ diagonal blocks costs 2w − 1 steps on the back-substitution
 * array and panel r costs tMatVec(w, 1, r) on the linear array:
 * T = n̄(2w−1) + Σ_{r=1}^{n̄−1}(2wr + 2w − 3).
 */
Cycle tTriSolve(Index w, Index nbar);

/**
 * Steps for the output-stationary mesh (mesh engine): one streaming
 * pass of p̄w + 2(w−1) steps per w×w output block, accumulator
 * preload/drain not cycle-modeled: T = n̄m̄(p̄w + 2(w−1)).
 */
Cycle tMesh(Index w, Index pbar, Index nbar, Index mbar);

/**
 * Mesh PE utilization over valid samples:
 * e = p̄w / (p̄w + 2(w−1)), asymptote 1 as the reduction grows.
 */
double eMesh(Index w, Index pbar);

//---------------------------------------------------------------------
// Shared helpers
//---------------------------------------------------------------------

/**
 * Generic PE utilization e = N / (A·T).
 *
 * @param ops Useful operations performed (N).
 * @param pes Processing elements in the array (A).
 * @param steps Execution steps (T).
 */
double utilization(Index ops, Index pes, Cycle steps);

} // namespace formulas
} // namespace sap

#endif // SAP_ANALYSIS_FORMULAS_HH
