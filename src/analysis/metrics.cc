#include "analysis/metrics.hh"

#include <algorithm>
#include <cmath>

namespace sap {

double
relDiff(double a, double b)
{
    double denom = std::max({std::abs(a), std::abs(b), 1.0});
    return std::abs(a - b) / denom;
}

} // namespace sap
