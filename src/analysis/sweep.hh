/**
 * @file
 * Parameter-sweep descriptors shared by the table benchmarks.
 */

#ifndef SAP_ANALYSIS_SWEEP_HH
#define SAP_ANALYSIS_SWEEP_HH

#include <vector>

#include "base/types.hh"

namespace sap {

/** One (w, n̄, m̄) mat-vec configuration. */
struct MatVecConfig
{
    Index w;
    Index n;
    Index m;
};

/** One (w, n̄, p̄, m̄) mat-mul configuration. */
struct MatMulConfig
{
    Index w;
    Index n;
    Index p;
    Index m;
};

/**
 * Standard sweep grids used by the reproduction benchmarks: small
 * enough to run in seconds, wide enough to show the asymptotics the
 * paper claims (utilization → 1/2, 1, 1/3).
 */
std::vector<MatVecConfig> standardMatVecSweep();

/** @copydoc standardMatVecSweep() */
std::vector<MatMulConfig> standardMatMulSweep();

} // namespace sap

#endif // SAP_ANALYSIS_SWEEP_HH
