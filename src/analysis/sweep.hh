/**
 * @file
 * Parameter-sweep descriptors shared by the table benchmarks, plus
 * the sweep runner that executes them — serially or fanned out over
 * a worker pool (engines are stateless, so rows parallelize).
 */

#ifndef SAP_ANALYSIS_SWEEP_HH
#define SAP_ANALYSIS_SWEEP_HH

#include <future>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "engine/engine.hh"
#include "serve/fingerprint.hh"
#include "serve/thread_pool.hh"

namespace sap {

/** One (w, n̄, m̄) mat-vec configuration. */
struct MatVecConfig
{
    Index w;
    Index n;
    Index m;
};

/** One (w, n̄, p̄, m̄) mat-mul configuration. */
struct MatMulConfig
{
    Index w;
    Index n;
    Index p;
    Index m;
};

/** One (w, n) triangular-system configuration. */
struct TriSolveConfig
{
    Index w;
    Index n;
};

/**
 * Standard sweep grids used by the reproduction benchmarks: small
 * enough to run in seconds, wide enough to show the asymptotics the
 * paper claims (utilization → 1/2, 1, 1/3).
 */
std::vector<MatVecConfig> standardMatVecSweep();

/** @copydoc standardMatVecSweep() */
std::vector<MatMulConfig> standardMatMulSweep();

/** @copydoc standardMatVecSweep() */
std::vector<TriSolveConfig> standardTriSolveSweep();

/**
 * One measured sweep point. Workloads are generated deterministically
 * from the configuration (seeded by its dimensions), so a row depends
 * only on (engine, config) — which is what makes the parallel runner
 * bit-identical to the serial one.
 */
struct SweepRow
{
    Index w = 0;
    Index n = 0;
    Index m = 0;
    /** MatMul output columns; 0 for mat-vec rows. */
    Index p = 0;

    Cycle cycles = 0;
    Index peCount = 0;
    Index usefulMacs = 0;
    double utilization = 0;
    /** Content digest of the computed y (or C): the equality proof
     *  that two sweep runs computed the same results. */
    Digest resultDigest = 0;
};

/**
 * Run @p engine over every configuration, in order.
 *
 * @param threads 0 or 1 = serial on the calling thread; otherwise
 *        rows fan out over a worker pool of that size and the
 *        returned table is identical (engines are stateless and the
 *        workloads are derived deterministically per config).
 *
 * @pre engine.kind() == ProblemKind::MatVec (asserted).
 */
std::vector<SweepRow>
runMatVecSweep(const SystolicEngine &engine,
               const std::vector<MatVecConfig> &configs,
               std::size_t threads = 1);

/**
 * @copydoc runMatVecSweep()
 * @pre engine.kind() == ProblemKind::MatMul (asserted).
 */
std::vector<SweepRow>
runMatMulSweep(const SystolicEngine &engine,
               const std::vector<MatMulConfig> &configs,
               std::size_t threads = 1);

/**
 * @copydoc runMatVecSweep()
 * @pre engine.kind() == ProblemKind::TriSolve (asserted).
 */
std::vector<SweepRow>
runTriSolveSweep(const SystolicEngine &engine,
                 const std::vector<TriSolveConfig> &configs,
                 std::size_t threads = 1);

/**
 * The generic fan-out behind the typed sweep runners, exposed so the
 * paper table/figure benchmarks share one execution engine: evaluate
 * @p point over every config — serially when @p threads <= 1,
 * otherwise over a serve/thread_pool.hh worker pool — and return the
 * results in config order either way.
 *
 * @p point must be a pure function of its config (derive workload
 * seeds from the config, like the typed runners do); that is the
 * contract that makes the parallel table bit-identical to the serial
 * one. Row is deduced from the callable's return type.
 */
template <typename Config, typename PointFn,
          typename Row = decltype(std::declval<PointFn>()(
              std::declval<const Config &>()))>
std::vector<Row>
runConfigSweep(const std::vector<Config> &configs, std::size_t threads,
               const PointFn &point)
{
    std::vector<Row> rows;
    rows.reserve(configs.size());
    if (threads <= 1) {
        for (const Config &cfg : configs)
            rows.push_back(point(cfg));
        return rows;
    }

    std::vector<std::future<Row>> futures;
    futures.reserve(configs.size());
    {
        ThreadPool pool(threads);
        for (const Config &cfg : configs) {
            auto task = std::make_shared<std::packaged_task<Row()>>(
                [&point, cfg] { return point(cfg); });
            futures.push_back(task->get_future());
            pool.post([task] { (*task)(); });
        }
        // ~ThreadPool drains the queue before joining.
    }
    for (std::future<Row> &f : futures)
        rows.push_back(f.get());
    return rows;
}

/**
 * Worker count for interactive sweep consumers (the table benches):
 * the hardware concurrency, at least 2 so the parallel path is
 * always exercised, capped at 16 to stay polite on big hosts.
 */
std::size_t defaultSweepThreads();

} // namespace sap

#endif // SAP_ANALYSIS_SWEEP_HH
