/**
 * @file
 * Measured execution metrics, collected by the simulators and
 * compared against the paper's analytic formulas.
 */

#ifndef SAP_ANALYSIS_METRICS_HH
#define SAP_ANALYSIS_METRICS_HH

#include "base/types.hh"

namespace sap {

/**
 * Aggregate run statistics for one systolic execution.
 *
 * `usefulMacs` counts PE cycles that processed a *valid* sample
 * (valid-bit tracking in the simulator), so utilization here is a
 * measurement, not the formula being validated.
 */
struct RunStats
{
    /** Total simulated cycles from first input to last output. */
    Cycle cycles = 0;
    /** Number of PEs in the array (A in the paper). */
    Index peCount = 0;
    /** PE-cycles that performed a useful multiply-accumulate. */
    Index usefulMacs = 0;

    /** Measured utilization e = usefulMacs / (peCount * cycles). */
    double
    utilization() const
    {
        if (peCount == 0 || cycles == 0)
            return 0.0;
        return static_cast<double>(usefulMacs) /
               (static_cast<double>(peCount) *
                static_cast<double>(cycles));
    }
};

/**
 * Relative difference |a-b| / max(|a|,|b|,1); used when comparing a
 * measured quantity with a formula that has convention-dependent
 * additive constants.
 */
double relDiff(double a, double b);

} // namespace sap

#endif // SAP_ANALYSIS_METRICS_HH
