#include "analysis/formulas.hh"

#include "base/logging.hh"

namespace sap {
namespace formulas {

Cycle
tMatVec(Index w, Index nbar, Index mbar)
{
    SAP_ASSERT(w >= 1 && nbar >= 1 && mbar >= 1, "bad parameters");
    return 2 * w * nbar * mbar + 2 * w - 3;
}

Cycle
tMatVecOverlap(Index w, Index nbar, Index mbar)
{
    SAP_ASSERT(w >= 1 && nbar >= 1 && mbar >= 1, "bad parameters");
    return w * nbar * mbar + 2 * w - 2;
}

double
eMatVec(Index w, Index nbar, Index mbar)
{
    double nm = static_cast<double>(nbar * mbar);
    double dw = static_cast<double>(w);
    return 1.0 / (2.0 + 2.0 / nm - 3.0 / (dw * nm));
}

double
eMatVecOverlap(Index w, Index nbar, Index mbar)
{
    double nm = static_cast<double>(nbar * mbar);
    double dw = static_cast<double>(w);
    return 1.0 / (1.0 + 2.0 / nm - 2.0 / (dw * nm));
}

Cycle
linearFeedbackDelay(Index w)
{
    return w;
}

Index
linearFeedbackRegisters(Index w)
{
    return w;
}

Cycle
tMatMul(Index w, Index pbar, Index nbar, Index mbar)
{
    SAP_ASSERT(w >= 1 && pbar >= 1 && nbar >= 1 && mbar >= 1,
               "bad parameters");
    return 3 * w * pbar * nbar * mbar + 4 * w - 5;
}

double
eMatMul(Index w, Index pbar, Index nbar, Index mbar)
{
    double pnm = static_cast<double>(pbar * nbar * mbar);
    double dw = static_cast<double>(w);
    return 1.0 / (3.0 + 4.0 / pnm - 5.0 / (dw * pnm));
}

Cycle
hexRegularDelay(Index w)
{
    return w;
}

Cycle
hexDelayU0j(Index w, Index nbar, Index pbar)
{
    return 6 * (w - 1) * (nbar - 1) * pbar + w;
}

Cycle
hexDelayLlast(Index w, Index nbar, Index pbar, Index mbar)
{
    return 6 * (nbar * pbar) * (mbar - 1) * (w - 1) + w;
}

Index
hexMemMainDiag(Index w)
{
    return 2 * w;
}

Index
hexMemSubDiag(Index w)
{
    return w;
}

Index
hexMemIrregular(Index w)
{
    return w * (w - 1) * 3 / 2;
}

Cycle
tTriSolve(Index w, Index nbar)
{
    SAP_ASSERT(w >= 1 && nbar >= 1, "bad parameters");
    Cycle t = nbar * (2 * w - 1);
    for (Index r = 1; r < nbar; ++r)
        t += tMatVec(w, 1, r);
    return t;
}

Cycle
tMesh(Index w, Index pbar, Index nbar, Index mbar)
{
    SAP_ASSERT(w >= 1 && pbar >= 1 && nbar >= 1 && mbar >= 1,
               "bad parameters");
    return nbar * mbar * (pbar * w + 2 * (w - 1));
}

double
eMesh(Index w, Index pbar)
{
    double pw = static_cast<double>(pbar * w);
    return pw / (pw + 2.0 * static_cast<double>(w - 1));
}

double
utilization(Index ops, Index pes, Cycle steps)
{
    SAP_ASSERT(pes > 0 && steps > 0, "bad utilization denominator");
    return static_cast<double>(ops) /
           (static_cast<double>(pes) * static_cast<double>(steps));
}

} // namespace formulas
} // namespace sap
