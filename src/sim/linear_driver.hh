/**
 * @file
 * Input scheduling and execution driver for band matrix-vector
 * multiplication on the linear contraflow array, including the
 * paper's feedback loop.
 *
 * Schedule (derived in DESIGN.md §4.2, 0-based cycles):
 *
 *   x_j       enters PE 0    at cycle 2j
 *   b̄_i/fb_i  enters PE w-1  at cycle 2i + w - 1
 *   a(i, i+d) fires in PE (w-1-d) at cycle 2i + w - 1 + d
 *   ȳ_i       is computed by PE 0 during cycle 2i + 2w - 2
 *
 * With these schedules the transformed problem of the paper needs
 * exactly T = 2w·n̄m̄ + 2w − 3 cycles and the feedback path is a
 * depth-w register chain — both asserted by tests.
 */

#ifndef SAP_SIM_LINEAR_DRIVER_HH
#define SAP_SIM_LINEAR_DRIVER_HH

#include <cstdint>
#include <vector>

#include "analysis/metrics.hh"
#include "base/types.hh"
#include "mat/band.hh"
#include "mat/vector.hh"
#include "sim/trace.hh"

namespace sap {

/**
 * Precomputed a-coefficient firing schedule for one band matrix:
 * which coefficient enters which PE on each (lane-local) cycle, in
 * CSR layout — the events of cycle t are
 * events[offsets[t] .. offsets[t+1]).
 *
 * The schedule depends only on the band, so a reusable plan builds
 * it once and every execution streams it instead of re-deriving the
 * firings (modulo checks + banded reads) per cycle.
 */
struct LinearASchedule
{
    struct Event
    {
        Index pe;     ///< destination PE
        Scalar value; ///< the coefficient
    };

    Cycle horizon = -1; ///< last cycle with any event
    std::vector<std::uint32_t> offsets; ///< size horizon + 2
    std::vector<Event> events;          ///< rows() * w entries

    /** Build from an upper band (sub() == 0, super() == w−1). */
    static LinearASchedule build(const Band<Scalar> &abar);
};

/**
 * A band mat-vec problem instance in array-ready form.
 *
 * This is deliberately independent of the DBT layer: a plain band
 * matrix problem is the special case where every b is external and
 * every y is final. The DBT plan fills in the feedback schedule.
 */
struct BandMatVecSpec
{
    /** Upper-band matrix (sub() == 0, super() == w-1). */
    const Band<Scalar> *abar = nullptr;
    /** Transformed input vector x̄ (length abar->cols()). */
    Vec<Scalar> xbar;
    /** Per scalar row: true = inject externalB[i], false = feedback. */
    std::vector<std::uint8_t> bIsExternal;
    /** External injection values (only read where bIsExternal). */
    Vec<Scalar> externalB;
    /** Per scalar row: true = ȳ_i is a final result. */
    std::vector<std::uint8_t> yIsFinal;

    /**
     * Optional precomputed coefficient schedule for abar; when null
     * the driver derives each cycle's firings from abar directly.
     * Must have been built from this spec's abar.
     */
    const LinearASchedule *aSchedule = nullptr;

    /** Array size = bandwidth of abar. */
    Index w() const { return abar->super() + 1; }
    /** Scalar rows. */
    Index rows() const { return abar->rows(); }

    /** Basic shape consistency checks (asserts on failure). */
    void validate() const;
};

/** Result of one driven execution. */
struct LinearRunResult
{
    /** Complete transformed output ȳ (finals and partials). */
    Vec<Scalar> ybar;
    /** Measured statistics. */
    RunStats stats;
    /**
     * Observed feedback delay in cycles (output availability to
     * reuse); the paper's claim is that this equals w.
     */
    Cycle observedFeedbackDelay = -1;
    /** Registers in the feedback chain (delay line depth). */
    Index feedbackRegisters = 0;
    /** Optional port-level event log. */
    Trace trace;
};

/**
 * Execute one band mat-vec problem on the linear array.
 *
 * @param spec Problem in array-ready form.
 * @param record_trace Record port events (Fig. 3 reproduction).
 */
LinearRunResult runBandMatVec(const BandMatVecSpec &spec,
                              bool record_trace = false);

/**
 * As runBandMatVec, additionally recording the per-cycle PE activity
 * bitmap (activity[cycle][pe]). Used by the PE-grouping model to
 * prove realizability.
 */
LinearRunResult
runBandMatVecWithActivity(const BandMatVecSpec &spec,
                          std::vector<std::vector<bool>> &activity);

/**
 * Execute two independent problems on one array, interleaved on
 * alternate cycles (the paper's "overlapping" utilization booster).
 *
 * @pre Both specs share the same bandwidth w.
 * @return Per-problem results plus combined stats; the combined
 *         cycle count realizes T = w·n̄m̄ + 2w − 2 when the two
 *         problems are the halves of one transformed problem.
 */
struct InterleavedRunResult
{
    LinearRunResult first;
    LinearRunResult second;
    RunStats combined;
};

InterleavedRunResult runInterleaved(const BandMatVecSpec &first,
                                    const BandMatVecSpec &second);

} // namespace sap

#endif // SAP_SIM_LINEAR_DRIVER_HH
