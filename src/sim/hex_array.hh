/**
 * @file
 * Cycle-accurate model of the Kung/Leiserson hexagonal systolic
 * array for band matrix-matrix multiplication (the paper's
 * reference /5/), sized w×w as in §3 of the paper.
 *
 * Geometry: PEs are indexed (r, q) with r = the Ā-diagonal a datum
 * travels on (r = k−i) and q = the B̄-diagonal (q = k−j). Streams:
 *
 *   a  moves in −q direction (enters edge q = w−1)
 *   b  moves in −r direction (enters edge r = w−1)
 *   c  moves in +(r,q) diagonal direction (enters edges r=0 / q=0,
 *      exits edges r=w−1 / q=w−1); c rides on C̄-diagonal δ = r−q
 *
 * Every PE computes c' = c + a·b when all three operands are valid;
 * otherwise samples pass through unchanged. All three streams
 * advance one hop per cycle; drivers space items three cycles apart
 * on each stream, which is what caps hexagonal utilization at 1/3.
 *
 * Schedule alignment invariant: at PE (r, q) on cycle τ the three
 * streams can only hold samples belonging to the unique index
 * triple (i, j, k) with k−i = r, k−j = q, i+j+k = τ−(w−1), so a
 * valid MAC always combines true partners (asserted in tests).
 */

#ifndef SAP_SIM_HEX_ARRAY_HH
#define SAP_SIM_HEX_ARRAY_HH

#include <vector>

#include "base/types.hh"
#include "sim/sample.hh"

namespace sap {

/** The hexagonally-connected w×w array. */
class HexArray
{
  public:
    /** @param w Array size (w×w PEs, bandwidth w operands). */
    explicit HexArray(Index w);

    /** Array size. */
    Index size() const { return w_; }
    /** Total PE count A = w². */
    Index peCount() const { return w_ * w_; }

    /** Present the a sample entering row r (edge PE (r, w−1)). */
    void setAIn(Index r, Sample s);
    /** Present the b sample entering column q (edge PE (w−1, q)). */
    void setBIn(Index q, Sample s);
    /**
     * Present the c sample entering C̄-diagonal δ in [−(w−1), w−1]
     * (edge PE (δ, 0) for δ >= 0, (0, −δ) for δ < 0).
     */
    void setCIn(Index delta, Sample s);

    /** Advance one clock cycle (compute, then shift all streams). */
    void step();

    /**
     * The c sample that finished its traversal of diagonal δ during
     * the last step() (registered at exit PE (w−1, w−1−δ) for
     * δ >= 0, (w−1+δ, w−1) for δ < 0).
     */
    Sample cOut(Index delta) const;

    /** Cycles executed. */
    Cycle now() const { return now_; }
    /** Total valid multiply-accumulates performed. */
    Index usefulMacs() const { return useful_macs_; }
    /** Cycle of the first valid MAC (−1 if none yet). */
    Cycle firstMacCycle() const { return first_mac_; }

  private:
    std::size_t idx(Index r, Index q) const
    {
        return static_cast<std::size_t>(r * w_ + q);
    }

    Index w_;
    Cycle now_ = 0;
    Index useful_macs_ = 0;
    Cycle first_mac_ = -1;

    std::vector<Sample> a_reg_; ///< a at output of PE (r,q)
    std::vector<Sample> b_reg_;
    std::vector<Sample> c_reg_;
    std::vector<Sample> a_next_; ///< step() scratch (no per-cycle alloc)
    std::vector<Sample> b_next_;
    std::vector<Sample> c_next_;
    std::vector<Sample> a_in_;  ///< per-row a inputs this cycle
    std::vector<Sample> b_in_;  ///< per-column b inputs this cycle
    std::vector<Sample> c_in_;  ///< per-diagonal c inputs (2w−1)
};

} // namespace sap

#endif // SAP_SIM_HEX_ARRAY_HH
