/**
 * @file
 * Cycle-accurate model of the Kung/Leiserson linear contraflow
 * systolic array for band matrix-vector multiplication (the paper's
 * reference /5/: Mead & Conway §8.3).
 *
 * Geometry: w inner-product-step PEs in a row.
 *
 *   x  ->  PE0  PE1  ...  PE(w-1)  (x moves left-to-right)
 *   y  <-  PE0  PE1  ...  PE(w-1)  (y moves right-to-left)
 *            ^    ^          ^
 *            a-coefficients dropped into each PE from above
 *
 * Per cycle each PE computes y' = y_in + a * x_in when all three
 * operands are valid; otherwise y passes through unchanged. Both
 * streams advance one PE per cycle; the drivers space consecutive
 * data items two cycles apart (the contraflow constraint that caps
 * plain utilization at 1/2).
 */

#ifndef SAP_SIM_LINEAR_ARRAY_HH
#define SAP_SIM_LINEAR_ARRAY_HH

#include <vector>

#include "base/types.hh"
#include "sim/sample.hh"

namespace sap {

/** The linear contraflow array. */
class LinearArray
{
  public:
    /** @param w Number of PEs (the array size). */
    explicit LinearArray(Index w);

    /** Array size (number of PEs). */
    Index size() const { return w_; }

    /** Present the x sample entering PE 0 this cycle. */
    void setXIn(Sample s) { x_in_ = s; }

    /** Present the y sample entering PE w-1 this cycle. */
    void setYIn(Sample s) { y_in_ = s; }

    /** Present the coefficient entering PE @p p this cycle. */
    void setAIn(Index p, Sample s);

    /**
     * Advance one clock cycle: all PEs compute with their current
     * inputs, then every stream register shifts.
     */
    void step();

    /**
     * The y sample that left PE 0 at the end of the *previous*
     * step() (i.e. the registered array output visible this cycle).
     */
    Sample yOut() const { return y_out_; }

    /** The x sample that left PE w-1 (registered). */
    Sample xOut() const { return x_out_; }

    /** Cycles executed so far. */
    Cycle now() const { return now_; }

    /** Total PE-cycles that performed a valid multiply-accumulate. */
    Index usefulMacs() const { return useful_macs_; }

    /** Per-PE count of valid multiply-accumulates. */
    const std::vector<Index> &peMacCounts() const { return pe_macs_; }

    /**
     * Which PEs performed a valid MAC during the last step().
     * Used by the PE-grouping model to verify that paired cells are
     * never busy in the same cycle.
     */
    const std::vector<bool> &lastActivity() const { return last_active_; }

  private:
    Index w_;
    Cycle now_ = 0;
    Index useful_macs_ = 0;

    // Stream registers: value *stored at the output* of each PE.
    std::vector<Sample> x_regs_; ///< x after PE p (moves right)
    std::vector<Sample> y_regs_; ///< y after PE p (moves left)
    std::vector<Sample> a_in_;   ///< coefficient inputs this cycle
    std::vector<Index> pe_macs_;
    std::vector<bool> last_active_;

    Sample x_in_;
    Sample y_in_;
    Sample x_out_;
    Sample y_out_;
};

} // namespace sap

#endif // SAP_SIM_LINEAR_ARRAY_HH
