#include "sim/spiral_feedback.hh"

#include <algorithm>

#include "base/logging.hh"

namespace sap {

SpiralFeedback::SpiralFeedback(Index w) : w_(w)
{
    SAP_ASSERT(w >= 1, "need at least one diagonal");
}

Index
SpiralFeedback::loopOf(Index w, Index delta)
{
    SAP_ASSERT(delta > -w && delta < w, "diagonal ", delta,
               " out of range");
    return delta >= 0 ? delta : delta + w;
}

Index
SpiralFeedback::diagonalPeCount(Index w, Index delta)
{
    return w - (delta >= 0 ? delta : -delta);
}

Index
SpiralFeedback::loopPeCount(Index loop) const
{
    SAP_ASSERT(loop >= 0 && loop < w_, "loop ", loop, " out of range");
    if (loop == 0)
        return diagonalPeCount(w_, 0);
    return diagonalPeCount(w_, loop) +
           diagonalPeCount(w_, loop - w_);
}

void
SpiralFeedback::recordTransfer(Index delta_out, Index delta_in,
                               Cycle exit_cycle, Cycle enter_cycle,
                               bool irregular)
{
    ++transfer_count_;
    Index loop_out = loopOf(w_, delta_out);
    Index loop_in = loopOf(w_, delta_in);
    if (loop_out != loop_in)
        topology_ok_ = false;

    Cycle delay = delayOf(exit_cycle, enter_cycle);
    SAP_ASSERT(delay >= 0, "feedback arrives before it leaves: exit ",
               exit_cycle, " enter ", enter_cycle);

    Interval iv{exit_cycle + 1, enter_cycle - 1, loop_out};
    if (irregular) {
        irregular_delays_.push_back(delay);
        irregular_intervals_.push_back(iv);
    } else if (delta_out == 0) {
        main_diag_delays_.push_back(delay);
        regular_intervals_.push_back(iv);
    } else {
        pair_delays_.push_back(delay);
        regular_intervals_.push_back(iv);
    }
}

Index
SpiralFeedback::peakOf(const std::vector<Interval> &intervals,
                       Index loop_filter)
{
    // Sweep line over hold intervals [from, to].
    std::vector<std::pair<Cycle, int>> events;
    for (const Interval &iv : intervals) {
        if (loop_filter >= 0 && iv.loop != loop_filter)
            continue;
        if (iv.to < iv.from)
            continue; // zero-length hold (delay 0)
        events.push_back({iv.from, +1});
        events.push_back({iv.to + 1, -1});
    }
    std::sort(events.begin(), events.end());
    Index cur = 0, peak = 0;
    for (const auto &[cycle, d] : events) {
        cur += d;
        peak = std::max(peak, cur);
    }
    return peak;
}

Index
SpiralFeedback::peakRegularOccupancy(Index loop) const
{
    return peakOf(regular_intervals_, loop);
}

Index
SpiralFeedback::peakIrregularOccupancy() const
{
    return peakOf(irregular_intervals_, -1);
}

} // namespace sap
