#include "sim/grouped_array.hh"

#include "base/logging.hh"
#include "base/math_util.hh"

namespace sap {

GroupedRunResult
runGrouped(const BandMatVecSpec &spec)
{
    std::vector<std::vector<bool>> activity;
    GroupedRunResult res;
    res.logical = runBandMatVecWithActivity(spec, activity);

    const Index w = spec.w();
    const Index physical = ceilDiv(w, 2);

    // Realizability: within each group {2g, 2g+1}, at most one cell
    // may be busy per cycle (adjacent cells work on opposite
    // parities on the contraflow array).
    res.conflictFree = true;
    for (const auto &mask : activity) {
        for (Index g = 0; g < physical; ++g) {
            Index c0 = 2 * g;
            Index c1 = 2 * g + 1;
            bool b0 = mask[static_cast<std::size_t>(c0)];
            bool b1 = c1 < w && mask[static_cast<std::size_t>(c1)];
            if (b0 && b1) {
                res.conflictFree = false;
                break;
            }
        }
        if (!res.conflictFree)
            break;
    }

    res.grouped = res.logical.stats;
    res.grouped.peCount = physical;
    return res;
}

} // namespace sap
