#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace sap {

std::string
portName(Port p)
{
    switch (p) {
      case Port::XIn:  return "x_in";
      case Port::BIn:  return "b_in";
      case Port::FbIn: return "fb_in";
      case Port::YOut: return "y_out";
      case Port::AIn:  return "a_in";
      case Port::CIn:  return "c_in";
      case Port::COut: return "c_out";
    }
    return "?";
}

bool
portFromName(const std::string &name, Port *out)
{
    for (Port p : {Port::XIn, Port::BIn, Port::FbIn, Port::YOut,
                   Port::AIn, Port::CIn, Port::COut}) {
        if (portName(p) == name) {
            *out = p;
            return true;
        }
    }
    return false;
}

std::vector<TraceEvent>
Trace::onPort(Port p) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : events_)
        if (e.port == p)
            out.push_back(e);
    return out;
}

void
writeCsv(std::ostream &os, const Trace &trace)
{
    os << "cycle,port,index,value\n";
    char value[64];
    for (const TraceEvent &e : trace.events()) {
        // %.17g round-trips every double exactly.
        std::snprintf(value, sizeof(value), "%.17g", e.value);
        os << e.cycle << ',' << portName(e.port) << ',' << e.index
           << ',' << value << '\n';
    }
}

std::string
toCsv(const Trace &trace)
{
    std::ostringstream os;
    writeCsv(os, trace);
    return os.str();
}

namespace {

/** strtoll with a full-consumption check (stoll would throw). */
long long
parseInt(const std::string &s, std::size_t lineno)
{
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    SAP_ASSERT(end != s.c_str() && *end == '\0' && !s.empty(),
               "bad integer '", s, "' in trace CSV row ", lineno);
    return v;
}

/** strtod with a full-consumption check (stod would throw). */
double
parseDouble(const std::string &s, std::size_t lineno)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    SAP_ASSERT(end != s.c_str() && *end == '\0' && !s.empty(),
               "bad value '", s, "' in trace CSV row ", lineno);
    return v;
}

} // namespace

Trace
traceFromCsv(std::istream &is)
{
    Trace trace;
    std::string line;
    bool saw_header = false;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (!saw_header) {
            SAP_ASSERT(line == "cycle,port,index,value",
                       "bad trace CSV header: '", line, "'");
            saw_header = true;
            continue;
        }
        std::istringstream row(line);
        std::string cycle_s, port_s, index_s, value_s;
        bool ok = static_cast<bool>(std::getline(row, cycle_s, ',')) &&
                  static_cast<bool>(std::getline(row, port_s, ',')) &&
                  static_cast<bool>(std::getline(row, index_s, ',')) &&
                  static_cast<bool>(std::getline(row, value_s));
        SAP_ASSERT(ok, "malformed trace CSV row ", lineno, ": '",
                   line, "'");
        Port port;
        SAP_ASSERT(portFromName(port_s, &port),
                   "unknown port '", port_s, "' in trace CSV row ",
                   lineno);
        trace.add(static_cast<Cycle>(parseInt(cycle_s, lineno)), port,
                  static_cast<Index>(parseInt(index_s, lineno)),
                  parseDouble(value_s, lineno));
    }
    SAP_ASSERT(saw_header, "trace CSV has no header line");
    return trace;
}

Trace
traceFromCsv(const std::string &csv)
{
    std::istringstream is(csv);
    return traceFromCsv(is);
}

namespace {

std::string
describeEvent(const TraceEvent &e)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "cycle=%lld port=%s index=%lld "
                  "value=%.17g", (long long)e.cycle,
                  portName(e.port).c_str(), (long long)e.index,
                  e.value);
    return buf;
}

} // namespace

TraceDiff
diffTraces(const Trace &expected, const Trace &actual)
{
    constexpr std::size_t kMaxReported = 16;
    const std::vector<TraceEvent> &ev_a = expected.events();
    const std::vector<TraceEvent> &ev_b = actual.events();

    TraceDiff diff;
    const std::size_t common = std::min(ev_a.size(), ev_b.size());
    for (std::size_t i = 0; i < common; ++i) {
        const TraceEvent &a = ev_a[i];
        const TraceEvent &b = ev_b[i];
        if (a.cycle == b.cycle && a.port == b.port &&
            a.index == b.index && a.value == b.value)
            continue;
        ++diff.mismatches;
        if (diff.lines.size() < kMaxReported)
            diff.lines.push_back("event " + std::to_string(i) +
                                 ": expected " + describeEvent(a) +
                                 " != actual " + describeEvent(b));
    }
    if (ev_a.size() != ev_b.size()) {
        diff.mismatches +=
            std::max(ev_a.size(), ev_b.size()) - common;
        diff.lines.push_back(
            "length: expected " + std::to_string(ev_a.size()) +
            " events != actual " + std::to_string(ev_b.size()));
    }
    diff.identical = diff.mismatches == 0;
    return diff;
}

} // namespace sap
