#include "sim/trace.hh"

namespace sap {

std::string
portName(Port p)
{
    switch (p) {
      case Port::XIn:  return "x_in";
      case Port::BIn:  return "b_in";
      case Port::FbIn: return "fb_in";
      case Port::YOut: return "y_out";
      case Port::AIn:  return "a_in";
      case Port::CIn:  return "c_in";
      case Port::COut: return "c_out";
    }
    return "?";
}

std::vector<TraceEvent>
Trace::onPort(Port p) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : events_)
        if (e.port == p)
            out.push_back(e);
    return out;
}

} // namespace sap
