/**
 * @file
 * PE grouping: the paper's first utilization-raising option
 * ("grouping every 2 PEs in 1").
 *
 * On the contraflow array, adjacent logical cells are busy on
 * opposite cycle parities, so one physical PE can execute two
 * adjacent logical cells without conflicts. The array size halves
 * (A = ⌈w/2⌉) and utilization doubles toward 1.
 *
 * The model runs the logical array and folds the activity of cells
 * (2g, 2g+1) onto physical PE g, asserting cycle-by-cycle that the
 * two cells are never simultaneously busy — i.e. the grouping is
 * physically realizable, not just an accounting trick.
 */

#ifndef SAP_SIM_GROUPED_ARRAY_HH
#define SAP_SIM_GROUPED_ARRAY_HH

#include "analysis/metrics.hh"
#include "sim/linear_driver.hh"

namespace sap {

/** Result of a grouped execution. */
struct GroupedRunResult
{
    /** Underlying logical run (results identical to ungrouped). */
    LinearRunResult logical;
    /** Stats with A = ⌈w/2⌉ physical PEs. */
    RunStats grouped;
    /** True if no cycle had both cells of a group busy. */
    bool conflictFree = false;
};

/**
 * Execute @p spec with 2:1 PE grouping.
 *
 * @param spec Problem in array-ready form.
 */
GroupedRunResult runGrouped(const BandMatVecSpec &spec);

} // namespace sap

#endif // SAP_SIM_GROUPED_ARRAY_HH
