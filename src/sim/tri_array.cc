#include "sim/tri_array.hh"

#include "base/logging.hh"

namespace sap {

TriArray::TriArray(Index w)
    : w_(w), s_regs_(static_cast<std::size_t>(w)),
      a_in_(static_cast<std::size_t>(w)),
      y_(static_cast<std::size_t>(w)),
      y_cycle_(static_cast<std::size_t>(w), -1)
{
    SAP_ASSERT(w >= 1, "array needs at least one cell");
}

void
TriArray::setAIn(Index k, Sample s)
{
    SAP_ASSERT(k >= 0 && k < w_, "cell ", k, " out of range");
    a_in_[static_cast<std::size_t>(k)] = s;
}

Sample
TriArray::y(Index k) const
{
    SAP_ASSERT(k >= 0 && k < w_, "cell ", k, " out of range");
    return y_[static_cast<std::size_t>(k)];
}

Cycle
TriArray::yCapturedAt(Index k) const
{
    SAP_ASSERT(k >= 0 && k < w_, "cell ", k, " out of range");
    return y_cycle_[static_cast<std::size_t>(k)];
}

void
TriArray::step()
{
    // Combinational input wire of cell k: external s_in for k == 0,
    // else s_regs_[k-1]. Iterating right-to-left updates the
    // registers in place: cell k reads s_regs_[k-1] before the
    // k-1 iteration (which runs later) overwrites it.
    for (Index k = w_ - 1; k >= 0; --k) {
        Sample a = a_in_[k];
        Sample s = (k == 0) ? s_in_ : s_regs_[k - 1];
        Sample out;
        if (a.valid && s.valid) {
            if (!y_[k].valid) {
                // First visit: the diagonal element. Capture the
                // solution; the row is done and a bubble continues.
                SAP_ASSERT(a.value != 0, "zero diagonal at cell ", k);
                y_[k] = Sample::of(s.value / a.value);
                y_cycle_[k] = now_;
                out = Sample::bubble();
            } else {
                out = Sample::of(s.value - a.value * y_[k].value);
            }
            ++useful_ops_;
        } else {
            // No coefficient: the partial sum passes through
            // unchanged; a lone coefficient is dropped.
            out = s;
        }
        s_regs_[k] = out;
    }

    // Inputs are consumed; clear for the next cycle.
    s_in_ = Sample::bubble();
    for (Index k = 0; k < w_; ++k)
        a_in_[k] = Sample::bubble();

    ++now_;
}

void
TriArray::clearSolutions()
{
    for (Index k = 0; k < w_; ++k) {
        y_[k] = Sample::bubble();
        y_cycle_[k] = -1;
        s_regs_[k] = Sample::bubble();
    }
    s_in_ = Sample::bubble();
}

} // namespace sap
