#include "sim/mesh_array.hh"

#include "base/logging.hh"
#include "base/math_util.hh"
#include "mat/block.hh"

namespace sap {

MeshArray::MeshArray(Index w)
    : w_(w), acc_(static_cast<std::size_t>(w * w), 0),
      a_reg_(static_cast<std::size_t>(w * w)),
      b_reg_(static_cast<std::size_t>(w * w)),
      a_in_(static_cast<std::size_t>(w)),
      b_in_(static_cast<std::size_t>(w))
{
    SAP_ASSERT(w >= 1, "mesh needs at least one PE");
}

void
MeshArray::setAIn(Index r, Sample s)
{
    SAP_ASSERT(r >= 0 && r < w_, "row ", r, " out of range");
    a_in_[static_cast<std::size_t>(r)] = s;
}

void
MeshArray::setBIn(Index q, Sample s)
{
    SAP_ASSERT(q >= 0 && q < w_, "column ", q, " out of range");
    b_in_[static_cast<std::size_t>(q)] = s;
}

void
MeshArray::loadC(Index r, Index q, Scalar v)
{
    SAP_ASSERT(r >= 0 && r < w_ && q >= 0 && q < w_,
               "PE (", r, ",", q, ") out of range");
    acc_[idx(r, q)] = v;
}

Scalar
MeshArray::c(Index r, Index q) const
{
    SAP_ASSERT(r >= 0 && r < w_ && q >= 0 && q < w_,
               "PE (", r, ",", q, ") out of range");
    return acc_[idx(r, q)];
}

void
MeshArray::step()
{
    // Combinational wires: PE (r,q) sees a from the west (external
    // a_in for q == 0) and b from the north (external b_in for
    // r == 0). Iterating rows and columns in descending order
    // updates both stream registers in place: PE (r,q) reads
    // a_reg_(r,q-1) and b_reg_(r-1,q), which later iterations write.
    for (Index r = w_ - 1; r >= 0; --r) {
        for (Index q = w_ - 1; q >= 0; --q) {
            Sample a = (q == 0) ? a_in_[r] : a_reg_[idx(r, q - 1)];
            Sample b = (r == 0) ? b_in_[q] : b_reg_[idx(r - 1, q)];
            if (a.valid && b.valid) {
                acc_[idx(r, q)] += a.value * b.value;
                ++useful_macs_;
            }
            a_reg_[idx(r, q)] = a;
            b_reg_[idx(r, q)] = b;
        }
    }

    // Inputs are consumed; clear for the next cycle.
    for (Index k = 0; k < w_; ++k) {
        a_in_[k] = Sample::bubble();
        b_in_[k] = Sample::bubble();
    }

    ++now_;
}

MeshMatMulPlan::MeshMatMulPlan(const Dense<Scalar> &a,
                               const Dense<Scalar> &b, Index w)
    : w_(w), n_(a.rows()), p_(a.cols()), m_(b.cols())
{
    SAP_ASSERT(b.rows() == p_, "B rows ", b.rows(), " != A cols ", p_);
    SAP_ASSERT(w >= 1, "mesh side w = ", w, " must be at least 1");
    BlockPartition<Scalar> pa(a, w);
    BlockPartition<Scalar> pb(b, w);
    nbar_ = pa.blockRows();
    pbar_ = pa.blockCols();
    mbar_ = pb.blockCols();
    a_padded_ = pa.padded();
    b_padded_ = pb.padded();
}

MeshRunResult
MeshMatMulPlan::run(const Dense<Scalar> &e, bool record_trace) const
{
    SAP_ASSERT(e.rows() == n_ && e.cols() == m_, "E shape ",
               e.rows(), "x", e.cols(), " != ", n_, "x", m_);

    MeshRunResult res;
    res.c = Dense<Scalar>(n_, m_);
    res.stats.peCount = w_ * w_;

    MeshArray mesh(w_);
    const Index ptot = pbar_ * w_; // concatenated reduction length
    const Cycle pass = ptot + 2 * (w_ - 1);

    for (Index i = 0; i < nbar_; ++i) {
        for (Index j = 0; j < mbar_; ++j) {
            // Preload E (host access to the stationary registers).
            for (Index r = 0; r < w_; ++r) {
                for (Index q = 0; q < w_; ++q) {
                    Index gi = i * w_ + r, gj = j * w_ + q;
                    Scalar v = (gi < n_ && gj < m_) ? e(gi, gj) : 0;
                    mesh.loadC(r, q, v);
                    if (record_trace)
                        res.trace.add(mesh.now(), Port::CIn,
                                      gi * (mbar_ * w_) + gj, v);
                }
            }

            // One streaming pass: row r skewed by r, column q by q,
            // so A(i·w+r, t) meets B(t, j·w+q) at PE (r,q) on
            // pass-cycle t + r + q.
            for (Cycle c = 0; c < pass; ++c) {
                for (Index r = 0; r < w_; ++r) {
                    Index t = static_cast<Index>(c) - r;
                    if (t >= 0 && t < ptot) {
                        Scalar v = a_padded_(i * w_ + r, t);
                        mesh.setAIn(r, Sample::of(v));
                        if (record_trace)
                            res.trace.add(mesh.now(), Port::AIn,
                                          (i * w_ + r) * ptot + t, v);
                    }
                }
                for (Index q = 0; q < w_; ++q) {
                    Index t = static_cast<Index>(c) - q;
                    if (t >= 0 && t < ptot) {
                        Scalar v = b_padded_(t, j * w_ + q);
                        mesh.setBIn(q, Sample::of(v));
                        if (record_trace)
                            res.trace.add(mesh.now(), Port::BIn,
                                          t * (mbar_ * w_) + j * w_ +
                                              q,
                                          v);
                    }
                }
                mesh.step();
            }

            // Drain into C (host access; next pass reloads).
            for (Index r = 0; r < w_; ++r) {
                for (Index q = 0; q < w_; ++q) {
                    Index gi = i * w_ + r, gj = j * w_ + q;
                    if (gi < n_ && gj < m_) {
                        res.c(gi, gj) = mesh.c(r, q);
                        if (record_trace)
                            res.trace.add(mesh.now() - 1, Port::COut,
                                          gi * (mbar_ * w_) + gj,
                                          mesh.c(r, q));
                    }
                }
            }
        }
    }

    res.stats.cycles = mesh.now();
    res.stats.usefulMacs = mesh.usefulMacs();
    return res;
}

} // namespace sap
