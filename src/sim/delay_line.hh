/**
 * @file
 * Fixed-latency register chain (shift register).
 *
 * Models the feedback path of the linear array: the paper implements
 * the y-feedback with `w` registers, giving a delay equal to the
 * array size.
 */

#ifndef SAP_SIM_DELAY_LINE_HH
#define SAP_SIM_DELAY_LINE_HH

#include <vector>

#include "base/logging.hh"
#include "sim/sample.hh"

namespace sap {

/**
 * A chain of @p depth registers: a sample pushed at cycle t emerges
 * from pop() at cycle t + depth (with one push/pop pair per cycle).
 */
class DelayLine
{
  public:
    /** @param depth Number of registers (>= 1). */
    explicit DelayLine(Index depth)
        : regs_(static_cast<std::size_t>(depth))
    {
        SAP_ASSERT(depth >= 1, "delay line needs at least one register");
    }

    /** Number of registers in the chain. */
    Index depth() const { return static_cast<Index>(regs_.size()); }

    /**
     * Advance one cycle: shift in @p in, shift out and return the
     * oldest sample.
     */
    Sample
    shift(Sample in)
    {
        Sample out = regs_.back();
        for (std::size_t i = regs_.size() - 1; i > 0; --i)
            regs_[i] = regs_[i - 1];
        regs_[0] = in;
        return out;
    }

    /** Count of currently valid samples held (storage occupancy). */
    Index
    occupancy() const
    {
        Index n = 0;
        for (const Sample &s : regs_)
            if (s.valid)
                ++n;
        return n;
    }

  private:
    std::vector<Sample> regs_;
};

} // namespace sap

#endif // SAP_SIM_DELAY_LINE_HH
