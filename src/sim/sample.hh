/**
 * @file
 * Valid-bit tracked data samples flowing through the simulated
 * arrays.
 *
 * Utilization is *measured* by counting cycles in which a PE sees
 * valid operands, so the simulator distinguishes real data from
 * pipeline bubbles explicitly instead of using magic values.
 */

#ifndef SAP_SIM_SAMPLE_HH
#define SAP_SIM_SAMPLE_HH

#include "base/types.hh"

namespace sap {

/** One datum on a systolic wire: a value plus a validity flag. */
struct Sample
{
    Scalar value = 0; ///< payload (meaningless when !valid)
    bool valid = false; ///< true if this slot carries real data

    /** An invalid (bubble) sample. */
    static Sample bubble() { return {}; }

    /** A valid sample carrying @p v. */
    static Sample
    of(Scalar v)
    {
        return {v, true};
    }
};

} // namespace sap

#endif // SAP_SIM_SAMPLE_HH
