#include "sim/linear_driver.hh"

#include "base/logging.hh"
#include "sim/delay_line.hh"
#include "sim/linear_array.hh"

namespace sap {

LinearASchedule
LinearASchedule::build(const Band<Scalar> &abar)
{
    SAP_ASSERT(abar.sub() == 0, "a-schedule needs an upper band");
    const Index w = abar.super() + 1;
    const Index rows = abar.rows();

    LinearASchedule s;
    s.horizon = rows == 0 ? -1 : 2 * (rows - 1) + 2 * w - 2;
    s.offsets.assign(static_cast<std::size_t>(s.horizon + 2), 0);
    // a(i, i+d) fires in PE w−1−d at cycle 2i + w − 1 + d: count
    // per cycle, exclusive prefix-sum, then fill (CSR two-pass).
    for (Index i = 0; i < rows; ++i)
        for (Index d = 0; d < w; ++d)
            ++s.offsets[static_cast<std::size_t>(2 * i + w - 1 + d)];
    std::uint32_t total = 0;
    for (std::uint32_t &o : s.offsets) {
        std::uint32_t count = o;
        o = total;
        total += count;
    }
    s.events.resize(total);
    std::vector<std::uint32_t> cursor(s.offsets.begin(),
                                      s.offsets.end());
    for (Index i = 0; i < rows; ++i) {
        for (Index d = 0; d < w; ++d) {
            Cycle t = 2 * i + w - 1 + d;
            s.events[cursor[static_cast<std::size_t>(t)]++] =
                Event{w - 1 - d, abar.at(i, i + d)};
        }
    }
    return s;
}

void
BandMatVecSpec::validate() const
{
    SAP_ASSERT(abar != nullptr, "spec has no band matrix");
    SAP_ASSERT(abar->sub() == 0,
               "mat-vec band must be upper-triangular banded");
    Index w_ = w();
    SAP_ASSERT(abar->cols() == abar->rows() + w_ - 1,
               "band shape must be rows x (rows + w - 1), got ",
               abar->rows(), "x", abar->cols());
    SAP_ASSERT(xbar.size() == abar->cols(), "x̄ length ", xbar.size(),
               " != band cols ", abar->cols());
    SAP_ASSERT(static_cast<Index>(bIsExternal.size()) == rows(),
               "bIsExternal size mismatch");
    SAP_ASSERT(static_cast<Index>(yIsFinal.size()) == rows(),
               "yIsFinal size mismatch");
    SAP_ASSERT(externalB.size() == rows(), "externalB size mismatch");
    // The first scalar row can never be fed back (nothing precedes it).
    for (Index i = 0; i < std::min(rows(), w_); ++i)
        SAP_ASSERT(bIsExternal[i],
                   "row ", i, " wants feedback before any output");
    if (aSchedule)
        SAP_ASSERT(static_cast<Index>(aSchedule->events.size()) ==
                       rows() * w_,
                   "a-schedule does not cover this band");
}

namespace {

/** Per-problem bookkeeping for (possibly interleaved) execution. */
struct Lane
{
    const BandMatVecSpec *spec;
    Index offset;             // cycle offset of this lane (0 or 1)
    Vec<Scalar> ybar;         // collected outputs
    std::vector<Cycle> outputCycle; // when ȳ_i was computed
    Cycle observedDelay = -1; // measured feedback delay
    Cycle lastOutput = -1;    // completion cycle (0-based)
    Trace trace;
    bool record;
};

/** Shared execution engine for one or two interleaved lanes. */
void
runLanes(std::vector<Lane> &lanes, LinearArray &array, DelayLine &fb_line,
         std::vector<std::vector<bool>> *activity_log = nullptr)
{
    const Index w = array.size();

    Cycle horizon = 0;
    for (const Lane &lane : lanes) {
        Cycle last = 2 * (lane.spec->rows() - 1) + 2 * w - 2 +
                     lane.offset;
        horizon = std::max(horizon, last);
    }

    Sample fb_pending = Sample::bubble();
    for (Cycle tau = 0; tau <= horizon; ++tau) {
        for (Lane &lane : lanes) {
            const BandMatVecSpec &spec = *lane.spec;
            const Index rows = spec.rows();
            const Index cols = spec.abar->cols();
            const Cycle t = tau - lane.offset;

            // x stream: x_j enters PE 0 at t = 2j.
            if (t >= 0 && t % 2 == 0 && t / 2 < cols) {
                Index j = t / 2;
                array.setXIn(Sample::of(spec.xbar[j]));
                if (lane.record)
                    lane.trace.add(tau, Port::XIn, j, spec.xbar[j]);
            }

            // y stream: b̄_i enters PE w-1 at t = 2i + w - 1.
            Cycle ty = t - (w - 1);
            if (ty >= 0 && ty % 2 == 0 && ty / 2 < rows) {
                Index i = ty / 2;
                if (spec.bIsExternal[i]) {
                    array.setYIn(Sample::of(spec.externalB[i]));
                    if (lane.record)
                        lane.trace.add(tau, Port::BIn, i,
                                       spec.externalB[i]);
                } else {
                    SAP_ASSERT(fb_pending.valid,
                               "feedback bubble at row ", i,
                               " cycle ", tau);
                    array.setYIn(fb_pending);
                    // ȳ_{i-w} was computed at 2(i-w)+2w-2 (+offset);
                    // it re-enters (as a wire input) now.
                    Cycle computed = 2 * (i - w) + 2 * w - 2 +
                                     lane.offset;
                    Cycle delay = tau - computed - 1;
                    if (lane.observedDelay < 0)
                        lane.observedDelay = delay;
                    SAP_ASSERT(lane.observedDelay == delay,
                               "feedback delay must be constant");
                    if (lane.record)
                        lane.trace.add(tau, Port::FbIn, i,
                                       fb_pending.value);
                }
            }

            // a coefficients: diagonal d = w-1-p into PE p at
            // t = 2i + 2w - 2 - p. A precomputed schedule (reusable
            // plans) replaces the per-cycle derivation.
            if (const LinearASchedule *as = spec.aSchedule) {
                if (t >= 0 && t <= as->horizon) {
                    std::size_t tc = static_cast<std::size_t>(t);
                    for (std::uint32_t k = as->offsets[tc];
                         k < as->offsets[tc + 1]; ++k)
                        array.setAIn(as->events[k].pe,
                                     Sample::of(as->events[k].value));
                }
            } else {
                for (Index p = 0; p < w; ++p) {
                    Cycle ta = t - (2 * w - 2 - p);
                    if (ta >= 0 && ta % 2 == 0 && ta / 2 < rows) {
                        Index i = ta / 2;
                        Index d = w - 1 - p;
                        array.setAIn(p,
                                     Sample::of(spec.abar->at(i, i + d)));
                    }
                }
            }
        }

        array.step();
        if (activity_log)
            activity_log->push_back(array.lastActivity());
        Sample out = array.yOut();

        for (Lane &lane : lanes) {
            const Cycle t = tau - lane.offset;
            Cycle to = t - (2 * w - 2);
            if (to >= 0 && to % 2 == 0 && to / 2 < lane.spec->rows()) {
                Index i = to / 2;
                SAP_ASSERT(out.valid, "missing output for row ", i,
                           " at cycle ", tau);
                lane.ybar[i] = out.value;
                lane.outputCycle[i] = tau;
                lane.lastOutput = tau;
                if (lane.record)
                    lane.trace.add(tau, Port::YOut, i, out.value);
            }
        }

        // Feedback path: everything that leaves the array enters the
        // register chain; the schedule decides what gets reused.
        fb_pending = fb_line.shift(out);
    }
}

LinearRunResult
makeResult(const Lane &lane, const LinearArray &array, Index fb_regs)
{
    LinearRunResult res;
    res.ybar = lane.ybar;
    res.stats.cycles = lane.lastOutput + 1; // 0-based -> step count
    res.stats.peCount = array.size();
    // Every in-band element fires exactly one MAC.
    res.stats.usefulMacs = lane.spec->rows() * array.size();
    res.observedFeedbackDelay = lane.observedDelay;
    res.feedbackRegisters = fb_regs;
    res.trace = lane.trace;
    return res;
}

} // namespace

LinearRunResult
runBandMatVec(const BandMatVecSpec &spec, bool record_trace)
{
    spec.validate();
    const Index w = spec.w();
    LinearArray array(w);
    DelayLine fb_line(w);

    std::vector<Lane> lanes(1);
    lanes[0] = Lane{&spec, 0, Vec<Scalar>(spec.rows()),
                    std::vector<Cycle>(spec.rows(), -1), -1, -1, Trace{},
                    record_trace};
    runLanes(lanes, array, fb_line);

    LinearRunResult res = makeResult(lanes[0], array, fb_line.depth());
    SAP_ASSERT(array.usefulMacs() == spec.rows() * w,
               "MAC count mismatch: ", array.usefulMacs(), " vs ",
               spec.rows() * w);
    return res;
}

LinearRunResult
runBandMatVecWithActivity(const BandMatVecSpec &spec,
                          std::vector<std::vector<bool>> &activity)
{
    spec.validate();
    const Index w = spec.w();
    LinearArray array(w);
    DelayLine fb_line(w);

    std::vector<Lane> lanes(1);
    lanes[0] = Lane{&spec, 0, Vec<Scalar>(spec.rows()),
                    std::vector<Cycle>(spec.rows(), -1), -1, -1, Trace{},
                    false};
    activity.clear();
    runLanes(lanes, array, fb_line, &activity);
    return makeResult(lanes[0], array, fb_line.depth());
}

InterleavedRunResult
runInterleaved(const BandMatVecSpec &first, const BandMatVecSpec &second)
{
    first.validate();
    second.validate();
    SAP_ASSERT(first.w() == second.w(),
               "interleaved problems must share the array size");
    const Index w = first.w();
    LinearArray array(w);
    DelayLine fb_line(w);

    std::vector<Lane> lanes(2);
    lanes[0] = Lane{&first, 0, Vec<Scalar>(first.rows()),
                    std::vector<Cycle>(first.rows(), -1), -1, -1,
                    Trace{}, false};
    lanes[1] = Lane{&second, 1, Vec<Scalar>(second.rows()),
                    std::vector<Cycle>(second.rows(), -1), -1, -1,
                    Trace{}, false};
    runLanes(lanes, array, fb_line);

    InterleavedRunResult res;
    res.first = makeResult(lanes[0], array, fb_line.depth());
    res.second = makeResult(lanes[1], array, fb_line.depth());
    res.combined.cycles =
        std::max(lanes[0].lastOutput, lanes[1].lastOutput) + 1;
    res.combined.peCount = w;
    res.combined.usefulMacs = array.usefulMacs();
    SAP_ASSERT(res.combined.usefulMacs ==
                   (first.rows() + second.rows()) * w,
               "interleaved MAC count mismatch");
    return res;
}

} // namespace sap
