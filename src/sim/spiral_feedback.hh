/**
 * @file
 * Spiral feedback topology and storage accounting for the hexagonal
 * array (§3 / Fig. 5 of the paper, "spiral systolic arrays" after
 * S.Y. Kung).
 *
 * Topology: the C̄-band has 2w−1 diagonals. The main diagonal
 * (δ = 0) feeds back onto itself; super-diagonal δ in [1, w−1] is
 * paired with sub-diagonal δ−w so that every feedback loop passes
 * through exactly w PEs:
 *
 *   PEs(δ) + PEs(δ−w) = (w−δ) + (w−(w−δ)) = w
 *
 * The class also acts as the measurement harness for the paper's
 * feedback claims: every transfer (an output datum re-entering as a
 * later input) is recorded with its exit/re-entry cycles, and the
 * aggregate statistics expose the observed delays (regular = w,
 * main diagonal = 2w, plus the two irregular classes) and the peak
 * number of in-flight values (= required memory elements: paper
 * claims 2w for the main diagonal, w per sub-diagonal pair, and a
 * w(w−1)·3/2 pool for the irregular feedbacks).
 */

#ifndef SAP_SIM_SPIRAL_FEEDBACK_HH
#define SAP_SIM_SPIRAL_FEEDBACK_HH

#include <map>
#include <vector>

#include "base/types.hh"

namespace sap {

/** Records and audits all feedback transfers of one execution. */
class SpiralFeedback
{
  public:
    explicit SpiralFeedback(Index w);

    /** Loop id of diagonal δ: δ for δ >= 0, δ+w for δ < 0. */
    static Index loopOf(Index w, Index delta);

    /** Number of PEs traversed by C̄-diagonal δ: w − |δ|. */
    static Index diagonalPeCount(Index w, Index delta);

    /**
     * PEs in loop @p loop (main diagonal or a paired sub/super
     * diagonal); the paper's claim is that this is always w.
     */
    Index loopPeCount(Index loop) const;

    /** Number of loops: w (main diagonal + w−1 pairs). */
    Index loopCount() const { return w_; }

    /**
     * Record one transfer.
     *
     * @param delta_out Diagonal on which the datum left the array.
     * @param delta_in Diagonal on which it re-enters.
     * @param exit_cycle Cycle after which it was available outside.
     * @param enter_cycle Cycle during which it re-enters.
     * @param irregular True for the long-delay feedback classes.
     */
    void recordTransfer(Index delta_out, Index delta_in,
                        Cycle exit_cycle, Cycle enter_cycle,
                        bool irregular);

    /** Delay convention: cycles spent outside the array. */
    static Cycle
    delayOf(Cycle exit_cycle, Cycle enter_cycle)
    {
        return enter_cycle - exit_cycle - 1;
    }

    /** True if every transfer stayed inside its spiral loop. */
    bool topologyRespected() const { return topology_ok_; }

    /** All regular-transfer delays observed on the main diagonal. */
    const std::vector<Cycle> &mainDiagDelays() const
    {
        return main_diag_delays_;
    }
    /** Regular delays on the sub/super diagonal pairs. */
    const std::vector<Cycle> &pairDelays() const { return pair_delays_; }
    /** Delays of the irregular transfers. */
    const std::vector<Cycle> &irregularDelays() const
    {
        return irregular_delays_;
    }

    /**
     * Peak number of simultaneously in-flight regular values in
     * loop @p loop (the required register count of that loop).
     */
    Index peakRegularOccupancy(Index loop) const;

    /** Peak in-flight irregular values across all loops (the
     *  paper's shared irregular pool). */
    Index peakIrregularOccupancy() const;

    /** Total transfers recorded. */
    Index transferCount() const { return transfer_count_; }

  private:
    struct Interval
    {
        Cycle from; ///< first cycle the value is held outside
        Cycle to;   ///< last cycle it is held
        Index loop;
    };

    static Index peakOf(const std::vector<Interval> &intervals,
                        Index loop_filter);

    Index w_;
    bool topology_ok_ = true;
    Index transfer_count_ = 0;
    std::vector<Cycle> main_diag_delays_;
    std::vector<Cycle> pair_delays_;
    std::vector<Cycle> irregular_delays_;
    std::vector<Interval> regular_intervals_;
    std::vector<Interval> irregular_intervals_;
};

} // namespace sap

#endif // SAP_SIM_SPIRAL_FEEDBACK_HH
