/**
 * @file
 * Port-level event traces of a systolic execution.
 *
 * The Fig. 3 reproduction prints, for every clock, which data enter
 * and leave the array. The simulator records neutral events (port,
 * transformed scalar index, value); the DBT layer re-labels indices
 * in the paper's notation.
 */

#ifndef SAP_SIM_TRACE_HH
#define SAP_SIM_TRACE_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace sap {

/** Logical I/O ports of the simulated arrays. */
enum class Port
{
    XIn,       ///< x stream input (linear array PE 0)
    BIn,       ///< external b injection on the y input
    FbIn,      ///< fed-back partial result on the y input
    YOut,      ///< y stream output (final or recirculated)
    AIn,       ///< coefficient input (any PE)
    CIn,       ///< hex array c/E input
    COut,      ///< hex array c output
};

/** Printable port name. */
std::string portName(Port p);

/** One I/O event. */
struct TraceEvent
{
    Cycle cycle;  ///< 0-based clock of the event
    Port port;    ///< which port
    Index index;  ///< transformed scalar index on that stream
    Scalar value; ///< payload
};

/** Append-only event log. */
class Trace
{
  public:
    /** Record one event. */
    void
    add(Cycle cycle, Port port, Index index, Scalar value)
    {
        events_.push_back({cycle, port, index, value});
    }

    /** All recorded events in insertion order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events on one port, in time order. */
    std::vector<TraceEvent> onPort(Port p) const;

    bool empty() const { return events_.empty(); }

  private:
    std::vector<TraceEvent> events_;
};

} // namespace sap

#endif // SAP_SIM_TRACE_HH
