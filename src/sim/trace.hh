/**
 * @file
 * Port-level event traces of a systolic execution.
 *
 * The Fig. 3 reproduction prints, for every clock, which data enter
 * and leave the array. The simulator records neutral events (port,
 * transformed scalar index, value); the DBT layer re-labels indices
 * in the paper's notation.
 */

#ifndef SAP_SIM_TRACE_HH
#define SAP_SIM_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"

namespace sap {

/** Logical I/O ports of the simulated arrays. */
enum class Port
{
    XIn,       ///< x stream input (linear array PE 0)
    BIn,       ///< external b injection on the y input
    FbIn,      ///< fed-back partial result on the y input
    YOut,      ///< y stream output (final or recirculated)
    AIn,       ///< coefficient input (any PE)
    CIn,       ///< hex array c/E input
    COut,      ///< hex array c output
};

/** Printable port name. */
std::string portName(Port p);

/** One I/O event. */
struct TraceEvent
{
    Cycle cycle;  ///< 0-based clock of the event
    Port port;    ///< which port
    Index index;  ///< transformed scalar index on that stream
    Scalar value; ///< payload
};

/** Append-only event log. */
class Trace
{
  public:
    /** Record one event. */
    void
    add(Cycle cycle, Port port, Index index, Scalar value)
    {
        events_.push_back({cycle, port, index, value});
    }

    /** All recorded events in insertion order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events on one port, in time order. */
    std::vector<TraceEvent> onPort(Port p) const;

    bool empty() const { return events_.empty(); }

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Parse a printable port name back to the enum.
 *
 * @return false (leaving @p out untouched) for unknown names.
 */
bool portFromName(const std::string &name, Port *out);

//---------------------------------------------------------------------
// CSV serialization + trace diffing: the schedule-regression tooling.
// A serialized trace checked into CI plus diffTraces() makes any
// change to the port-level schedule visible as a reviewable diff.
//---------------------------------------------------------------------

/**
 * Serialize @p trace as CSV with the header
 * `cycle,port,index,value`, one event per line in insertion order.
 * Values are printed with enough digits to round-trip doubles.
 */
void writeCsv(std::ostream &os, const Trace &trace);

/** @copydoc writeCsv(std::ostream&, const Trace&) */
std::string toCsv(const Trace &trace);

/**
 * Parse a trace back from the CSV produced by writeCsv().
 * Asserts on malformed rows or unknown port names.
 */
Trace traceFromCsv(std::istream &is);

/** @copydoc traceFromCsv(std::istream&) */
Trace traceFromCsv(const std::string &csv);

/** Outcome of comparing two traces event-by-event. */
struct TraceDiff
{
    /** True when both traces have identical event sequences. */
    bool identical = true;
    /** Total number of differing event positions (incl. length). */
    std::size_t mismatches = 0;
    /**
     * Human-readable descriptions of the first few mismatches
     * (capped so a completely divergent trace stays printable).
     */
    std::vector<std::string> lines;
};

/**
 * Compare two traces event-by-event (cycle, port, index, value).
 *
 * Insertion order is significant: two traces that record the same
 * events in a different order are different schedules.
 */
TraceDiff diffTraces(const Trace &expected, const Trace &actual);

} // namespace sap

#endif // SAP_SIM_TRACE_HH
