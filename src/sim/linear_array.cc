#include "sim/linear_array.hh"

#include "base/logging.hh"

namespace sap {

LinearArray::LinearArray(Index w)
    : w_(w), x_regs_(static_cast<std::size_t>(w)),
      y_regs_(static_cast<std::size_t>(w)),
      a_in_(static_cast<std::size_t>(w)),
      pe_macs_(static_cast<std::size_t>(w), 0),
      last_active_(static_cast<std::size_t>(w), false)
{
    SAP_ASSERT(w >= 1, "array needs at least one PE");
}

void
LinearArray::setAIn(Index p, Sample s)
{
    SAP_ASSERT(p >= 0 && p < w_, "PE ", p, " out of range");
    a_in_[static_cast<std::size_t>(p)] = s;
}

void
LinearArray::step()
{
    // Combinational input wires for this cycle.
    //   x wire of PE p: external x_in for p == 0, else x_regs_[p-1].
    //   y wire of PE p: external y_in for p == w-1, else y_regs_[p+1].
    //
    // Both passes update the stream registers in place — this is the
    // simulator's hottest loop and must not allocate per cycle. The
    // ascending y pass may write y_regs_[p] before reading
    // y_regs_[p+1] because iteration p only reads the register that
    // iteration p+1 writes; the x shift runs afterwards so the x
    // wires above still see the pre-shift registers.
    for (Index p = 0; p < w_; ++p) {
        Sample a = a_in_[p];
        Sample x = (p == 0) ? x_in_ : x_regs_[p - 1];
        Sample y = (p == w_ - 1) ? y_in_ : y_regs_[p + 1];
        last_active_[p] = a.valid && x.valid && y.valid;
        if (last_active_[p]) {
            y_regs_[p] = Sample::of(y.value + a.value * x.value);
            ++useful_macs_;
            ++pe_macs_[p];
        } else {
            // No coefficient (or no partner): the y sample passes
            // through unchanged; a lone coefficient is dropped.
            y_regs_[p] = y;
        }
    }
    y_out_ = y_regs_[0];

    // Commit the x shift (synchronous update).
    x_out_ = x_regs_[w_ - 1];
    for (Index p = w_ - 1; p > 0; --p)
        x_regs_[p] = x_regs_[p - 1];
    x_regs_[0] = x_in_;

    // Inputs are consumed; clear for the next cycle.
    x_in_ = Sample::bubble();
    y_in_ = Sample::bubble();
    for (Index p = 0; p < w_; ++p)
        a_in_[p] = Sample::bubble();

    ++now_;
}

} // namespace sap
