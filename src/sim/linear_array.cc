#include "sim/linear_array.hh"

#include "base/logging.hh"

namespace sap {

LinearArray::LinearArray(Index w)
    : w_(w), x_regs_(static_cast<std::size_t>(w)),
      y_regs_(static_cast<std::size_t>(w)),
      a_in_(static_cast<std::size_t>(w)),
      pe_macs_(static_cast<std::size_t>(w), 0),
      last_active_(static_cast<std::size_t>(w), false)
{
    SAP_ASSERT(w >= 1, "array needs at least one PE");
}

void
LinearArray::setAIn(Index p, Sample s)
{
    SAP_ASSERT(p >= 0 && p < w_, "PE ", p, " out of range");
    a_in_[static_cast<std::size_t>(p)] = s;
}

void
LinearArray::step()
{
    // Combinational input wires for this cycle.
    //   x wire of PE p: external x_in for p == 0, else x_regs_[p-1].
    //   y wire of PE p: external y_in for p == w-1, else y_regs_[p+1].
    std::vector<Sample> x_wire(static_cast<std::size_t>(w_));
    std::vector<Sample> y_wire(static_cast<std::size_t>(w_));
    for (Index p = 0; p < w_; ++p) {
        x_wire[p] = (p == 0) ? x_in_ : x_regs_[p - 1];
        y_wire[p] = (p == w_ - 1) ? y_in_ : y_regs_[p + 1];
    }

    // Compute: inner product step in every PE.
    std::vector<Sample> y_next(static_cast<std::size_t>(w_));
    for (Index p = 0; p < w_; ++p) {
        Sample a = a_in_[p];
        Sample x = x_wire[p];
        Sample y = y_wire[p];
        last_active_[p] = a.valid && x.valid && y.valid;
        if (a.valid && x.valid && y.valid) {
            y_next[p] = Sample::of(y.value + a.value * x.value);
            ++useful_macs_;
            ++pe_macs_[p];
        } else {
            // No coefficient (or no partner): the y sample passes
            // through unchanged; a lone coefficient is dropped.
            y_next[p] = y;
        }
    }

    // Commit registers (synchronous update).
    x_out_ = x_regs_[w_ - 1];
    y_out_ = y_next[0];
    for (Index p = w_ - 1; p > 0; --p)
        x_regs_[p] = x_regs_[p - 1];
    x_regs_[0] = x_in_;
    for (Index p = 0; p < w_; ++p)
        y_regs_[p] = y_next[p];

    // Inputs are consumed; clear for the next cycle.
    x_in_ = Sample::bubble();
    y_in_ = Sample::bubble();
    for (Index p = 0; p < w_; ++p)
        a_in_[p] = Sample::bubble();

    ++now_;
}

} // namespace sap
