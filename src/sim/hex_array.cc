#include "sim/hex_array.hh"

#include "base/logging.hh"

namespace sap {

HexArray::HexArray(Index w)
    : w_(w),
      a_reg_(static_cast<std::size_t>(w * w)),
      b_reg_(static_cast<std::size_t>(w * w)),
      c_reg_(static_cast<std::size_t>(w * w)),
      a_next_(static_cast<std::size_t>(w * w)),
      b_next_(static_cast<std::size_t>(w * w)),
      c_next_(static_cast<std::size_t>(w * w)),
      a_in_(static_cast<std::size_t>(w)),
      b_in_(static_cast<std::size_t>(w)),
      c_in_(static_cast<std::size_t>(2 * w - 1))
{
    SAP_ASSERT(w >= 1, "hex array needs at least one PE");
}

void
HexArray::setAIn(Index r, Sample s)
{
    SAP_ASSERT(r >= 0 && r < w_, "a row ", r, " out of range");
    a_in_[static_cast<std::size_t>(r)] = s;
}

void
HexArray::setBIn(Index q, Sample s)
{
    SAP_ASSERT(q >= 0 && q < w_, "b column ", q, " out of range");
    b_in_[static_cast<std::size_t>(q)] = s;
}

void
HexArray::setCIn(Index delta, Sample s)
{
    SAP_ASSERT(delta > -w_ && delta < w_, "diagonal ", delta,
               " out of range");
    c_in_[static_cast<std::size_t>(delta + w_ - 1)] = s;
}

Sample
HexArray::cOut(Index delta) const
{
    SAP_ASSERT(delta > -w_ && delta < w_, "diagonal ", delta,
               " out of range");
    Index r = delta >= 0 ? w_ - 1 : w_ - 1 + delta;
    Index q = delta >= 0 ? w_ - 1 - delta : w_ - 1;
    return c_reg_[idx(r, q)];
}

void
HexArray::step()
{
    // Member scratch buffers: step() is the hot loop and must not
    // allocate per cycle. Every cell is overwritten below, so the
    // stale contents left by the previous swap never leak through.
    std::vector<Sample> &a_next = a_next_;
    std::vector<Sample> &b_next = b_next_;
    std::vector<Sample> &c_next = c_next_;

    for (Index r = 0; r < w_; ++r) {
        for (Index q = 0; q < w_; ++q) {
            // Combinational input wires of PE (r, q).
            Sample a = (q == w_ - 1) ? a_in_[r] : a_reg_[idx(r, q + 1)];
            Sample b = (r == w_ - 1) ? b_in_[q] : b_reg_[idx(r + 1, q)];
            Sample c;
            if (r == 0 || q == 0)
                c = c_in_[static_cast<std::size_t>((r - q) + w_ - 1)];
            else
                c = c_reg_[idx(r - 1, q - 1)];

            // Inner product step.
            Sample c_out = c;
            if (a.valid && b.valid && c.valid) {
                c_out = Sample::of(c.value + a.value * b.value);
                ++useful_macs_;
                if (first_mac_ < 0)
                    first_mac_ = now_;
            }

            a_next[idx(r, q)] = a;
            b_next[idx(r, q)] = b;
            c_next[idx(r, q)] = c_out;
        }
    }

    a_reg_.swap(a_next);
    b_reg_.swap(b_next);
    c_reg_.swap(c_next);

    for (Index r = 0; r < w_; ++r)
        a_in_[r] = Sample::bubble();
    for (Index q = 0; q < w_; ++q)
        b_in_[q] = Sample::bubble();
    for (Index dlt = 0; dlt < 2 * w_ - 1; ++dlt)
        c_in_[static_cast<std::size_t>(dlt)] = Sample::bubble();

    ++now_;
}

} // namespace sap
