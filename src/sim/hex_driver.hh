/**
 * @file
 * Input scheduling and execution driver for band matrix-matrix
 * multiplication on the hexagonal array.
 *
 * Schedule (derived in DESIGN.md §4.4; 0-based cycles with a global
 * staging offset of w−1 so that all stream items can enter at the
 * array edges):
 *
 *   MAC for (i, j, k)  fires in PE (k−i, k−j) at τ = i+j+k + (w−1)
 *   a(i, k)  enters row r = k−i   at τ = i + 2k
 *   b(k, j)  enters col q = k−j   at τ = 2k + j
 *   c(i, j)  enters diagonal δ = j−i at τ = i + j + max(i,j) + w−1
 *   c(i, j)  exits after step       τ = i + j + min(i,j) + 2w−2
 *
 * The paper's step count T = 3w·p̄n̄m̄ + 4w − 5 counts from the first
 * useful MAC to the last exit (inclusive); the driver measures both
 * this and the raw edge-to-edge cycle count.
 */

#ifndef SAP_SIM_HEX_DRIVER_HH
#define SAP_SIM_HEX_DRIVER_HH

#include <functional>

#include "analysis/metrics.hh"
#include "base/types.hh"
#include "mat/band.hh"
#include "mat/dense.hh"

namespace sap {

/**
 * A band mat-mul problem in array-ready form: O = band(Ā·B̄) + I.
 *
 * The input band I and output band O are 2w−1 wide. `inputValue`
 * abstracts where I comes from: for a plain product it reads a
 * constant band; for the DBT plan it implements the Appendix
 * composition (E or fed-back O values).
 */
struct HexBandSpec
{
    /** Upper band Ā (square, sub()==0, super()==w−1). */
    const Band<Scalar> *abar = nullptr;
    /** Lower band B̄ (square, sub()==w−1, super()==0). */
    const Band<Scalar> *bbar = nullptr;

    /**
     * I-band value for position (i, j); called exactly once per
     * in-band position, in nondecreasing injection-time order.
     */
    std::function<Scalar(Index i, Index j)> inputValue;

    /**
     * Observer invoked when the O-band value at (i, j) leaves the
     * array after cycle `exit_cycle`.
     */
    std::function<void(Index i, Index j, Scalar v, Cycle exit_cycle)>
        onOutput;

    /** Array size = bandwidth. */
    Index w() const { return abar->super() + 1; }
    /** Scalar order N. */
    Index order() const { return abar->rows(); }

    /** Shape consistency checks (asserts on failure). */
    void validate() const;
};

/** Result of one hexagonal execution. */
struct HexRunResult
{
    /** Measured statistics; cycles uses the paper's convention
     *  (first MAC to last exit, inclusive). */
    RunStats stats;
    /** Raw edge-to-edge cycles executed. */
    Cycle totalCycles = 0;
    /** Cycle of the first useful MAC. */
    Cycle firstMac = -1;
    /** Cycle after which the last O item left the array. */
    Cycle lastExit = -1;
};

/**
 * Precomputed per-cycle I/O event lists of one (Ā, B̄) pair: which
 * a/b values enter which ports and which c positions enter/exit, by
 * cycle. Everything here depends only on the bands (never on E or
 * the feedback values), so a reusable plan builds the schedule once
 * and every execution streams it — the per-run schedule rebuild was
 * a significant slice of the execution cost.
 */
struct HexIoSchedule
{
    struct AEvent
    {
        Index port;   ///< row (a) or column (b) edge port
        Scalar value; ///< band element
    };
    struct CEvent
    {
        Index i, j; ///< scalar O/I-band position
    };

    Cycle horizon = -1; ///< last scheduled cycle
    std::vector<std::vector<AEvent>> aEvents; ///< per cycle
    std::vector<std::vector<AEvent>> bEvents;
    std::vector<std::vector<CEvent>> cEvents; ///< injections
    std::vector<std::vector<CEvent>> oEvents; ///< extractions

    /** Build from the band pair (validated like HexBandSpec). */
    static HexIoSchedule build(const Band<Scalar> &abar,
                               const Band<Scalar> &bbar);
};

/**
 * Execute one band mat-mul problem on the hexagonal array.
 * Input/output routing is delegated to the spec's callbacks.
 */
HexRunResult runHexBandMatMul(const HexBandSpec &spec);

/**
 * Same, with a prebuilt event schedule.
 *
 * @pre @p sched was built from @p spec's bands (spot-checked by
 *      shape assertions).
 */
HexRunResult runHexBandMatMul(const HexIoSchedule &sched,
                              const HexBandSpec &spec);

} // namespace sap

#endif // SAP_SIM_HEX_DRIVER_HH
