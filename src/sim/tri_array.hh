/**
 * @file
 * Cycle-accurate model of the linear back-substitution array for
 * triangular systems of linear equations — the §4 application of the
 * paper ("Triangular systems of linear and matrix equations"), after
 * the Kung/Leiserson linear-time triangular-system design surveyed
 * in the systolic literature.
 *
 * Geometry: w cells in a row, one per unknown of a w-wide block.
 *
 *   s  ->  cell0  cell1  ...  cell(w-1)   (partial sums move right)
 *            ^      ^            ^
 *            L-coefficients dropped into each cell from above
 *
 * Cell k is *solution-stationary*: the first time it sees a valid
 * (coefficient, partial-sum) pair the coefficient is the diagonal
 * element l_kk, so it divides, captures y_k = s / l_kk, and retires
 * that row (a bubble continues). Every later visit carries a
 * subdiagonal coefficient l_ik (i > k) and the cell forwards
 * s' = s − l_ik · y_k. A row i therefore enters cell 0 as s = b_i,
 * sheds one term per cell, and dies at cell i where y_i is born.
 *
 * Rows pipeline back-to-back (one per cycle): row i reaches cell k
 * at cycle i + k, while y_k was captured at cycle 2k < i + k, so
 * every subtraction finds its stored solution already valid. A full
 * w×w block solve takes 2w − 1 cycles.
 */

#ifndef SAP_SIM_TRI_ARRAY_HH
#define SAP_SIM_TRI_ARRAY_HH

#include <vector>

#include "base/types.hh"
#include "sim/sample.hh"

namespace sap {

/** The linear back-substitution array. */
class TriArray
{
  public:
    /** @param w Number of cells (the array size). */
    explicit TriArray(Index w);

    /** Array size (number of cells). */
    Index size() const { return w_; }

    /** Present the partial sum entering cell 0 this cycle. */
    void setSIn(Sample s) { s_in_ = s; }

    /** Present the coefficient entering cell @p k this cycle. */
    void setAIn(Index k, Sample s);

    /**
     * Advance one clock cycle: all cells compute with their current
     * inputs, then the partial-sum registers shift right.
     */
    void step();

    /**
     * The solution stored in cell @p k (invalid until the diagonal
     * coefficient has passed through).
     */
    Sample y(Index k) const;

    /** Cycle in which cell @p k captured its solution (−1 if none). */
    Cycle yCapturedAt(Index k) const;

    /** Cycles executed so far. */
    Cycle now() const { return now_; }

    /** Cell-cycles that performed a useful divide or MAC. */
    Index usefulOps() const { return useful_ops_; }

    /**
     * Forget the stored solutions and in-flight partial sums so the
     * array can start the next diagonal block; the cycle and op
     * counters keep accumulating (it is the same hardware).
     */
    void clearSolutions();

  private:
    Index w_;
    Cycle now_ = 0;
    Index useful_ops_ = 0;

    std::vector<Sample> s_regs_; ///< partial sum at output of cell k
    std::vector<Sample> a_in_;   ///< coefficient inputs this cycle
    std::vector<Sample> y_;      ///< captured solutions
    std::vector<Cycle> y_cycle_; ///< capture cycle per cell (−1 = none)

    Sample s_in_;
};

} // namespace sap

#endif // SAP_SIM_TRI_ARRAY_HH
