#include "sim/hex_driver.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/hex_array.hh"

namespace sap {

void
HexBandSpec::validate() const
{
    SAP_ASSERT(abar != nullptr && bbar != nullptr, "missing bands");
    SAP_ASSERT(abar->sub() == 0, "Ā must be an upper band");
    SAP_ASSERT(bbar->super() == 0, "B̄ must be a lower band");
    SAP_ASSERT(abar->super() == bbar->sub(),
               "Ā and B̄ must share the bandwidth");
    SAP_ASSERT(abar->rows() == abar->cols() &&
               bbar->rows() == bbar->cols() &&
               abar->rows() == bbar->rows(),
               "Ā and B̄ must be square of equal order");
    SAP_ASSERT(inputValue && onOutput, "missing I/O callbacks");
}

HexIoSchedule
HexIoSchedule::build(const Band<Scalar> &abar, const Band<Scalar> &bbar)
{
    SAP_ASSERT(abar.sub() == 0, "Ā must be an upper band");
    SAP_ASSERT(bbar.super() == 0, "B̄ must be a lower band");
    SAP_ASSERT(abar.super() == bbar.sub(),
               "Ā and B̄ must share the bandwidth");
    SAP_ASSERT(abar.rows() == abar.cols() &&
               bbar.rows() == bbar.cols() &&
               abar.rows() == bbar.rows(),
               "Ā and B̄ must be square of equal order");
    const Index w = abar.super() + 1;
    const Index N = abar.rows();

    HexIoSchedule s;
    s.horizon = 3 * (N - 1) + 2 * w - 2;
    s.aEvents.resize(s.horizon + 1);
    s.bEvents.resize(s.horizon + 1);
    s.cEvents.resize(s.horizon + 1);
    s.oEvents.resize(s.horizon + 1);

    for (Index i = 0; i < N; ++i) {
        for (Index k = i; k <= std::min(i + w - 1, N - 1); ++k)
            s.aEvents[i + 2 * k].push_back({k - i, abar.at(i, k)});
    }
    for (Index j = 0; j < N; ++j) {
        for (Index k = j; k <= std::min(j + w - 1, N - 1); ++k)
            s.bEvents[2 * k + j].push_back({k - j, bbar.at(k, j)});
    }
    for (Index i = 0; i < N; ++i) {
        for (Index j = std::max(Index{0}, i - w + 1);
             j <= std::min(N - 1, i + w - 1); ++j) {
            Cycle t_in = i + j + std::max(i, j) + w - 1;
            Cycle t_out = i + j + std::min(i, j) + 2 * w - 2;
            s.cEvents[t_in].push_back({i, j});
            s.oEvents[t_out].push_back({i, j});
        }
    }
    return s;
}

HexRunResult
runHexBandMatMul(const HexBandSpec &spec)
{
    return runHexBandMatMul(
        HexIoSchedule::build(*spec.abar, *spec.bbar), spec);
}

HexRunResult
runHexBandMatMul(const HexIoSchedule &sched, const HexBandSpec &spec)
{
    spec.validate();
    const Index w = spec.w();
    const Index N = spec.order();
    SAP_ASSERT(sched.horizon == 3 * (N - 1) + 2 * w - 2,
               "schedule was built for a different problem");
    HexArray array(w);

    const Cycle horizon = sched.horizon;

    HexRunResult res;
    for (Cycle tau = 0; tau <= horizon; ++tau) {
        for (const HexIoSchedule::AEvent &ev : sched.aEvents[tau])
            array.setAIn(ev.port, Sample::of(ev.value));
        for (const HexIoSchedule::AEvent &ev : sched.bEvents[tau])
            array.setBIn(ev.port, Sample::of(ev.value));
        for (const HexIoSchedule::CEvent &ev : sched.cEvents[tau])
            array.setCIn(ev.j - ev.i,
                         Sample::of(spec.inputValue(ev.i, ev.j)));

        array.step();

        for (const HexIoSchedule::CEvent &ev : sched.oEvents[tau]) {
            Sample s = array.cOut(ev.j - ev.i);
            SAP_ASSERT(s.valid, "missing output at (", ev.i, ",", ev.j,
                       ") cycle ", tau);
            spec.onOutput(ev.i, ev.j, s.value, tau);
            res.lastExit = tau;
        }
    }

    res.totalCycles = horizon + 1;
    res.firstMac = array.firstMacCycle();
    res.stats.peCount = array.peCount();
    res.stats.usefulMacs = array.usefulMacs();
    // The paper's step count: from the first useful MAC to the
    // delivery of the last output through the exit-edge register
    // (one cycle after its final hop), both inclusive. Under this
    // convention the measurement reproduces T = 3w·p̄n̄m̄ + 4w − 5
    // exactly for every shape (see EXPERIMENTS.md).
    res.stats.cycles = (res.lastExit + 1) - res.firstMac + 1;
    return res;
}

} // namespace sap
