#include "sim/hex_driver.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/hex_array.hh"

namespace sap {

void
HexBandSpec::validate() const
{
    SAP_ASSERT(abar != nullptr && bbar != nullptr, "missing bands");
    SAP_ASSERT(abar->sub() == 0, "Ā must be an upper band");
    SAP_ASSERT(bbar->super() == 0, "B̄ must be a lower band");
    SAP_ASSERT(abar->super() == bbar->sub(),
               "Ā and B̄ must share the bandwidth");
    SAP_ASSERT(abar->rows() == abar->cols() &&
               bbar->rows() == bbar->cols() &&
               abar->rows() == bbar->rows(),
               "Ā and B̄ must be square of equal order");
    SAP_ASSERT(inputValue && onOutput, "missing I/O callbacks");
}

HexRunResult
runHexBandMatMul(const HexBandSpec &spec)
{
    spec.validate();
    const Index w = spec.w();
    const Index N = spec.order();
    HexArray array(w);

    const Cycle horizon = 3 * (N - 1) + 2 * w - 2;

    struct AEvent { Index port; Scalar value; };
    struct CEvent { Index i, j; };
    std::vector<std::vector<AEvent>> a_ev(horizon + 1), b_ev(horizon + 1);
    std::vector<std::vector<CEvent>> c_ev(horizon + 1), o_ev(horizon + 1);

    for (Index i = 0; i < N; ++i) {
        for (Index k = i; k <= std::min(i + w - 1, N - 1); ++k)
            a_ev[i + 2 * k].push_back({k - i, spec.abar->at(i, k)});
    }
    for (Index j = 0; j < N; ++j) {
        for (Index k = j; k <= std::min(j + w - 1, N - 1); ++k)
            b_ev[2 * k + j].push_back({k - j, spec.bbar->at(k, j)});
    }
    for (Index i = 0; i < N; ++i) {
        for (Index j = std::max(Index{0}, i - w + 1);
             j <= std::min(N - 1, i + w - 1); ++j) {
            Cycle t_in = i + j + std::max(i, j) + w - 1;
            Cycle t_out = i + j + std::min(i, j) + 2 * w - 2;
            c_ev[t_in].push_back({i, j});
            o_ev[t_out].push_back({i, j});
        }
    }

    HexRunResult res;
    for (Cycle tau = 0; tau <= horizon; ++tau) {
        for (const AEvent &ev : a_ev[tau])
            array.setAIn(ev.port, Sample::of(ev.value));
        for (const AEvent &ev : b_ev[tau])
            array.setBIn(ev.port, Sample::of(ev.value));
        for (const CEvent &ev : c_ev[tau])
            array.setCIn(ev.j - ev.i,
                         Sample::of(spec.inputValue(ev.i, ev.j)));

        array.step();

        for (const CEvent &ev : o_ev[tau]) {
            Sample s = array.cOut(ev.j - ev.i);
            SAP_ASSERT(s.valid, "missing output at (", ev.i, ",", ev.j,
                       ") cycle ", tau);
            spec.onOutput(ev.i, ev.j, s.value, tau);
            res.lastExit = tau;
        }
    }

    res.totalCycles = horizon + 1;
    res.firstMac = array.firstMacCycle();
    res.stats.peCount = array.peCount();
    res.stats.usefulMacs = array.usefulMacs();
    // The paper's step count: from the first useful MAC to the
    // delivery of the last output through the exit-edge register
    // (one cycle after its final hop), both inclusive. Under this
    // convention the measurement reproduces T = 3w·p̄n̄m̄ + 4w − 5
    // exactly for every shape (see EXPERIMENTS.md).
    res.stats.cycles = (res.lastExit + 1) - res.firstMac + 1;
    return res;
}

} // namespace sap
