/**
 * @file
 * Cycle-accurate model of a 2D output-stationary mesh (the
 * TPU/Gemmini-style dataflow) for matrix-matrix multiplication — the
 * natural contrast point to the paper's band-interleaved hexagonal
 * array: C stays resident in the PEs instead of circulating through
 * feedback loops.
 *
 * Geometry: w×w inner-product PEs on a rectangular grid.
 *
 *   a  ->  PE(r,0) .. PE(r,w-1)   (a moves west-to-east along row r)
 *   b  |   PE(0,q) .. PE(w-1,q)   (b moves north-to-south along col q)
 *   c  stays in PE(r,q) as an accumulator
 *
 * Per cycle each PE computes c += a·b when both streams carry valid
 * samples; both streams advance one PE per cycle. Drivers skew row r
 * by r cycles and column q by q cycles so that A(i,t) and B(t,j)
 * meet at PE (i,j) on cycle t + i + j; consecutive t's pack
 * back-to-back (no contraflow spacing), which is why mesh
 * utilization approaches 1 as the reduction length grows:
 * e = p̄w / (p̄w + 2(w−1)) for one output block.
 *
 * Size-independence comes from the same block decomposition as the
 * DBT layer (MeshMatMulPlan below): C_ij = E_ij + Σ_k A_ik·B_kj,
 * one streaming pass per w×w output block with the k-blocks
 * concatenated. Accumulator preload/drain is host access to the
 * stationary registers and is not cycle-modeled; cycles count the
 * streaming passes only (T = n̄m̄(p̄w + 2(w−1)), formulas::tMesh).
 */

#ifndef SAP_SIM_MESH_ARRAY_HH
#define SAP_SIM_MESH_ARRAY_HH

#include <vector>

#include "analysis/metrics.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"
#include "sim/sample.hh"
#include "sim/trace.hh"

namespace sap {

/** The output-stationary w×w mesh. */
class MeshArray
{
  public:
    /** @param w Mesh side (w×w PEs). */
    explicit MeshArray(Index w);

    /** Mesh side. */
    Index size() const { return w_; }
    /** Total PE count A = w². */
    Index peCount() const { return w_ * w_; }

    /** Present the a sample entering row @p r (edge PE (r, 0)). */
    void setAIn(Index r, Sample s);
    /** Present the b sample entering column @p q (edge PE (0, q)). */
    void setBIn(Index q, Sample s);

    /** Advance one clock cycle (compute, then shift both streams). */
    void step();

    /** Preload the accumulator of PE (r, q) (host access). */
    void loadC(Index r, Index q, Scalar v);

    /** Read the accumulator of PE (r, q) (host access). */
    Scalar c(Index r, Index q) const;

    /** Cycles executed. */
    Cycle now() const { return now_; }
    /** Total valid multiply-accumulates performed. */
    Index usefulMacs() const { return useful_macs_; }

  private:
    std::size_t idx(Index r, Index q) const
    {
        return static_cast<std::size_t>(r * w_ + q);
    }

    Index w_;
    Cycle now_ = 0;
    Index useful_macs_ = 0;

    std::vector<Scalar> acc_;   ///< stationary accumulators
    std::vector<Sample> a_reg_; ///< a at output of PE (r,q), moves east
    std::vector<Sample> b_reg_; ///< b at output of PE (r,q), moves south
    std::vector<Sample> a_in_;  ///< per-row a inputs this cycle
    std::vector<Sample> b_in_;  ///< per-column b inputs this cycle
};

/** Result of a planned mesh matrix-multiply execution. */
struct MeshRunResult
{
    /** The final C = A·B + E (n×m). */
    Dense<Scalar> c;
    /** Measured execution statistics. */
    RunStats stats;
    /** Port trace when requested. */
    Trace trace;
};

/**
 * Reusable execution plan for C = A·B + E on the mesh: binds (A, B)
 * like the hexagonal MatMulPlan, streams any number of E's.
 *
 * The matrix-bound artifact is the pair of zero-padded block
 * partitions plus the (trivial, skew-only) feed schedule; the
 * serving layer caches it under the same digest scheme as the other
 * topologies.
 *
 * Thread-compatibility: const member functions are safe to call
 * concurrently (each run builds its own mesh).
 */
class MeshMatMulPlan
{
  public:
    /**
     * @param a Matrix A (n×p).
     * @param b Matrix B (p×m).
     * @param w Mesh side.
     */
    MeshMatMulPlan(const Dense<Scalar> &a, const Dense<Scalar> &b,
                   Index w);

    /** Block counts n̄, p̄, m̄ = ceil(n/w), ceil(p/w), ceil(m/w). */
    Index nbar() const { return nbar_; }
    /** @copydoc nbar() */
    Index pbar() const { return pbar_; }
    /** @copydoc nbar() */
    Index mbar() const { return mbar_; }

    /**
     * Execute C = A·B + E.
     *
     * @param e Additive matrix (n×m).
     * @param record_trace Record port events (a/b injections with
     *        flattened padded-matrix indices, accumulator preload as
     *        CIn and drain as COut) on the global cycle timeline.
     */
    MeshRunResult run(const Dense<Scalar> &e,
                      bool record_trace = false) const;

    /**
     * Semantics replay of run() (src/semantics/): per-block
     * accumulation in stream order, bit-identical C, stats from
     * analysis/formulas.hh, no trace.
     */
    MeshRunResult runSemantics(const Dense<Scalar> &e) const;

  private:
    Index w_;
    Index n_, p_, m_;
    Index nbar_, pbar_, mbar_;
    Dense<Scalar> a_padded_;
    Dense<Scalar> b_padded_;
};

} // namespace sap

#endif // SAP_SIM_MESH_ARRAY_HH
