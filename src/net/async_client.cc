#include "net/async_client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sap {

AsyncClient::~AsyncClient()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
AsyncClient::connectStart(const std::string &host, std::uint16_t port)
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    decoder_ = FrameDecoder(max_payload_);
    outbuf_.clear();
    outoff_ = 0;
    error_.clear();

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string node = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
        error_ = "unparseable IPv4 address '" + host + "'";
        state_ = State::Closed;
        return false;
    }

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
        error_ = std::string("socket: ") + std::strerror(errno);
        state_ = State::Closed;
        return false;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0) {
        // Loopback connects can complete synchronously.
        fd_ = fd;
        state_ = State::Connected;
        return true;
    }
    if (errno != EINPROGRESS) {
        error_ = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        state_ = State::Closed;
        return false;
    }
    fd_ = fd;
    state_ = State::Connecting;
    return true;
}

void
AsyncClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    outbuf_.clear();
    outoff_ = 0;
    state_ = State::Idle;
}

std::uint32_t
AsyncClient::desiredInterest() const
{
    switch (state_) {
    case State::Connecting:
        return EventLoop::kWrite;
    case State::Connected:
        return EventLoop::kRead |
               (queuedBytes() > 0 ? EventLoop::kWrite : 0u);
    case State::Idle:
    case State::Closed:
        break;
    }
    return 0;
}

void
AsyncClient::send(std::vector<std::uint8_t> bytes)
{
    if (state_ != State::Connecting && state_ != State::Connected)
        return;
    if (outbuf_.empty()) {
        outbuf_ = std::move(bytes);
        outoff_ = 0;
    } else {
        outbuf_.insert(outbuf_.end(), bytes.begin(), bytes.end());
    }
}

void
AsyncClient::transportClosed(const std::string &reason)
{
    error_ = reason;
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    state_ = State::Closed;
    if (onClosed)
        onClosed(reason);
}

bool
AsyncClient::flushSome()
{
    // Compact the sent prefix once it dominates the buffer, so a
    // long-lived connection does not accumulate dead bytes.
    while (outoff_ < outbuf_.size()) {
        ssize_t n = ::send(fd_, outbuf_.data() + outoff_,
                           outbuf_.size() - outoff_, MSG_NOSIGNAL);
        if (n > 0) {
            outoff_ += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        transportClosed(std::string("send: ") + std::strerror(errno));
        return false;
    }
    if (outoff_ == outbuf_.size()) {
        outbuf_.clear();
        outoff_ = 0;
    } else if (outoff_ > (64u << 10) && outoff_ * 2 > outbuf_.size()) {
        outbuf_.erase(outbuf_.begin(),
                      outbuf_.begin() +
                          static_cast<std::ptrdiff_t>(outoff_));
        outoff_ = 0;
    }
    return true;
}

bool
AsyncClient::readSome()
{
    std::uint8_t buf[65536];
    for (;;) {
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(n));
            for (;;) {
                Frame frame;
                std::string err;
                FrameDecoder::Result res = decoder_.next(&frame, &err);
                if (res == FrameDecoder::Result::Ok) {
                    if (onFrame)
                        onFrame(std::move(frame));
                    // A callback may have close()d us.
                    if (state_ != State::Connected)
                        return false;
                    continue;
                }
                if (res == FrameDecoder::Result::Malformed) {
                    transportClosed("malformed server stream: " + err);
                    return false;
                }
                break; // NeedMore
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        transportClosed(n == 0 ? "server closed the connection"
                               : std::string("recv: ") +
                                     std::strerror(errno));
        return false;
    }
}

void
AsyncClient::handleReady(const EventLoop::Ready &ev)
{
    if (fd_ < 0)
        return;

    if (state_ == State::Connecting) {
        // Connect completion is reported as writability; failure as
        // error/hangup or a nonzero SO_ERROR.
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0)
            soerr = errno;
        if (ev.error || soerr != 0) {
            transportClosed(std::string("connect: ") +
                            std::strerror(soerr ? soerr : ECONNRESET));
            return;
        }
        if (!ev.writable && !ev.hangup)
            return; // spurious wakeup; still connecting
        state_ = State::Connected;
        if (onConnected)
            onConnected();
        if (state_ != State::Connected)
            return; // callback closed us
        if (!flushSome())
            return;
        // Fall through: the same wakeup may carry readability.
    }

    if (state_ != State::Connected)
        return;

    if (ev.error) {
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
        transportClosed(std::string("socket error: ") +
                        std::strerror(soerr ? soerr : EIO));
        return;
    }
    if (ev.writable && !flushSome())
        return;
    if (ev.readable || ev.hangup)
        readSome();
}

} // namespace sap
