/**
 * @file
 * Event-loop multi-client TCP front end over the array cluster.
 *
 * NetServer is the network boundary of the installation: it owns a
 * Cluster and bridges the socket world to the cluster's async IO
 * surface. One IO thread runs a level-triggered event loop
 * (net/event_loop.hh: epoll on Linux, poll elsewhere) over the
 * listening socket and every client connection — interest masks are
 * updated where connection state changes rather than rebuilt per
 * wakeup, so ten thousand mostly-idle connections cost nothing per
 * event. Decoded SUBMIT frames go straight into
 * Cluster::submitToQueue(), and a writer thread drains the shared
 * CompletionQueue into per-connection output buffers. The shards
 * therefore never block on a client: a slow reader only grows its
 * own buffer while every other connection keeps streaming.
 *
 *          clients ──TCP──▶ IO thread ──submitToQueue──▶ Cluster
 *             ▲                 │ flush                      │
 *             └── output bufs ◀─┴── writer thread ◀── CompletionQueue
 *
 * Error policy (see net/protocol.hh): payload-level garbage (unknown
 * problem kind, zero dimensions, truncated payload) earns an ERROR
 * frame and the connection keeps serving; frame-level garbage (bad
 * magic/version, oversized length prefix) earns an ERROR frame and a
 * graceful close, because the byte stream cannot be re-synchronized.
 * Neither disturbs other connections or the server. Requests that
 * decode but fail serving-layer validation (unknown engine name,
 * shape mismatches) are not protocol errors: they come back as
 * normal RESPONSE frames with ok = false, exactly as the in-process
 * serving layer reports them.
 *
 * Thread-safety: start()/stop() may be called from any client thread
 * (they serialize on an internal lifecycle mutex); the accessors are
 * safe once start() has returned. stop() (and destruction) drains
 * the cluster, so every accepted request is answered or discarded
 * with the connection, never leaked.
 */

#ifndef SAP_NET_SERVER_HH
#define SAP_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hh"
#include "net/event_loop.hh"
#include "net/protocol.hh"
#include "obs/health.hh"
#include "obs/http_admin.hh"
#include "obs/timeseries.hh"
#include "obs/trace_ring.hh"

namespace sap {

/** Monotonic wire-level counters (read with NetServer::netStats). */
struct NetServerStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t framesReceived = 0;
    std::uint64_t responsesSent = 0;
    /** ERROR frames sent (payload- plus frame-level). */
    std::uint64_t protocolErrors = 0;
};

/**
 * TCP server owning an array cluster (see file comment).
 *
 * Lifecycle: construct with options, call start(); port() reports
 * the bound port (useful with Options::port = 0, which binds an
 * ephemeral loopback port). stop() is idempotent and runs a graceful
 * shutdown: stop reading, drain the cluster, flush what can be
 * flushed, close. A stopped server cannot be restarted — construct
 * a new instance.
 */
class NetServer
{
  public:
    struct Options
    {
        /** The cluster this server fronts. */
        Cluster::Options cluster;
        /** TCP port; 0 binds an ephemeral port (see port()). */
        std::uint16_t port = 0;
        /** Per-frame payload cap enforced on every connection. */
        std::uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes;
        /**
         * Backpressure threshold: while a connection's pending
         * output exceeds this, the server stops reading new frames
         * from it (already-accepted requests still complete and
         * deliver), so a client that pipelines without reading
         * cannot grow server memory without bound.
         */
        std::size_t maxQueuedOutputBytes = 64u << 20;
        /**
         * End-to-end request tracing (obs/trace_ring.hh): when
         * enabled, every SUBMIT gets stage timestamps from frame
         * decode through writer flush; sampled-or-slow traces land
         * in the collector, exportable via traceSnapshot().
         */
        TraceConfig trace;
        /**
         * Wire-level obs/ metrics (bytes in/out, live connections,
         * frames) and the trace stage histograms. Off = the
         * pre-observability hot path; pair with cluster.metrics for
         * a fully uninstrumented baseline.
         */
        bool metrics = true;
        /**
         * Admin HTTP plane (obs/http_admin.hh): when enabled, a
         * second loopback port serves /metrics, /healthz, /readyz,
         * /tracez, /varz, and /timeseriesz for curl, Prometheus
         * scrapers, and load-balancer health checks. The binary
         * METRICS/STATS frames remain the data-plane path.
         */
        bool adminEnabled = false;
        /** Admin TCP port; 0 binds an ephemeral port (adminPort()). */
        std::uint16_t adminPort = 0;
        /** Health state machine thresholds (obs/health.hh). */
        HealthThresholds health;
        /** Flight recorder sample interval; the recorder (and its
         *  sampler thread) runs only when the admin plane is on. */
        double samplerIntervalSeconds = 1.0;
        /** Flight recorder ring capacity per series (300 × 1 s ≈ 5
         *  minutes of history at the default interval). */
        std::size_t samplerRetainSamples = 300;
    };

    NetServer() : NetServer(Options()) {}
    explicit NetServer(const Options &opts);

    /** Calls stop(). */
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Bind, listen on 127.0.0.1, and spawn the IO and writer
     * threads. @return false (with error() set) if the socket setup
     * failed; calling start() twice is an error.
     */
    bool start();

    /** Graceful shutdown; idempotent, called by the destructor. */
    void stop();

    /** True between a successful start() and stop(). */
    bool running() const { return running_.load(); }

    /** The bound TCP port (valid after a successful start()). */
    std::uint16_t port() const { return port_; }

    /** Why start() failed (empty otherwise). */
    const std::string &error() const { return error_; }

    /** Wire-level counters. */
    NetServerStats netStats() const;

    /**
     * Whole-installation obs/ metrics: the server's wire-level
     * registry (plus trace stage histograms) merged with every
     * shard's registry — the same snapshot the METRICS frame serves.
     * Safe to call until stop(); after the cluster is torn down only
     * the wire-level half is returned.
     */
    MetricsSnapshot metricsSnapshot() const;

    /** Committed request traces (sampled or slow), for export via
     *  obs/trace_export.hh. */
    std::vector<RequestTrace> traceSnapshot() const
    {
        return collector_.snapshot();
    }

    /** The trace collector (config, commit counts). */
    const TraceCollector &traceCollector() const { return collector_; }

    /** The fronted cluster (valid until stop()). */
    const Cluster &cluster() const { return *cluster_; }

    /** The admin plane's bound TCP port (0 unless adminEnabled and
     *  start() succeeded). */
    std::uint16_t adminPort() const
    {
        return admin_ ? admin_->port() : 0;
    }

    /**
     * One health evaluation right now — exactly what /healthz and
     * /readyz serve (obs/health.hh). Available whenever the admin
     * plane is enabled; a disabled admin plane reports a default
     * (Ok/live/ready-while-serving) state.
     */
    HealthReport healthReport() const;

    /** The flight recorder (null unless adminEnabled). */
    const FlightRecorder *flightRecorder() const
    {
        return recorder_.get();
    }

  private:
    struct Connection
    {
        int fd = -1;
        FrameDecoder decoder;
        /** Pending output; flushed by the IO thread as POLLOUT
         *  allows. offset = bytes of outbuf already sent. */
        std::vector<std::uint8_t> outbuf;
        std::size_t outoff = 0;
        /** Stop reading; close once outbuf is flushed. */
        bool closing = false;
        /** Event-loop interest mask the IO thread last installed
         *  (EventLoop::kRead|kWrite); updated by
         *  updateInterestLocked() only. */
        std::uint32_t interest = 0;

        explicit Connection(int fd_in, std::uint32_t max_payload)
            : fd(fd_in), decoder(max_payload)
        {
        }
    };

    /** Which snapshot a tag-0 marker requests (see writerLoop()). */
    enum class SnapKind : std::uint8_t
    {
        Stats,
        Metrics,
        Traces,
    };

    /** Where a completion must be delivered. */
    struct PendingTag
    {
        std::uint64_t connId;
        std::uint64_t clientTag;
        /** Snapshot requests only: which snapshot frame to serve. */
        SnapKind kind = SnapKind::Stats;
    };

    void ioLoop();
    void writerLoop();
    void acceptReady();
    /** Read until EAGAIN; decode and handle frames. @return false if
     *  the connection must be dropped immediately. */
    bool readReady(std::uint64_t conn_id, Connection &conn);
    void handleFrame(std::uint64_t conn_id, Connection &conn,
                     const Frame &frame);
    /** Append an encoded frame to the connection's output buffer
     *  (under conns_mutex_) and wake the IO thread.
     *  @return false when the connection is gone (frame dropped). */
    bool enqueueOutput(std::uint64_t conn_id,
                       std::vector<std::uint8_t> bytes);
    /** Same, with the lock already held. */
    void enqueueOutputLocked(Connection &conn,
                             const std::vector<std::uint8_t> &bytes);
    /** Flush as much of conn.outbuf as the socket accepts.
     *  @return false when the socket died. */
    bool flushLocked(Connection &conn);
    void closeConnLocked(std::uint64_t conn_id);
    /**
     * Recompute and install the connection's event-loop interest
     * mask from its current state (serving, closing, queued output,
     * backpressure). IO thread only, conns_mutex_ held.
     */
    void updateInterestLocked(std::uint64_t conn_id, Connection &conn);
    void wakeIoThread();
    /** Drop completions addressed to a dead connection. */
    void forgetTags(std::uint64_t conn_id);
    /** True while responses for this connection are still in flight
     *  (the IO thread must not close it yet; see ioLoop()). */
    bool hasPendingTags(std::uint64_t conn_id);

    Options opts_;
    std::string error_;

    /** Serializes start()/stop() against each other. */
    std::mutex lifecycle_mutex_;

    /**
     * Destruction order contract: queue_ outlives cluster_ (declared
     * before it), because shard workers push completions into the
     * queue while the cluster drains.
     */
    CompletionQueue queue_;
    /** Serializes the writer thread's cluster use (STATS/METRICS
     *  snapshots, including const metricsSnapshot()) against stop()'s
     *  cluster teardown. The IO thread needs no lock: its cluster
     *  calls stop at the quiesce handshake, before stop() resets the
     *  pointer. */
    mutable std::mutex cluster_mutex_;
    std::unique_ptr<Cluster> cluster_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    int wake_pipe_[2] = {-1, -1};
    /** IO-thread only: wait periods left to skip the listen socket
     *  after a persistent accept() failure (EMFILE and friends). */
    int listen_backoff_ = 0;

    /**
     * The IO thread's readiness multiplexer. Owned and touched by
     * the IO thread alone — other threads request interest updates
     * via interest_dirty_ + the wake pipe.
     */
    EventLoop loop_;
    /** Connections whose interest mask may be stale (e.g. the
     *  writer buffered output for them); drained by the IO thread
     *  each wakeup. Guarded by conns_mutex_. */
    std::vector<std::uint64_t> interest_dirty_;
    /** IO-thread only: connections in the closing state, swept each
     *  wakeup for close-when-flushed-and-owed-nothing. */
    std::set<std::uint64_t> closing_conns_;

    std::atomic<bool> running_{false};
    /** One-shot lifecycle: set by stop(); start() then refuses (the
     *  completion queue cannot be un-shut-down). */
    bool stopped_ = false;
    /** IO thread stops accepting/reading when false (shutdown). */
    std::atomic<bool> serving_{false};
    /** IO thread exits once all output is flushed (or abandoned). */
    std::atomic<bool> flush_and_exit_{false};
    /** Set by the IO thread once it has stopped reading. */
    bool reads_quiesced_ = false;
    std::mutex quiesce_mutex_;
    std::condition_variable quiesce_cv_;

    std::thread io_thread_;
    std::thread writer_thread_;

    mutable std::mutex conns_mutex_;
    /** Starts above the ioLoop() id sentinels (0 = wake pipe,
     *  1 = listen socket). */
    std::uint64_t next_conn_id_ = 16;
    std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;

    std::mutex tags_mutex_;
    /** Starts at 1: server tag 0 is the STATS marker (see
     *  writerLoop()). */
    std::uint64_t next_tag_ = 1;
    std::map<std::uint64_t, PendingTag> tags_;

    /** STATS/METRICS requests handed from the IO thread to the
     *  writer, so the snapshot+encode work never stalls the poll
     *  loop. */
    std::mutex stats_requests_mutex_;
    std::deque<PendingTag> stats_requests_;

    mutable std::mutex stats_mutex_;
    NetServerStats net_stats_;

    /** Wire-level obs/ registry; null when Options::metrics is off.
     *  Also receives the collector's trace stage histograms. */
    std::unique_ptr<MetricsRegistry> net_metrics_;
    /** Cached hot-path instruments (null when metrics are off). */
    struct NetInstruments
    {
        Counter *bytesIn = nullptr;
        Counter *bytesOut = nullptr;
        Counter *framesReceived = nullptr;
        Counter *responsesSent = nullptr;
        Counter *protocolErrors = nullptr;
        Counter *connectionsAccepted = nullptr;
        Gauge *connectionsLive = nullptr;
    } inst_;
    /** Declared after net_metrics_: its stage-metrics pointer must
     *  outlive it. */
    TraceCollector collector_;

    /** Register the admin routes on @p admin (start() helper). */
    void registerAdminRoutes(HttpAdminServer &admin);
    /** Gather HealthInputs and run them through health_. */
    HealthReport evaluateHealth() const;

    /**
     * Admin plane (all null when Options::adminEnabled is off).
     * Declared last: their threads call back into everything above
     * (metricsSnapshot, queue_, collector_), so they must be
     * destroyed first — and stop() shuts them down before the
     * cluster teardown for the same reason.
     */
    std::unique_ptr<HealthModel> health_;
    std::unique_ptr<FlightRecorder> recorder_;
    std::unique_ptr<HttpAdminServer> admin_;
};

} // namespace sap

#endif // SAP_NET_SERVER_HH
