#include "net/client.hh"

#include <cerrno>
#include <cstring>
#include <map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mat/ops.hh"

namespace sap {

NetClient::~NetClient()
{
    disconnect();
}

bool
NetClient::fail(const std::string &message)
{
    error_ = message;
    return false;
}

bool
NetClient::connect(const std::string &host, std::uint16_t port)
{
    if (fd_ >= 0)
        return fail("already connected");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string node = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1)
        return fail("unparseable IPv4 address '" + host + "'");

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return fail(std::string("socket: ") + std::strerror(errno));
    if (sndbuf_bytes_ > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes_,
                     sizeof(sndbuf_bytes_));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::string err =
            std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return fail(err);
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking from here on: every wait below goes through
    // poll(), so a full send buffer can never wedge a call that
    // still has responses to read (see the file comment).
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        std::string err =
            std::string("fcntl: ") + std::strerror(errno);
        ::close(fd);
        return fail(err);
    }
    fd_ = fd;
    decoder_ = FrameDecoder(max_payload_);
    error_.clear();
    return true;
}

void
NetClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
NetClient::sendAll(const std::vector<std::uint8_t> &bytes)
{
    if (fd_ < 0)
        return fail("not connected");
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            struct pollfd pfd = {fd_, POLLOUT, 0};
            if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
                disconnect();
                return fail(std::string("poll: ") +
                            std::strerror(errno));
            }
            continue;
        }
        disconnect();
        return fail(std::string("send: ") + std::strerror(errno));
    }
    return true;
}

bool
NetClient::readFrame(Frame *out)
{
    if (fd_ < 0)
        return fail("not connected");
    std::uint8_t buf[65536];
    for (;;) {
        std::string err;
        FrameDecoder::Result res = decoder_.next(out, &err);
        if (res == FrameDecoder::Result::Ok)
            return true;
        if (res == FrameDecoder::Result::Malformed) {
            disconnect();
            return fail("malformed server stream: " + err);
        }
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            struct pollfd pfd = {fd_, POLLIN, 0};
            if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) {
                disconnect();
                return fail(std::string("poll: ") +
                            std::strerror(errno));
            }
            continue;
        }
        std::string reason =
            n == 0 ? "server closed the connection"
                   : std::string("recv: ") + std::strerror(errno);
        disconnect();
        return fail(reason);
    }
}

NetClient::Result
NetClient::submit(const ServeRequest &req)
{
    std::vector<Result> results = submitBatch({req});
    return std::move(results.front());
}

std::vector<NetClient::Result>
NetClient::submitBatch(const std::vector<ServeRequest> &reqs)
{
    std::vector<Result> results(reqs.size());
    if (reqs.empty())
        return results;

    // Pipeline all SUBMITs, interleaving sends with reads: once the
    // socket send buffer fills (the server pushes back on clients
    // that pipeline without reading), the only way to make progress
    // is to drain responses while the rest of the pipeline trickles
    // out — a write-until-done loop here deadlocks (file comment).
    std::map<std::uint64_t, std::size_t> slot_of;
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        std::uint64_t tag = next_tag_++;
        slot_of[tag] = i;
        std::vector<std::uint8_t> f = buildSubmitFrame(tag, reqs[i]);
        out.insert(out.end(), f.begin(), f.end());
    }

    auto fail_rest = [&] {
        for (const auto &entry : slot_of)
            results[entry.second].transportError = error_;
    };
    if (fd_ < 0) {
        fail("not connected");
        fail_rest();
        return results;
    }

    std::size_t off = 0;
    std::size_t outstanding = reqs.size();
    std::uint8_t buf[65536];
    while (outstanding > 0) {
        // Consume every complete frame already buffered.
        bool fatal = false;
        for (;;) {
            Frame frame;
            std::string err;
            FrameDecoder::Result res = decoder_.next(&frame, &err);
            if (res == FrameDecoder::Result::NeedMore)
                break;
            if (res == FrameDecoder::Result::Malformed) {
                disconnect();
                fail("malformed server stream: " + err);
                fatal = true;
                break;
            }
            auto it = slot_of.find(frame.header.tag);
            if (it == slot_of.end()) {
                // A frame we did not ask for: a server-side
                // frame-level ERROR (tag 0) is fatal to the stream;
                // anything else is a protocol violation by the
                // server.
                std::string message =
                    "unexpected " + frameTypeName(frame.header.type) +
                    " frame for unknown tag " +
                    std::to_string(frame.header.tag);
                std::string detail;
                if (frame.header.type ==
                        static_cast<std::uint16_t>(FrameType::Error) &&
                    decodeError(frame.payload, &detail, nullptr))
                    message += ": " + detail;
                disconnect();
                fail(message);
                fatal = true;
                break;
            }
            Result &result = results[it->second];
            slot_of.erase(it);
            --outstanding;

            if (frame.header.type ==
                static_cast<std::uint16_t>(FrameType::Response)) {
                if (!decodeResponse(frame.payload, &result.response,
                                    &err)) {
                    result.transportError =
                        "undecodable RESPONSE: " + err;
                    continue;
                }
                result.transportOk = true;
            } else if (frame.header.type ==
                       static_cast<std::uint16_t>(FrameType::Error)) {
                std::string message;
                if (!decodeError(frame.payload, &message, &err)) {
                    result.transportError =
                        "undecodable ERROR: " + err;
                    continue;
                }
                // Application-level rejection: surfaced like a
                // served error response.
                result.transportOk = true;
                result.response.ok = false;
                result.response.error = message;
            } else {
                result.transportError =
                    "unexpected " + frameTypeName(frame.header.type) +
                    " frame in reply to SUBMIT";
            }
        }
        if (fatal) {
            fail_rest();
            return results;
        }
        if (outstanding == 0)
            break;

        struct pollfd pfd = {fd_, POLLIN, 0};
        if (off < out.size())
            pfd.events |= POLLOUT;
        int pr = ::poll(&pfd, 1, -1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            disconnect();
            fail(std::string("poll: ") + std::strerror(errno));
            fail_rest();
            return results;
        }

        if (pfd.revents & POLLOUT) {
            while (off < out.size()) {
                ssize_t n = ::send(fd_, out.data() + off,
                                   out.size() - off, MSG_NOSIGNAL);
                if (n > 0) {
                    off += static_cast<std::size_t>(n);
                    continue;
                }
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK))
                    break;
                if (n < 0 && errno == EINTR)
                    continue;
                disconnect();
                fail(std::string("send: ") + std::strerror(errno));
                fail_rest();
                return results;
            }
        }
        if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n > 0) {
                decoder_.feed(buf, static_cast<std::size_t>(n));
            } else if (n == 0) {
                disconnect();
                fail("server closed the connection");
                fail_rest();
                return results;
            } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
                disconnect();
                fail(std::string("recv: ") + std::strerror(errno));
                fail_rest();
                return results;
            }
        }
    }
    return results;
}

bool
NetClient::stats(ServerStats *out)
{
    std::uint64_t tag = next_tag_++;
    if (!sendAll(buildStatsRequestFrame(tag)))
        return false;
    Frame frame;
    if (!readFrame(&frame))
        return false;
    if (frame.header.type !=
            static_cast<std::uint16_t>(FrameType::Stats) ||
        frame.header.tag != tag)
        return fail("unexpected " + frameTypeName(frame.header.type) +
                    " frame in reply to STATS");
    std::string err;
    if (!decodeStats(frame.payload, out, &err))
        return fail("undecodable STATS: " + err);
    return true;
}

bool
NetClient::metrics(MetricsSnapshot *out)
{
    std::uint64_t tag = next_tag_++;
    if (!sendAll(buildMetricsRequestFrame(tag)))
        return false;
    Frame frame;
    if (!readFrame(&frame))
        return false;
    if (frame.header.type !=
            static_cast<std::uint16_t>(FrameType::Metrics) ||
        frame.header.tag != tag)
        return fail("unexpected " + frameTypeName(frame.header.type) +
                    " frame in reply to METRICS");
    std::string err;
    if (!decodeMetrics(frame.payload, out, &err))
        return fail("undecodable METRICS: " + err);
    return true;
}

bool
NetClient::traces(std::vector<RequestTrace> *out,
                  std::uint64_t *totalCommitted)
{
    std::uint64_t tag = next_tag_++;
    if (!sendAll(buildTracesRequestFrame(tag)))
        return false;
    Frame frame;
    if (!readFrame(&frame))
        return false;
    if (frame.header.type !=
            static_cast<std::uint16_t>(FrameType::Traces) ||
        frame.header.tag != tag)
        return fail("unexpected " + frameTypeName(frame.header.type) +
                    " frame in reply to TRACES");
    std::vector<RequestTrace> traces;
    std::uint64_t total = 0;
    std::string err;
    if (!decodeTraces(frame.payload, &traces, &total, &err))
        return fail("undecodable TRACES: " + err);
    if (out)
        *out = std::move(traces);
    if (totalCommitted)
        *totalCommitted = total;
    return true;
}

bool
NetClient::ping()
{
    std::uint64_t tag = next_tag_++;
    if (!sendAll(buildPingFrame(tag)))
        return false;
    Frame frame;
    if (!readFrame(&frame))
        return false;
    if (frame.header.type !=
            static_cast<std::uint16_t>(FrameType::Ping) ||
        frame.header.tag != tag)
        return fail("unexpected " + frameTypeName(frame.header.type) +
                    " frame in reply to PING");
    return true;
}

bool
NetClient::matchesOracle(const ServeRequest &req,
                         const WireResponse &resp)
{
    switch (req.plan.kind) {
    case ProblemKind::MatVec: {
        Vec<Scalar> gold = matVec(req.plan.a, req.plan.x, req.plan.b);
        return resp.y.size() == gold.size() &&
               maxAbsDiff(resp.y, gold) == 0.0;
    }
    case ProblemKind::MatMul:
        return resp.c ==
               matMulAdd(req.plan.a, req.plan.bmat, req.plan.e);
    case ProblemKind::TriSolve: {
        Vec<Scalar> gold = forwardSolve(req.plan.a, req.plan.b);
        return resp.y.size() == gold.size() &&
               maxAbsDiff(resp.y, gold) == 0.0;
    }
    }
    return false;
}

} // namespace sap
