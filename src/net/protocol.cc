#include "net/protocol.hh"

#include <cstdio>
#include <cstring>
#include <utility>

#include "base/logging.hh"

namespace sap {

namespace {

/** Set @p error (when non-null) and return false. */
bool
failDecode(std::string *error, const std::string &reason)
{
    if (error)
        *error = reason;
    return false;
}

} // namespace

std::string
frameTypeName(std::uint16_t type)
{
    switch (static_cast<FrameType>(type)) {
    case FrameType::Submit:
        return "SUBMIT";
    case FrameType::Response:
        return "RESPONSE";
    case FrameType::Stats:
        return "STATS";
    case FrameType::Ping:
        return "PING";
    case FrameType::Error:
        return "ERROR";
    case FrameType::Metrics:
        return "METRICS";
    case FrameType::Forward:
        return "FORWARD";
    case FrameType::Traces:
        return "TRACES";
    }
    return "type " + std::to_string(type);
}

//----------------------------------------------------------------------
// WireWriter
//----------------------------------------------------------------------

void
WireWriter::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
WireWriter::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
WireWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void
WireWriter::vec(const Vec<Scalar> &v)
{
    i64(v.size());
    for (Index i = 0; i < v.size(); ++i)
        f64(v[i]);
}

void
WireWriter::dense(const Dense<Scalar> &m)
{
    i64(m.rows());
    i64(m.cols());
    for (Index r = 0; r < m.rows(); ++r)
        for (Index c = 0; c < m.cols(); ++c)
            f64(m(r, c));
}

//----------------------------------------------------------------------
// WireReader
//----------------------------------------------------------------------

bool
WireReader::u8(std::uint8_t *out)
{
    if (remaining() < 1)
        return false;
    *out = data_[pos_++];
    return true;
}

bool
WireReader::u16(std::uint16_t *out)
{
    std::uint8_t lo, hi;
    if (!u8(&lo) || !u8(&hi))
        return false;
    *out = static_cast<std::uint16_t>(lo |
                                      (static_cast<unsigned>(hi) << 8));
    return true;
}

bool
WireReader::u32(std::uint32_t *out)
{
    std::uint16_t lo, hi;
    if (!u16(&lo) || !u16(&hi))
        return false;
    *out = lo | (static_cast<std::uint32_t>(hi) << 16);
    return true;
}

bool
WireReader::u64(std::uint64_t *out)
{
    std::uint32_t lo, hi;
    if (!u32(&lo) || !u32(&hi))
        return false;
    *out = lo | (static_cast<std::uint64_t>(hi) << 32);
    return true;
}

bool
WireReader::i64(std::int64_t *out)
{
    std::uint64_t v;
    if (!u64(&v))
        return false;
    *out = static_cast<std::int64_t>(v);
    return true;
}

bool
WireReader::f64(double *out)
{
    std::uint64_t bits;
    if (!u64(&bits))
        return false;
    std::memcpy(out, &bits, sizeof(bits));
    return true;
}

bool
WireReader::str(std::string *out)
{
    std::uint32_t len;
    if (!u32(&len) || len > kMaxWireString || len > remaining())
        return false;
    out->assign(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return true;
}

bool
WireReader::vec(Vec<Scalar> *out)
{
    std::int64_t n;
    if (!i64(&n) || n < 0 || n > kMaxWireDim ||
        static_cast<std::size_t>(n) > remaining() / 8)
        return false;
    Vec<Scalar> v(n);
    for (Index i = 0; i < n; ++i)
        if (!f64(&v[i]))
            return false;
    *out = std::move(v);
    return true;
}

bool
WireReader::dense(Dense<Scalar> *out)
{
    std::int64_t rows, cols;
    if (!i64(&rows) || !i64(&cols))
        return false;
    if (rows < 0 || cols < 0 || rows > kMaxWireDim ||
        cols > kMaxWireDim)
        return false;
    // rows*cols fits in 64 bits after the per-dimension caps; the
    // remaining() bound rejects lengths the payload cannot back.
    std::uint64_t count = static_cast<std::uint64_t>(rows) *
                          static_cast<std::uint64_t>(cols);
    if (count > remaining() / 8)
        return false;
    Dense<Scalar> m(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c)
            if (!f64(&m(r, c)))
                return false;
    *out = std::move(m);
    return true;
}

//----------------------------------------------------------------------
// FrameDecoder
//----------------------------------------------------------------------

void
FrameDecoder::feed(const std::uint8_t *data, std::size_t len)
{
    if (poisoned_)
        return; // the stream is dead; don't accumulate garbage
    // Compact lazily so long sessions don't grow the buffer forever.
    if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

FrameDecoder::Result
FrameDecoder::next(Frame *out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = poison_reason_;
        return Result::Malformed;
    }
    const std::size_t avail = buf_.size() - consumed_;
    if (avail < kFrameHeaderBytes)
        return Result::NeedMore;

    WireReader r(buf_.data() + consumed_, avail);
    FrameHeader h;
    // Reads cannot fail: avail >= kFrameHeaderBytes.
    r.u32(&h.magic);
    r.u16(&h.version);
    r.u16(&h.type);
    r.u64(&h.tag);
    r.u32(&h.payloadLen);

    if (h.magic != kWireMagic)
        poison_reason_ = "bad magic 0x" + [&] {
            char hex[16];
            std::snprintf(hex, sizeof(hex), "%08x", h.magic);
            return std::string(hex);
        }();
    else if (h.version != kWireVersion)
        poison_reason_ = "unsupported protocol version " +
                         std::to_string(h.version) + " (speaking " +
                         std::to_string(kWireVersion) + ")";
    else if (h.payloadLen > max_payload_)
        poison_reason_ = "payload length " +
                         std::to_string(h.payloadLen) +
                         " exceeds the " +
                         std::to_string(max_payload_) + "-byte cap";
    if (!poison_reason_.empty()) {
        poisoned_ = true;
        buf_.clear();
        consumed_ = 0;
        if (error)
            *error = poison_reason_;
        return Result::Malformed;
    }

    if (avail < kFrameHeaderBytes + h.payloadLen)
        return Result::NeedMore;

    out->header = h;
    const std::uint8_t *p = buf_.data() + consumed_ + kFrameHeaderBytes;
    out->payload.assign(p, p + h.payloadLen);
    consumed_ += kFrameHeaderBytes + h.payloadLen;
    return Result::Ok;
}

//----------------------------------------------------------------------
// Frame builders
//----------------------------------------------------------------------

std::vector<std::uint8_t>
buildFrame(FrameType type, std::uint64_t tag,
           const std::vector<std::uint8_t> &payload)
{
    // The len field is u32; silently wrapping would emit a corrupt
    // frame, so an over-large payload is a caller bug.
    SAP_ASSERT(payload.size() <= 0xFFFFFFFFu,
               "frame payload of ", payload.size(),
               " bytes exceeds the u32 length field");
    WireWriter w;
    w.u32(kWireMagic);
    w.u16(kWireVersion);
    w.u16(static_cast<std::uint16_t>(type));
    w.u64(tag);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    std::vector<std::uint8_t> frame = w.take();
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

std::vector<std::uint8_t>
buildSubmitFrame(std::uint64_t tag, const ServeRequest &req)
{
    return buildFrame(FrameType::Submit, tag, encodeSubmit(req));
}

std::vector<std::uint8_t>
buildResponseFrame(std::uint64_t tag, const WireResponse &resp)
{
    return buildFrame(FrameType::Response, tag, encodeResponse(resp));
}

std::vector<std::uint8_t>
buildStatsRequestFrame(std::uint64_t tag)
{
    return buildFrame(FrameType::Stats, tag, {});
}

std::vector<std::uint8_t>
buildStatsFrame(std::uint64_t tag, const ServerStats &stats)
{
    return buildFrame(FrameType::Stats, tag, encodeStats(stats));
}

std::vector<std::uint8_t>
buildMetricsRequestFrame(std::uint64_t tag)
{
    return buildFrame(FrameType::Metrics, tag, {});
}

std::vector<std::uint8_t>
buildMetricsFrame(std::uint64_t tag, const MetricsSnapshot &snap)
{
    return buildFrame(FrameType::Metrics, tag, encodeMetrics(snap));
}

std::vector<std::uint8_t>
buildForwardFrame(std::uint64_t tag, Digest digest,
                  const std::vector<std::uint8_t> &submit_payload,
                  const TraceContext *ctx)
{
    WireWriter w;
    w.u64(digest);
    if (ctx && ctx->valid()) {
        w.u8(1);
        encodeTraceContext(w, *ctx);
    } else {
        w.u8(0);
    }
    std::vector<std::uint8_t> payload = w.take();
    payload.insert(payload.end(), submit_payload.begin(),
                   submit_payload.end());
    return buildFrame(FrameType::Forward, tag, payload);
}

std::vector<std::uint8_t>
buildTracesRequestFrame(std::uint64_t tag)
{
    return buildFrame(FrameType::Traces, tag, {});
}

std::vector<std::uint8_t>
buildTracesFrame(std::uint64_t tag,
                 const std::vector<RequestTrace> &traces,
                 std::uint64_t totalCommitted)
{
    return buildFrame(FrameType::Traces, tag,
                      encodeTraces(traces, totalCommitted));
}

std::vector<std::uint8_t>
buildPingFrame(std::uint64_t tag)
{
    return buildFrame(FrameType::Ping, tag, {});
}

std::vector<std::uint8_t>
buildErrorFrame(std::uint64_t tag, const std::string &message)
{
    return buildFrame(FrameType::Error, tag, encodeError(message));
}

//----------------------------------------------------------------------
// Trace-context block
//----------------------------------------------------------------------

void
encodeTraceContext(WireWriter &w, const TraceContext &ctx)
{
    w.u64(ctx.traceIdHi);
    w.u64(ctx.traceIdLo);
    w.u8(ctx.sampled ? kTraceCtxFlagSampled : 0);
    w.u64(ctx.originNanos);
    w.u8(ctx.attempt);
}

bool
decodeTraceContext(WireReader &r, TraceContext *out, const char *what,
                   std::string *error)
{
    TraceContext ctx;
    std::uint8_t flags;
    if (!r.u64(&ctx.traceIdHi) || !r.u64(&ctx.traceIdLo) ||
        !r.u8(&flags) || !r.u64(&ctx.originNanos) ||
        !r.u8(&ctx.attempt))
        return failDecode(error, std::string("truncated ") + what +
                                     ": trace context");
    if ((flags & ~kTraceCtxFlagSampled) != 0)
        return failDecode(error,
                          std::string("reserved trace-context flag "
                                      "bits set in ") +
                              what);
    ctx.sampled = (flags & kTraceCtxFlagSampled) != 0;
    if (!ctx.valid())
        return failDecode(error, std::string("all-zero trace id in ") +
                                     what);
    *out = ctx;
    return true;
}

//----------------------------------------------------------------------
// SUBMIT payload
//----------------------------------------------------------------------

std::vector<std::uint8_t>
encodeSubmit(const ServeRequest &req)
{
    WireWriter w;
    w.str(req.engine);
    w.u8(static_cast<std::uint8_t>(req.plan.kind));
    w.i64(req.plan.w);
    // Flags byte. recordTrace is encoded even though no RESPONSE
    // frame could carry the trace back: the server rejects the bit
    // with a clear error instead of silently dropping the data a
    // client asked for.
    std::uint8_t flags = 0;
    if (req.crossCheck)
        flags |= kSubmitFlagCrossCheck;
    flags |= static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(req.plan.mode) << kSubmitModeShift);
    if (req.plan.recordTrace)
        flags |= kSubmitFlagRecordTrace;
    if (req.traceContext.valid())
        flags |= kSubmitFlagTraceContext;
    w.u8(flags);
    if (req.traceContext.valid())
        encodeTraceContext(w, req.traceContext);
    switch (req.plan.kind) {
    case ProblemKind::MatVec:
        w.dense(req.plan.a);
        w.vec(req.plan.x);
        w.vec(req.plan.b);
        break;
    case ProblemKind::MatMul:
        w.dense(req.plan.a);
        w.dense(req.plan.bmat);
        w.dense(req.plan.e);
        break;
    case ProblemKind::TriSolve:
        w.dense(req.plan.a);
        w.vec(req.plan.b);
        break;
    }
    return w.take();
}

namespace {

/** decodeSubmit over a raw span, so FORWARD can decode its embedded
 *  SUBMIT payload without copying it out first. */
bool
decodeSubmitSpan(const std::uint8_t *data, std::size_t size,
                 ServeRequest *out, std::string *error)
{
    WireReader r(data, size);
    ServeRequest req;
    if (!r.str(&req.engine))
        return failDecode(error, "truncated SUBMIT: engine name");
    std::uint8_t kind_byte;
    if (!r.u8(&kind_byte))
        return failDecode(error, "truncated SUBMIT: problem kind");
    if (kind_byte > static_cast<std::uint8_t>(ProblemKind::TriSolve))
        return failDecode(error, "unknown problem kind " +
                                     std::to_string(kind_byte));
    req.plan.kind = static_cast<ProblemKind>(kind_byte);
    if (!r.i64(&req.plan.w))
        return failDecode(error, "truncated SUBMIT: array size");
    if (req.plan.w < 1 || req.plan.w > kMaxWireDim)
        return failDecode(error, "array size w=" +
                                     std::to_string(req.plan.w) +
                                     " out of range");
    std::uint8_t flags;
    if (!r.u8(&flags))
        return failDecode(error, "truncated SUBMIT: flags");
    req.crossCheck = (flags & kSubmitFlagCrossCheck) != 0;
    const std::uint8_t mode_bits =
        (flags >> kSubmitModeShift) & kSubmitModeMask;
    if (mode_bits > static_cast<std::uint8_t>(ExecMode::Validate))
        return failDecode(error, "unknown execution mode " +
                                     std::to_string(mode_bits));
    req.plan.mode = static_cast<ExecMode>(mode_bits);
    if ((flags & kSubmitFlagRecordTrace) != 0)
        return failDecode(error,
                          "SUBMIT requests recordTrace, but RESPONSE "
                          "frames carry no trace");
    if ((flags & ~kSubmitFlagsKnown) != 0)
        return failDecode(error, "reserved SUBMIT flag bits set");
    if ((flags & kSubmitFlagTraceContext) != 0 &&
        !decodeTraceContext(r, &req.traceContext, "SUBMIT", error))
        return false;

    if (!r.dense(&req.plan.a))
        return failDecode(error, "truncated SUBMIT: matrix A");
    if (req.plan.a.rows() == 0 || req.plan.a.cols() == 0)
        return failDecode(error, "zero-dimension matrix A (" +
                                     std::to_string(req.plan.a.rows()) +
                                     "x" +
                                     std::to_string(req.plan.a.cols()) +
                                     ")");
    switch (req.plan.kind) {
    case ProblemKind::MatVec:
        if (!r.vec(&req.plan.x))
            return failDecode(error, "truncated SUBMIT: vector x");
        if (!r.vec(&req.plan.b))
            return failDecode(error, "truncated SUBMIT: vector b");
        break;
    case ProblemKind::MatMul:
        if (!r.dense(&req.plan.bmat))
            return failDecode(error, "truncated SUBMIT: matrix B");
        if (req.plan.bmat.rows() == 0 || req.plan.bmat.cols() == 0)
            return failDecode(error, "zero-dimension matrix B");
        if (!r.dense(&req.plan.e))
            return failDecode(error, "truncated SUBMIT: matrix E");
        break;
    case ProblemKind::TriSolve:
        if (!r.vec(&req.plan.b))
            return failDecode(error, "truncated SUBMIT: vector b");
        break;
    }
    if (r.remaining() != 0)
        return failDecode(error,
                          std::to_string(r.remaining()) +
                              " trailing bytes after SUBMIT payload");
    *out = std::move(req);
    return true;
}

} // namespace

bool
decodeSubmit(const std::vector<std::uint8_t> &payload,
             ServeRequest *out, std::string *error)
{
    return decodeSubmitSpan(payload.data(), payload.size(), out,
                            error);
}

bool
decodeForward(const std::vector<std::uint8_t> &payload, Digest *digest,
              ServeRequest *out, std::string *error)
{
    WireReader r(payload);
    std::uint64_t d;
    if (!r.u64(&d))
        return failDecode(error, "truncated FORWARD: digest");
    std::uint8_t ctx_present;
    if (!r.u8(&ctx_present))
        return failDecode(error,
                          "truncated FORWARD: trace-context marker");
    if (ctx_present > 1)
        return failDecode(error, "bad FORWARD trace-context marker " +
                                     std::to_string(ctx_present));
    TraceContext ctx;
    if (ctx_present == 1 &&
        !decodeTraceContext(r, &ctx, "FORWARD", error))
        return false;
    if (!decodeSubmitSpan(payload.data() + (payload.size() -
                                            r.remaining()),
                          r.remaining(), out, error))
        return false;
    // The gateway's FORWARD-level context wins over any context the
    // client embedded in the SUBMIT (the gateway owns the attempt
    // counter).
    if (ctx_present == 1)
        out->traceContext = ctx;
    *digest = d;
    return true;
}

//----------------------------------------------------------------------
// TRACES payload
//----------------------------------------------------------------------

std::vector<std::uint8_t>
encodeTraces(const std::vector<RequestTrace> &traces,
             std::uint64_t totalCommitted)
{
    WireWriter w;
    w.u64(totalCommitted);
    w.u32(static_cast<std::uint32_t>(traces.size()));
    for (const RequestTrace &t : traces) {
        w.u64(t.requestId);
        w.str(t.label);
        w.str(t.kind);
        w.u8(t.ok ? 1 : 0);
        w.u8(t.cacheHit ? 1 : 0);
        w.u8(static_cast<std::uint8_t>(t.tier));
        if (t.ctx.valid()) {
            w.u8(1);
            encodeTraceContext(w, t.ctx);
        } else {
            w.u8(0);
        }
        for (std::size_t i = 0; i < kTraceStages; ++i)
            w.u64(t.stageNanos[i]);
        w.u32(static_cast<std::uint32_t>(t.events.size()));
        for (const TracePoint &e : t.events) {
            w.str(e.name);
            w.u64(e.nanos);
        }
    }
    return w.take();
}

bool
decodeTraces(const std::vector<std::uint8_t> &payload,
             std::vector<RequestTrace> *out,
             std::uint64_t *totalCommitted, std::string *error)
{
    WireReader r(payload);
    std::uint64_t total;
    std::uint32_t count;
    if (!r.u64(&total) || !r.u32(&count))
        return failDecode(error, "truncated TRACES payload");
    // Each trace record is at least 8+4+4+4+1+64+4 = 89 bytes (empty
    // strings, no context, no events); /88 stays conservative.
    if (count > r.remaining() / 88)
        return failDecode(error, "TRACES count " +
                                     std::to_string(count) +
                                     " exceeds payload");
    std::vector<RequestTrace> traces;
    traces.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        RequestTrace t;
        std::uint8_t ok_byte, hit_byte, tier_byte, ctx_present;
        if (!r.u64(&t.requestId) || !r.str(&t.label) ||
            !r.str(&t.kind) || !r.u8(&ok_byte) || !r.u8(&hit_byte) ||
            !r.u8(&tier_byte) || !r.u8(&ctx_present))
            return failDecode(error, "truncated TRACES record " +
                                         std::to_string(i));
        if (tier_byte >
            static_cast<std::uint8_t>(TraceTier::Gateway))
            return failDecode(error, "unknown trace tier " +
                                         std::to_string(tier_byte) +
                                         " in TRACES record");
        t.tier = static_cast<TraceTier>(tier_byte);
        if (ctx_present > 1)
            return failDecode(error,
                              "bad TRACES trace-context marker " +
                                  std::to_string(ctx_present));
        if (ctx_present == 1 &&
            !decodeTraceContext(r, &t.ctx, "TRACES", error))
            return false;
        t.ok = ok_byte != 0;
        t.cacheHit = hit_byte != 0;
        for (std::size_t s = 0; s < kTraceStages; ++s)
            if (!r.u64(&t.stageNanos[s]))
                return failDecode(error, "truncated TRACES record " +
                                             std::to_string(i) +
                                             ": stage nanos");
        std::uint32_t event_count;
        if (!r.u32(&event_count))
            return failDecode(error, "truncated TRACES record " +
                                         std::to_string(i) +
                                         ": event count");
        // Each event is at least 12 bytes (empty name + u64 nanos).
        if (event_count > r.remaining() / 12)
            return failDecode(error, "TRACES event count " +
                                         std::to_string(event_count) +
                                         " exceeds payload");
        t.events.reserve(event_count);
        for (std::uint32_t e = 0; e < event_count; ++e) {
            TracePoint ev;
            if (!r.str(&ev.name) || !r.u64(&ev.nanos))
                return failDecode(error, "truncated TRACES event " +
                                             std::to_string(e));
            t.events.push_back(std::move(ev));
        }
        traces.push_back(std::move(t));
    }
    if (r.remaining() != 0)
        return failDecode(error,
                          "trailing bytes after TRACES payload");
    *out = std::move(traces);
    *totalCommitted = total;
    return true;
}

//----------------------------------------------------------------------
// RESPONSE payload
//----------------------------------------------------------------------

WireResponse
WireResponse::of(ServeResponse resp)
{
    WireResponse wire;
    wire.ok = resp.ok;
    wire.error = std::move(resp.error);
    wire.cacheHit = resp.cacheHit;
    wire.crossCheckOk = resp.crossCheckOk;
    wire.latencyMicros = resp.latencyMicros;
    wire.simCycles = resp.result.stats.cycles;
    wire.y = std::move(resp.result.y);
    wire.c = std::move(resp.result.c);
    return wire;
}

std::vector<std::uint8_t>
encodeResponse(const WireResponse &resp)
{
    WireWriter w;
    w.u8(resp.ok ? 1 : 0);
    w.str(resp.error);
    w.u8(resp.cacheHit ? 1 : 0);
    w.u8(resp.crossCheckOk ? 1 : 0);
    w.f64(resp.latencyMicros);
    w.i64(resp.simCycles);
    w.vec(resp.y);
    w.dense(resp.c);
    return w.take();
}

bool
decodeResponse(const std::vector<std::uint8_t> &payload,
               WireResponse *out, std::string *error)
{
    WireReader r(payload);
    WireResponse resp;
    std::uint8_t ok, hit, cross;
    if (!r.u8(&ok) || !r.str(&resp.error) || !r.u8(&hit) ||
        !r.u8(&cross) || !r.f64(&resp.latencyMicros) ||
        !r.i64(&resp.simCycles) || !r.vec(&resp.y) ||
        !r.dense(&resp.c))
        return failDecode(error, "truncated RESPONSE payload");
    if (r.remaining() != 0)
        return failDecode(error,
                          "trailing bytes after RESPONSE payload");
    resp.ok = ok != 0;
    resp.cacheHit = hit != 0;
    resp.crossCheckOk = cross != 0;
    *out = std::move(resp);
    return true;
}

//----------------------------------------------------------------------
// STATS payload
//----------------------------------------------------------------------

namespace {

void
encodeLatency(WireWriter &w, const LatencySummary &l)
{
    w.u64(l.samples);
    w.f64(l.mean);
    w.f64(l.p50);
    w.f64(l.p99);
    w.f64(l.max);
}

bool
decodeLatency(WireReader &r, LatencySummary *l)
{
    return r.u64(&l->samples) && r.f64(&l->mean) && r.f64(&l->p50) &&
           r.f64(&l->p99) && r.f64(&l->max);
}

} // namespace

std::vector<std::uint8_t>
encodeStats(const ServerStats &stats)
{
    WireWriter w;
    w.u64(stats.requests);
    w.u64(stats.failures);
    w.u64(stats.crossCheckFailures);
    w.u64(stats.planCache.hits);
    w.u64(stats.planCache.misses);
    w.u64(stats.planCache.evictions);
    w.u64(stats.planCache.collisions);
    encodeLatency(w, stats.latency);
    w.u8(stats.approximatePercentiles ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(stats.groups.size()));
    for (const GroupStats &g : stats.groups) {
        w.str(g.key.engine);
        w.u8(static_cast<std::uint8_t>(g.key.kind));
        w.u8(static_cast<std::uint8_t>(g.key.mode));
        w.i64(g.key.rows);
        w.i64(g.key.cols);
        w.i64(g.key.outCols);
        w.i64(g.key.w);
        w.u64(g.requests);
        w.u64(g.cacheHits);
        w.i64(g.simCycles);
        encodeLatency(w, g.latency);
    }
    return w.take();
}

bool
decodeStats(const std::vector<std::uint8_t> &payload, ServerStats *out,
            std::string *error)
{
    WireReader r(payload);
    ServerStats stats;
    std::uint32_t group_count;
    std::uint8_t approx_byte;
    if (!r.u64(&stats.requests) || !r.u64(&stats.failures) ||
        !r.u64(&stats.crossCheckFailures) ||
        !r.u64(&stats.planCache.hits) ||
        !r.u64(&stats.planCache.misses) ||
        !r.u64(&stats.planCache.evictions) ||
        !r.u64(&stats.planCache.collisions) ||
        !decodeLatency(r, &stats.latency) || !r.u8(&approx_byte) ||
        !r.u32(&group_count))
        return failDecode(error, "truncated STATS payload");
    stats.approximatePercentiles = approx_byte != 0;
    // Each group is at least 51 bytes (the /50 bound stays
    // conservative); reject counts the payload cannot possibly back
    // before reserving anything.
    if (group_count > r.remaining() / 50)
        return failDecode(error, "STATS group count " +
                                     std::to_string(group_count) +
                                     " exceeds payload");
    stats.groups.reserve(group_count);
    for (std::uint32_t i = 0; i < group_count; ++i) {
        GroupStats g;
        std::uint8_t kind_byte, mode_byte;
        if (!r.str(&g.key.engine) || !r.u8(&kind_byte) ||
            !r.u8(&mode_byte) || !r.i64(&g.key.rows) ||
            !r.i64(&g.key.cols) || !r.i64(&g.key.outCols) ||
            !r.i64(&g.key.w) || !r.u64(&g.requests) ||
            !r.u64(&g.cacheHits) || !r.i64(&g.simCycles) ||
            !decodeLatency(r, &g.latency))
            return failDecode(error, "truncated STATS group " +
                                         std::to_string(i));
        if (kind_byte >
            static_cast<std::uint8_t>(ProblemKind::TriSolve))
            return failDecode(error, "unknown problem kind " +
                                         std::to_string(kind_byte) +
                                         " in STATS group");
        g.key.kind = static_cast<ProblemKind>(kind_byte);
        if (mode_byte > static_cast<std::uint8_t>(ExecMode::Validate))
            return failDecode(error, "unknown execution mode " +
                                         std::to_string(mode_byte) +
                                         " in STATS group");
        g.key.mode = static_cast<ExecMode>(mode_byte);
        stats.groups.push_back(std::move(g));
    }
    if (r.remaining() != 0)
        return failDecode(error, "trailing bytes after STATS payload");
    *out = std::move(stats);
    return true;
}

//----------------------------------------------------------------------
// METRICS payload
//----------------------------------------------------------------------

std::vector<std::uint8_t>
encodeMetrics(const MetricsSnapshot &snap)
{
    WireWriter w;
    w.u32(static_cast<std::uint32_t>(snap.counters.size()));
    for (const auto &[name, v] : snap.counters) {
        w.str(name);
        w.u64(v);
    }
    w.u32(static_cast<std::uint32_t>(snap.gauges.size()));
    for (const auto &[name, gv] : snap.gauges) {
        w.str(name);
        w.u8(static_cast<std::uint8_t>(gv.agg));
        w.f64(gv.value);
    }
    w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
    for (const auto &[name, h] : snap.histograms) {
        w.str(name);
        w.u64(h.count);
        w.f64(h.sum);
        w.f64(h.min);
        w.f64(h.max);
        w.u32(static_cast<std::uint32_t>(h.bucketIndex.size()));
        for (std::size_t i = 0; i < h.bucketIndex.size(); ++i) {
            w.u32(h.bucketIndex[i]);
            w.u64(h.bucketCount[i]);
        }
    }
    return w.take();
}

bool
decodeMetrics(const std::vector<std::uint8_t> &payload,
              MetricsSnapshot *out, std::string *error)
{
    WireReader r(payload);
    MetricsSnapshot snap;
    std::uint32_t counter_count;
    if (!r.u32(&counter_count))
        return failDecode(error, "truncated METRICS payload");
    // Each counter record is at least 12 bytes (empty name).
    if (counter_count > r.remaining() / 12)
        return failDecode(error, "METRICS counter count " +
                                     std::to_string(counter_count) +
                                     " exceeds payload");
    for (std::uint32_t i = 0; i < counter_count; ++i) {
        std::string name;
        std::uint64_t v;
        if (!r.str(&name) || !r.u64(&v))
            return failDecode(error, "truncated METRICS counter " +
                                         std::to_string(i));
        snap.counters[std::move(name)] = v;
    }
    std::uint32_t gauge_count;
    if (!r.u32(&gauge_count))
        return failDecode(error, "truncated METRICS payload");
    if (gauge_count > r.remaining() / 13)
        return failDecode(error, "METRICS gauge count " +
                                     std::to_string(gauge_count) +
                                     " exceeds payload");
    for (std::uint32_t i = 0; i < gauge_count; ++i) {
        std::string name;
        std::uint8_t agg_byte;
        GaugeValue gv;
        if (!r.str(&name) || !r.u8(&agg_byte) || !r.f64(&gv.value))
            return failDecode(error, "truncated METRICS gauge " +
                                         std::to_string(i));
        if (agg_byte > static_cast<std::uint8_t>(GaugeAgg::Max))
            return failDecode(error,
                              "unknown gauge aggregation " +
                                  std::to_string(agg_byte) +
                                  " in METRICS payload");
        gv.agg = static_cast<GaugeAgg>(agg_byte);
        snap.gauges[std::move(name)] = gv;
    }
    std::uint32_t hist_count;
    if (!r.u32(&hist_count))
        return failDecode(error, "truncated METRICS payload");
    // Prelude alone is 36 bytes per histogram.
    if (hist_count > r.remaining() / 36)
        return failDecode(error, "METRICS histogram count " +
                                     std::to_string(hist_count) +
                                     " exceeds payload");
    for (std::uint32_t i = 0; i < hist_count; ++i) {
        std::string name;
        HistogramSnapshot h;
        std::uint32_t buckets;
        if (!r.str(&name) || !r.u64(&h.count) || !r.f64(&h.sum) ||
            !r.f64(&h.min) || !r.f64(&h.max) || !r.u32(&buckets))
            return failDecode(error, "truncated METRICS histogram " +
                                         std::to_string(i));
        if (buckets > r.remaining() / 12 || buckets > kHistBuckets)
            return failDecode(error,
                              "METRICS bucket count " +
                                  std::to_string(buckets) +
                                  " exceeds payload");
        std::uint64_t total = 0;
        std::uint32_t prev_index = 0;
        h.bucketIndex.reserve(buckets);
        h.bucketCount.reserve(buckets);
        for (std::uint32_t b = 0; b < buckets; ++b) {
            std::uint32_t index;
            std::uint64_t count;
            if (!r.u32(&index) || !r.u64(&count))
                return failDecode(error,
                                  "truncated METRICS histogram " +
                                      std::to_string(i));
            // Indices must be strictly ascending and in-table, so a
            // decoded snapshot merges and renders correctly.
            if (index >= kHistBuckets ||
                (b > 0 && index <= prev_index))
                return failDecode(
                    error, "bad METRICS bucket index " +
                               std::to_string(index));
            prev_index = index;
            h.bucketIndex.push_back(index);
            h.bucketCount.push_back(count);
            total += count;
        }
        if (total != h.count)
            return failDecode(error,
                              "METRICS histogram bucket sum " +
                                  std::to_string(total) +
                                  " != count " +
                                  std::to_string(h.count));
        snap.histograms[std::move(name)] = std::move(h);
    }
    if (r.remaining() != 0)
        return failDecode(error,
                          "trailing bytes after METRICS payload");
    *out = std::move(snap);
    return true;
}

//----------------------------------------------------------------------
// ERROR payload
//----------------------------------------------------------------------

std::vector<std::uint8_t>
encodeError(const std::string &message)
{
    WireWriter w;
    // Cap defensively: the decode side rejects over-long strings.
    w.str(message.size() > kMaxWireString
              ? message.substr(0, kMaxWireString)
              : message);
    return w.take();
}

bool
decodeError(const std::vector<std::uint8_t> &payload, std::string *out,
            std::string *error)
{
    WireReader r(payload);
    if (!r.str(out))
        return failDecode(error, "truncated ERROR payload");
    if (r.remaining() != 0)
        return failDecode(error, "trailing bytes after ERROR payload");
    return true;
}

} // namespace sap
