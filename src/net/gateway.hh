/**
 * @file
 * Routing gateway: one front door fanned out over several NetServer
 * backends — the consistent-hash ring applied one level up.
 *
 * Inside one installation, cluster/router.hh pins each plan digest
 * to the shard that caches its prepared plan. A fleet of
 * installations wants the same property across *processes*: every
 * matrix should land on the backend whose shards already hold its
 * plan, whatever client opened which connection. Gateway provides
 * that hop. It speaks the ordinary wire protocol to clients (an
 * existing NetClient needs no changes), decodes each SUBMIT just
 * enough to compute its plan digest, and relays the already-encoded
 * payload to the owning backend inside a FORWARD frame — so the
 * digest is computed once at the edge and reused by the backend's
 * shard router and plan cache (net/protocol.hh).
 *
 *        clients ──▶ gateway IO thread ──FORWARD──▶ backend 0
 *                        │ ring over               backend 1
 *                        ▼ routable set            backend …
 *                 RESPONSE relayed back by tag
 *
 * Health and failover: each backend connection carries periodic
 * PINGs; a backend that misses Options::pingMissLimit replies in a
 * row, drops its TCP connection, or (when a backend admin port is
 * configured) fails its /healthz probe is removed from the routable
 * set, the ring is rebuilt over the survivors, and every SUBMIT that
 * was in flight to it is resubmitted to its new owner — safe because
 * serving is pure compute (resubmission re-executes; it cannot
 * double-apply), and duplicate-free toward the client because the
 * in-flight entry is erased when the first response relays, so a
 * late duplicate from a half-dead backend finds no tag and is
 * dropped. A request whose resubmit budget (Options::maxResubmits)
 * runs out, or that arrives with no routable backend, earns a clean
 * ERROR frame — a client never hangs on a dead backend.
 *
 * Snapshot frames scatter-gather: STATS, METRICS, and TRACES
 * requests fan out to every routable backend and the replies merge
 * exactly (serve/server_stats.hh mergeServerStats,
 * MetricsSnapshot::merge; TRACES concatenates — the export layer
 * stitches by trace id) before one frame goes back to the client;
 * backends that die mid-gather simply drop out of the merge. PING is
 * answered at the gateway itself — it measures the front door, not a
 * backend.
 *
 * Tracing: the gateway is the *edge* of the cross-tier trace path.
 * With Options::trace enabled it head-samples once per request,
 * mints a TraceContext (obs/trace_ring.hh) unless the request
 * already carried one, FORWARDs the context so backends honor the
 * same decision, and records its own gateway-tier trace (gw_decode →
 * gw_route → gw_forward → gw_relay_pop → gw_flush, plus failover /
 * resubmit point events carrying the attempt number). The embedded
 * admin plane (Options::adminEnabled) serves the same routes as
 * NetServer's plus a stitched /tracez: backend rings are gathered
 * over the wire and joined with the gateway's own by trace id, so
 * one request renders as two process lanes in Perfetto.
 *
 * Thread-safety: start()/stop() serialize on a lifecycle mutex; the
 * stats/metrics accessors are safe from any thread. Everything else
 * lives on the gateway's one IO thread (net/event_loop.hh).
 */

#ifndef SAP_NET_GATEWAY_HH
#define SAP_NET_GATEWAY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hh"
#include "net/async_client.hh"
#include "net/event_loop.hh"
#include "net/protocol.hh"
#include "obs/health.hh"
#include "obs/http_admin.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace_ring.hh"

namespace sap {

/** Monotonic gateway counters (read with Gateway::stats()). */
struct GatewayStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t requestsRouted = 0;
    std::uint64_t responsesRelayed = 0;
    /** Backend transitions routable → down (any cause). */
    std::uint64_t failovers = 0;
    /** In-flight requests re-sent to a surviving backend. */
    std::uint64_t resubmits = 0;
    /** ERROR frames sent to clients (protocol + routing failures). */
    std::uint64_t errorsReturned = 0;
};

/**
 * TCP routing tier over several NetServer backends (see file
 * comment).
 *
 * Lifecycle: construct with options, start(); port() reports the
 * bound client-facing port. stop() closes every connection and
 * joins; like NetServer, a stopped gateway cannot be restarted.
 */
class Gateway
{
  public:
    /** One backend's address (a NetServer reached over TCP). */
    struct BackendAddr
    {
        std::string host = "127.0.0.1";
        /** Wire-protocol (data plane) port. */
        std::uint16_t port = 0;
        /** Admin-plane port for /healthz probing; 0 = no probe,
         *  PING liveness alone governs routability. */
        std::uint16_t adminPort = 0;
    };

    struct Options
    {
        /** The backends fronted (at least one). */
        std::vector<BackendAddr> backends;
        /** Client-facing TCP port; 0 binds an ephemeral port. */
        std::uint16_t port = 0;
        /** Per-frame payload cap, both directions. */
        std::uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes;
        /** Client backpressure threshold (as NetServer's). */
        std::size_t maxQueuedOutputBytes = 64u << 20;
        /** Liveness PING cadence per routable backend. */
        int pingIntervalMs = 200;
        /** Unanswered PINGs in a row before a backend is declared
         *  down (its connection is dropped and traffic fails over). */
        int pingMissLimit = 3;
        /** How long a down backend waits before a reconnect try. */
        int reconnectIntervalMs = 300;
        /** /healthz probe cadence for backends with an adminPort;
         *  0 disables HTTP probing entirely. */
        int healthzIntervalMs = 500;
        /** Times one SUBMIT may fail over before the client gets an
         *  ERROR frame instead. */
        std::size_t maxResubmits = 2;
        /** Ring points per backend (cluster/router.hh). */
        std::size_t virtualNodesPerBackend =
            ConsistentHashRouter::kDefaultVirtualNodes;
        /** Gateway obs/ registry (per-backend inflight gauges,
         *  failover counters, route latency histogram). */
        bool metrics = true;
        /**
         * Gateway tracing (obs/trace_ring.hh). The gateway is the
         * edge tier: when enabled it makes the head-sampling decision
         * once per request, stamps its own gw_* stages, and
         * propagates a TraceContext on every FORWARD so backends
         * honor the same decision. A request that already arrives
         * with a context (a gateway one tier up, or a client that
         * opted in) keeps it — sampling is decided exactly once.
         */
        TraceConfig trace;
        /**
         * Embedded HTTP admin plane (obs/http_admin.hh), mirroring
         * NetServer's: /metrics, /varz, /healthz, /readyz,
         * /timeseriesz, plus the stitched cross-tier /tracez that
         * scatter-gathers backend trace rings and joins them with the
         * gateway's own by trace id.
         */
        bool adminEnabled = false;
        /** Admin TCP port; 0 binds an ephemeral port (adminPort()). */
        std::uint16_t adminPort = 0;
        /** Health state machine thresholds (obs/health.hh). */
        HealthThresholds health;
        /** Flight recorder sample interval (admin plane only). */
        int samplerIntervalSeconds = 1;
        /** Flight recorder ring capacity per series. */
        std::size_t samplerRetainSamples = 300;
    };

    explicit Gateway(const Options &opts);

    /** Calls stop(). */
    ~Gateway();

    Gateway(const Gateway &) = delete;
    Gateway &operator=(const Gateway &) = delete;

    /**
     * Bind the client port, spawn the IO thread (and the /healthz
     * prober when configured), and begin connecting backends.
     * Backends need not be up yet: routing begins per backend as its
     * first PING answer arrives. @return false with error() set on
     * socket failure.
     */
    bool start();

    /** Close everything and join; idempotent. In-flight requests are
     *  dropped (their clients see a closed connection). */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound client-facing port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Why start() failed (empty otherwise). */
    const std::string &error() const { return error_; }

    /** Monotonic counters. */
    GatewayStats stats() const;

    /** Backends currently in the routable set. */
    std::size_t routableBackends() const
    {
        return routable_count_.load();
    }

    /** The gateway's own obs/ registry snapshot (empty when
     *  Options::metrics is off). Backend registries are NOT merged
     *  in — the METRICS frame does that per request. */
    MetricsSnapshot metricsSnapshot() const;

    /** The admin plane's bound TCP port (0 unless adminEnabled and
     *  started). */
    std::uint16_t adminPort() const
    {
        return admin_ ? admin_->port() : 0;
    }

    /** Current health verdict (degenerate always-healthy report when
     *  the admin plane is off, as NetServer's). */
    HealthReport healthReport() const;

    /** The gateway's own committed traces (not the backends'; the
     *  TRACES frame and /tracez scatter-gather those per request). */
    std::vector<RequestTrace> traceSnapshot() const
    {
        return collector_.snapshot();
    }

  private:
    /** A client connection (same shape as NetServer's). */
    struct ClientConn
    {
        int fd = -1;
        FrameDecoder decoder;
        std::vector<std::uint8_t> outbuf;
        std::size_t outoff = 0;
        bool closing = false;
        std::uint32_t interest = 0;

        ClientConn(int fd_in, std::uint32_t max_payload)
            : fd(fd_in), decoder(max_payload)
        {
        }
    };

    /** One backend: its async connection plus liveness state. All
     *  fields IO-thread-only except adminHealthy (prober writes). */
    struct Backend
    {
        BackendAddr addr;
        AsyncClient conn;
        /** In the ring: connected, ping-confirmed, admin-healthy. */
        bool routable = false;
        /** Liveness probe bookkeeping. */
        bool pingOutstanding = false;
        std::uint64_t pingTag = 0;
        int missedPings = 0;
        /** Wait ticks before the next reconnect attempt. */
        int reconnectWaitMs = 0;
        /** Written by the prober thread, read by the IO thread. */
        std::atomic<bool> adminHealthy{true};
        /** FORWARDs sent, responses not yet back. */
        std::uint64_t inflight = 0;
        Gauge *inflightGauge = nullptr;

        explicit Backend(const BackendAddr &a,
                         std::uint32_t max_payload)
            : addr(a), conn(max_payload)
        {
        }
    };

    /** One routed SUBMIT awaiting its backend response. */
    struct Inflight
    {
        std::uint64_t clientConnId = 0;
        std::uint64_t clientTag = 0;
        std::size_t backendIdx = 0;
        Digest digest = 0;
        /** The SUBMIT payload bytes, kept for resubmission. */
        std::vector<std::uint8_t> submitPayload;
        std::size_t resubmits = 0;
        std::chrono::steady_clock::time_point start;
        /** The context FORWARDed with this request (!valid() = the
         *  request rides untraced). attempt tracks resubmits. */
        TraceContext ctx;
        /** The gateway's own trace of this request (null unless the
         *  request is sampled here). */
        std::shared_ptr<RequestTrace> trace;
    };

    /** One scatter-gather STATS/METRICS/TRACES in progress. */
    struct Gather
    {
        enum class Kind : std::uint8_t
        {
            Stats,
            Metrics,
            Traces,
        };

        std::uint64_t clientConnId = 0;
        std::uint64_t clientTag = 0;
        Kind kind = Kind::Stats;
        std::size_t awaiting = 0;
        std::vector<ServerStats> statsParts;
        MetricsSnapshot metricsMerged;
        /** Traces gathered so far (seeded with the gateway's own). */
        std::vector<RequestTrace> tracesMerged;
        std::uint64_t tracesTotal = 0;
    };

    void ioLoop();
    void proberLoop();
    void acceptReady();
    bool readReady(std::uint64_t conn_id, ClientConn &conn);
    /** Flush as much of conn.outbuf as the socket accepts.
     *  @return false when the socket died. */
    bool flushClient(ClientConn &conn);
    void handleClientFrame(std::uint64_t conn_id, ClientConn &conn,
                           Frame &&frame);
    void handleBackendFrame(std::size_t idx, Frame &&frame);
    /** Route a decoded SUBMIT/FORWARD payload to its ring owner,
     *  FORWARDing @p ctx when valid and stamping @p trace (may be
     *  null) through the gateway stages. */
    void routeSubmit(std::uint64_t conn_id, std::uint64_t client_tag,
                     Digest digest,
                     std::vector<std::uint8_t> submit_payload,
                     const TraceContext &ctx,
                     std::shared_ptr<RequestTrace> trace);
    /** Fan a STATS/METRICS/TRACES request out to every routable
     *  backend. */
    void startGather(std::uint64_t conn_id, std::uint64_t client_tag,
                     Gather::Kind kind);
    void finishGatherIfDone(std::uint64_t gather_id);
    /** Append bytes to a client connection's output buffer; no-op
     *  when the connection is gone. IO thread only. */
    void sendToClient(std::uint64_t conn_id,
                      std::vector<std::uint8_t> bytes);
    void sendClientError(std::uint64_t conn_id, std::uint64_t tag,
                         const std::string &message);
    /** Install the client conn's interest mask (cf. NetServer). */
    void updateClientInterest(std::uint64_t conn_id, ClientConn &conn);
    void updateBackendInterest(std::size_t idx);
    void closeClientConn(std::uint64_t conn_id);
    /** Remove backend @p idx from the routable set, drop its
     *  connection if still open, re-ring, and migrate or fail its
     *  in-flight requests. */
    void backendDown(std::size_t idx, const std::string &reason);
    /** Ping-confirmed (and admin-healthy) backend joins the ring. */
    void backendUp(std::size_t idx);
    /** Rebuild ring_ / ring_map_ over the routable set. */
    void rebuildRing();
    void sendPings();
    void tryReconnects(int elapsed_ms);
    /** Begin a (re)connect of backend @p idx and register its fd. */
    void tryConnect(std::size_t idx);
    /** First PING after a connect: routability gates on its answer. */
    void sendLivenessPing(std::size_t idx);
    /** True while responses or gather replies are still owed to this
     *  client (a half-closed conn must survive until delivery). */
    bool clientOwedWork(std::uint64_t conn_id) const;
    void wakeIoThread();
    /** Begin (or continue) tracing a request admitted at the front
     *  door: mint a context when none arrived and tracing is on,
     *  adopt it into a gateway-tier trace, stamp Decode. */
    std::shared_ptr<RequestTrace>
    admitTrace(TraceContext *ctx, const ServeRequest &req);
    /** Register the admin routes on @p admin (start() helper). */
    void registerAdminRoutes(HttpAdminServer &admin);
    /** Gather HealthInputs and run them through health_. */
    HealthReport evaluateHealth() const;
    /** Fetch the stitchable cross-tier trace set (the gateway's own
     *  rings plus every routable backend's) by round-tripping a
     *  TRACES frame through the gateway's own front door. */
    bool gatherTracesForAdmin(std::vector<RequestTrace> *out,
                              std::uint64_t *total) const;

    Options opts_;
    std::string error_;

    std::mutex lifecycle_mutex_;
    bool stopped_ = false;
    std::atomic<bool> running_{false};
    std::atomic<bool> exiting_{false};

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    int wake_pipe_[2] = {-1, -1};
    int listen_backoff_ = 0;

    /** IO-thread only (except where noted). */
    EventLoop loop_;
    std::vector<std::unique_ptr<Backend>> backends_;
    /** Ring over the routable subset; ring_map_[ring shard] =
     *  backend index. Empty while no backend is routable. */
    std::unique_ptr<ConsistentHashRouter> ring_;
    std::vector<std::size_t> ring_map_;
    std::atomic<std::size_t> routable_count_{0};

    std::uint64_t next_conn_id_ = 16;
    std::map<std::uint64_t, std::unique_ptr<ClientConn>> conns_;
    /** Closing clients, swept for close-when-flushed-and-owed-
     *  nothing each wakeup. */
    std::set<std::uint64_t> closing_conns_;

    std::uint64_t next_tag_ = 1;
    std::map<std::uint64_t, Inflight> inflight_;
    /** One outstanding leg of a scatter-gather: which gather it
     *  belongs to and which backend owes the reply (so a backend
     *  death mid-gather releases the leg instead of hanging it). */
    struct GatherLeg
    {
        std::uint64_t gatherId = 0;
        std::size_t backendIdx = 0;
    };
    /** Backend tag → leg, for STATS/METRICS fan-out. */
    std::map<std::uint64_t, GatherLeg> gather_tags_;
    std::uint64_t next_gather_id_ = 1;
    std::map<std::uint64_t, Gather> gathers_;

    std::thread io_thread_;
    std::thread prober_thread_;

    mutable std::mutex stats_mutex_;
    GatewayStats stats_;

    std::unique_ptr<MetricsRegistry> metrics_;
    struct Instruments
    {
        Counter *requests = nullptr;
        Counter *relayed = nullptr;
        Counter *failovers = nullptr;
        Counter *resubmits = nullptr;
        Counter *errors = nullptr;
        Gauge *backendsRoutable = nullptr;
        Gauge *clientsLive = nullptr;
        Histogram *routeMicros = nullptr;
    } inst_;

    /** Declared after metrics_: stage histograms feed the registry. */
    TraceCollector collector_;

    /** Admin plane (all null when Options::adminEnabled is off). */
    std::unique_ptr<HealthModel> health_;
    std::unique_ptr<FlightRecorder> recorder_;
    std::unique_ptr<HttpAdminServer> admin_;
};

/**
 * One blocking /healthz probe against @p host:@p admin_port with a
 * short timeout: true when the endpoint answers 200 (Ok or Degraded
 * both serve 200 — see obs/health.hh). Exposed for tests.
 */
bool probeHealthz(const std::string &host, std::uint16_t admin_port,
                  int timeout_ms);

} // namespace sap

#endif // SAP_NET_GATEWAY_HH
