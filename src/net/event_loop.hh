/**
 * @file
 * Level-triggered socket readiness multiplexer: the reusable IO core
 * under the net/ server, the gateway, and the async client mode.
 *
 * A C10K front door cannot afford poll()'s per-call O(watched fds)
 * kernel copy: with ten thousand mostly-idle connections, every
 * wakeup would stream the whole interest set into the kernel to
 * learn that three sockets are ready. EventLoop keeps the interest
 * set *in* the kernel (epoll on Linux) so one wait() costs O(ready
 * fds), and falls back to a bit-identical poll() implementation on
 * platforms without epoll (or when SAP_NET_FORCE_POLL is defined,
 * which CI uses to keep the fallback honest).
 *
 * Semantics are deliberately the lowest common denominator of the
 * two backends:
 *
 *  - level-triggered only: a readable fd stays readable until
 *    drained, so a handler that reads partially is re-woken — no
 *    edge-triggered starvation bugs;
 *  - an fd is watched with an interest mask (kRead | kWrite) and an
 *    opaque 64-bit key the owner uses to find its connection state;
 *    interest 0 unwatches (important under epoll, which would
 *    otherwise still report HUP/ERR for a registered fd and spin a
 *    loop that wants to ignore a half-dead socket);
 *  - error/hangup readiness is always delivered for watched fds,
 *    whatever the mask, exactly as both kernels do.
 *
 * Thread-safety: NONE. An EventLoop belongs to the one thread that
 * wait()s on it; cross-thread wakeups go through a self-pipe
 * watched like any other fd (see net/server.cc, net/gateway.cc).
 */

#ifndef SAP_NET_EVENT_LOOP_HH
#define SAP_NET_EVENT_LOOP_HH

#include <cstdint>
#include <map>
#include <vector>

#if defined(__linux__) && !defined(SAP_NET_FORCE_POLL)
#define SAP_EVENT_LOOP_EPOLL 1
#include <sys/epoll.h>
#else
#define SAP_EVENT_LOOP_EPOLL 0
#include <poll.h>
#endif

namespace sap {

/** Level-triggered readiness multiplexer (see file comment). */
class EventLoop
{
  public:
    /** Interest bits for set(). */
    static constexpr std::uint32_t kRead = 1u << 0;
    static constexpr std::uint32_t kWrite = 1u << 1;

    /** One ready fd, as reported by wait(). */
    struct Ready
    {
        /** The key the fd was watched with. */
        std::uint64_t key = 0;
        bool readable = false;
        bool writable = false;
        /** POLLERR/POLLNVAL-class trouble: close the fd. */
        bool error = false;
        /** Peer hung up; level-triggered reads will drain to EOF. */
        bool hangup = false;
    };

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** False when the kernel multiplexer could not be created
     *  (epoll_create failure; the poll backend never fails). */
    bool valid() const;

    /**
     * Watch @p fd with @p interest (kRead|kWrite), reporting it as
     * @p key. Re-setting an already-watched fd updates its mask and
     * key; interest 0 unwatches it entirely.
     * @return false if the kernel rejected the fd.
     */
    bool set(int fd, std::uint32_t interest, std::uint64_t key);

    /** Stop watching @p fd (harmless if not watched). Call *before*
     *  closing the fd, or the epoll backend cannot deregister it. */
    void remove(int fd);

    /** True while @p fd is watched with nonzero interest. */
    bool watched(int fd) const;

    /** Number of watched fds. */
    std::size_t watchCount() const { return entries_.size(); }

    /**
     * Block up to @p timeout_ms (-1 = forever) for readiness; the
     * results land in ready(). @return the number of ready fds; 0 on
     * timeout or EINTR (ready() is empty in both cases).
     */
    int wait(int timeout_ms);

    /** The fds the last wait() reported ready. */
    const std::vector<Ready> &ready() const { return ready_; }

    /** "epoll" or "poll" — which backend this build uses. */
    static const char *backendName();

  private:
    struct Entry
    {
        std::uint32_t interest = 0;
        std::uint64_t key = 0;
    };

    std::map<int, Entry> entries_;
    std::vector<Ready> ready_;

#if SAP_EVENT_LOOP_EPOLL
    int epfd_ = -1;
    std::vector<struct epoll_event> events_;
#else
    /** pfds_ mirrors entries_; rebuilt lazily when dirty. */
    bool pfds_dirty_ = true;
    std::vector<struct pollfd> pfds_;
    std::vector<std::uint64_t> pfd_keys_;
#endif
};

} // namespace sap

#endif // SAP_NET_EVENT_LOOP_HH
