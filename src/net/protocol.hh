/**
 * @file
 * The versioned, length-prefixed binary wire protocol that carries
 * serving requests to an array cluster and responses back.
 *
 * The hyper-systolic reading of the paper's scheme treats computation
 * as data moving through a fixed communication structure; one level
 * up, a serving installation treats *requests* the same way — a
 * framed stream moving through a network boundary into the array
 * cluster. This file defines that boundary:
 *
 *   frame   := header | payload
 *   header  := magic u32 | version u16 | type u16 | tag u64 | len u32
 *   payload := `len` bytes, layout per frame type
 *
 * All integers are little-endian; Scalars travel as IEEE-754 bit
 * patterns (u64), so integer-valued workloads round-trip bit-exactly
 * and results can be cross-checked against the host oracle.
 *
 * Frame types: SUBMIT (a full ServeRequest: engine name, problem
 * kind, flags, matrices), RESPONSE (the served result), STATS (empty
 * payload = request; non-empty = an aggregated ServerStats
 * snapshot), PING (echoed verbatim), ERROR (a human-readable
 * message).
 *
 * Still version 1, with in-place evolutions: SUBMIT's crossCheck
 * byte is now a flags byte (bit 0 keeps its old meaning, so old
 * encoders interoperate — see kSubmitFlag*); each STATS group record
 * carries an execution-mode byte after the problem kind, and the
 * STATS prelude now ends with an approximate-percentiles flag byte
 * (ServerStats::approximatePercentiles). Old STATS *decoders* do not
 * understand either; the snapshot is a monitoring artifact, not a
 * stored format, so the breaks are accepted and documented here. The
 * METRICS frame (obs/metrics.hh snapshots: counters, gauges with an
 * aggregation byte, sparse log-bucketed histograms) is new in this
 * revision and versioned the same way. FORWARD (the gateway tier's
 * backend hop: a u64 plan digest, a trace-context presence byte plus
 * optional context block, then a complete SUBMIT payload, so a
 * backend reuses the routing digest the gateway already computed
 * instead of re-hashing the matrices) and TRACES (empty payload =
 * "send me your committed trace rings"; non-empty = a ring snapshot,
 * the scatter-gather leg behind the gateway's stitched /tracez) are
 * newest; a pre-gateway server rejects them as unknown frame types —
 * a payload-level error, so mixed-version installations degrade to
 * an explicit ERROR frame, never a desync. Cross-tier tracing rides
 * a compact trace-context block (128-bit trace id, sampled flag,
 * edge-origin monotonic nanos, attempt counter — see
 * encodeTraceContext) carried on FORWARD and, behind SUBMIT flag
 * bit 4, on direct client submissions.
 *
 * Robustness contract: decoding is strictly bounds-checked and never
 * trusts a length against fewer bytes than it promises. Errors split
 * into two severities:
 *
 *  - *frame-level* (bad magic, unsupported version, payload length
 *    over the cap): the byte stream cannot be re-synchronized, so
 *    FrameDecoder poisons itself — the server answers with one ERROR
 *    frame and closes that connection;
 *  - *payload-level* (truncated or trailing payload bytes, unknown
 *    problem kind or frame type, zero/negative or oversized
 *    dimensions): framing is intact, so the offending frame yields
 *    an ERROR frame and the connection keeps serving.
 *
 * Neither severity may ever crash, assert, or silently disconnect.
 */

#ifndef SAP_NET_PROTOCOL_HH
#define SAP_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "serve/server_stats.hh"
#include "serve/shard.hh"

namespace sap {

/** First four bytes of every frame: "SAP1" read as a LE u32. */
constexpr std::uint32_t kWireMagic = 0x31504153u;

/** Protocol version this build speaks. */
constexpr std::uint16_t kWireVersion = 1;

/**
 * SUBMIT flags byte (what used to be the crossCheck 0/1 byte; old
 * encoders writing 0x00/0x01 decode identically):
 *
 *   bit 0    cross-check against the host oracle
 *   bits 1–2 execution mode (ExecMode value; 3 is rejected)
 *   bit 3    recordTrace — always *rejected* by the decoder, because
 *            RESPONSE frames carry no trace; encoding it (rather
 *            than dropping it client-side) turns a silently-lossy
 *            request into an explicit error
 *   bit 4    a trace-context block (kTraceContextBytes) immediately
 *            follows the flags byte — direct clients opting into
 *            cross-tier tracing (see encodeTraceContext)
 *   bits 5–7 reserved, must be zero
 */
constexpr std::uint8_t kSubmitFlagCrossCheck = 1u << 0;
constexpr unsigned kSubmitModeShift = 1;
constexpr std::uint8_t kSubmitModeMask = 0x3;
constexpr std::uint8_t kSubmitFlagRecordTrace = 1u << 3;
constexpr std::uint8_t kSubmitFlagTraceContext = 1u << 4;
/** Every flag bit a version-1 decoder understands. */
constexpr std::uint8_t kSubmitFlagsKnown =
    kSubmitFlagCrossCheck | (kSubmitModeMask << kSubmitModeShift) |
    kSubmitFlagRecordTrace | kSubmitFlagTraceContext;

/**
 * Encoded size of a TraceContext block: u64 trace id hi, u64 trace
 * id lo, u8 flags (bit 0 = sampled, rest reserved-zero), u64 origin
 * nanos, u8 attempt.
 */
constexpr std::size_t kTraceContextBytes = 26;

/** TraceContext flags byte: bit 0 = sampled; bits 1–7 reserved. */
constexpr std::uint8_t kTraceCtxFlagSampled = 1u << 0;

/** Frame types on the wire (u16). */
enum class FrameType : std::uint16_t
{
    Submit = 1,   ///< client → server: one ServeRequest
    Response = 2, ///< server → client: the served result
    Stats = 3,    ///< empty = stats request; else a stats snapshot
    Ping = 4,     ///< liveness check, echoed verbatim
    Error = 5,    ///< malformed input or unexpected frame
    Metrics = 6,  ///< empty = metrics request; else a merged snapshot
    Forward = 7,  ///< gateway → server: digest-precomputed SUBMIT
    Traces = 8,   ///< empty = trace-ring request; else a snapshot
};

/** Printable frame-type name ("SUBMIT", ... / "type 17"). */
std::string frameTypeName(std::uint16_t type);

/** Fixed-size frame prelude; see the file comment for the layout. */
struct FrameHeader
{
    std::uint32_t magic = kWireMagic;
    std::uint16_t version = kWireVersion;
    std::uint16_t type = 0;
    /** Caller-chosen request id, echoed back in the response. */
    std::uint64_t tag = 0;
    std::uint32_t payloadLen = 0;
};

/** Encoded size of a FrameHeader. */
constexpr std::size_t kFrameHeaderBytes = 20;

/** Default cap on payload bytes a decoder will accept (64 MiB). */
constexpr std::uint32_t kDefaultMaxPayloadBytes = 64u << 20;

/** Cap on matrix/vector dimensions accepted off the wire. */
constexpr Index kMaxWireDim = 1 << 20;

/** Cap on string lengths (engine names, error messages). */
constexpr std::uint32_t kMaxWireString = 1 << 16;

/**
 * Append-only little-endian byte sink: the encode half of the
 * protocol. Also the tool tests use to craft malformed frames.
 */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** IEEE-754 bit pattern as u64. */
    void f64(double v);
    /** u32 length followed by the raw bytes. */
    void str(const std::string &s);
    /** i64 length followed by the elements as f64. */
    void vec(const Vec<Scalar> &v);
    /** i64 rows, i64 cols, then row-major elements as f64. */
    void dense(const Dense<Scalar> &m);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked little-endian reader over a borrowed byte span: the
 * decode half. Every read reports failure instead of walking out of
 * the buffer; compound reads (str/vec/dense) additionally reject
 * negative or over-cap sizes and lengths that promise more bytes
 * than remain.
 */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit WireReader(const std::vector<std::uint8_t> &bytes)
        : WireReader(bytes.data(), bytes.size())
    {
    }

    bool u8(std::uint8_t *out);
    bool u16(std::uint16_t *out);
    bool u32(std::uint32_t *out);
    bool u64(std::uint64_t *out);
    bool i64(std::int64_t *out);
    bool f64(double *out);
    bool str(std::string *out);
    bool vec(Vec<Scalar> *out);
    bool dense(Dense<Scalar> *out);

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** One decoded frame: header plus owned payload bytes. */
struct Frame
{
    FrameHeader header;
    std::vector<std::uint8_t> payload;
};

/**
 * Incremental frame splitter for a TCP byte stream.
 *
 * feed() appends raw bytes; next() yields complete frames in order.
 * A frame-level violation (bad magic/version, payload length over
 * the cap) poisons the decoder permanently — the stream cannot be
 * re-synchronized — and next() keeps returning Malformed with the
 * same message. Unknown frame *types* are NOT a framing error: the
 * length field still delimits them, so they are delivered for the
 * application layer to reject.
 */
class FrameDecoder
{
  public:
    enum class Result
    {
        Ok,        ///< *out holds a complete frame
        NeedMore,  ///< not enough buffered bytes yet
        Malformed, ///< frame-level violation; decoder is poisoned
    };

    explicit FrameDecoder(
        std::uint32_t max_payload = kDefaultMaxPayloadBytes)
        : max_payload_(max_payload)
    {
    }

    /** Append @p len raw stream bytes. */
    void feed(const std::uint8_t *data, std::size_t len);

    /**
     * Extract the next complete frame into @p out.
     * On Malformed, @p error (optional) receives the reason.
     */
    Result next(Frame *out, std::string *error = nullptr);

    /** True once a frame-level violation was seen. */
    bool poisoned() const { return poisoned_; }

  private:
    std::uint32_t max_payload_;
    std::vector<std::uint8_t> buf_;
    std::size_t consumed_ = 0; ///< bytes of buf_ already handed out
    bool poisoned_ = false;
    std::string poison_reason_;
};

/**
 * The response payload as it travels on the wire: the subset of
 * ServeResponse a remote client can use. Both result containers are
 * always encoded; the one the problem kind does not produce is
 * empty.
 */
struct WireResponse
{
    bool ok = false;
    std::string error;
    bool cacheHit = false;
    bool crossCheckOk = true;
    /** Service time measured server-side, in microseconds. */
    double latencyMicros = 0;
    /** Simulated array cycles the request consumed. */
    Cycle simCycles = 0;
    Vec<Scalar> y;   ///< MatVec / TriSolve result
    Dense<Scalar> c; ///< MatMul result

    /** Project the wire-visible fields out of a served response.
     *  Pass by value: callers that own the response (the server's
     *  writer loop) move it in, so result matrices are not copied. */
    static WireResponse of(ServeResponse resp);
};

//----------------------------------------------------------------------
// Frame builders (header + payload, ready to write to a socket).
//----------------------------------------------------------------------

/** Generic frame around an already-encoded payload. */
std::vector<std::uint8_t> buildFrame(FrameType type, std::uint64_t tag,
                                     const std::vector<std::uint8_t>
                                         &payload);

/** SUBMIT carrying @p req (engine, kind, w, flags, operands); the
 *  flags byte packs crossCheck, the execution mode, and recordTrace
 *  (see kSubmitFlag*). */
std::vector<std::uint8_t> buildSubmitFrame(std::uint64_t tag,
                                           const ServeRequest &req);

/** RESPONSE carrying @p resp. */
std::vector<std::uint8_t> buildResponseFrame(std::uint64_t tag,
                                             const WireResponse &resp);

/** Empty-payload STATS: "send me a snapshot". */
std::vector<std::uint8_t> buildStatsRequestFrame(std::uint64_t tag);

/** STATS carrying an aggregated snapshot. */
std::vector<std::uint8_t> buildStatsFrame(std::uint64_t tag,
                                          const ServerStats &stats);

/** Empty-payload METRICS: "send me a merged metrics snapshot". */
std::vector<std::uint8_t> buildMetricsRequestFrame(std::uint64_t tag);

/** METRICS carrying a merged obs/ snapshot. */
std::vector<std::uint8_t> buildMetricsFrame(std::uint64_t tag,
                                            const MetricsSnapshot
                                                &snap);

/**
 * FORWARD wrapping an already-encoded SUBMIT payload together with
 * its precomputed plan digest (the gateway relays the payload bytes
 * it decoded for routing — no re-encode). @p digest MUST equal
 * planDigest() of the embedded request; it is a cache/routing hint,
 * and correctness never depends on it (the plan cache confirms every
 * digest hit with an exact matrix comparison).
 *
 * Layout: u64 digest | u8 ctx-present (0 or 1) | [trace-context
 * block when 1] | embedded SUBMIT payload. @p ctx (optional) is the
 * gateway's propagated trace context; when present it takes
 * precedence over any context embedded in the SUBMIT payload, so
 * the gateway can stamp the resubmit attempt counter without
 * re-encoding the client's bytes.
 */
std::vector<std::uint8_t>
buildForwardFrame(std::uint64_t tag, Digest digest,
                  const std::vector<std::uint8_t> &submit_payload,
                  const TraceContext *ctx = nullptr);

/** Empty-payload TRACES: "send me your committed trace rings". */
std::vector<std::uint8_t> buildTracesRequestFrame(std::uint64_t tag);

/** TRACES carrying a ring snapshot (see encodeTraces). */
std::vector<std::uint8_t>
buildTracesFrame(std::uint64_t tag,
                 const std::vector<RequestTrace> &traces,
                 std::uint64_t totalCommitted);

/** Empty-payload PING. */
std::vector<std::uint8_t> buildPingFrame(std::uint64_t tag);

/** ERROR carrying @p message. */
std::vector<std::uint8_t> buildErrorFrame(std::uint64_t tag,
                                          const std::string &message);

//----------------------------------------------------------------------
// Payload codecs. Decoders return false and set *error on any
// malformed payload (truncated, trailing bytes, unknown kind,
// zero/negative or over-cap dimensions); they never assert.
//----------------------------------------------------------------------

/**
 * SUBMIT payload from a request. When req.traceContext.valid() the
 * flags byte gets kSubmitFlagTraceContext and the context block is
 * encoded after it.
 */
std::vector<std::uint8_t> encodeSubmit(const ServeRequest &req);

/** @return true and fill @p out, or false with @p error set. */
bool decodeSubmit(const std::vector<std::uint8_t> &payload,
                  ServeRequest *out, std::string *error);

/**
 * FORWARD payload: u64 plan digest, u8 ctx-present byte, optional
 * trace-context block, then the embedded SUBMIT payload (decoded
 * with the same strictness as decodeSubmit). A FORWARD-level
 * context overrides any context the embedded SUBMIT carries in
 * out->traceContext.
 */
bool decodeForward(const std::vector<std::uint8_t> &payload,
                   Digest *digest, ServeRequest *out,
                   std::string *error);

/** Append a TraceContext block (kTraceContextBytes) to @p w. */
void encodeTraceContext(WireWriter &w, const TraceContext &ctx);

/**
 * Read a TraceContext block from @p r. Strict: reserved flag bits
 * and an all-zero trace id are rejected (@p error gets the reason,
 * prefixed with @p what).
 */
bool decodeTraceContext(WireReader &r, TraceContext *out,
                        const char *what, std::string *error);

/**
 * TRACES payload: u64 totalCommitted, u32 trace count, then per
 * trace: u64 requestId, str label, str kind, u8 ok, u8 cacheHit,
 * u8 tier (TraceTier; >1 rejected), u8 ctx-present, optional
 * trace-context block, kTraceStages × u64 stage nanos, u32 event
 * count, then (str name, u64 nanos) per event.
 */
std::vector<std::uint8_t>
encodeTraces(const std::vector<RequestTrace> &traces,
             std::uint64_t totalCommitted);

/** @copydoc decodeSubmit() */
bool decodeTraces(const std::vector<std::uint8_t> &payload,
                  std::vector<RequestTrace> *out,
                  std::uint64_t *totalCommitted, std::string *error);

/** RESPONSE payload. */
std::vector<std::uint8_t> encodeResponse(const WireResponse &resp);

/** @copydoc decodeSubmit() */
bool decodeResponse(const std::vector<std::uint8_t> &payload,
                    WireResponse *out, std::string *error);

/** STATS payload (whole-installation snapshot incl. groups). */
std::vector<std::uint8_t> encodeStats(const ServerStats &stats);

/** @copydoc decodeSubmit() */
bool decodeStats(const std::vector<std::uint8_t> &payload,
                 ServerStats *out, std::string *error);

/**
 * METRICS payload: u32 counter count, then (name, u64) records; u32
 * gauge count, then (name, agg u8, f64) records; u32 histogram
 * count, then (name, u64 count, f64 sum/min/max, u32 bucket count,
 * (u32 index, u64 count) pairs) records. Buckets travel sparse —
 * index into the fixed log-bucket table (histBucketUpper), count —
 * so an idle installation's snapshot is a few hundred bytes.
 */
std::vector<std::uint8_t> encodeMetrics(const MetricsSnapshot &snap);

/** @copydoc decodeSubmit() */
bool decodeMetrics(const std::vector<std::uint8_t> &payload,
                   MetricsSnapshot *out, std::string *error);

/** ERROR payload. */
std::vector<std::uint8_t> encodeError(const std::string &message);

/** @copydoc decodeSubmit() */
bool decodeError(const std::vector<std::uint8_t> &payload,
                 std::string *out, std::string *error);

} // namespace sap

#endif // SAP_NET_PROTOCOL_HH
