/**
 * @file
 * Non-blocking event-loop client mode for the net/ wire protocol —
 * the connection primitive the gateway tier multiplexes.
 *
 * NetClient (net/client.hh) blocks per call, which is the right
 * discipline for an external tool holding one connection. A gateway
 * holding a connection per backend cannot block on any of them: a
 * slow backend would stall traffic to every healthy one. AsyncClient
 * is the same wire protocol restructured around an owner-provided
 * EventLoop (net/event_loop.hh):
 *
 *  - connectStart() issues a non-blocking connect and returns
 *    immediately; the owner watches fd() with desiredInterest() and
 *    learns the outcome through onConnected / onClosed;
 *  - send() only appends to an internal output buffer; bytes move
 *    when the loop reports the socket writable;
 *  - handleReady() drives the connection from one EventLoop::Ready
 *    record: it finishes the connect handshake, flushes pending
 *    output, reads until EAGAIN, and delivers every complete frame
 *    through onFrame.
 *
 * The owner re-installs desiredInterest() after every state change
 * (send, handleReady) — the mask covers kWrite exactly while the
 * handshake or unsent bytes are pending, so an idle connection costs
 * nothing per wakeup.
 *
 * Callbacks run synchronously inside handleReady() on the loop
 * thread. onClosed fires at most once, for both clean EOF and
 * transport errors; after it the client is in Closed state and the
 * fd is gone (the owner must EventLoop::remove() it first — see
 * handleReady()'s contract below).
 *
 * Thread-safety: NONE. An AsyncClient belongs to the thread running
 * its owner's event loop.
 */

#ifndef SAP_NET_ASYNC_CLIENT_HH
#define SAP_NET_ASYNC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/event_loop.hh"
#include "net/protocol.hh"

namespace sap {

/** Event-loop-driven wire-protocol connection (see file comment). */
class AsyncClient
{
  public:
    enum class State
    {
        Idle,       ///< no socket yet (or close()d by the owner)
        Connecting, ///< non-blocking connect in flight
        Connected,  ///< handshake done; frames flow
        Closed,     ///< transport failed or peer hung up
    };

    explicit AsyncClient(
        std::uint32_t max_payload = kDefaultMaxPayloadBytes)
        : max_payload_(max_payload), decoder_(max_payload)
    {
    }

    /** Closes the socket if still open (no callback). */
    ~AsyncClient();

    AsyncClient(const AsyncClient &) = delete;
    AsyncClient &operator=(const AsyncClient &) = delete;

    /** Fires once when the non-blocking connect completes. */
    std::function<void()> onConnected;
    /** Fires per complete frame read off the stream. */
    std::function<void(Frame &&)> onFrame;
    /** Fires once when the transport dies (EOF, error, malformed
     *  stream); the fd is already closed when it runs. */
    std::function<void(const std::string &reason)> onClosed;

    /**
     * Begin a non-blocking connect to @p host:@p port (IPv4 dotted
     * quad or "localhost"). On true the state is Connecting (or
     * already Connected for a same-host fast path) and fd() is valid
     * for watching. On false the state is Closed with lastError()
     * set; no callback fires.
     *
     * Call on an Idle or Closed client only; re-using a client for a
     * reconnect resets the decoder and output buffer.
     */
    bool connectStart(const std::string &host, std::uint16_t port);

    /** Close without callbacks (owner-initiated teardown). The owner
     *  must EventLoop::remove(fd()) first. State becomes Idle. */
    void close();

    State state() const { return state_; }
    bool connected() const { return state_ == State::Connected; }

    /** The socket (−1 unless Connecting or Connected). */
    int fd() const { return fd_; }

    /**
     * The EventLoop interest mask this connection currently needs:
     * kWrite while Connecting (connect completion is writability) or
     * while output is buffered, kRead while Connected. 0 when there
     * is no socket.
     */
    std::uint32_t desiredInterest() const;

    /** Queue @p bytes for transmission (no syscall; the loop flushes
     *  on writability). Silently dropped unless Connecting or
     *  Connected — the owner decides how to handle a dead backend. */
    void send(std::vector<std::uint8_t> bytes);

    /** Bytes buffered but not yet accepted by the kernel. */
    std::size_t queuedBytes() const { return outbuf_.size() - outoff_; }

    /**
     * Drive the connection from one readiness record (the owner
     * dispatches the Ready whose key it registered fd() under).
     *
     * Contract: the owner must EventLoop::remove(fd()) BEFORE calling
     * this when it intends to drop the connection, and after this
     * returns it must either re-install desiredInterest() (still
     * alive) or have removed the fd (state() == Closed closes it).
     * handleReady() itself removes nothing — it has no loop pointer —
     * so the owner's dispatch loop re-sets interest after every call
     * (see net/gateway.cc).
     */
    void handleReady(const EventLoop::Ready &ev);

    /** Why the last connectStart() failed or the transport closed. */
    const std::string &lastError() const { return error_; }

  private:
    /** Enter Closed, ::close() the fd, fire onClosed once. */
    void transportClosed(const std::string &reason);
    /** Flush outbuf_ until EAGAIN. @return false if the socket died
     *  (transportClosed already ran). */
    bool flushSome();
    /** Read until EAGAIN, delivering frames. @return false if the
     *  stream ended (transportClosed already ran). */
    bool readSome();

    std::uint32_t max_payload_;
    FrameDecoder decoder_;
    State state_ = State::Idle;
    int fd_ = -1;
    std::vector<std::uint8_t> outbuf_;
    std::size_t outoff_ = 0;
    std::string error_;
};

} // namespace sap

#endif // SAP_NET_ASYNC_CLIENT_HH
