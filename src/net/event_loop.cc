#include "net/event_loop.hh"

#include <cerrno>

#include <unistd.h>

namespace sap {

#if SAP_EVENT_LOOP_EPOLL

namespace {

std::uint32_t
toEpollMask(std::uint32_t interest)
{
    std::uint32_t mask = 0;
    if (interest & EventLoop::kRead)
        mask |= EPOLLIN;
    if (interest & EventLoop::kWrite)
        mask |= EPOLLOUT;
    return mask;
}

} // namespace

EventLoop::EventLoop()
{
    epfd_ = ::epoll_create1(0);
}

EventLoop::~EventLoop()
{
    if (epfd_ >= 0)
        ::close(epfd_);
}

bool
EventLoop::valid() const
{
    return epfd_ >= 0;
}

bool
EventLoop::set(int fd, std::uint32_t interest, std::uint64_t key)
{
    if (interest == 0) {
        remove(fd);
        return true;
    }
    struct epoll_event ev;
    ev.events = toEpollMask(interest);
    ev.data.u64 = key;
    auto it = entries_.find(fd);
    if (it == entries_.end()) {
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
            return false;
        entries_[fd] = {interest, key};
        return true;
    }
    if (it->second.interest == interest && it->second.key == key)
        return true;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0)
        return false;
    it->second = {interest, key};
    return true;
}

void
EventLoop::remove(int fd)
{
    auto it = entries_.find(fd);
    if (it == entries_.end())
        return;
    // Failure (EBADF after a racing close) only means the kernel
    // already forgot the fd; forget it here too either way.
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    entries_.erase(it);
}

bool
EventLoop::watched(int fd) const
{
    return entries_.count(fd) != 0;
}

int
EventLoop::wait(int timeout_ms)
{
    ready_.clear();
    if (entries_.empty() && timeout_ms < 0)
        return 0; // nothing can ever become ready
    events_.resize(entries_.empty() ? 1 : entries_.size());
    int n = ::epoll_wait(epfd_, events_.data(),
                         static_cast<int>(events_.size()), timeout_ms);
    if (n <= 0)
        return 0; // timeout, or EINTR — the caller re-waits
    ready_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Ready r;
        r.key = events_[i].data.u64;
        r.readable = (events_[i].events & EPOLLIN) != 0;
        r.writable = (events_[i].events & EPOLLOUT) != 0;
        r.error = (events_[i].events & EPOLLERR) != 0;
        r.hangup = (events_[i].events & EPOLLHUP) != 0;
        ready_.push_back(r);
    }
    return n;
}

const char *
EventLoop::backendName()
{
    return "epoll";
}

#else // poll() fallback

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() = default;

bool
EventLoop::valid() const
{
    return true;
}

bool
EventLoop::set(int fd, std::uint32_t interest, std::uint64_t key)
{
    if (interest == 0) {
        remove(fd);
        return true;
    }
    Entry &e = entries_[fd];
    if (e.interest != interest || e.key != key) {
        e = {interest, key};
        pfds_dirty_ = true;
    }
    return true;
}

void
EventLoop::remove(int fd)
{
    if (entries_.erase(fd) != 0)
        pfds_dirty_ = true;
}

bool
EventLoop::watched(int fd) const
{
    return entries_.count(fd) != 0;
}

int
EventLoop::wait(int timeout_ms)
{
    ready_.clear();
    if (pfds_dirty_) {
        pfds_.clear();
        pfd_keys_.clear();
        pfds_.reserve(entries_.size());
        pfd_keys_.reserve(entries_.size());
        for (const auto &entry : entries_) {
            short events = 0;
            if (entry.second.interest & kRead)
                events |= POLLIN;
            if (entry.second.interest & kWrite)
                events |= POLLOUT;
            pfds_.push_back({entry.first, events, 0});
            pfd_keys_.push_back(entry.second.key);
        }
        pfds_dirty_ = false;
    }
    for (struct pollfd &p : pfds_)
        p.revents = 0;
    if (pfds_.empty() && timeout_ms < 0)
        return 0;
    int n = ::poll(pfds_.data(), static_cast<nfds_t>(pfds_.size()),
                   timeout_ms);
    if (n <= 0)
        return 0; // timeout, or EINTR — the caller re-waits
    ready_.reserve(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
        if (pfds_[i].revents == 0)
            continue;
        Ready r;
        r.key = pfd_keys_[i];
        r.readable = (pfds_[i].revents & POLLIN) != 0;
        r.writable = (pfds_[i].revents & POLLOUT) != 0;
        r.error = (pfds_[i].revents & (POLLERR | POLLNVAL)) != 0;
        r.hangup = (pfds_[i].revents & POLLHUP) != 0;
        ready_.push_back(r);
    }
    return n;
}

const char *
EventLoop::backendName()
{
    return "poll";
}

#endif // SAP_EVENT_LOOP_EPOLL

} // namespace sap
