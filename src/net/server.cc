#include "net/server.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"
#include "obs/trace_export.hh"

namespace sap {

namespace {

/** Wait period; also bounds shutdown-flush latency and how long a
 *  closing connection can linger after its last response flushed. */
constexpr int kWaitTimeoutMs = 50;

/** Event-loop keys below this are reserved (0 = wake pipe,
 *  1 = listen socket); connection ids start above them. */
constexpr std::uint64_t kWakeKey = 0;
constexpr std::uint64_t kListenKey = 1;

/** Shutdown flush gives a slow client at most this many periods. */
constexpr int kMaxFlushSpins = 40; // ~2 s with kWaitTimeoutMs

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

NetServer::NetServer(const Options &opts)
    : opts_(opts),
      net_metrics_(opts.metrics ? std::make_unique<MetricsRegistry>()
                                : nullptr),
      collector_(opts.trace, net_metrics_.get())
{
    if (net_metrics_) {
        inst_.bytesIn =
            &net_metrics_->counter("net_bytes_received_total");
        inst_.bytesOut =
            &net_metrics_->counter("net_bytes_sent_total");
        inst_.framesReceived =
            &net_metrics_->counter("net_frames_received_total");
        inst_.responsesSent =
            &net_metrics_->counter("net_responses_sent_total");
        inst_.protocolErrors =
            &net_metrics_->counter("net_protocol_errors_total");
        inst_.connectionsAccepted =
            &net_metrics_->counter("net_connections_accepted_total");
        inst_.connectionsLive =
            &net_metrics_->gauge("net_connections_live",
                                 GaugeAgg::Sum);
    }
}

NetServer::~NetServer()
{
    stop();
}

bool
NetServer::start()
{
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    if (running_.load()) {
        error_ = "start() called twice";
        return false;
    }
    if (stopped_) {
        // stop() permanently shuts the completion queue down (its
        // writer may have late completions to drain); a stopped
        // server cannot be revived.
        error_ = "NetServer cannot be restarted after stop(); "
                 "construct a new instance";
        return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error_ = errnoString("socket");
        return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0 || !setNonBlocking(listen_fd_)) {
        error_ = errnoString("bind/listen");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        error_ = errnoString("getsockname");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_pipe_) != 0 || !setNonBlocking(wake_pipe_[0]) ||
        !setNonBlocking(wake_pipe_[1])) {
        error_ = errnoString("pipe");
        ::close(listen_fd_);
        listen_fd_ = -1;
        if (wake_pipe_[0] >= 0)
            ::close(wake_pipe_[0]);
        if (wake_pipe_[1] >= 0)
            ::close(wake_pipe_[1]);
        wake_pipe_[0] = wake_pipe_[1] = -1;
        return false;
    }

    // Admin plane comes up before the data-plane threads: if its
    // port cannot bind, start() fails with nothing left to unwind
    // but sockets. Its handlers tolerate the not-yet-serving state
    // (healthz answers "not serving" until serving_ flips below).
    if (opts_.adminEnabled) {
        health_ = std::make_unique<HealthModel>(opts_.health);
        FlightRecorderConfig rc;
        rc.intervalSeconds = opts_.samplerIntervalSeconds;
        rc.retainSamples = opts_.samplerRetainSamples;
        recorder_ = std::make_unique<FlightRecorder>(
            [this] { return metricsSnapshot(); }, rc);

        HttpAdminServer::Options admin_opts;
        admin_opts.port = opts_.adminPort;
        admin_ = std::make_unique<HttpAdminServer>(admin_opts);
        registerAdminRoutes(*admin_);
        if (!admin_->start()) {
            error_ = "admin: " + admin_->error();
            admin_.reset();
            recorder_.reset();
            health_.reset();
            ::close(listen_fd_);
            listen_fd_ = -1;
            ::close(wake_pipe_[0]);
            ::close(wake_pipe_[1]);
            wake_pipe_[0] = wake_pipe_[1] = -1;
            return false;
        }
        recorder_->start();
    }

    cluster_ = std::make_unique<Cluster>(opts_.cluster);
    reads_quiesced_ = false;
    flush_and_exit_.store(false);
    serving_.store(true);
    running_.store(true);
    io_thread_ = std::thread([this] { ioLoop(); });
    writer_thread_ = std::thread([this] { writerLoop(); });
    SAP_LOG_INFO("net server listening on 127.0.0.1:", port_, " (",
                 opts_.cluster.shards, " shards, tracing ",
                 collector_.enabled() ? "on" : "off", ")");
    return true;
}

void
NetServer::stop()
{
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    bool expected = true;
    if (!running_.compare_exchange_strong(expected, false))
        return;
    stopped_ = true;

    // 0. Admin plane first: its threads call back into the cluster
    //    and queue surfaces torn down below. The objects stay alive
    //    (adminPort() remains answerable), only their threads stop.
    if (admin_)
        admin_->stop();
    if (recorder_)
        recorder_->stop();

    // 1. Stop accepting and reading; wait for the IO thread to
    //    acknowledge, so no submitToQueue() races the cluster drain.
    serving_.store(false);
    wakeIoThread();
    {
        std::unique_lock<std::mutex> lock(quiesce_mutex_);
        quiesce_cv_.wait(lock, [this] { return reads_quiesced_; });
    }

    // 2. Drain the cluster: every accepted request completes and its
    //    completion lands in queue_ (shards drain on destruction).
    //    Under cluster_mutex_, so a STATS snapshot the writer is
    //    taking right now finishes first.
    {
        std::lock_guard<std::mutex> lock(cluster_mutex_);
        cluster_.reset();
    }

    // 3. The writer converts the remaining completions to output
    //    buffers, then exits on the shutdown signal.
    queue_.shutdown();
    writer_thread_.join();

    // 4. Let the IO thread flush what clients will accept (bounded),
    //    then close everything.
    flush_and_exit_.store(true);
    wakeIoThread();
    io_thread_.join();

    ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    SAP_LOG_INFO("net server on port ", port_, " stopped");
}

NetServerStats
NetServer::netStats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return net_stats_;
}

MetricsSnapshot
NetServer::metricsSnapshot() const
{
    MetricsSnapshot snap;
    if (net_metrics_)
        snap = net_metrics_->snapshot();
    std::lock_guard<std::mutex> lock(cluster_mutex_);
    if (cluster_)
        snap.merge(cluster_->metricsSnapshot());
    return snap;
}

HealthReport
NetServer::evaluateHealth() const
{
    HealthInputs in;
    in.serving = serving_.load();
    in.queueDepth = static_cast<double>(queue_.size());
    {
        std::lock_guard<std::mutex> lock(cluster_mutex_);
        if (cluster_)
            in.queueDepth += cluster_->queueDepth();
    }
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        in.protocolErrors = net_stats_.protocolErrors;
    }
    if (recorder_)
        in.p99Micros =
            recorder_->latestValue("serve_latency_micros:p99");
    in.nowSeconds = monotonicSeconds();
    return health_->evaluate(in);
}

HealthReport
NetServer::healthReport() const
{
    if (!health_) {
        // No admin plane: degenerate always-healthy report keyed off
        // the lifecycle flag alone.
        HealthReport report;
        report.state = HealthState::Ok;
        report.live = true;
        report.ready = serving_.load();
        return report;
    }
    return evaluateHealth();
}

void
NetServer::registerAdminRoutes(HttpAdminServer &admin)
{
    admin.addHandler("/", [](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "text/html; charset=utf-8";
        resp.body =
            "<!doctype html><title>sap admin</title>"
            "<h1>sap admin</h1><ul>"
            "<li><a href=\"/metrics\">/metrics</a> — Prometheus "
            "text exposition</li>"
            "<li><a href=\"/healthz\">/healthz</a> — liveness "
            "(200/503)</li>"
            "<li><a href=\"/readyz\">/readyz</a> — readiness "
            "(200/503)</li>"
            "<li><a href=\"/tracez\">/tracez</a> — recent request "
            "traces (<a href=\"/tracez?format=chrome\">Perfetto "
            "format</a>)</li>"
            "<li><a href=\"/varz\">/varz</a> — full metrics "
            "snapshot as JSON</li>"
            "<li><a href=\"/timeseriesz\">/timeseriesz</a> — "
            "flight-recorder time series</li>"
            "</ul>";
        return resp;
    });
    admin.addHandler("/metrics", [this](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = renderPrometheus(metricsSnapshot());
        return resp;
    });
    admin.addHandler("/varz", [this](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = renderMetricsJson(metricsSnapshot());
        return resp;
    });
    admin.addHandler("/healthz", [this](const HttpRequest &) {
        const HealthReport report = evaluateHealth();
        HttpResponse resp;
        resp.status = report.live ? 200 : 503;
        resp.body = std::string(healthStateName(report.state));
        if (!report.reason.empty())
            resp.body += ": " + report.reason;
        resp.body += "\n";
        return resp;
    });
    admin.addHandler("/readyz", [this](const HttpRequest &) {
        const HealthReport report = evaluateHealth();
        HttpResponse resp;
        resp.status = report.ready ? 200 : 503;
        resp.body = std::string(report.ready ? "ready" : "not ready");
        if (!report.reason.empty())
            resp.body += ": " + report.reason;
        resp.body += "\n";
        return resp;
    });
    admin.addHandler("/tracez", [this](const HttpRequest &req) {
        HttpResponse resp;
        resp.contentType = "application/json";
        std::uint64_t min_us = 0;
        std::string kind, parse_err;
        if (!parseTraceQuery(req.query, &min_us, &kind, &parse_err)) {
            resp.status = 400;
            resp.contentType = "text/plain; charset=utf-8";
            resp.body = parse_err + "\n";
            return resp;
        }
        std::vector<RequestTrace> traces =
            filterTraces(traceSnapshot(), min_us, kind);
        auto it = req.query.find("format");
        if (it != req.query.end() && it->second == "chrome") {
            resp.body = toChromeTraceJson(traces);
            // A download, not a page: chrome://tracing / Perfetto
            // load the saved file.
            resp.extraHeaders.emplace_back(
                "Content-Disposition",
                "attachment; filename=\"sap_trace.json\"");
        } else {
            resp.body = toTracezJson(traces,
                                     collector_.totalCommitted());
        }
        return resp;
    });
    admin.addHandler("/timeseriesz", [this](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = toTimeseriesJson(recorder_->snapshot());
        return resp;
    });
}

void
NetServer::wakeIoThread()
{
    std::uint8_t byte = 1;
    // Best-effort: a full pipe already guarantees a pending wake.
    [[maybe_unused]] ssize_t n =
        ::write(wake_pipe_[1], &byte, 1);
}

void
NetServer::forgetTags(std::uint64_t conn_id)
{
    std::lock_guard<std::mutex> lock(tags_mutex_);
    for (auto it = tags_.begin(); it != tags_.end();) {
        if (it->second.connId == conn_id)
            it = tags_.erase(it);
        else
            ++it;
    }
}

bool
NetServer::hasPendingTags(std::uint64_t conn_id)
{
    {
        std::lock_guard<std::mutex> lock(tags_mutex_);
        for (const auto &entry : tags_)
            if (entry.second.connId == conn_id)
                return true;
    }
    std::lock_guard<std::mutex> lock(stats_requests_mutex_);
    for (const PendingTag &req : stats_requests_)
        if (req.connId == conn_id)
            return true;
    return false;
}

void
NetServer::closeConnLocked(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    loop_.remove(it->second->fd); // before close(): see EventLoop
    closing_conns_.erase(conn_id);
    ::close(it->second->fd);
    conns_.erase(it);
    if (inst_.connectionsLive)
        inst_.connectionsLive->add(-1);
    SAP_LOG_DEBUG("conn ", conn_id, " closed");
    // Completions still in flight for this connection are dropped
    // when the writer fails to find their tag mapping.
    forgetTags(conn_id);
}

void
NetServer::enqueueOutputLocked(Connection &conn,
                               const std::vector<std::uint8_t> &bytes)
{
    conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
}

bool
NetServer::enqueueOutput(std::uint64_t conn_id,
                         std::vector<std::uint8_t> bytes)
{
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        auto it = conns_.find(conn_id);
        if (it == conns_.end())
            return false; // connection is gone; drop the frame
        Connection &conn = *it->second;
        if (conn.outbuf.empty()) {
            // Common case (client keeping up): adopt the frame
            // buffer instead of copying it under the lock.
            conn.outbuf = std::move(bytes);
            conn.outoff = 0;
        } else {
            enqueueOutputLocked(conn, bytes);
        }
        // The IO thread owns the event loop; ask it to pick up the
        // new write interest when the wake lands.
        interest_dirty_.push_back(conn_id);
    }
    wakeIoThread();
    return true;
}

void
NetServer::updateInterestLocked(std::uint64_t conn_id,
                                Connection &conn)
{
    const std::size_t queued = conn.outbuf.size() - conn.outoff;
    std::uint32_t mask = 0;
    // Backpressure: a client that is not reading its responses
    // stops being read from until its queued output drains.
    if (serving_.load() && !conn.closing &&
        queued <= opts_.maxQueuedOutputBytes)
        mask |= EventLoop::kRead;
    if (queued > 0)
        mask |= EventLoop::kWrite;
    if (mask != conn.interest) {
        loop_.set(conn.fd, mask, conn_id);
        conn.interest = mask;
    }
}

bool
NetServer::flushLocked(Connection &conn)
{
    while (conn.outoff < conn.outbuf.size()) {
        ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.outoff,
                           conn.outbuf.size() - conn.outoff,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outoff += static_cast<std::size_t>(n);
            if (inst_.bytesOut)
                inst_.bytesOut->add(static_cast<std::uint64_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false; // peer is gone
    }
    // Fully flushed: reclaim the buffer.
    conn.outbuf.clear();
    conn.outoff = 0;
    return true;
}

void
NetServer::acceptReady()
{
    for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                // Persistent failure (EMFILE/ENFILE...): the pending
                // connection keeps the listen socket readable, so
                // back off from polling it for a while instead of
                // spinning the IO thread hot.
                listen_backoff_ = 20; // ~1 s of poll periods
            }
            return;
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::uint64_t conn_id;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conn_id = next_conn_id_;
            auto [it, inserted] = conns_.emplace(
                next_conn_id_, std::make_unique<Connection>(
                                   fd, opts_.maxPayloadBytes));
            ++next_conn_id_;
            updateInterestLocked(conn_id, *it->second);
        }
        if (inst_.connectionsAccepted) {
            inst_.connectionsAccepted->add();
            inst_.connectionsLive->add(1);
        }
        SAP_LOG_DEBUG("conn ", conn_id, " accepted");
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++net_stats_.connectionsAccepted;
    }
}

bool
NetServer::readReady(std::uint64_t conn_id, Connection &conn)
{
    std::uint8_t buf[65536];
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            if (conn.closing)
                return true; // a malformed frame ended reading
        }
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            if (inst_.bytesIn)
                inst_.bytesIn->add(static_cast<std::uint64_t>(n));
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            Frame frame;
            std::string err;
            for (;;) {
                FrameDecoder::Result res =
                    conn.decoder.next(&frame, &err);
                if (res == FrameDecoder::Result::NeedMore)
                    break;
                if (res == FrameDecoder::Result::Ok) {
                    handleFrame(conn_id, conn, frame);
                    continue;
                }
                // Frame-level violation: the stream cannot recover.
                // One ERROR frame, then close after the flush.
                {
                    std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++net_stats_.protocolErrors;
                }
                if (inst_.protocolErrors)
                    inst_.protocolErrors->add();
                SAP_LOG_WARN("conn ", conn_id,
                             ": unrecoverable frame error: ", err);
                std::lock_guard<std::mutex> lock(conns_mutex_);
                enqueueOutputLocked(conn, buildErrorFrame(0, err));
                conn.closing = true;
                return true;
            }
            continue;
        }
        if (n == 0) {
            // Peer finished writing; deliver what we owe, then close.
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conn.closing = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false; // dead socket
    }
}

void
NetServer::handleFrame(std::uint64_t conn_id, Connection &conn,
                       const Frame &frame)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++net_stats_.framesReceived;
    }
    if (inst_.framesReceived)
        inst_.framesReceived->add();
    const std::uint64_t tag = frame.header.tag;

    auto send_error = [&](const std::string &message) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++net_stats_.protocolErrors;
        }
        if (inst_.protocolErrors)
            inst_.protocolErrors->add();
        SAP_LOG_DEBUG("conn ", conn_id, ": protocol error: ", message);
        std::lock_guard<std::mutex> lock(conns_mutex_);
        enqueueOutputLocked(conn, buildErrorFrame(tag, message));
    };

    switch (frame.header.type) {
    case static_cast<std::uint16_t>(FrameType::Submit): {
        ServeRequest req;
        std::string err;
        if (!decodeSubmit(frame.payload, &req, &err)) {
            send_error(err);
            return;
        }
        // Tracing begins at the network boundary: the Decode stamp
        // anchors every later span to the IO thread's hand-off time.
        // A request carrying a propagated context adopts the edge's
        // sampling decision instead of rolling a local one.
        req.trace = req.traceContext.valid()
                        ? collector_.adopt(req.traceContext)
                        : collector_.begin();
        traceStamp(req.trace, TraceStage::Decode);
        std::uint64_t server_tag;
        {
            std::lock_guard<std::mutex> lock(tags_mutex_);
            server_tag = next_tag_++;
            tags_[server_tag] = {conn_id, tag};
        }
        cluster_->submitToQueue(std::move(req), &queue_, server_tag);
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Forward): {
        // The gateway hop: a SUBMIT whose routing digest was already
        // computed one tier up. Same life cycle as SUBMIT; the
        // digest rides through to the shard plan cache.
        Digest digest = 0;
        ServeRequest req;
        std::string err;
        if (!decodeForward(frame.payload, &digest, &req, &err)) {
            send_error(err);
            return;
        }
        req.trace = req.traceContext.valid()
                        ? collector_.adopt(req.traceContext)
                        : collector_.begin();
        traceStamp(req.trace, TraceStage::Decode);
        std::uint64_t server_tag;
        {
            std::lock_guard<std::mutex> lock(tags_mutex_);
            server_tag = next_tag_++;
            tags_[server_tag] = {conn_id, tag};
        }
        cluster_->submitToQueue(std::move(req), &queue_, server_tag,
                                digest);
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Ping): {
        // Echoed verbatim, payload included (protocol.hh contract).
        std::vector<std::uint8_t> echo =
            buildFrame(FrameType::Ping, tag, frame.payload);
        std::lock_guard<std::mutex> lock(conns_mutex_);
        enqueueOutputLocked(conn, echo);
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Stats): {
        // Empty payload = request (a snapshot in either direction is
        // harmless to serve again, so no payload check). The
        // snapshot + encode work is milliseconds on a loaded
        // installation, so it runs on the writer thread — the IO
        // thread only hands the request over via the tag-0 marker.
        {
            std::lock_guard<std::mutex> lock(stats_requests_mutex_);
            stats_requests_.push_back({conn_id, tag, SnapKind::Stats});
        }
        queue_.push({0, {}});
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Metrics): {
        // Same hand-off discipline as STATS: the merged registry
        // snapshot is the writer thread's job.
        {
            std::lock_guard<std::mutex> lock(stats_requests_mutex_);
            stats_requests_.push_back(
                {conn_id, tag, SnapKind::Metrics});
        }
        queue_.push({0, {}});
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Traces): {
        // Ring snapshots follow the STATS/METRICS hand-off: the
        // writer serializes them, the IO thread never stalls. This
        // is the scatter leg of the gateway's stitched /tracez.
        {
            std::lock_guard<std::mutex> lock(stats_requests_mutex_);
            stats_requests_.push_back(
                {conn_id, tag, SnapKind::Traces});
        }
        queue_.push({0, {}});
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Response):
    case static_cast<std::uint16_t>(FrameType::Error):
        send_error("unexpected " + frameTypeName(frame.header.type) +
                   " frame from a client");
        return;
    default:
        send_error("unknown frame " + frameTypeName(frame.header.type));
        return;
    }
}

void
NetServer::ioLoop()
{
    SAP_ASSERT(loop_.valid(), "event loop creation failed (",
               EventLoop::backendName(), ")");
    loop_.set(wake_pipe_[0], EventLoop::kRead, kWakeKey);
    loop_.set(listen_fd_, EventLoop::kRead, kListenKey);
    int flush_spins = 0;
    bool was_serving = true;

    for (;;) {
        const bool serving = serving_.load();
        if (!serving && !reads_quiesced_) {
            std::lock_guard<std::mutex> lock(quiesce_mutex_);
            reads_quiesced_ = true;
            quiesce_cv_.notify_all();
        }
        const bool exiting = flush_and_exit_.load();

        // Listen-socket interest follows the serving flag and the
        // accept() backoff (see acceptReady()).
        if (serving && listen_backoff_ == 0) {
            loop_.set(listen_fd_, EventLoop::kRead, kListenKey);
        } else {
            loop_.remove(listen_fd_);
            if (listen_backoff_ > 0)
                --listen_backoff_;
        }

        bool any_output = false;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            // Interest masks are event-driven, not rebuilt per
            // wakeup: only connections somebody marked dirty (the
            // writer buffering a response, backpressure crossings)
            // are touched — unless the serving flag just flipped or
            // we are flushing to exit, which changes every mask.
            if (serving != was_serving || exiting) {
                for (auto &entry : conns_)
                    updateInterestLocked(entry.first, *entry.second);
            } else {
                for (std::uint64_t id : interest_dirty_) {
                    auto it = conns_.find(id);
                    if (it != conns_.end())
                        updateInterestLocked(id, *it->second);
                }
            }
            interest_dirty_.clear();
            was_serving = serving;

            // Close what is closing, fully flushed, AND owed
            // nothing: a client may pipeline SUBMITs and shutdown
            // its write side before reading — its responses are
            // still in flight in the cluster, so the connection must
            // survive until the writer has delivered (and we
            // flushed) them. Swept every wakeup (bounded by the
            // closing set, not the connection count) because the
            // final tag erase happens writer-side without a wake.
            for (auto it = closing_conns_.begin();
                 it != closing_conns_.end();) {
                auto cit = conns_.find(*it);
                if (cit == conns_.end()) {
                    it = closing_conns_.erase(it);
                    continue;
                }
                Connection &c = *cit->second;
                if (c.outoff >= c.outbuf.size() &&
                    !hasPendingTags(*it)) {
                    std::uint64_t id = *it;
                    ++it;
                    closeConnLocked(id); // erases from closing_conns_
                } else {
                    ++it;
                }
            }

            if (exiting)
                for (const auto &entry : conns_)
                    any_output |= entry.second->outoff <
                                  entry.second->outbuf.size();
        }

        if (exiting) {
            if (!any_output || ++flush_spins > kMaxFlushSpins)
                break;
        }

        loop_.wait(kWaitTimeoutMs);

        for (const EventLoop::Ready &ev : loop_.ready()) {
            if (ev.key == kWakeKey) {
                std::uint8_t drain[256];
                while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
                }
                continue;
            }
            if (ev.key == kListenKey) {
                acceptReady();
                continue;
            }
            const std::uint64_t conn_id = ev.key;
            Connection *conn = nullptr;
            {
                std::lock_guard<std::mutex> lock(conns_mutex_);
                auto it = conns_.find(conn_id);
                if (it == conns_.end())
                    continue; // closed earlier in this batch
                conn = it->second.get();
            }
            // Only this thread erases connections, so the pointer
            // stays valid without holding the lock.
            if (ev.error) {
                std::lock_guard<std::mutex> lock(conns_mutex_);
                closeConnLocked(conn_id);
                continue;
            }
            bool alive = true;
            if (ev.writable) {
                std::lock_guard<std::mutex> lock(conns_mutex_);
                alive = flushLocked(*conn);
            }
            // Gated on `serving` (not just the installed interest):
            // both backends report hangup even when reads were not
            // asked for, and once this iteration acknowledged
            // quiesce, reading — and the submitToQueue it can
            // trigger — must not race stop()'s cluster teardown.
            if (alive && serving && (ev.readable || ev.hangup))
                alive = readReady(conn_id, *conn);
            std::lock_guard<std::mutex> lock(conns_mutex_);
            if (!alive) {
                closeConnLocked(conn_id);
                continue;
            }
            // Reading/flushing changed queued bytes (responses,
            // ping echoes, error frames) or set closing; reinstall
            // the mask and track closing conns for the sweep.
            updateInterestLocked(conn_id, *conn);
            if (conn->closing)
                closing_conns_.insert(conn_id);
        }
    }

    // Exit: close every remaining connection, and make sure stop()
    // never waits on a quiesce acknowledgement that already happened
    // implicitly (e.g. the loop broke on a poll failure).
    {
        std::lock_guard<std::mutex> lock(quiesce_mutex_);
        reads_quiesced_ = true;
        quiesce_cv_.notify_all();
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    while (!conns_.empty())
        closeConnLocked(conns_.begin()->first);
}

void
NetServer::writerLoop()
{
    Completion c;
    while (queue_.next(&c)) {
        if (c.tag == 0) {
            // STATS/METRICS marker from the IO thread: snapshot,
            // encode, and deliver here so the poll loop never stalls
            // on it. The request is peeked, not popped, until the
            // frame is buffered — its deque entry is what keeps a
            // half-closed requester open (hasPendingTags).
            PendingTag stats_req;
            {
                std::lock_guard<std::mutex> lock(
                    stats_requests_mutex_);
                if (stats_requests_.empty())
                    continue;
                stats_req = stats_requests_.front();
            }
            if (stats_req.kind == SnapKind::Metrics) {
                // metricsSnapshot() takes cluster_mutex_ itself and
                // degrades to the wire-level half during shutdown —
                // still a well-formed frame, so always deliver.
                enqueueOutput(stats_req.connId,
                              buildMetricsFrame(stats_req.clientTag,
                                                metricsSnapshot()));
            } else if (stats_req.kind == SnapKind::Traces) {
                enqueueOutput(
                    stats_req.connId,
                    buildTracesFrame(stats_req.clientTag,
                                     collector_.snapshot(),
                                     collector_.totalCommitted()));
            } else {
                ServerStats stats;
                bool have = false;
                {
                    std::lock_guard<std::mutex> lock(cluster_mutex_);
                    if (cluster_) { // else: shutting down, drop it
                        stats = cluster_->statsSnapshot();
                        have = true;
                    }
                }
                if (have)
                    enqueueOutput(stats_req.connId,
                                  buildStatsFrame(stats_req.clientTag,
                                                  stats));
            }
            std::lock_guard<std::mutex> lock(stats_requests_mutex_);
            stats_requests_.pop_front();
            continue;
        }
        PendingTag pending;
        {
            std::lock_guard<std::mutex> lock(tags_mutex_);
            auto it = tags_.find(c.tag);
            if (it == tags_.end())
                continue; // connection died; drop the response
            pending = it->second;
            // NOT erased yet: the tag entry is what keeps the IO
            // thread from closing a half-closed (EOF'd) connection
            // that is still owed this response. Erase only after
            // the frame is in the connection's output buffer.
        }
        // WireResponse::of moves the response, so detach the trace
        // (and its outcome) first.
        std::shared_ptr<RequestTrace> trace = c.response.trace;
        if (trace) {
            trace->ok = c.response.ok;
            trace->stamp(TraceStage::WriterPop);
        }
        bool delivered = enqueueOutput(
            pending.connId,
            buildResponseFrame(pending.clientTag,
                               WireResponse::of(std::move(c.response))));
        {
            std::lock_guard<std::mutex> lock(tags_mutex_);
            tags_.erase(c.tag);
        }
        if (delivered) {
            if (inst_.responsesSent)
                inst_.responsesSent->add();
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++net_stats_.responsesSent;
        }
        // Flush = response bytes handed to the socket layer; the
        // commit decides sampled-or-slow and records stage spans.
        traceStamp(trace, TraceStage::Flush);
        collector_.finish(trace);
    }
}

} // namespace sap
