/**
 * @file
 * Blocking client for the net/ wire protocol: the library an
 * external process links to reach a NetServer-fronted cluster.
 *
 * One NetClient is one TCP connection with a simple blocking call
 * discipline: submit() sends one SUBMIT and waits for its response;
 * submitBatch() pipelines N SUBMITs before reading (responses come
 * back in completion order — the cluster serves shards
 * independently — and are matched to requests by tag); stats() and
 * ping() round-trip the STATS and PING frames.
 *
 * Internally the socket is non-blocking and every wait goes through
 * poll(). That matters for submitBatch(): a blocking send() can
 * deadlock against the server's backpressure — when this client's
 * pending responses exceed the server's maxQueuedOutputBytes, the
 * server stops reading from it, the socket send buffer fills, and a
 * client that won't read until everything is sent waits forever.
 * submitBatch() therefore interleaves: once send() would block it
 * polls on readable|writable and drains responses while the rest of
 * the pipeline trickles out (see test_net_server.cc's tiny-SO_SNDBUF
 * regression test).
 *
 * Transport failures (connection refused, mid-stream close, a
 * malformed byte stream from the server) are reported per call via
 * Result::transportOk / lastError(); application-level failures
 * (malformed request, unknown engine) come back as normal responses
 * with ok = false, exactly as the in-process serving layer reports
 * them.
 *
 * Thread-safety: a NetClient is NOT thread-safe; give each client
 * thread its own connection (the server multiplexes any number).
 */

#ifndef SAP_NET_CLIENT_HH
#define SAP_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hh"

namespace sap {

/**
 * TCP client speaking the sap wire protocol (see file comment).
 */
class NetClient
{
  public:
    /** What one submitted request came back as. */
    struct Result
    {
        /** False when the transport or framing failed mid-call. */
        bool transportOk = false;
        /** Why (when !transportOk). */
        std::string transportError;
        /** The decoded response (valid when transportOk). An ERROR
         *  frame decodes as ok = false with the server's message. */
        WireResponse response;
    };

    /**
     * @param max_payload Per-frame payload cap the client will
     *        accept from the server; match the server's
     *        NetServer::Options::maxPayloadBytes when that was
     *        raised above the default (responses can be as large as
     *        the requests the server accepts).
     */
    explicit NetClient(
        std::uint32_t max_payload = kDefaultMaxPayloadBytes)
        : max_payload_(max_payload), decoder_(max_payload)
    {
    }

    /** Disconnects. */
    ~NetClient();

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /**
     * Connect to @p host:@p port (IPv4 dotted quad or "localhost").
     * @return false with lastError() set on failure.
     */
    bool connect(const std::string &host, std::uint16_t port);

    /**
     * Request an explicit SO_SNDBUF for the next connect() (0 keeps
     * the kernel default). Tests use a tiny value to force the
     * send-buffer-full path in submitBatch(); it has no effect on an
     * already-open connection.
     */
    void setSendBufferBytes(int bytes) { sndbuf_bytes_ = bytes; }

    /** Close the connection (idempotent). */
    void disconnect();

    /** True while the socket is open. */
    bool connected() const { return fd_ >= 0; }

    /** The last transport error seen by any call. */
    const std::string &lastError() const { return error_; }

    /** Send one request and block for its response. */
    Result submit(const ServeRequest &req);

    /**
     * Pipeline all of @p reqs, then collect every response; the
     * returned vector is in request order regardless of the order
     * responses arrived in. After a transport failure the remaining
     * results carry transportOk = false.
     */
    std::vector<Result> submitBatch(const std::vector<ServeRequest>
                                        &reqs);

    /**
     * Request the server's aggregated statistics snapshot
     * (Cluster::statsSnapshot() over the wire).
     */
    bool stats(ServerStats *out);

    /**
     * Request the server's merged obs/ metrics snapshot
     * (NetServer::metricsSnapshot() over the wire): wire-level
     * counters plus every shard's registry, histograms merged
     * exactly bucket-by-bucket.
     */
    bool metrics(MetricsSnapshot *out);

    /**
     * Request the server's committed request traces (the TRACES
     * frame). Against a NetServer this is its trace rings; against a
     * gateway it is the stitchable cross-tier set — the gateway's
     * own traces plus a scatter-gather over every routable backend.
     * @p totalCommitted receives the commit counter (≥ out->size());
     * either out-param may be null.
     */
    bool traces(std::vector<RequestTrace> *out,
                std::uint64_t *totalCommitted);

    /** PING round-trip. */
    bool ping();

    /**
     * Golden-model cross-check of a wire response against the host
     * oracle for @p req — bit-exact, the same check the serving
     * layer applies (integer workloads; trisolve wants unit-diagonal
     * systems so every intermediate is exact).
     */
    static bool matchesOracle(const ServeRequest &req,
                              const WireResponse &resp);

  private:
    /** Send all of @p bytes, polling on writability as needed. */
    bool sendAll(const std::vector<std::uint8_t> &bytes);
    /** Block (via poll) until one complete frame arrives. */
    bool readFrame(Frame *out);
    bool fail(const std::string &message);

    int fd_ = -1;
    int sndbuf_bytes_ = 0;
    std::uint32_t max_payload_ = kDefaultMaxPayloadBytes;
    FrameDecoder decoder_;
    std::uint64_t next_tag_ = 1;
    std::string error_;
};

} // namespace sap

#endif // SAP_NET_CLIENT_HH
